//! The QDNN auto-builder: first-order → quadratic layer replacement and
//! heuristic-based layer reduction (Eq. 5 of the paper).
//!
//! The paper's auto-builder takes an existing first-order model from the model
//! pool and produces a "QuadraNN" in two steps:
//!
//! 1. **Layer replacement** — every first-order convolution is replaced by the
//!    encapsulated quadratic layer module (batch-norm enforced after each one).
//! 2. **Heuristic layer reduction** — because a quadratic neuron has higher
//!    per-layer capacity, the depth can be reduced. Each removable layer is
//!    ranked by the layer-performance indicator
//!    `RI = P(Mpar) · P(Tlat) / ΔAcc` (Xu et al. 2019), where `P(Mpar)` and
//!    `P(Tlat)` are the layer's parameter and compute share of the whole model
//!    and `ΔAcc` is the accuracy drop from removing it. Layers with high cost
//!    and low accuracy contribution are removed first until a target depth is
//!    reached.

use crate::config::{advance_geometry, Geometry, LayerSpec, ModelConfig};
use crate::neuron::NeuronType;
use serde::{Deserialize, Serialize};

/// Parameter / compute cost of one top-level configuration entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpecCost {
    /// Trainable parameters of the entry (including quadratic branches and BN).
    pub params: usize,
    /// Multiply–accumulate count of one forward pass at batch size 1.
    pub flops: usize,
}

/// Importance score of a removable layer as computed by Eq. 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RiScore {
    /// Index of the entry in `ModelConfig::layers`.
    pub index: usize,
    /// Parameter share `P(Mpar)` of the whole model.
    pub param_share: f32,
    /// Compute share `P(Tlat)` of the whole model.
    pub flop_share: f32,
    /// Accuracy drop `ΔAcc` when the layer is removed (1.0 when unknown).
    pub delta_acc: f32,
    /// The resulting indicator `RI = P(Mpar)·P(Tlat)/ΔAcc`.
    pub ri: f32,
}

/// Compute the layer-performance indicator of Eq. 5.
pub fn layer_performance_indicator(param_share: f32, flop_share: f32, delta_acc: f32) -> f32 {
    param_share * flop_share / delta_acc.max(1e-6)
}

/// Number of weight branches a quadratic neuron type instantiates in a layer.
fn branch_factor(neuron: NeuronType) -> usize {
    match neuron {
        NeuronType::T2 | NeuronType::T3 => 1,
        NeuronType::T4 | NeuronType::T4Identity => 2,
        NeuronType::T2And4 | NeuronType::Ours => 3,
        // Not constructible as conv layers, but give the bilinear count for completeness.
        NeuronType::T1 | NeuronType::T1And2 => 1,
    }
}

fn spec_cost(spec: &LayerSpec, geom: Geometry) -> SpecCost {
    // `has_bias` mirrors the construction function: a first-order Conv2d gets a
    // bias only when it is not followed by batch-norm, while a quadratic
    // convolution always carries its own bias parameter.
    let conv_cost = |out_c: usize,
                     k: usize,
                     stride: usize,
                     padding: usize,
                     groups: usize,
                     branches: usize,
                     bn: bool,
                     has_bias: bool| {
        let out_hw = (geom.spatial + 2 * padding).saturating_sub(k) / stride + 1;
        let weight = out_c * (geom.channels / groups.max(1)) * k * k;
        let params = branches * weight + if has_bias { out_c } else { 0 } + if bn { 2 * out_c } else { 0 };
        let flops = branches * weight * out_hw * out_hw;
        SpecCost { params, flops }
    };
    match spec {
        LayerSpec::Conv { out_channels, kernel, stride, padding, groups, batch_norm, .. } => {
            conv_cost(*out_channels, *kernel, *stride, *padding, *groups, 1, *batch_norm, !*batch_norm)
        }
        LayerSpec::QuadraticConv {
            neuron,
            out_channels,
            kernel,
            stride,
            padding,
            groups,
            batch_norm,
            ..
        } => conv_cost(
            *out_channels,
            *kernel,
            *stride,
            *padding,
            *groups,
            branch_factor(*neuron),
            *batch_norm,
            true,
        ),
        LayerSpec::Linear { out_features, .. } => SpecCost {
            params: geom.features() * out_features + out_features,
            flops: geom.features() * out_features,
        },
        LayerSpec::QuadraticLinear { neuron, out_features } => {
            let w = geom.features() * out_features;
            SpecCost { params: branch_factor(*neuron) * w + out_features, flops: branch_factor(*neuron) * w }
        }
        LayerSpec::Residual { body, projection, .. } => {
            let mut g = geom;
            let mut total = SpecCost { params: 0, flops: 0 };
            for s in body {
                let c = spec_cost(s, g);
                total.params += c.params;
                total.flops += c.flops;
                g = advance_geometry(s, g);
            }
            if *projection {
                let w = geom.channels * g.channels;
                total.params += w;
                total.flops += w * g.spatial.max(1) * g.spatial.max(1);
            }
            total
        }
        _ => SpecCost { params: 0, flops: 0 },
    }
}

/// Estimate the parameter / compute cost of every top-level entry of a config.
pub fn estimate_costs(config: &ModelConfig) -> Vec<SpecCost> {
    let mut geom = Geometry { channels: config.input_channels, spatial: config.image_size, flat: false };
    let mut costs = Vec::with_capacity(config.layers.len());
    for spec in &config.layers {
        costs.push(spec_cost(spec, geom));
        geom = advance_geometry(spec, geom);
    }
    costs
}

/// Total estimated parameter count of a configuration.
pub fn estimate_param_count(config: &ModelConfig) -> usize {
    estimate_costs(config).iter().map(|c| c.params).sum()
}

/// Total estimated multiply–accumulate count of one forward pass (batch 1).
pub fn estimate_flops(config: &ModelConfig) -> usize {
    estimate_costs(config).iter().map(|c| c.flops).sum()
}

/// The QDNN auto-builder.
#[derive(Debug, Clone, Copy)]
pub struct AutoBuilder {
    neuron: NeuronType,
}

impl AutoBuilder {
    /// Create an auto-builder that converts models to the given neuron type
    /// (the paper's QuadraNN uses [`NeuronType::Ours`]).
    pub fn new(neuron: NeuronType) -> Self {
        AutoBuilder { neuron }
    }

    /// The neuron type used for replacement.
    pub fn neuron(&self) -> NeuronType {
        self.neuron
    }

    /// Step 1 — layer replacement: convert every first-order convolution into a
    /// quadratic convolution of the configured type, iterating from shallow to
    /// deep layers (and recursively into residual bodies). Batch normalisation
    /// is enforced after every quadratic layer.
    ///
    /// This alone produces the "QuadraNN (no auto-builder)" variant of Table 3.
    pub fn convert(&self, config: &ModelConfig) -> ModelConfig {
        fn convert_specs(specs: &[LayerSpec], neuron: NeuronType) -> Vec<LayerSpec> {
            specs
                .iter()
                .map(|s| match s {
                    LayerSpec::Conv { out_channels, kernel, stride, padding, groups, relu, .. } => {
                        LayerSpec::QuadraticConv {
                            neuron,
                            out_channels: *out_channels,
                            kernel: *kernel,
                            stride: *stride,
                            padding: *padding,
                            groups: *groups,
                            batch_norm: true,
                            relu: *relu,
                        }
                    }
                    LayerSpec::Residual { body, projection, final_relu } => LayerSpec::Residual {
                        body: convert_specs(body, neuron),
                        projection: *projection,
                        final_relu: *final_relu,
                    },
                    other => other.clone(),
                })
                .collect()
        }
        ModelConfig {
            name: format!("{}-{}", config.name, "quadratic"),
            layers: convert_specs(&config.layers, self.neuron),
            ..config.clone()
        }
    }

    /// Indices of top-level entries that can be removed without breaking the
    /// channel chain: shape-preserving convolutions (same in/out channels,
    /// stride 1) and shape-preserving residual blocks.
    pub fn removable_indices(config: &ModelConfig) -> Vec<usize> {
        let mut geom = Geometry { channels: config.input_channels, spatial: config.image_size, flat: false };
        let mut removable = Vec::new();
        for (i, spec) in config.layers.iter().enumerate() {
            let next = advance_geometry(spec, geom);
            let preserves_shape = next == geom;
            match spec {
                LayerSpec::Conv { .. } | LayerSpec::QuadraticConv { .. } | LayerSpec::Residual { .. }
                    if preserves_shape =>
                {
                    removable.push(i);
                }
                _ => {}
            }
            geom = next;
        }
        removable
    }

    /// Step 2 — compute RI scores (Eq. 5) for every removable entry.
    ///
    /// `delta_acc` optionally supplies the measured accuracy drop per top-level
    /// index (e.g. from a quick probe fine-tune); entries without a measurement
    /// use `ΔAcc = 1`, which reduces the indicator to pure cost share.
    pub fn layer_importance(config: &ModelConfig, delta_acc: &[(usize, f32)]) -> Vec<RiScore> {
        let costs = estimate_costs(config);
        let total_params: usize = costs.iter().map(|c| c.params).sum();
        let total_flops: usize = costs.iter().map(|c| c.flops).sum();
        Self::removable_indices(config)
            .into_iter()
            .map(|i| {
                let param_share = costs[i].params as f32 / total_params.max(1) as f32;
                let flop_share = costs[i].flops as f32 / total_flops.max(1) as f32;
                let delta = delta_acc.iter().find(|(idx, _)| *idx == i).map(|(_, d)| *d).unwrap_or(1.0);
                RiScore {
                    index: i,
                    param_share,
                    flop_share,
                    delta_acc: delta,
                    ri: layer_performance_indicator(param_share, flop_share, delta),
                }
            })
            .collect()
    }

    /// Step 2 — heuristic layer reduction: remove the highest-RI removable
    /// entries until at most `target_conv_layers` convolution layers remain.
    pub fn reduce(
        &self,
        config: &ModelConfig,
        target_conv_layers: usize,
        delta_acc: &[(usize, f32)],
    ) -> ModelConfig {
        let mut cfg = config.clone();
        loop {
            let current = cfg.conv_layer_count();
            if current <= target_conv_layers {
                break;
            }
            let mut scores = Self::layer_importance(&cfg, delta_acc);
            if scores.is_empty() {
                break;
            }
            scores.sort_by(|a, b| b.ri.partial_cmp(&a.ri).unwrap_or(std::cmp::Ordering::Equal));
            // Do not remove more conv layers than we need to.
            let excess = current - target_conv_layers;
            let candidate =
                scores.iter().find(|s| conv_count_of(&cfg.layers[s.index]) <= excess).map(|s| s.index);
            match candidate {
                Some(idx) => {
                    cfg.layers.remove(idx);
                }
                None => break,
            }
        }
        cfg.name = format!("{}-reduced{}", cfg.name, cfg.conv_layer_count());
        cfg
    }

    /// The full auto-builder pipeline: layer replacement followed by heuristic
    /// layer reduction down to `target_conv_layers` convolution layers.
    pub fn build(
        &self,
        config: &ModelConfig,
        target_conv_layers: usize,
        delta_acc: &[(usize, f32)],
    ) -> ModelConfig {
        let converted = self.convert(config);
        self.reduce(&converted, target_conv_layers, delta_acc)
    }
}

fn conv_count_of(spec: &LayerSpec) -> usize {
    match spec {
        LayerSpec::Conv { .. } | LayerSpec::QuadraticConv { .. } => 1,
        LayerSpec::Residual { body, .. } => body.iter().map(conv_count_of).sum(),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::build_model;
    use quadra_nn::Layer;
    use quadra_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn vgg_like() -> ModelConfig {
        ModelConfig::new(
            "vgg-like",
            3,
            16,
            10,
            vec![
                LayerSpec::conv3x3(16),
                LayerSpec::conv3x3(16),
                LayerSpec::conv3x3(16),
                LayerSpec::MaxPool { kernel: 2 },
                LayerSpec::conv3x3(32),
                LayerSpec::conv3x3(32),
                LayerSpec::conv3x3(32),
                LayerSpec::MaxPool { kernel: 2 },
                LayerSpec::GlobalAvgPool,
                LayerSpec::Linear { out_features: 10, relu: false },
            ],
        )
    }

    #[test]
    fn conversion_replaces_every_conv_and_forces_batchnorm() {
        let cfg = vgg_like();
        let builder = AutoBuilder::new(NeuronType::Ours);
        assert_eq!(builder.neuron(), NeuronType::Ours);
        let q = builder.convert(&cfg);
        assert_eq!(q.conv_layer_count(), cfg.conv_layer_count());
        assert!(q.is_quadratic());
        for spec in &q.layers {
            if let LayerSpec::QuadraticConv { batch_norm, neuron, .. } = spec {
                assert!(*batch_norm);
                assert_eq!(*neuron, NeuronType::Ours);
            }
            assert!(!matches!(spec, LayerSpec::Conv { .. }));
        }
        // Non-conv layers are preserved.
        assert!(q.layers.iter().any(|s| matches!(s, LayerSpec::MaxPool { .. })));
        assert!(q.layers.iter().any(|s| matches!(s, LayerSpec::Linear { .. })));
    }

    #[test]
    fn converted_model_has_roughly_three_times_conv_params() {
        let cfg = vgg_like();
        let q = AutoBuilder::new(NeuronType::Ours).convert(&cfg);
        let p1 = estimate_param_count(&cfg) as f32;
        let p3 = estimate_param_count(&q) as f32;
        // "Ours" has 3 weight branches, so conv params triple (biases/BN/linear unchanged).
        assert!(p3 / p1 > 2.5 && p3 / p1 < 3.1, "ratio {}", p3 / p1);
        let f1 = estimate_flops(&cfg) as f32;
        let f3 = estimate_flops(&q) as f32;
        assert!(f3 / f1 > 2.5 && f3 / f1 <= 3.0 + 1e-3);
    }

    #[test]
    fn estimated_params_match_built_model() {
        let cfg = vgg_like();
        let mut rng = StdRng::seed_from_u64(5);
        let model = build_model(&cfg, &mut rng);
        assert_eq!(model.param_count(), estimate_param_count(&cfg));
        let q = AutoBuilder::new(NeuronType::Ours).convert(&cfg);
        let qmodel = build_model(&q, &mut rng);
        assert_eq!(qmodel.param_count(), estimate_param_count(&q));
    }

    #[test]
    fn removable_indices_are_shape_preserving_only() {
        let cfg = vgg_like();
        let removable = AutoBuilder::removable_indices(&cfg);
        // Layers 1, 2 (16->16) and 5, 6 (32->32) are removable; the first conv of
        // each stage changes channel count, pools/head are not conv layers.
        assert_eq!(removable, vec![1, 2, 5, 6]);
    }

    #[test]
    fn ri_ranks_costly_low_contribution_layers_first() {
        let cfg = vgg_like();
        // Pretend removing layer 1 hurts a lot, removing layer 6 hurts little.
        let scores = AutoBuilder::layer_importance(&cfg, &[(1, 0.20), (6, 0.001)]);
        let ri = |idx: usize| scores.iter().find(|s| s.index == idx).unwrap().ri;
        assert!(ri(6) > ri(1));
        // With no ΔAcc measurements the indicator reduces to cost share.
        let proxy = AutoBuilder::layer_importance(&cfg, &[]);
        for s in &proxy {
            assert!((s.ri - s.param_share * s.flop_share).abs() < 1e-9);
            assert_eq!(s.delta_acc, 1.0);
        }
        assert_eq!(layer_performance_indicator(0.5, 0.5, 0.0), 0.25 / 1e-6);
    }

    #[test]
    fn reduction_reaches_target_depth_and_model_still_runs() {
        let cfg = vgg_like();
        let builder = AutoBuilder::new(NeuronType::Ours);
        let reduced = builder.build(&cfg, 4, &[]);
        assert_eq!(reduced.conv_layer_count(), 4);
        assert!(reduced.is_quadratic());
        // The reduced model must still build and run end to end.
        let mut rng = StdRng::seed_from_u64(6);
        let mut model = build_model(&reduced, &mut rng);
        let y = model.forward(&Tensor::randn(&[2, 3, 16, 16], 0.0, 1.0, &mut rng), true);
        assert_eq!(y.shape(), &[2, 10]);
        // Fewer parameters than the unreduced quadratic model.
        assert!(estimate_param_count(&reduced) < estimate_param_count(&builder.convert(&cfg)));
    }

    #[test]
    fn reduction_stops_when_no_removable_layers_remain() {
        let cfg = ModelConfig::new(
            "small",
            3,
            8,
            2,
            vec![
                LayerSpec::conv3x3(8),
                LayerSpec::Conv {
                    out_channels: 16,
                    kernel: 3,
                    stride: 2,
                    padding: 1,
                    groups: 1,
                    batch_norm: true,
                    relu: true,
                },
                LayerSpec::GlobalAvgPool,
                LayerSpec::Linear { out_features: 2, relu: false },
            ],
        );
        let builder = AutoBuilder::new(NeuronType::Ours);
        // Both convs change shape (channels or spatial), so nothing is removable.
        let reduced = builder.build(&cfg, 1, &[]);
        assert_eq!(reduced.conv_layer_count(), 2);
    }

    #[test]
    fn resnet_style_reduction_removes_whole_blocks() {
        let block = |ch: usize| LayerSpec::Residual {
            body: vec![
                LayerSpec::conv3x3(ch),
                LayerSpec::Conv {
                    out_channels: ch,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                    groups: 1,
                    batch_norm: true,
                    relu: false,
                },
            ],
            projection: false,
            final_relu: true,
        };
        let cfg = ModelConfig::new(
            "resnet-like",
            3,
            16,
            10,
            vec![
                LayerSpec::conv3x3(16),
                block(16),
                block(16),
                block(16),
                LayerSpec::GlobalAvgPool,
                LayerSpec::Linear { out_features: 10, relu: false },
            ],
        );
        assert_eq!(cfg.conv_layer_count(), 7);
        let builder = AutoBuilder::new(NeuronType::Ours);
        let reduced = builder.build(&cfg, 3, &[]);
        // 7 -> remove two whole blocks (2 convs each) -> 3 convs remain.
        assert_eq!(reduced.conv_layer_count(), 3);
        assert_eq!(reduced.residual_block_count(), 1);
        let mut rng = StdRng::seed_from_u64(7);
        let mut model = build_model(&reduced, &mut rng);
        let y = model.forward(&Tensor::randn(&[1, 3, 16, 16], 0.0, 1.0, &mut rng), true);
        assert_eq!(y.shape(), &[1, 10]);
    }
}
