//! Fully connected (dense) layer.

use crate::layer::Layer;
use crate::param::Param;
use quadra_tensor::{InitKind, Tensor};
use rand::Rng;

/// A fully connected layer computing `y = x · W + b`.
///
/// `W` has shape `[in_features, out_features]`, inputs are `[batch, in_features]`.
pub struct Linear {
    weight: Param,
    bias: Option<Param>,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
    flops: usize,
}

impl Linear {
    /// Create a linear layer with Kaiming-uniform initialised weights.
    pub fn new(in_features: usize, out_features: usize, bias: bool, rng: &mut impl Rng) -> Self {
        let weight = Tensor::init(
            &[in_features, out_features],
            InitKind::KaimingUniform,
            in_features,
            out_features,
            rng,
        );
        let bias = if bias {
            Some(Param::new_no_decay("linear.bias", Tensor::zeros(&[out_features])))
        } else {
            None
        };
        Linear {
            weight: Param::new("linear.weight", weight),
            bias,
            in_features,
            out_features,
            cached_input: None,
            flops: 0,
        }
    }

    /// Input feature dimension.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature dimension.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.ndim(), 2, "Linear expects [batch, features] input, got {:?}", x.shape());
        assert_eq!(x.shape()[1], self.in_features, "Linear input width mismatch");
        let mut y = x.matmul(&self.weight.value).expect("linear shapes");
        if let Some(b) = &self.bias {
            y = y.add(&b.value).expect("bias broadcast");
        }
        self.flops = x.shape()[0] * self.in_features * self.out_features;
        self.cached_input = Some(x.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_input.take().expect("backward called before forward");
        // dW = xᵀ · dY, dX = dY · Wᵀ, db = column sums of dY — the tn/nt
        // matmul variants read the transposed operand in place.
        let gw = x.matmul_tn(grad_out).expect("shapes");
        self.weight.accumulate_grad(&gw);
        if let Some(b) = &mut self.bias {
            let gb = grad_out.sum_axis(0).expect("axis 0");
            b.accumulate_grad(&gb);
        }
        grad_out.matmul_nt(&self.weight.value).expect("shapes")
    }

    fn params(&self) -> Vec<&Param> {
        let mut p = vec![&self.weight];
        if let Some(b) = &self.bias {
            p.push(b);
        }
        p
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            p.push(b);
        }
        p
    }

    fn cached_bytes(&self) -> usize {
        self.cached_input.as_ref().map(|t| t.nbytes()).unwrap_or(0)
    }

    fn clear_cache(&mut self) {
        self.cached_input = None;
    }

    fn flops_last_forward(&self) -> usize {
        self.flops
    }

    fn layer_type(&self) -> &'static str {
        "linear"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadra_autograd::{check_close, numeric_gradient};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn forward_known_values() {
        let mut r = rng();
        let mut lin = Linear::new(2, 2, true, &mut r);
        lin.params_mut()[0]
            .value
            .copy_from(&Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap())
            .unwrap();
        lin.params_mut()[1].value.copy_from(&Tensor::from_slice(&[0.5, -0.5])).unwrap();
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = lin.forward(&x, true);
        assert_eq!(y.as_slice(), &[4.5, 5.5]);
        assert_eq!(lin.in_features(), 2);
        assert_eq!(lin.out_features(), 2);
        assert_eq!(lin.flops_last_forward(), 4);
        assert_eq!(lin.layer_type(), "linear");
    }

    #[test]
    fn backward_matches_finite_difference_for_input() {
        let mut r = rng();
        let mut lin = Linear::new(4, 3, true, &mut r);
        let x = Tensor::randn(&[2, 4], 0.0, 1.0, &mut r);
        let y = lin.forward(&x, true);
        let gin = lin.backward(&Tensor::ones_like(&y));

        let w = lin.params()[0].value.clone();
        let b = lin.params()[1].value.clone();
        let f = |t: &Tensor| t.matmul(&w).unwrap().add(&b).unwrap().sum();
        let numeric = numeric_gradient(f, &x, 1e-3);
        assert!(check_close(&gin, &numeric).passes(1e-2));
    }

    #[test]
    fn backward_matches_finite_difference_for_weight_and_bias() {
        let mut r = rng();
        let mut lin = Linear::new(3, 2, true, &mut r);
        let x = Tensor::randn(&[5, 3], 0.0, 1.0, &mut r);
        let y = lin.forward(&x, true);
        lin.backward(&Tensor::ones_like(&y));
        let gw = lin.params()[0].grad.clone();
        let gb = lin.params()[1].grad.clone();

        let x2 = x.clone();
        let b = lin.params()[1].value.clone();
        let fw = |w: &Tensor| x2.matmul(w).unwrap().add(&b).unwrap().sum();
        let numeric_w = numeric_gradient(fw, &lin.params()[0].value, 1e-3);
        assert!(check_close(&gw, &numeric_w).passes(1e-2));

        let w = lin.params()[0].value.clone();
        let x3 = x.clone();
        let fb = |bv: &Tensor| x3.matmul(&w).unwrap().add(bv).unwrap().sum();
        let numeric_b = numeric_gradient(fb, &lin.params()[1].value, 1e-3);
        assert!(check_close(&gb, &numeric_b).passes(1e-2));
    }

    #[test]
    fn no_bias_variant() {
        let mut r = rng();
        let mut lin = Linear::new(3, 2, false, &mut r);
        assert_eq!(lin.params().len(), 1);
        let x = Tensor::randn(&[1, 3], 0.0, 1.0, &mut r);
        let y = lin.forward(&x, true);
        assert_eq!(y.shape(), &[1, 2]);
        assert!(lin.cached_bytes() > 0);
        lin.clear_cache();
        assert_eq!(lin.cached_bytes(), 0);
    }

    #[test]
    #[should_panic]
    fn wrong_input_width_panics() {
        let mut r = rng();
        let mut lin = Linear::new(3, 2, false, &mut r);
        lin.forward(&Tensor::zeros(&[1, 4]), true);
    }
}
