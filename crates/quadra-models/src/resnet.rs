//! CIFAR-style residual networks (He et al. 2016): ResNet-20 / ResNet-32.
//!
//! These use the 3-stage layout with `n` basic blocks per stage
//! (depth = 6n + 2), which is the "ResNet-32 BS:[5,5,5]" notation of Table 3.

use quadra_core::{LayerSpec, ModelConfig};

/// Build a CIFAR-style ResNet configuration with `blocks[i]` basic blocks in
/// stage `i` and `base_width` channels in the first stage (doubling per stage).
pub fn resnet_cifar_config(
    blocks: [usize; 3],
    base_width: usize,
    input_channels: usize,
    image_size: usize,
    num_classes: usize,
) -> ModelConfig {
    assert!(base_width >= 2, "base width too small");
    assert!(blocks.iter().all(|&b| b >= 1), "each stage needs at least one block");
    let widths = [base_width, base_width * 2, base_width * 4];
    let mut layers = vec![LayerSpec::conv3x3(widths[0])];
    for (stage, &width) in widths.iter().enumerate() {
        for block in 0..blocks[stage] {
            let downsample = stage > 0 && block == 0;
            let first_conv = LayerSpec::Conv {
                out_channels: width,
                kernel: 3,
                stride: if downsample { 2 } else { 1 },
                padding: 1,
                groups: 1,
                batch_norm: true,
                relu: true,
            };
            let second_conv = LayerSpec::Conv {
                out_channels: width,
                kernel: 3,
                stride: 1,
                padding: 1,
                groups: 1,
                batch_norm: true,
                relu: false,
            };
            layers.push(LayerSpec::Residual {
                body: vec![first_conv, second_conv],
                projection: downsample,
                final_relu: true,
            });
        }
    }
    layers.push(LayerSpec::GlobalAvgPool);
    layers.push(LayerSpec::Linear { out_features: num_classes, relu: false });
    ModelConfig::new(
        format!("resnet-bs{}-{}-{}-w{}", blocks[0], blocks[1], blocks[2], base_width),
        input_channels,
        image_size,
        num_classes,
        layers,
    )
}

/// ResNet-20 (`[3, 3, 3]` blocks).
pub fn resnet20_config(base_width: usize, num_classes: usize, image_size: usize) -> ModelConfig {
    resnet_cifar_config([3, 3, 3], base_width, 3, image_size, num_classes)
}

/// ResNet-32 (`[5, 5, 5]` blocks), the structure evaluated in Tables 2 and 3.
pub fn resnet32_config(base_width: usize, num_classes: usize, image_size: usize) -> ModelConfig {
    resnet_cifar_config([5, 5, 5], base_width, 3, image_size, num_classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadra_core::{build_model, estimate_param_count, AutoBuilder, NeuronType};
    use quadra_nn::Layer;
    use quadra_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn resnet32_has_expected_structure() {
        let cfg = resnet32_config(16, 10, 32);
        // stem + 15 blocks of 2 convs = 31 convs; depth 32 counting the FC layer.
        assert_eq!(cfg.conv_layer_count(), 31);
        assert_eq!(cfg.residual_block_count(), 15);
        // The paper reports ~0.48M parameters for first-order ResNet-32 at width 16.
        let params = estimate_param_count(&cfg);
        assert!(params > 350_000 && params < 600_000, "params {}", params);
    }

    #[test]
    fn resnet20_builds_and_runs_at_tiny_width() {
        let cfg = resnet20_config(4, 10, 16);
        assert_eq!(cfg.conv_layer_count(), 19);
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = build_model(&cfg, &mut rng);
        let x = Tensor::randn(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
        let y = model.forward(&x, true);
        assert_eq!(y.shape(), &[2, 10]);
        let gin = model.backward(&Tensor::ones_like(&y));
        assert_eq!(gin.shape(), x.shape());
    }

    #[test]
    fn block_reduction_mimics_paper_5_5_5_to_2_2_2() {
        // The auto-builder's reduction step removes shape-preserving residual
        // blocks; going from [5,5,5] to roughly [2,2,2] means 31 -> 13 convs.
        let cfg = resnet_cifar_config([5, 5, 5], 4, 3, 16, 10);
        let builder = AutoBuilder::new(NeuronType::Ours);
        let reduced = builder.build(&cfg, 13, &[]);
        assert_eq!(reduced.conv_layer_count(), 13);
        assert!(reduced.is_quadratic());
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = build_model(&reduced, &mut rng);
        let y = model.forward(&Tensor::randn(&[1, 3, 16, 16], 0.0, 1.0, &mut rng), true);
        assert_eq!(y.shape(), &[1, 10]);
        assert!(estimate_param_count(&reduced) < estimate_param_count(&builder.convert(&cfg)));
    }

    #[test]
    fn custom_block_counts() {
        let cfg = resnet_cifar_config([1, 2, 1], 4, 3, 16, 5);
        assert_eq!(cfg.conv_layer_count(), 1 + 2 * (1 + 2 + 1));
        assert_eq!(cfg.residual_block_count(), 4);
    }

    #[test]
    #[should_panic]
    fn zero_blocks_rejected() {
        let _ = resnet_cifar_config([0, 1, 1], 4, 3, 16, 5);
    }
}
