//! Element-wise arithmetic (with broadcasting), scalar ops and common unary functions.

use crate::error::{Result, TensorError};
use crate::shape::{broadcast_shapes, broadcast_strides, numel, unravel_index};
use crate::tensor::Tensor;

impl Tensor {
    // ------------------------------------------------------------------
    // Broadcasting binary ops
    // ------------------------------------------------------------------

    /// Apply a binary op element-wise with NumPy-style broadcasting.
    pub fn broadcast_op(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        // Fast path: identical shapes.
        if self.shape() == other.shape() {
            return self.zip_map(other, f);
        }
        let out_shape = broadcast_shapes(self.shape(), other.shape())?;
        let ls = broadcast_strides(self.shape(), &out_shape);
        let rs = broadcast_strides(other.shape(), &out_shape);
        let n = numel(&out_shape);
        let a = self.as_slice();
        let b = other.as_slice();
        let mut data = Vec::with_capacity(n);
        // Iterate output coordinates; compute offsets through (possibly zero) strides.
        let mut coords = vec![0usize; out_shape.len()];
        let mut a_off = 0usize;
        let mut b_off = 0usize;
        for _ in 0..n {
            data.push(f(a[a_off], b[b_off]));
            // Increment coords odometer-style, updating offsets incrementally.
            for ax in (0..out_shape.len()).rev() {
                coords[ax] += 1;
                a_off += ls[ax];
                b_off += rs[ax];
                if coords[ax] < out_shape[ax] {
                    break;
                }
                a_off -= ls[ax] * out_shape[ax];
                b_off -= rs[ax] * out_shape[ax];
                coords[ax] = 0;
            }
        }
        Tensor::from_vec(data, &out_shape)
    }

    /// Element-wise addition with broadcasting.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.broadcast_op(other, |a, b| a + b)
    }

    /// Element-wise subtraction with broadcasting.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.broadcast_op(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product with broadcasting.
    ///
    /// This is the `∘` operator at the heart of the proposed quadratic neuron
    /// `f(X) = (Wa·X) ∘ (Wb·X) + Wc·X`.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.broadcast_op(other, |a, b| a * b)
    }

    /// Element-wise division with broadcasting.
    pub fn div(&self, other: &Tensor) -> Result<Tensor> {
        self.broadcast_op(other, |a, b| a / b)
    }

    /// In-place element-wise addition of a same-shaped tensor (no broadcasting).
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::IncompatibleShapes {
                op: "add_assign",
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += b;
        }
        Ok(())
    }

    /// In-place `self += alpha * other` (axpy), same shapes only.
    pub fn add_scaled_assign(&mut self, other: &Tensor, alpha: f32) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::IncompatibleShapes {
                op: "add_scaled_assign",
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Scalar ops
    // ------------------------------------------------------------------

    /// Add a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// Subtract a scalar from every element.
    pub fn sub_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x - s)
    }

    /// Multiply every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Divide every element by a scalar.
    pub fn div_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x / s)
    }

    /// Multiply every element by a scalar in place.
    pub fn scale_inplace(&mut self, s: f32) {
        self.map_inplace(|x| x * s);
    }

    // ------------------------------------------------------------------
    // Unary functions
    // ------------------------------------------------------------------

    /// Element-wise negation.
    pub fn neg(&self) -> Tensor {
        self.map(|x| -x)
    }

    /// Element-wise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Element-wise square.
    pub fn square(&self) -> Tensor {
        self.map(|x| x * x)
    }

    /// Element-wise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Element-wise natural exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Element-wise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Element-wise integer power.
    pub fn powi(&self, p: i32) -> Tensor {
        self.map(|x| x.powi(p))
    }

    /// Element-wise hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        self.map(|x| 1.0 / (1.0 + (-x).exp()))
    }

    /// Element-wise rectified linear unit `max(x, 0)`.
    pub fn relu(&self) -> Tensor {
        self.map(|x| x.max(0.0))
    }

    /// Element-wise leaky ReLU.
    pub fn leaky_relu(&self, slope: f32) -> Tensor {
        self.map(|x| if x >= 0.0 { x } else { slope * x })
    }

    /// Clamp every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Euclidean (L2) norm of the whole tensor.
    pub fn l2_norm(&self) -> f32 {
        self.as_slice().iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Sum of absolute values (L1 norm) of the whole tensor.
    pub fn l1_norm(&self) -> f32 {
        self.as_slice().iter().map(|x| x.abs()).sum::<f32>()
    }

    /// Broadcast `self` to `target` shape, materialising the repeated data.
    pub fn broadcast_to(&self, target: &[usize]) -> Result<Tensor> {
        let out_shape = broadcast_shapes(self.shape(), target)?;
        if out_shape != target {
            return Err(TensorError::BroadcastMismatch { lhs: self.shape().to_vec(), rhs: target.to_vec() });
        }
        let strides = broadcast_strides(self.shape(), target);
        let n = numel(target);
        let src = self.as_slice();
        let mut data = Vec::with_capacity(n);
        for flat in 0..n {
            let coords = unravel_index(flat, target);
            let off: usize = coords.iter().zip(strides.iter()).map(|(c, s)| c * s).sum();
            data.push(src[off]);
        }
        Tensor::from_vec(data, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn same_shape_arithmetic() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[4.0, 3.0, 2.0, 1.0], &[2, 2]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0; 4]);
        assert_eq!(a.sub(&b).unwrap().as_slice(), &[-3.0, -1.0, 1.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 6.0, 6.0, 4.0]);
        assert_eq!(a.div(&b).unwrap().as_slice(), &[0.25, 2.0 / 3.0, 1.5, 4.0]);
    }

    #[test]
    fn broadcasting_row_and_column() {
        let m = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let row = t(&[10.0, 20.0, 30.0], &[3]);
        let col = t(&[100.0, 200.0], &[2, 1]);
        assert_eq!(m.add(&row).unwrap().as_slice(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
        assert_eq!(m.add(&col).unwrap().as_slice(), &[101.0, 102.0, 103.0, 204.0, 205.0, 206.0]);
        // scalar tensor broadcast
        let s = Tensor::scalar(1.0);
        assert_eq!(m.add(&s).unwrap().as_slice(), &[2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn broadcasting_outer_product_shape() {
        let a = t(&[1.0, 2.0], &[2, 1]);
        let b = t(&[3.0, 4.0, 5.0], &[1, 3]);
        let c = a.mul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.as_slice(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn broadcast_mismatch_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 4]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn in_place_ops() {
        let mut a = t(&[1.0, 2.0], &[2]);
        a.add_assign(&t(&[3.0, 4.0], &[2])).unwrap();
        assert_eq!(a.as_slice(), &[4.0, 6.0]);
        a.add_scaled_assign(&t(&[1.0, 1.0], &[2]), 0.5).unwrap();
        assert_eq!(a.as_slice(), &[4.5, 6.5]);
        assert!(a.add_assign(&Tensor::zeros(&[3])).is_err());
        assert!(a.add_scaled_assign(&Tensor::zeros(&[3]), 1.0).is_err());
        a.scale_inplace(2.0);
        assert_eq!(a.as_slice(), &[9.0, 13.0]);
    }

    #[test]
    fn scalar_ops() {
        let a = t(&[1.0, -2.0], &[2]);
        assert_eq!(a.add_scalar(1.0).as_slice(), &[2.0, -1.0]);
        assert_eq!(a.sub_scalar(1.0).as_slice(), &[0.0, -3.0]);
        assert_eq!(a.mul_scalar(3.0).as_slice(), &[3.0, -6.0]);
        assert_eq!(a.div_scalar(2.0).as_slice(), &[0.5, -1.0]);
    }

    #[test]
    fn unary_functions() {
        let a = t(&[-1.0, 0.0, 4.0], &[3]);
        assert_eq!(a.neg().as_slice(), &[1.0, 0.0, -4.0]);
        assert_eq!(a.abs().as_slice(), &[1.0, 0.0, 4.0]);
        assert_eq!(a.square().as_slice(), &[1.0, 0.0, 16.0]);
        assert_eq!(a.relu().as_slice(), &[0.0, 0.0, 4.0]);
        assert_eq!(a.leaky_relu(0.1).as_slice(), &[-0.1, 0.0, 4.0]);
        assert_eq!(a.clamp(-0.5, 2.0).as_slice(), &[-0.5, 0.0, 2.0]);
        assert_eq!(a.abs().sqrt().as_slice(), &[1.0, 0.0, 2.0]);
        assert!((a.exp().as_slice()[2] - 4.0f32.exp()).abs() < 1e-4);
        assert!((t(&[std::f32::consts::E], &[1]).ln().as_slice()[0] - 1.0).abs() < 1e-6);
        assert_eq!(a.powi(2).as_slice(), &[1.0, 0.0, 16.0]);
        assert!((a.tanh().as_slice()[0] - (-1.0f32).tanh()).abs() < 1e-6);
        assert!((a.sigmoid().as_slice()[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn norms() {
        let a = t(&[3.0, -4.0], &[2]);
        assert!((a.l2_norm() - 5.0).abs() < 1e-6);
        assert!((a.l1_norm() - 7.0).abs() < 1e-6);
    }

    #[test]
    fn broadcast_to_materialises() {
        let a = t(&[1.0, 2.0], &[2, 1]);
        let b = a.broadcast_to(&[2, 3]).unwrap();
        assert_eq!(b.as_slice(), &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        assert!(a.broadcast_to(&[3, 3]).is_err());
        // broadcasting a [3] vector to [2,3]
        let v = t(&[1.0, 2.0, 3.0], &[3]);
        assert_eq!(v.broadcast_to(&[2, 3]).unwrap().as_slice(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }
}
