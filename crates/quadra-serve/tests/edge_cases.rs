//! Edge-case coverage for the dynamic batcher and worker pool: empty-queue
//! idling, oversized requests, shutdown with in-flight work, hot-reload
//! mid-stream, worker panics, and input validation.

use quadra_nn::{Layer, Linear, Relu, Sequential, StateDict};
use quadra_serve::{BatchPolicy, InferenceServer, ServeConfig, ServeError};
use quadra_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn mlp(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    Sequential::new(vec![
        Box::new(Linear::new(4, 8, true, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Linear::new(8, 3, true, &mut rng)),
    ])
}

fn mlp_server(config: ServeConfig, seed: u64) -> InferenceServer {
    InferenceServer::start(config, move || Box::new(mlp(seed))).unwrap()
}

#[test]
fn idle_queue_blocks_then_serves() {
    let config = ServeConfig {
        workers: 1,
        policy: BatchPolicy {
            max_batch_size: 8,
            max_wait: Duration::from_millis(1),
            ..BatchPolicy::default()
        },
        ..ServeConfig::default()
    };
    let server = mlp_server(config, 0);
    let client = server.client();
    // Let the batcher sit on an empty queue well past max_wait: nothing may
    // fire, spin, or wedge while there are no requests.
    std::thread::sleep(Duration::from_millis(30));
    let response = client.infer(Tensor::ones(&[1, 4])).unwrap();
    assert_eq!(response.output.shape(), &[1, 3]);
    assert_eq!(response.batch_samples, 1);
    let metrics = server.shutdown();
    assert_eq!(metrics.completed_requests, 1);
    assert_eq!(metrics.batches, 1);
    assert_eq!(metrics.batch_occupancy[0], 1);
}

#[test]
fn oversized_request_forms_its_own_batch() {
    let config = ServeConfig {
        workers: 1,
        policy: BatchPolicy {
            max_batch_size: 4,
            max_wait: Duration::from_millis(1),
            ..BatchPolicy::default()
        },
        ..ServeConfig::default()
    };
    let server = mlp_server(config, 0);
    let client = server.client();
    let response = client.infer(Tensor::ones(&[10, 4])).unwrap();
    assert_eq!(response.output.shape(), &[10, 3]);
    assert_eq!(response.batch_samples, 10);
    let metrics = server.shutdown();
    assert_eq!(metrics.completed_samples, 10);
    // The oversized batch lands in the histogram's last bucket.
    assert_eq!(metrics.batch_occupancy, vec![0, 0, 0, 1]);
}

/// An identity layer slow enough that requests pile up behind it.
struct SlowIdentity;

impl Layer for SlowIdentity {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        std::thread::sleep(Duration::from_millis(20));
        x.clone()
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone()
    }

    fn layer_type(&self) -> &'static str {
        "slow_identity"
    }
}

#[test]
fn shutdown_answers_in_flight_requests() {
    let config = ServeConfig {
        workers: 1,
        policy: BatchPolicy {
            max_batch_size: 2,
            max_wait: Duration::from_millis(1),
            ..BatchPolicy::default()
        },
        ..ServeConfig::default()
    };
    let server = InferenceServer::start(config, || Box::new(SlowIdentity)).unwrap();
    let client = server.client();
    let pending: Vec<_> = (0..6).map(|i| client.submit(Tensor::full(&[1, 2], i as f32)).unwrap()).collect();
    // Shut down while most of those requests still sit in the queue; every
    // one must still be answered before the threads exit.
    let metrics = server.shutdown();
    assert_eq!(metrics.completed_requests, 6);
    for (i, p) in pending.into_iter().enumerate() {
        let response = p.wait().unwrap();
        assert_eq!(response.output.as_slice(), &[i as f32; 2]);
    }
    // The queue is gone: new submissions fail fast instead of hanging.
    assert_eq!(client.submit(Tensor::ones(&[1, 2])).unwrap_err(), ServeError::ShuttingDown);
}

#[test]
fn hot_reload_mid_stream_switches_versions() {
    let config = ServeConfig {
        workers: 2,
        policy: BatchPolicy {
            max_batch_size: 4,
            max_wait: Duration::from_millis(1),
            ..BatchPolicy::default()
        },
        ..ServeConfig::default()
    };
    let server = mlp_server(config, 0);
    let client = server.client();
    let x = Tensor::linspace(-1.0, 1.0, 4).reshape(&[1, 4]).unwrap();

    let before = client.infer(x.clone()).unwrap();
    assert_eq!(before.model_version, 0);
    assert_eq!(before.output.as_slice(), mlp(0).forward(&x, false).as_slice());

    // Reload with a differently-seeded model's checkpoint mid-stream.
    let mut retrained = mlp(1);
    let version = server.reload(StateDict::from_layer(&retrained)).unwrap();
    assert_eq!(version, 1);
    assert_eq!(server.version(), 1);

    let after = client.infer(x.clone()).unwrap();
    assert_eq!(after.model_version, 1, "post-reload responses must carry the new version");
    assert_eq!(after.output.as_slice(), retrained.forward(&x, false).as_slice());
    assert_ne!(before.output.as_slice(), after.output.as_slice());

    let metrics = server.shutdown();
    assert_eq!(metrics.reloads, 1);
    assert_eq!(metrics.model_version, 1);
}

#[test]
fn incompatible_reload_is_rejected_and_serving_continues() {
    let server = mlp_server(ServeConfig::default(), 0);
    let client = server.client();
    let mut rng = StdRng::seed_from_u64(9);
    let wrong = Sequential::new(vec![Box::new(Linear::new(5, 3, true, &mut rng)) as Box<dyn Layer>]);
    let err = server.reload(StateDict::from_layer(&wrong)).unwrap_err();
    assert!(matches!(err, ServeError::InvalidState(_)), "{:?}", err);
    assert_eq!(server.version(), 0, "failed reload must not bump the version");
    let response = client.infer(Tensor::ones(&[1, 4])).unwrap();
    assert_eq!(response.model_version, 0);
}

#[test]
fn worker_panic_reports_error_and_pool_recovers() {
    let config = ServeConfig {
        workers: 1,
        policy: BatchPolicy {
            max_batch_size: 2,
            max_wait: Duration::from_millis(1),
            ..BatchPolicy::default()
        },
        ..ServeConfig::default()
    };
    let server = mlp_server(config, 0);
    let client = server.client();
    // 5 features into a 4-feature Linear: the layer asserts, the worker
    // catches the unwind, reports it, rebuilds its replica, and keeps going.
    let err = client.infer(Tensor::ones(&[1, 5])).unwrap_err();
    assert!(matches!(err, ServeError::WorkerFailed(_)), "{:?}", err);
    let response = client.infer(Tensor::ones(&[1, 4])).unwrap();
    assert_eq!(response.output.shape(), &[1, 3]);
    let metrics = server.shutdown();
    assert_eq!(metrics.errored_requests, 1);
    assert_eq!(metrics.completed_requests, 1);
}

#[test]
fn invalid_inputs_are_rejected_before_queueing() {
    let server = mlp_server(ServeConfig::default(), 0);
    let client = server.client();
    assert!(matches!(client.submit(Tensor::from_slice(&[1.0, 2.0])), Err(ServeError::BadInput(_))));
    assert!(matches!(client.submit(Tensor::zeros(&[0, 4])), Err(ServeError::BadInput(_))));
    // A config without workers is refused outright.
    let bad = ServeConfig { workers: 0, ..ServeConfig::default() };
    assert!(InferenceServer::start(bad, || Box::new(mlp(0))).is_err());
}

#[test]
fn requests_coalesce_into_shared_batches() {
    // One worker + slow model: concurrent clients land in the same batch.
    let config = ServeConfig {
        workers: 1,
        policy: BatchPolicy {
            max_batch_size: 8,
            max_wait: Duration::from_millis(50),
            ..BatchPolicy::default()
        },
        ..ServeConfig::default()
    };
    let server = InferenceServer::start(config, || {
        Box::new(Sequential::new(vec![Box::new(SlowIdentity) as Box<dyn Layer>]))
    })
    .unwrap();
    let client = server.client();
    // First request occupies the worker; the next four arrive while it runs
    // and must ride one coalesced batch.
    let warmup = client.submit(Tensor::ones(&[1, 2])).unwrap();
    std::thread::sleep(Duration::from_millis(5));
    let pending: Vec<_> = (0..4).map(|_| client.submit(Tensor::ones(&[1, 2])).unwrap()).collect();
    let _ = warmup.wait().unwrap();
    let batch_sizes: Vec<usize> = pending.into_iter().map(|p| p.wait().unwrap().batch_samples).collect();
    assert!(batch_sizes.iter().any(|&b| b > 1), "expected coalescing, saw batch sizes {:?}", batch_sizes);
    let _ = server.shutdown();
}

fn identity_server(policy: BatchPolicy) -> InferenceServer {
    InferenceServer::start(ServeConfig { workers: 1, policy, ..ServeConfig::default() }, || {
        Box::new(Sequential::new(vec![Box::new(SlowIdentity) as Box<dyn Layer>]))
    })
    .unwrap()
}

#[test]
fn mixed_spatial_sizes_pad_only_when_opted_in() {
    // GlobalAvgPool-free identity over NCHW: padding is visible in the output.
    let server = identity_server(BatchPolicy {
        max_batch_size: 4,
        max_wait: Duration::from_millis(50),
        pad_mixed_spatial: true,
        ..BatchPolicy::default()
    });
    let client = server.client();
    let warmup = client.submit(Tensor::ones(&[1, 1, 1, 1])).unwrap();
    std::thread::sleep(Duration::from_millis(5));
    let small = client.submit(Tensor::full(&[1, 1, 1, 2], 2.0)).unwrap();
    let large = client.submit(Tensor::full(&[1, 1, 2, 2], 3.0)).unwrap();
    let _ = warmup.wait().unwrap();
    let small = small.wait().unwrap();
    let large = large.wait().unwrap();
    if small.batch_samples == 2 {
        // Coalesced: the smaller sample was zero-padded to 2×2.
        assert_eq!(small.output.shape(), &[1, 1, 2, 2]);
        assert_eq!(small.output.as_slice(), &[2.0, 2.0, 0.0, 0.0]);
    } else {
        // Scheduling did not coalesce them (timing); both must still be served.
        assert_eq!(small.output.shape()[0], 1);
    }
    assert_eq!(large.output.as_slice(), &[3.0; 4]);
    let _ = server.shutdown();
}

#[test]
fn mixed_spatial_sizes_never_share_a_batch_by_default() {
    // Without the opt-in, a request's prediction must not depend on what it
    // rides with: mixed sizes form separate batches and nothing is padded.
    let server = identity_server(BatchPolicy {
        max_batch_size: 4,
        max_wait: Duration::from_millis(50),
        pad_mixed_spatial: false,
        ..BatchPolicy::default()
    });
    let client = server.client();
    let warmup = client.submit(Tensor::ones(&[1, 1, 1, 1])).unwrap();
    std::thread::sleep(Duration::from_millis(5));
    let small = client.submit(Tensor::full(&[1, 1, 1, 2], 2.0)).unwrap();
    let large = client.submit(Tensor::full(&[1, 1, 2, 2], 3.0)).unwrap();
    let _ = warmup.wait().unwrap();
    let small = small.wait().unwrap();
    let large = large.wait().unwrap();
    assert_eq!(small.batch_samples, 1, "mixed sizes must not coalesce by default");
    assert_eq!(small.output.shape(), &[1, 1, 1, 2]);
    assert_eq!(small.output.as_slice(), &[2.0, 2.0]);
    assert_eq!(large.batch_samples, 1);
    assert_eq!(large.output.as_slice(), &[3.0; 4]);
    let _ = server.shutdown();
}
