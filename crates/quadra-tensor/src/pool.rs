//! Max / average pooling over NCHW tensors, with the index bookkeeping needed
//! for exact backward passes.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

/// Configuration of a 2-D pooling operation: square window and stride.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolParams {
    /// Side length of the pooling window.
    pub kernel: usize,
    /// Stride between windows (defaults to `kernel` for non-overlapping pooling).
    pub stride: usize,
}

impl PoolParams {
    /// Non-overlapping pooling with window `kernel`.
    pub fn new(kernel: usize) -> Self {
        PoolParams { kernel, stride: kernel }
    }

    /// Pooling with an explicit stride.
    pub fn with_stride(kernel: usize, stride: usize) -> Self {
        PoolParams { kernel, stride }
    }

    /// Output spatial extent given the input extent.
    pub fn out_size(&self, in_size: usize) -> usize {
        if in_size < self.kernel {
            0
        } else {
            (in_size - self.kernel) / self.stride + 1
        }
    }

    fn validate(&self, h: usize, w: usize) -> Result<()> {
        if self.kernel == 0 || self.stride == 0 {
            return Err(TensorError::InvalidConvConfig { msg: "pool kernel/stride must be >= 1".into() });
        }
        if h < self.kernel || w < self.kernel {
            return Err(TensorError::InvalidConvConfig {
                msg: format!("pool window {} larger than input {}x{}", self.kernel, h, w),
            });
        }
        Ok(())
    }
}

/// Flat argmax indices recorded by [`Tensor::maxpool2d`], needed by its backward pass.
#[derive(Debug, Clone)]
pub struct PoolIndices {
    /// For each output element (row-major over `[n, c, oh, ow]`), the flat index
    /// into the input tensor where the maximum was found.
    pub argmax: Vec<usize>,
    /// Shape of the input the pooling was applied to.
    pub input_shape: Vec<usize>,
}

impl Tensor {
    /// Max pooling over an NCHW tensor. Returns the pooled tensor and the argmax
    /// indices needed for the backward pass.
    pub fn maxpool2d(&self, params: PoolParams) -> Result<(Tensor, PoolIndices)> {
        if self.ndim() != 4 {
            return Err(TensorError::RankMismatch { op: "maxpool2d", expected: 4, actual: self.ndim() });
        }
        let (n, c, h, w) = (self.shape()[0], self.shape()[1], self.shape()[2], self.shape()[3]);
        params.validate(h, w)?;
        let oh = params.out_size(h);
        let ow = params.out_size(w);
        let src = self.as_slice();
        let mut out = vec![f32::NEG_INFINITY; n * c * oh * ow];
        let mut argmax = vec![0usize; n * c * oh * ow];
        for ni in 0..n {
            for ci in 0..c {
                let img_base = (ni * c + ci) * h * w;
                for ohi in 0..oh {
                    for owi in 0..ow {
                        let out_idx = ((ni * c + ci) * oh + ohi) * ow + owi;
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for ki in 0..params.kernel {
                            for kj in 0..params.kernel {
                                let ih = ohi * params.stride + ki;
                                let iw = owi * params.stride + kj;
                                let idx = img_base + ih * w + iw;
                                if src[idx] > best {
                                    best = src[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        out[out_idx] = best;
                        argmax[out_idx] = best_idx;
                    }
                }
            }
        }
        Ok((
            Tensor::from_vec(out, &[n, c, oh, ow])?,
            PoolIndices { argmax, input_shape: self.shape().to_vec() },
        ))
    }

    /// Backward pass of max pooling: routes each output gradient to the input
    /// element that produced the maximum.
    pub fn maxpool2d_backward(grad_out: &Tensor, indices: &PoolIndices) -> Result<Tensor> {
        if grad_out.numel() != indices.argmax.len() {
            return Err(TensorError::InvalidArgument {
                msg: format!(
                    "grad_out has {} elements but {} pooling indices were recorded",
                    grad_out.numel(),
                    indices.argmax.len()
                ),
            });
        }
        let mut grad_in = Tensor::zeros(&indices.input_shape);
        let g = grad_out.as_slice();
        let dst = grad_in.as_mut_slice();
        for (out_idx, &in_idx) in indices.argmax.iter().enumerate() {
            dst[in_idx] += g[out_idx];
        }
        Ok(grad_in)
    }

    /// Average pooling over an NCHW tensor.
    pub fn avgpool2d(&self, params: PoolParams) -> Result<Tensor> {
        if self.ndim() != 4 {
            return Err(TensorError::RankMismatch { op: "avgpool2d", expected: 4, actual: self.ndim() });
        }
        let (n, c, h, w) = (self.shape()[0], self.shape()[1], self.shape()[2], self.shape()[3]);
        params.validate(h, w)?;
        let oh = params.out_size(h);
        let ow = params.out_size(w);
        let norm = (params.kernel * params.kernel) as f32;
        let src = self.as_slice();
        let mut out = vec![0.0f32; n * c * oh * ow];
        for ni in 0..n {
            for ci in 0..c {
                let img_base = (ni * c + ci) * h * w;
                for ohi in 0..oh {
                    for owi in 0..ow {
                        let mut s = 0.0;
                        for ki in 0..params.kernel {
                            for kj in 0..params.kernel {
                                s +=
                                    src[img_base + (ohi * params.stride + ki) * w + owi * params.stride + kj];
                            }
                        }
                        out[((ni * c + ci) * oh + ohi) * ow + owi] = s / norm;
                    }
                }
            }
        }
        Tensor::from_vec(out, &[n, c, oh, ow])
    }

    /// Backward pass of average pooling given the original input shape.
    pub fn avgpool2d_backward(
        grad_out: &Tensor,
        input_shape: &[usize],
        params: PoolParams,
    ) -> Result<Tensor> {
        if input_shape.len() != 4 || grad_out.ndim() != 4 {
            return Err(TensorError::InvalidArgument {
                msg: "avgpool2d_backward expects NCHW shapes".into(),
            });
        }
        let (n, c, h, w) = (input_shape[0], input_shape[1], input_shape[2], input_shape[3]);
        params.validate(h, w)?;
        let oh = params.out_size(h);
        let ow = params.out_size(w);
        if grad_out.shape() != [n, c, oh, ow] {
            return Err(TensorError::IncompatibleShapes {
                op: "avgpool2d_backward",
                lhs: grad_out.shape().to_vec(),
                rhs: vec![n, c, oh, ow],
            });
        }
        let norm = (params.kernel * params.kernel) as f32;
        let g = grad_out.as_slice();
        let mut grad_in = Tensor::zeros(input_shape);
        let dst = grad_in.as_mut_slice();
        for ni in 0..n {
            for ci in 0..c {
                let img_base = (ni * c + ci) * h * w;
                for ohi in 0..oh {
                    for owi in 0..ow {
                        let gval = g[((ni * c + ci) * oh + ohi) * ow + owi] / norm;
                        for ki in 0..params.kernel {
                            for kj in 0..params.kernel {
                                dst[img_base + (ohi * params.stride + ki) * w + owi * params.stride + kj] +=
                                    gval;
                            }
                        }
                    }
                }
            }
        }
        Ok(grad_in)
    }

    /// Global average pooling: `[n, c, h, w] -> [n, c]`.
    pub fn global_avg_pool(&self) -> Result<Tensor> {
        if self.ndim() != 4 {
            return Err(TensorError::RankMismatch {
                op: "global_avg_pool",
                expected: 4,
                actual: self.ndim(),
            });
        }
        let (n, c, h, w) = (self.shape()[0], self.shape()[1], self.shape()[2], self.shape()[3]);
        let hw = (h * w) as f32;
        let src = self.as_slice();
        let mut out = vec![0.0f32; n * c];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                out[ni * c + ci] = src[base..base + h * w].iter().sum::<f32>() / hw;
            }
        }
        Tensor::from_vec(out, &[n, c])
    }

    /// Backward pass of [`Tensor::global_avg_pool`].
    pub fn global_avg_pool_backward(grad_out: &Tensor, input_shape: &[usize]) -> Result<Tensor> {
        if input_shape.len() != 4 || grad_out.ndim() != 2 {
            return Err(TensorError::InvalidArgument {
                msg: "global_avg_pool_backward shape mismatch".into(),
            });
        }
        let (n, c, h, w) = (input_shape[0], input_shape[1], input_shape[2], input_shape[3]);
        if grad_out.shape() != [n, c] {
            return Err(TensorError::IncompatibleShapes {
                op: "global_avg_pool_backward",
                lhs: grad_out.shape().to_vec(),
                rhs: vec![n, c],
            });
        }
        let hw = (h * w) as f32;
        let g = grad_out.as_slice();
        let mut grad_in = Tensor::zeros(input_shape);
        let dst = grad_in.as_mut_slice();
        for ni in 0..n {
            for ci in 0..c {
                let val = g[ni * c + ci] / hw;
                let base = (ni * c + ci) * h * w;
                for v in dst[base..base + h * w].iter_mut() {
                    *v = val;
                }
            }
        }
        Ok(grad_in)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn maxpool_known_values() {
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let (y, idx) = x.maxpool2d(PoolParams::new(2)).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
        assert_eq!(idx.argmax, vec![5, 7, 13, 15]);
    }

    #[test]
    fn maxpool_backward_routes_gradient() {
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let (y, idx) = x.maxpool2d(PoolParams::new(2)).unwrap();
        let grad = Tensor::ones_like(&y);
        let gin = Tensor::maxpool2d_backward(&grad, &idx).unwrap();
        assert_eq!(gin.shape(), x.shape());
        assert_eq!(gin.sum(), 4.0);
        assert_eq!(gin.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(gin.at(&[0, 0, 0, 0]), 0.0);
        assert!(Tensor::maxpool2d_backward(&Tensor::zeros(&[9]), &idx).is_err());
    }

    #[test]
    fn maxpool_overlapping_stride() {
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let (y, _) = x.maxpool2d(PoolParams::with_stride(2, 1)).unwrap();
        assert_eq!(y.shape(), &[1, 1, 3, 3]);
        assert_eq!(y.at(&[0, 0, 0, 0]), 5.0);
        assert_eq!(y.at(&[0, 0, 2, 2]), 15.0);
    }

    #[test]
    fn avgpool_values_and_backward() {
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let y = x.avgpool2d(PoolParams::new(2)).unwrap();
        assert_eq!(y.as_slice(), &[2.5, 4.5, 10.5, 12.5]);
        let gin = Tensor::avgpool2d_backward(&Tensor::ones_like(&y), x.shape(), PoolParams::new(2)).unwrap();
        assert_eq!(gin.shape(), x.shape());
        assert!((gin.sum() - 4.0).abs() < 1e-6);
        assert!((gin.at(&[0, 0, 0, 0]) - 0.25).abs() < 1e-6);
        assert!(
            Tensor::avgpool2d_backward(&Tensor::zeros(&[1, 1, 3, 3]), x.shape(), PoolParams::new(2)).is_err()
        );
    }

    #[test]
    fn avgpool_backward_is_adjoint() {
        // <avgpool(x), y> == <x, avgpool_backward(y)>
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::randn(&[2, 3, 6, 6], 0.0, 1.0, &mut rng);
        let p = PoolParams::new(2);
        let y = Tensor::randn(&[2, 3, 3, 3], 0.0, 1.0, &mut rng);
        let lhs: f32 = x.avgpool2d(p).unwrap().as_slice().iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();
        let back = Tensor::avgpool2d_backward(&y, x.shape(), p).unwrap();
        let rhs: f32 = x.as_slice().iter().zip(back.as_slice()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3);
    }

    #[test]
    fn global_avg_pool_and_backward() {
        let x = Tensor::from_vec((0..8).map(|i| i as f32).collect(), &[1, 2, 2, 2]).unwrap();
        let y = x.global_avg_pool().unwrap();
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.as_slice(), &[1.5, 5.5]);
        let gin = Tensor::global_avg_pool_backward(&Tensor::ones_like(&y), x.shape()).unwrap();
        assert!((gin.sum() - 2.0).abs() < 1e-6);
        assert!((gin.at(&[0, 1, 0, 0]) - 0.25).abs() < 1e-6);
        assert!(Tensor::global_avg_pool_backward(&Tensor::zeros(&[1, 3]), x.shape()).is_err());
        assert!(Tensor::global_avg_pool_backward(&y, &[1, 2, 2]).is_err());
        assert!(Tensor::zeros(&[2, 2]).global_avg_pool().is_err());
    }

    #[test]
    fn pool_param_validation() {
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        assert!(x.maxpool2d(PoolParams::new(3)).is_err());
        assert!(x.maxpool2d(PoolParams::new(0)).is_err());
        assert!(x.avgpool2d(PoolParams::new(3)).is_err());
        assert!(Tensor::zeros(&[2, 2]).maxpool2d(PoolParams::new(2)).is_err());
        assert!(Tensor::zeros(&[2, 2]).avgpool2d(PoolParams::new(2)).is_err());
        assert_eq!(PoolParams::new(2).out_size(1), 0);
    }
}
