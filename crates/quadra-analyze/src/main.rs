//! CLI entry point: `cargo run -p quadra-analyze -- [--deny] [--root DIR]
//! [--report PATH]`.
//!
//! Prints the human diff-style report to stdout, writes the machine-readable
//! `ANALYZE_report.json` at the workspace root (or `--report PATH`), and with
//! `--deny` exits non-zero when any unsuppressed finding remains — the mode
//! CI runs as a blocking gate.

use quadra_analyze::{analyze_root, AnalyzeConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut root: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--report" => report_path = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: quadra-analyze [--deny] [--root DIR] [--report PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("quadra-analyze: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("quadra-analyze: could not locate the workspace root (no Cargo.toml with [workspace] above the current directory); pass --root");
            return ExitCode::from(2);
        }
    };
    let cfg = AnalyzeConfig::workspace();
    let report = match analyze_root(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("quadra-analyze: failed to read sources under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    print!("{}", report.human());
    let out = report_path.unwrap_or_else(|| root.join("ANALYZE_report.json"));
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("quadra-analyze: failed to write {}: {e}", out.display());
        return ExitCode::from(2);
    }
    println!("report written to {}", out.display());
    if deny && report.unsuppressed_count() > 0 {
        eprintln!("quadra-analyze: denying: {} unsuppressed finding(s)", report.unsuppressed_count());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Walk up from the current directory to the first `Cargo.toml` declaring
/// `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
