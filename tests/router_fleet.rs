//! Acceptance surface of the routing engine: a router serving two real
//! architectures (MobileNetV1 + ResNet-20) concurrently must return
//! bitwise-identical outputs to direct per-model forward calls, and
//! hot-reloading one endpoint must not disturb the other.
//!
//! Follows the repo convention: a shrunk default test plus the full-length
//! variant behind `#[ignore]` for the non-blocking CI job.

use quadralib::core::{build_model, ModelConfig};
use quadralib::models::{mobilenet_v1_config, resnet20_config};
use quadralib::nn::{Layer, StateDict};
use quadralib::serve::{BatchPolicy, Priority, Router, ServeConfig, ServeError};
use quadralib::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn fleet_configs(image: usize) -> Vec<(&'static str, ModelConfig, u64)> {
    vec![
        ("mobilenet", mobilenet_v1_config(2, 0.25, 3, image, 4), 11),
        ("resnet", resnet20_config(4, 4, image), 22),
    ]
}

fn router_fleet(image: usize, n_serve: usize) {
    let specs = fleet_configs(image);
    let mut builder = Router::builder();
    for (name, config, seed) in &specs {
        let (config, seed) = (config.clone(), *seed);
        builder = builder.endpoint(
            name,
            ServeConfig {
                workers: 2,
                policy: BatchPolicy {
                    max_batch_size: 4,
                    max_wait: Duration::from_millis(2),
                    ..BatchPolicy::default()
                },
                ..ServeConfig::default()
            },
            move || Box::new(build_model(&config, &mut StdRng::seed_from_u64(seed))),
        );
    }
    let router = builder.start().unwrap();
    assert_eq!(router.models(), vec!["mobilenet".to_string(), "resnet".to_string()]);

    // Ground truth: direct forwards of identically seeded models.
    let mut rng = StdRng::seed_from_u64(5);
    let inputs: Vec<Tensor> =
        (0..n_serve).map(|_| Tensor::randn(&[1, 3, image, image], 0.0, 1.0, &mut rng)).collect();
    let mut expected: Vec<Vec<Tensor>> = Vec::new();
    for (_, config, seed) in &specs {
        let mut model = build_model(config, &mut StdRng::seed_from_u64(*seed));
        expected.push(inputs.iter().map(|x| model.forward(x, false)).collect());
    }

    // 1. Both architectures served concurrently from multiple client threads:
    //    bitwise-identical to the direct forwards, under mixed priorities.
    let handles: Vec<_> = specs
        .iter()
        .enumerate()
        .flat_map(|(mi, (name, _, _))| (0..2).map(move |t| (mi, *name, t)))
        .map(|(mi, name, t)| {
            let client = router.client();
            let inputs = inputs.clone();
            let expected: Vec<Tensor> = expected[mi].clone();
            std::thread::spawn(move || {
                let priority = if t == 0 { Priority::Interactive } else { Priority::Batch };
                for (i, x) in inputs.iter().enumerate() {
                    let response = client.submit(name, x.clone(), priority).unwrap().wait().unwrap();
                    assert_eq!(response.model, name);
                    assert_eq!(response.model_version, 0);
                    assert_eq!(
                        response.output.as_slice(),
                        expected[i].as_slice(),
                        "served {name} prediction {i} diverged from direct forward"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // 2. Hot-reload ONE endpoint (differently seeded MobileNet weights): its
    //    outputs must switch bitwise, the other endpoint must be untouched.
    let retrained_config = specs[0].1.clone();
    let mut retrained = build_model(&retrained_config, &mut StdRng::seed_from_u64(77));
    let version = router.reload("mobilenet", StateDict::from_layer(&retrained)).unwrap();
    assert_eq!(version, 1);
    assert_eq!(router.version("mobilenet").unwrap(), 1);
    assert_eq!(router.version("resnet").unwrap(), 0, "reload of one endpoint must not touch another");
    assert!(matches!(
        router.reload("missing", StateDict::from_layer(&retrained)),
        Err(ServeError::UnknownModel(_))
    ));

    let client = router.client();
    for (i, x) in inputs.iter().enumerate() {
        let mobile = client.infer("mobilenet", x.clone()).unwrap();
        assert_eq!(mobile.model_version, 1);
        let fresh = retrained.forward(x, false);
        assert_eq!(mobile.output.as_slice(), fresh.as_slice(), "reloaded mobilenet output {i}");
        assert_ne!(
            mobile.output.as_slice(),
            expected[0][i].as_slice(),
            "reload must actually change the served weights"
        );
        let res = client.infer("resnet", x.clone()).unwrap();
        assert_eq!(res.model_version, 0);
        assert_eq!(
            res.output.as_slice(),
            expected[1][i].as_slice(),
            "resnet output {i} disturbed by the mobilenet reload"
        );
    }

    // 3. Per-model metrics: each endpoint accounted separately.
    let metrics = router.shutdown();
    let mobile = metrics.get("mobilenet").unwrap();
    let resnet = metrics.get("resnet").unwrap();
    assert_eq!(mobile.completed_requests as usize, 2 * n_serve + n_serve);
    assert_eq!(resnet.completed_requests as usize, 2 * n_serve + n_serve);
    assert_eq!(mobile.reloads, 1);
    assert_eq!(resnet.reloads, 0);
    assert_eq!(mobile.model_version, 1);
    assert_eq!(resnet.model_version, 0);
    assert_eq!(mobile.errored_requests + resnet.errored_requests, 0);
    assert!(mobile.completed_batch_class >= 1, "mixed priorities exercised");
    assert!(mobile.peak_batch_activation_bytes > 0, "per-model memory attribution present");
    assert!(resnet.peak_batch_activation_bytes > 0);
    assert_eq!(metrics.total_completed_requests(), mobile.completed_requests + resnet.completed_requests);
}

#[test]
fn router_serves_two_architectures_bitwise_and_reloads_independently() {
    router_fleet(8, 6);
}

#[test]
#[ignore = "full-length variant of router_serves_two_architectures_bitwise_and_reloads_independently"]
fn router_serves_two_architectures_bitwise_and_reloads_independently_full() {
    router_fleet(16, 24);
}
