//! Memory profiling and hybrid back-propagation: measure the training-memory
//! footprint of a quadratic model, let the QuadraticOptimizer decide whether
//! hybrid BP is needed for a given budget, and print the per-iteration memory
//! timeline.
//!
//! Run with `cargo run --example memory_profiling --release`.

use quadralib::core::{build_model, LayerSpec, MemoryProfiler, ModelConfig, NeuronType, QuadraticOptimizer};
use quadralib::nn::{Sgd, SgdConfig};
use quadralib::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = ModelConfig::new(
        "profiled-qdnn",
        3,
        16,
        10,
        vec![
            LayerSpec::qconv3x3(NeuronType::Ours, 16),
            LayerSpec::MaxPool { kernel: 2 },
            LayerSpec::qconv3x3(NeuronType::Ours, 32),
            LayerSpec::GlobalAvgPool,
            LayerSpec::Linear { out_features: 10, relu: false },
        ],
    );
    let mut rng = StdRng::seed_from_u64(0);
    let mut model = build_model(&cfg, &mut rng);
    let input = Tensor::randn(&[16, 3, 16, 16], 0.0, 1.0, &mut rng);

    // Raw profiling.
    let profiler = MemoryProfiler::new();
    let (report, timeline) = profiler.profile_step(&mut model, &input, 0);
    println!(
        "default-BP training step: {:.2} MiB total, peak activations {:.2} MiB",
        report.total_mib(),
        report.peak_activation_bytes as f64 / (1024.0 * 1024.0)
    );
    println!("\nper-layer memory timeline:\n{}", timeline.render_ascii(36));

    // Let the quadratic optimizer pick a mode for a tight budget.
    let budget = report.total_bytes() / 2; // pretend the device has half the needed memory
    let opt = QuadraticOptimizer::new(Sgd::new(SgdConfig::default()), budget);
    let decision = opt.configure_memory(&mut model, &input);
    println!(
        "budget {:.2} MiB -> chose {} (activation saving {:.1}%)",
        budget as f64 / (1024.0 * 1024.0),
        decision.chosen_mode,
        decision.activation_saving() * 100.0
    );
}
