//! Loss functions. Each returns the scalar loss value and the gradient with
//! respect to the predictions, ready to feed into `Layer::backward`.

use quadra_tensor::Tensor;

/// Interface of a loss function over a batch of predictions and targets.
pub trait Loss {
    /// Compute `(loss, d loss / d predictions)`.
    fn compute(&self, predictions: &Tensor, targets: &Tensor) -> (f32, Tensor);

    /// Short name used in training logs.
    fn name(&self) -> &'static str;
}

/// Softmax cross-entropy over logits, with integer class targets.
///
/// `predictions` is `[batch, classes]`, `targets` is `[batch]` holding class
/// indices stored as `f32`.
#[derive(Default, Debug, Clone, Copy)]
pub struct CrossEntropyLoss;

impl CrossEntropyLoss {
    /// Create the loss.
    pub fn new() -> Self {
        CrossEntropyLoss
    }
}

impl Loss for CrossEntropyLoss {
    fn compute(&self, predictions: &Tensor, targets: &Tensor) -> (f32, Tensor) {
        assert_eq!(predictions.ndim(), 2, "cross-entropy expects [batch, classes] logits");
        let n = predictions.shape()[0];
        let c = predictions.shape()[1];
        assert_eq!(targets.numel(), n, "one target per sample");
        let log_probs = predictions.log_softmax_last_axis();
        // Derive the probabilities from the same log-softmax pass instead of
        // running a second softmax: one traversal, and the gradient stays
        // exactly consistent with the loss for extreme logits.
        let mut loss = 0.0f32;
        let mut grad = log_probs.exp();
        let t = targets.as_slice();
        let lp = log_probs.as_slice();
        let g = grad.as_mut_slice();
        for i in 0..n {
            let label = t[i] as usize;
            assert!(label < c, "target {} out of range for {} classes", label, c);
            loss -= lp[i * c + label];
            g[i * c + label] -= 1.0;
        }
        let scale = 1.0 / n.max(1) as f32;
        (loss * scale, grad.mul_scalar(scale))
    }

    fn name(&self) -> &'static str {
        "cross_entropy"
    }
}

/// Mean squared error.
#[derive(Default, Debug, Clone, Copy)]
pub struct MseLoss;

impl MseLoss {
    /// Create the loss.
    pub fn new() -> Self {
        MseLoss
    }
}

impl Loss for MseLoss {
    fn compute(&self, predictions: &Tensor, targets: &Tensor) -> (f32, Tensor) {
        assert_eq!(predictions.shape(), targets.shape(), "MSE shapes must match");
        let diff = predictions.sub(targets).expect("same shape");
        let n = predictions.numel().max(1) as f32;
        let loss = diff.square().sum() / n;
        let grad = diff.mul_scalar(2.0 / n);
        (loss, grad)
    }

    fn name(&self) -> &'static str {
        "mse"
    }
}

/// Binary cross-entropy on logits (numerically stable formulation).
#[derive(Default, Debug, Clone, Copy)]
pub struct BceWithLogitsLoss;

impl BceWithLogitsLoss {
    /// Create the loss.
    pub fn new() -> Self {
        BceWithLogitsLoss
    }
}

impl Loss for BceWithLogitsLoss {
    fn compute(&self, predictions: &Tensor, targets: &Tensor) -> (f32, Tensor) {
        assert_eq!(predictions.shape(), targets.shape(), "BCE shapes must match");
        let n = predictions.numel().max(1) as f32;
        let mut loss = 0.0f32;
        let mut grad = Tensor::zeros(predictions.shape());
        let g = grad.as_mut_slice();
        for (i, (&x, &t)) in predictions.as_slice().iter().zip(targets.as_slice()).enumerate() {
            // log(1 + exp(-|x|)) + max(x, 0) - x*t  is the stable form.
            loss += (1.0 + (-x.abs()).exp()).ln() + x.max(0.0) - x * t;
            let s = 1.0 / (1.0 + (-x).exp());
            g[i] = (s - t) / n;
        }
        (loss / n, grad)
    }

    fn name(&self) -> &'static str {
        "bce_with_logits"
    }
}

/// Smooth-L1 (Huber) loss, used for bounding-box regression in the detector.
#[derive(Debug, Clone, Copy)]
pub struct SmoothL1Loss {
    /// Transition point between the quadratic and linear regimes.
    pub beta: f32,
}

impl Default for SmoothL1Loss {
    fn default() -> Self {
        SmoothL1Loss { beta: 1.0 }
    }
}

impl SmoothL1Loss {
    /// Create the loss with the given transition point.
    pub fn new(beta: f32) -> Self {
        assert!(beta > 0.0, "beta must be positive");
        SmoothL1Loss { beta }
    }
}

impl Loss for SmoothL1Loss {
    fn compute(&self, predictions: &Tensor, targets: &Tensor) -> (f32, Tensor) {
        assert_eq!(predictions.shape(), targets.shape(), "smooth-L1 shapes must match");
        let n = predictions.numel().max(1) as f32;
        let mut loss = 0.0f32;
        let mut grad = Tensor::zeros(predictions.shape());
        let g = grad.as_mut_slice();
        for (i, (&p, &t)) in predictions.as_slice().iter().zip(targets.as_slice()).enumerate() {
            let d = p - t;
            if d.abs() < self.beta {
                loss += 0.5 * d * d / self.beta;
                g[i] = d / self.beta / n;
            } else {
                loss += d.abs() - 0.5 * self.beta;
                g[i] = d.signum() / n;
            }
        }
        (loss / n, grad)
    }

    fn name(&self) -> &'static str {
        "smooth_l1"
    }
}

/// Hinge losses for GAN training (the objective used by SNGAN).
///
/// The discriminator maximises `min(0, -1 + D(real)) + min(0, -1 - D(fake))`;
/// the generator maximises `D(fake)`. These helpers return the loss to
/// *minimise* along with its gradient w.r.t. the discriminator scores.
#[derive(Default, Debug, Clone, Copy)]
pub struct HingeGanLoss;

impl HingeGanLoss {
    /// Create the loss helper.
    pub fn new() -> Self {
        HingeGanLoss
    }

    /// Discriminator loss on real-sample scores: `mean(relu(1 - d))`.
    pub fn d_real(&self, scores: &Tensor) -> (f32, Tensor) {
        let n = scores.numel().max(1) as f32;
        let loss = scores.map(|d| (1.0 - d).max(0.0)).sum() / n;
        let grad = scores.map(|d| if 1.0 - d > 0.0 { -1.0 / n } else { 0.0 });
        (loss, grad)
    }

    /// Discriminator loss on fake-sample scores: `mean(relu(1 + d))`.
    pub fn d_fake(&self, scores: &Tensor) -> (f32, Tensor) {
        let n = scores.numel().max(1) as f32;
        let loss = scores.map(|d| (1.0 + d).max(0.0)).sum() / n;
        let grad = scores.map(|d| if 1.0 + d > 0.0 { 1.0 / n } else { 0.0 });
        (loss, grad)
    }

    /// Generator loss on fake-sample scores: `-mean(d)`.
    pub fn generator(&self, scores: &Tensor) -> (f32, Tensor) {
        let n = scores.numel().max(1) as f32;
        let loss = -scores.sum() / n;
        let grad = Tensor::full(scores.shape(), -1.0 / n);
        (loss, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadra_autograd::{check_close, numeric_gradient};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cross_entropy_perfect_prediction_has_low_loss() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0, -10.0, 10.0, -10.0], &[2, 3]).unwrap();
        let targets = Tensor::from_slice(&[0.0, 1.0]);
        let (loss, grad) = CrossEntropyLoss::new().compute(&logits, &targets);
        assert!(loss < 1e-3);
        assert!(grad.abs().max() < 1e-3);
        assert_eq!(CrossEntropyLoss::new().name(), "cross_entropy");
    }

    #[test]
    fn cross_entropy_uniform_logits_loss_is_log_c() {
        let logits = Tensor::zeros(&[4, 10]);
        let targets = Tensor::from_slice(&[0.0, 3.0, 7.0, 9.0]);
        let (loss, _) = CrossEntropyLoss::new().compute(&logits, &targets);
        assert!((loss - 10.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_matches_numeric() {
        let mut rng = StdRng::seed_from_u64(4);
        let logits = Tensor::randn(&[3, 5], 0.0, 1.0, &mut rng);
        let targets = Tensor::from_slice(&[1.0, 4.0, 0.0]);
        let (_, grad) = CrossEntropyLoss::new().compute(&logits, &targets);
        let t2 = targets.clone();
        let numeric = numeric_gradient(|l| CrossEntropyLoss::new().compute(l, &t2).0, &logits, 1e-3);
        assert!(check_close(&grad, &numeric).passes(1e-3));
    }

    #[test]
    fn cross_entropy_extreme_logits_gradient_consistent() {
        // With a +1e4 logit the old second softmax pass could disagree with
        // log-softmax; probs = exp(log_probs) keeps them consistent: the
        // winning wrong class gets gradient ~1, the target exactly -0 + p.
        let logits = Tensor::from_vec(vec![1e4, 0.0, -1e4], &[1, 3]).unwrap();
        let targets = Tensor::from_slice(&[1.0]);
        let (loss, grad) = CrossEntropyLoss::new().compute(&logits, &targets);
        assert!(loss.is_finite() && loss > 1e3);
        assert!(!grad.has_non_finite());
        assert!((grad.as_slice()[0] - 1.0).abs() < 1e-6);
        assert!((grad.as_slice()[1] - (-1.0)).abs() < 1e-6);
        assert_eq!(grad.as_slice()[2], 0.0);
    }

    #[test]
    #[should_panic]
    fn cross_entropy_label_out_of_range_panics() {
        let logits = Tensor::zeros(&[1, 3]);
        let targets = Tensor::from_slice(&[5.0]);
        let _ = CrossEntropyLoss::new().compute(&logits, &targets);
    }

    #[test]
    fn mse_loss_and_gradient() {
        let p = Tensor::from_slice(&[1.0, 2.0]);
        let t = Tensor::from_slice(&[0.0, 4.0]);
        let (loss, grad) = MseLoss::new().compute(&p, &t);
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.as_slice(), &[1.0, -2.0]);
        assert_eq!(MseLoss::new().name(), "mse");
        let numeric = numeric_gradient(|x| MseLoss::new().compute(x, &t).0, &p, 1e-3);
        assert!(check_close(&grad, &numeric).passes(1e-3));
    }

    #[test]
    fn bce_with_logits_matches_numeric_and_is_stable() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = Tensor::randn(&[6], 0.0, 3.0, &mut rng);
        let t = Tensor::from_slice(&[1.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
        let (loss, grad) = BceWithLogitsLoss::new().compute(&p, &t);
        assert!(loss.is_finite());
        let numeric = numeric_gradient(|x| BceWithLogitsLoss::new().compute(x, &t).0, &p, 1e-3);
        assert!(check_close(&grad, &numeric).passes(1e-3));
        // Extreme logits stay finite.
        let (l2, g2) = BceWithLogitsLoss::new()
            .compute(&Tensor::from_slice(&[100.0, -100.0]), &Tensor::from_slice(&[1.0, 0.0]));
        assert!(l2.is_finite() && !g2.has_non_finite());
        assert_eq!(BceWithLogitsLoss::new().name(), "bce_with_logits");
    }

    #[test]
    fn smooth_l1_quadratic_and_linear_regimes() {
        let loss = SmoothL1Loss::new(1.0);
        let p = Tensor::from_slice(&[0.5, 3.0]);
        let t = Tensor::from_slice(&[0.0, 0.0]);
        let (l, g) = loss.compute(&p, &t);
        // 0.5*0.25 + (3 - 0.5) = 0.125 + 2.5, mean over 2.
        assert!((l - (0.125 + 2.5) / 2.0).abs() < 1e-6);
        assert!((g.as_slice()[0] - 0.25).abs() < 1e-6);
        assert!((g.as_slice()[1] - 0.5).abs() < 1e-6);
        assert_eq!(loss.name(), "smooth_l1");
        let numeric = numeric_gradient(|x| SmoothL1Loss::new(1.0).compute(x, &t).0, &p, 1e-3);
        assert!(check_close(&g, &numeric).passes(1e-3));
    }

    #[test]
    #[should_panic]
    fn smooth_l1_zero_beta_panics() {
        let _ = SmoothL1Loss::new(0.0);
    }

    #[test]
    fn hinge_gan_losses() {
        let h = HingeGanLoss::new();
        let real = Tensor::from_slice(&[2.0, 0.5]);
        let (lr, gr) = h.d_real(&real);
        assert!((lr - 0.25).abs() < 1e-6); // only the 0.5 score is inside the margin
        assert_eq!(gr.as_slice(), &[0.0, -0.5]);
        let fake = Tensor::from_slice(&[-2.0, 0.5]);
        let (lf, gf) = h.d_fake(&fake);
        assert!((lf - 0.75).abs() < 1e-6);
        assert_eq!(gf.as_slice(), &[0.0, 0.5]);
        let (lg, gg) = h.generator(&fake);
        assert!((lg - 0.75).abs() < 1e-6);
        assert_eq!(gg.as_slice(), &[-0.5, -0.5]);
    }
}
