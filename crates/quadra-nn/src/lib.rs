//! # quadra-nn
//!
//! First-order (linear-neuron) neural-network building blocks for QuadraLib-rs:
//! the layer zoo, loss functions, optimizers, learning-rate schedulers, metrics
//! and a small training loop.
//!
//! Everything here corresponds to the "Original PyTorch Components" box of the
//! paper's Fig. 4 — the parts QuadraLib inherits from its host framework. The
//! quadratic layers, auto-builder, memory profiler and hybrid back-propagation
//! (the "Complementary Components in QuadraLib") live in `quadra-core` and are
//! built *on top of* the [`Layer`] trait defined here.
//!
//! ## Design
//!
//! Layers follow the explicit forward/backward style (as in Caffe or
//! `torch.autograd.Function`): [`Layer::forward`] computes outputs and caches
//! whatever the layer chooses to keep, [`Layer::backward`] consumes the cache
//! and produces input gradients while accumulating parameter gradients. The
//! amount of cached memory is observable through [`Layer::cached_bytes`], which
//! is what the memory profiler in `quadra-core` aggregates to reproduce the
//! paper's memory figures.
//!
//! ## Example
//!
//! ```
//! use quadra_nn::{Layer, Linear, Relu, Sequential};
//! use quadra_tensor::Tensor;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut model = Sequential::new(vec![
//!     Box::new(Linear::new(4, 16, true, &mut rng)),
//!     Box::new(Relu::new()),
//!     Box::new(Linear::new(16, 3, true, &mut rng)),
//! ]);
//! let x = Tensor::randn(&[8, 4], 0.0, 1.0, &mut rng);
//! let logits = model.forward(&x, true);
//! assert_eq!(logits.shape(), &[8, 3]);
//! ```

#![warn(missing_docs)]

mod activation;
mod batchnorm;
mod checkpoint;
mod conv;
mod dropout;
mod layer;
mod linear;
mod loss;
mod metrics;
mod optim;
mod param;
mod pooling;
mod scheduler;
mod trainer;

pub use activation::{LeakyRelu, Relu, Sigmoid, Tanh};
pub use batchnorm::BatchNorm2d;
pub use checkpoint::{ParamState, StateDict};
pub use conv::Conv2d;
pub use dropout::{Dropout, Flatten, Identity, Upsample2d};
pub use layer::{Layer, Residual, Sequential};
pub use linear::Linear;
pub use loss::{BceWithLogitsLoss, CrossEntropyLoss, HingeGanLoss, Loss, MseLoss, SmoothL1Loss};
pub use metrics::{accuracy, confusion_matrix, topk_accuracy};
pub use optim::{Adam, AdamConfig, Optimizer, Sgd, SgdConfig};
pub use param::Param;
pub use pooling::{AvgPool2d, GlobalAvgPool, MaxPool2d};
pub use scheduler::{ConstantLr, CosineAnnealingLr, LrScheduler, MultiStepLr, StepLr};
pub use trainer::{TrainReport, Trainer, TrainerConfig};
