//! Synthetic object-detection scenes — the PASCAL VOC stand-in.
//!
//! Each scene is an image containing one to three non-background shapes; the
//! ground truth records each object's class and its axis-aligned bounding box
//! in normalised `(cx, cy, w, h)` coordinates.

use crate::shapes::ShapeKind;
use quadra_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A ground-truth object annotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GtBox {
    /// Object class in `0..num_classes`.
    pub class: usize,
    /// Box centre x in `[0, 1]`.
    pub cx: f32,
    /// Box centre y in `[0, 1]`.
    pub cy: f32,
    /// Box width in `[0, 1]`.
    pub w: f32,
    /// Box height in `[0, 1]`.
    pub h: f32,
}

impl GtBox {
    /// Intersection-over-union with another box (both in normalised cx/cy/w/h).
    pub fn iou(&self, other: &GtBox) -> f32 {
        let (ax0, ay0, ax1, ay1) = self.corners();
        let (bx0, by0, bx1, by1) = other.corners();
        let ix = (ax1.min(bx1) - ax0.max(bx0)).max(0.0);
        let iy = (ay1.min(by1) - ay0.max(by0)).max(0.0);
        let inter = ix * iy;
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Box area.
    pub fn area(&self) -> f32 {
        self.w.max(0.0) * self.h.max(0.0)
    }

    /// Corner coordinates `(x0, y0, x1, y1)`.
    pub fn corners(&self) -> (f32, f32, f32, f32) {
        (self.cx - self.w / 2.0, self.cy - self.h / 2.0, self.cx + self.w / 2.0, self.cy + self.h / 2.0)
    }
}

/// One detection scene: an image plus its ground-truth boxes.
#[derive(Debug, Clone)]
pub struct DetectionScene {
    /// The image as a `[channels, size, size]` tensor.
    pub image: Tensor,
    /// Ground-truth objects.
    pub boxes: Vec<GtBox>,
}

/// A generated detection dataset.
#[derive(Debug, Clone)]
pub struct DetectionDataset {
    /// The scenes.
    pub scenes: Vec<DetectionScene>,
    /// Number of object classes (background excluded).
    pub num_classes: usize,
    /// Image side length.
    pub image_size: usize,
}

impl DetectionDataset {
    /// Generate `n` scenes with up to `max_objects` objects from `num_classes`
    /// object classes at `size`×`size` pixels.
    pub fn generate(n: usize, num_classes: usize, size: usize, max_objects: usize, seed: u64) -> Self {
        assert!(num_classes >= 1 && num_classes <= ShapeKind::ALL.len());
        assert!(max_objects >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scenes = Vec::with_capacity(n);
        for _ in 0..n {
            scenes.push(Self::generate_scene(num_classes, size, max_objects, &mut rng));
        }
        DetectionDataset { scenes, num_classes, image_size: size }
    }

    fn generate_scene(
        num_classes: usize,
        size: usize,
        max_objects: usize,
        rng: &mut StdRng,
    ) -> DetectionScene {
        let channels = 3usize;
        let mut data = vec![-0.8f32; channels * size * size];
        let count = rng.gen_range(1..=max_objects);
        let mut boxes = Vec::with_capacity(count);
        for _ in 0..count {
            let class = rng.gen_range(0..num_classes);
            let kind = ShapeKind::for_class(class);
            let radius = rng.gen_range(0.12..0.22);
            let cx = rng.gen_range(radius..1.0 - radius);
            let cy = rng.gen_range(radius..1.0 - radius);
            for c in 0..channels {
                let phase = class as f32 / num_classes as f32 * std::f32::consts::TAU;
                let fg = (phase + 2.0 * c as f32).cos();
                for y in 0..size {
                    for x in 0..size {
                        let u = x as f32 / size as f32 - cx;
                        let v = y as f32 / size as f32 - cy;
                        if kind_contains(kind, u, v, radius) {
                            data[(c * size + y) * size + x] = fg;
                        }
                    }
                }
            }
            boxes.push(GtBox { class, cx, cy, w: 2.0 * radius, h: 2.0 * radius });
        }
        // Light pixel noise.
        for v in data.iter_mut() {
            *v += 0.05 * (rng.gen_range(0.0f32..1.0) - 0.5);
        }
        DetectionScene { image: Tensor::from_vec(data, &[channels, size, size]).expect("shape"), boxes }
    }

    /// Number of scenes.
    pub fn len(&self) -> usize {
        self.scenes.len()
    }

    /// True if the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.scenes.is_empty()
    }

    /// Stack a subset of scene images into a batch tensor `[k, c, s, s]`.
    pub fn image_batch(&self, indices: &[usize]) -> Tensor {
        let refs: Vec<Tensor> = indices.iter().map(|&i| self.scenes[i].image.clone()).collect();
        let views: Vec<&Tensor> = refs.iter().collect();
        Tensor::stack(&views).expect("uniform scene shapes")
    }
}

fn kind_contains(kind: ShapeKind, u: f32, v: f32, r: f32) -> bool {
    // Reuse a subset of simple solid shapes so boxes tightly contain the object.
    match kind {
        ShapeKind::Circle | ShapeKind::Ring | ShapeKind::TwoDots => u * u + v * v <= r * r,
        ShapeKind::Triangle => v >= -r && v <= r && u.abs() <= (r - v) * 0.5 + 0.05,
        ShapeKind::Diamond => u.abs() + v.abs() <= r,
        _ => u.abs() <= r && v.abs() <= r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iou_of_identical_and_disjoint_boxes() {
        let a = GtBox { class: 0, cx: 0.5, cy: 0.5, w: 0.2, h: 0.2 };
        assert!((a.iou(&a) - 1.0).abs() < 1e-6);
        let far = GtBox { class: 0, cx: 0.1, cy: 0.1, w: 0.1, h: 0.1 };
        assert_eq!(a.iou(&far), 0.0);
        // Half-overlapping boxes.
        let half = GtBox { class: 0, cx: 0.6, cy: 0.5, w: 0.2, h: 0.2 };
        let iou = a.iou(&half);
        assert!(iou > 0.3 && iou < 0.4, "iou {}", iou);
        assert!((a.area() - 0.04).abs() < 1e-6);
        let zero = GtBox { class: 0, cx: 0.5, cy: 0.5, w: 0.0, h: 0.0 };
        assert_eq!(zero.iou(&zero), 0.0);
    }

    #[test]
    fn scenes_have_expected_structure() {
        let ds = DetectionDataset::generate(20, 5, 32, 3, 11);
        assert_eq!(ds.len(), 20);
        assert!(!ds.is_empty());
        assert_eq!(ds.image_size, 32);
        assert_eq!(ds.num_classes, 5);
        for scene in &ds.scenes {
            assert_eq!(scene.image.shape(), &[3, 32, 32]);
            assert!(!scene.boxes.is_empty() && scene.boxes.len() <= 3);
            for b in &scene.boxes {
                assert!(b.class < 5);
                let (x0, y0, x1, y1) = b.corners();
                assert!(x0 >= -0.01 && y0 >= -0.01 && x1 <= 1.01 && y1 <= 1.01);
            }
        }
    }

    #[test]
    fn object_pixels_differ_from_background_inside_the_box() {
        let ds = DetectionDataset::generate(5, 3, 32, 1, 12);
        for scene in &ds.scenes {
            let b = &scene.boxes[0];
            let px = ((b.cx * 32.0) as usize).min(31);
            let py = ((b.cy * 32.0) as usize).min(31);
            // The centre pixel of the box belongs to the object, so it should not
            // be close to the background value of -0.8.
            let v = scene.image.at(&[0, py, px]);
            assert!((v - (-0.8)).abs() > 0.2, "centre pixel looks like background: {}", v);
        }
    }

    #[test]
    fn image_batch_stacks_scenes() {
        let ds = DetectionDataset::generate(6, 3, 16, 2, 13);
        let batch = ds.image_batch(&[0, 3, 5]);
        assert_eq!(batch.shape(), &[3, 3, 16, 16]);
        assert_eq!(
            batch.narrow(0, 1, 1).unwrap().flatten().as_slice(),
            ds.scenes[3].image.flatten().as_slice()
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DetectionDataset::generate(4, 3, 16, 2, 99);
        let b = DetectionDataset::generate(4, 3, 16, 2, 99);
        assert_eq!(a.scenes[2].image.as_slice(), b.scenes[2].image.as_slice());
        assert_eq!(a.scenes[2].boxes, b.scenes[2].boxes);
    }

    #[test]
    #[should_panic]
    fn zero_objects_rejected() {
        let _ = DetectionDataset::generate(1, 3, 16, 0, 0);
    }
}
