//! Request/response types of the serving pipeline and the policy knobs that
//! control admission and batch formation.

use quadra_tensor::Tensor;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Scheduling class of a request inside a model's admission queue.
///
/// Admission keeps one bounded queue per class and the batcher always drains
/// [`Priority::Interactive`] first, so latency-sensitive traffic is never
/// starved by throughput-oriented [`Priority::Batch`] work. Each class sheds
/// independently when its queue fills.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive traffic, always dequeued first (the default).
    #[default]
    Interactive,
    /// Throughput-oriented traffic that yields to interactive requests.
    Batch,
}

impl Priority {
    /// Number of priority classes.
    pub const COUNT: usize = 2;

    /// Stable index of the class (used by per-class metrics arrays).
    pub(crate) fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
        }
    }

    /// Human-readable class name.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }
}

/// Errors surfaced to serving clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The server is shutting down (or has shut down) and no longer accepts
    /// or answers requests.
    ShuttingDown,
    /// The request input was rejected before it reached the admission queue.
    BadInput(String),
    /// The router has no endpoint registered under the requested model name.
    UnknownModel(String),
    /// The model's admission queue for the request's priority class is full;
    /// the request was shed instead of queueing unboundedly. `retry_after`
    /// estimates when the backlog will have drained.
    Overloaded {
        /// Estimated time until the queue has drained enough to admit again.
        retry_after: Duration,
    },
    /// A checkpoint offered for hot-reload does not fit the served model.
    InvalidState(String),
    /// The model panicked while executing the batch containing this request.
    WorkerFailed(String),
    /// [`PendingResponse::wait_timeout`] expired before the response arrived.
    Timeout,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::BadInput(m) => write!(f, "bad input: {}", m),
            ServeError::UnknownModel(m) => write!(f, "no endpoint serves model `{}`", m),
            ServeError::Overloaded { retry_after } => {
                write!(f, "overloaded: request shed, retry after {:.1} ms", retry_after.as_secs_f64() * 1e3)
            }
            ServeError::InvalidState(m) => write!(f, "invalid checkpoint for hot-reload: {}", m),
            ServeError::WorkerFailed(m) => write!(f, "worker failed: {}", m),
            ServeError::Timeout => write!(f, "timed out waiting for response"),
        }
    }
}

impl std::error::Error for ServeError {}

/// When the dynamic batcher closes a batch and hands it to a worker.
///
/// A batch is dispatched as soon as it holds `max_batch_size` samples or when
/// its wait budget expires, whichever comes first. The budget is `max_wait`
/// exactly when `adaptive_wait` is off; with `adaptive_wait` on (the default)
/// the batcher picks the budget automatically from the model's measured
/// arrival rate and batch service time, using `max_wait` as the cap. A single
/// request carrying more than `max_batch_size` samples is not rejected — it
/// is dispatched immediately as an oversized batch of its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Target number of *samples* (not requests) per coalesced batch.
    pub max_batch_size: usize,
    /// Upper bound on the time the first request of a batch waits for company
    /// (the exact wait when `adaptive_wait` is off).
    pub max_wait: Duration,
    /// Pick the wait budget automatically: wait roughly as long as the EWMA
    /// inter-arrival time says is needed to fill the batch, but never longer
    /// than twice the EWMA batch service time (past that point batching no
    /// longer amortises) nor `max_wait`, and never less than `max_wait / 16`
    /// (so bursts in flight still coalesce).
    pub adaptive_wait: bool,
    /// Allow NCHW requests with different H×W (same channel count) to share a
    /// batch by zero-padding every sample to the largest H and W present.
    ///
    /// Off by default: padding changes what the model sees (a pooling layer
    /// averages over the padded zeros, a `Flatten`+`Linear` head panics on the
    /// changed feature count), so a request's prediction could depend on the
    /// traffic it happened to ride with. Leave this off to keep served
    /// predictions bitwise-identical to direct `forward` calls; turn it on
    /// only for fully convolutional models where approximate mixed-size
    /// pooling is acceptable.
    pub pad_mixed_spatial: bool,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch_size: 16,
            max_wait: Duration::from_millis(2),
            adaptive_wait: true,
            pad_mixed_spatial: false,
        }
    }
}

/// Admission-control policy of one model endpoint: how much work may queue
/// before further requests are shed with [`ServeError::Overloaded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Maximum queued **samples** per priority class. `None` restores the
    /// pre-router unbounded FIFO (useful only as an overload baseline: under
    /// sustained offered load above capacity an unbounded queue grows — and
    /// with it every request's latency — without bound).
    pub queue_capacity: Option<usize>,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy { queue_capacity: Some(1024) }
    }
}

/// Configuration of one model endpoint (and of the single-model
/// [`InferenceServer`](crate::InferenceServer) convenience wrapper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Number of model replicas, each on its own dedicated worker thread.
    pub workers: usize,
    /// Batch-formation policy.
    pub policy: BatchPolicy,
    /// Admission-control policy (bounded queues + load shedding).
    pub admission: AdmissionPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { workers: 2, policy: BatchPolicy::default(), admission: AdmissionPolicy::default() }
    }
}

impl ServeConfig {
    /// Validate the configuration at server start.
    pub(crate) fn validate(&self) -> Result<(), ServeError> {
        if self.workers == 0 {
            return Err(ServeError::BadInput("need at least one worker".into()));
        }
        if self.policy.max_batch_size == 0 {
            return Err(ServeError::BadInput("max_batch_size must be at least 1".into()));
        }
        if self.admission.queue_capacity == Some(0) {
            return Err(ServeError::BadInput("queue_capacity must be at least 1 sample (or None)".into()));
        }
        Ok(())
    }
}

/// A completed inference, annotated with serving telemetry.
#[derive(Debug, Clone)]
#[must_use = "the response carries the inference output"]
pub struct InferResponse {
    /// The id `submit` returned for this request.
    pub id: u64,
    /// Name of the model endpoint that served the request.
    pub model: String,
    /// Priority class the request was admitted under.
    pub priority: Priority,
    /// Model output rows for this request's samples: shape `[n, ...]` where
    /// `n` is the request's sample count.
    pub output: Tensor,
    /// Version of the model state that produced the output: 0 until the first
    /// hot-reload of the endpoint, incremented by each successful reload.
    pub model_version: u64,
    /// Total samples in the coalesced batch this request rode in.
    pub batch_samples: usize,
    /// Time from submission until the batch was closed by the batcher.
    pub queue_wait: Duration,
    /// Time from submission until the response was produced.
    pub latency: Duration,
}

/// Handle to a response that has not arrived yet (returned by
/// [`ServeClient::submit`](crate::ServeClient::submit) and
/// [`RouterClient::submit`](crate::RouterClient::submit)).
#[derive(Debug)]
#[must_use = "dropping the handle abandons the request's response"]
pub struct PendingResponse {
    pub(crate) id: u64,
    pub(crate) rx: mpsc::Receiver<Result<InferResponse, ServeError>>,
}

impl PendingResponse {
    /// The request id this handle waits for.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the response arrives.
    pub fn wait(self) -> Result<InferResponse, ServeError> {
        self.rx.recv().map_err(|_| ServeError::ShuttingDown)?
    }

    /// Block for at most `timeout`.
    pub fn wait_timeout(self, timeout: Duration) -> Result<InferResponse, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::ShuttingDown),
        }
    }
}

/// A request travelling through the admission queue towards a worker.
///
/// `Debug` skips the tensor payload; it exists so admission errors (which
/// hand the request back) stay unwrap-friendly in tests.
pub(crate) struct PendingInfer {
    pub id: u64,
    pub input: Tensor,
    pub samples: usize,
    pub priority: Priority,
    pub submitted_at: Instant,
    pub reply: mpsc::Sender<Result<InferResponse, ServeError>>,
}

impl std::fmt::Debug for PendingInfer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingInfer")
            .field("id", &self.id)
            .field("samples", &self.samples)
            .field("priority", &self.priority)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_error_displays_every_variant() {
        let cases: Vec<(ServeError, &str)> = vec![
            (ServeError::ShuttingDown, "shutting down"),
            (ServeError::BadInput("x".into()), "bad input"),
            (ServeError::UnknownModel("resnet".into()), "`resnet`"),
            (ServeError::Overloaded { retry_after: Duration::from_millis(5) }, "retry after 5.0 ms"),
            (ServeError::InvalidState("y".into()), "hot-reload"),
            (ServeError::WorkerFailed("z".into()), "worker failed"),
            (ServeError::Timeout, "timed out"),
        ];
        for (err, needle) in cases {
            let rendered = err.to_string();
            assert!(rendered.contains(needle), "{rendered:?} should contain {needle:?}");
        }
    }

    #[test]
    fn serve_error_threads_through_boxed_error_callers() {
        // anyhow-style propagation: `?` into a Box<dyn Error>.
        fn faulty() -> Result<(), ServeError> {
            Err(ServeError::Overloaded { retry_after: Duration::from_millis(1) })
        }
        fn caller() -> Result<(), Box<dyn std::error::Error>> {
            faulty()?;
            Ok(())
        }
        let err = caller().unwrap_err();
        assert!(err.to_string().contains("overloaded"));
    }

    #[test]
    fn config_validation_rejects_degenerate_settings() {
        assert!(ServeConfig { workers: 0, ..base() }.validate().is_err());
        let zero_batch =
            ServeConfig { policy: BatchPolicy { max_batch_size: 0, ..BatchPolicy::default() }, ..base() };
        assert!(zero_batch.validate().is_err());
        let zero_queue = ServeConfig { admission: AdmissionPolicy { queue_capacity: Some(0) }, ..base() };
        assert!(zero_queue.validate().is_err());
        assert!(base().validate().is_ok());
        assert!(ServeConfig { admission: AdmissionPolicy { queue_capacity: None }, ..base() }
            .validate()
            .is_ok());
    }

    fn base() -> ServeConfig {
        ServeConfig { workers: 2, ..ServeConfig::default() }
    }
}
