//! Property-based tests of the synthetic data generators.

use proptest::prelude::*;
use quadra_data::{train_test_split, DetectionDataset, ShapeImageDataset};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated classification dataset has valid labels, finite pixels
    /// and the requested geometry, for any seed and class count.
    #[test]
    fn shape_dataset_is_well_formed(seed in 0u64..1000, classes in 2usize..12, n in 4usize..32) {
        let ds = ShapeImageDataset::generate(n, classes, 16, 3, 0.1, seed);
        prop_assert_eq!(ds.images.shape(), &[n, 3, 16, 16]);
        prop_assert_eq!(ds.labels.numel(), n);
        prop_assert!(!ds.images.has_non_finite());
        prop_assert!(ds.labels.as_slice().iter().all(|&l| (l as usize) < classes && l >= 0.0));
    }

    /// Detection boxes always stay inside the unit square and every scene has
    /// at least one object.
    #[test]
    fn detection_boxes_are_valid(seed in 0u64..1000, n in 1usize..16) {
        let ds = DetectionDataset::generate(n, 4, 16, 3, seed);
        for scene in &ds.scenes {
            prop_assert!(!scene.boxes.is_empty());
            for b in &scene.boxes {
                let (x0, y0, x1, y1) = b.corners();
                prop_assert!(x0 >= -0.01 && y0 >= -0.01 && x1 <= 1.01 && y1 <= 1.01);
                prop_assert!(b.w > 0.0 && b.h > 0.0);
                prop_assert!(b.class < 4);
            }
        }
    }

    /// A train/test split always partitions the samples exactly.
    #[test]
    fn split_partitions_samples(seed in 0u64..1000, n in 2usize..40, frac in 0.0f32..1.0) {
        let ds = ShapeImageDataset::generate(n, 3, 8, 1, 0.05, seed);
        let ((xtr, ytr), (xte, yte)) = train_test_split(&ds.images, &ds.labels, frac, seed);
        prop_assert_eq!(xtr.shape()[0] + xte.shape()[0], n);
        prop_assert_eq!(ytr.numel() + yte.numel(), n);
    }
}
