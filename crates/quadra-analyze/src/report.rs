//! Finding and report types, plus the hand-written JSON serializer for
//! `ANALYZE_report.json` (the vendored serde stand-in is deliberately not a
//! dependency here — the analyzer must stay buildable in isolation).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One diagnostic produced by a pass.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Pass that produced it (`lock_order`, `panic_path`, `clock`,
    /// `must_use`, or `suppression` for directive-grammar violations).
    pub pass: String,
    /// Finer-grained check name within the pass (`indexing`, `cycle`, ...).
    pub check: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// Offending source line, trimmed, for the diff-style report.
    pub snippet: String,
    /// Set when a suppression directive covered this finding.
    pub suppressed_reason: Option<String>,
}

impl Finding {
    /// True when no suppression covered the finding.
    pub fn is_unsuppressed(&self) -> bool {
        self.suppressed_reason.is_none()
    }
}

/// A suppression that matched no finding (reported as a warning, not an
/// error, so deleting dead code never breaks the gate).
#[derive(Debug, Clone)]
pub struct UnusedSuppression {
    /// File containing the directive.
    pub file: String,
    /// 1-based line of the directive.
    pub line: u32,
    /// Pass (and optional check) it targeted.
    pub target: String,
}

/// Aggregated output of an analysis run.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, suppressed or not, in (file, line) order.
    pub findings: Vec<Finding>,
    /// Directives that matched nothing.
    pub unused_suppressions: Vec<UnusedSuppression>,
    /// Number of files analyzed.
    pub files_analyzed: usize,
}

impl Report {
    /// Findings not covered by a suppression (the ones `--deny` gates on).
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.is_unsuppressed())
    }

    /// Count of unsuppressed findings.
    pub fn unsuppressed_count(&self) -> usize {
        self.unsuppressed().count()
    }

    /// Count of suppressed findings.
    pub fn suppressed_count(&self) -> usize {
        self.findings.len() - self.unsuppressed_count()
    }

    /// Per-pass (total, suppressed) counts.
    pub fn pass_counts(&self) -> BTreeMap<String, (usize, usize)> {
        let mut map: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for f in &self.findings {
            let entry = map.entry(f.pass.clone()).or_default();
            entry.0 += 1;
            if !f.is_unsuppressed() {
                entry.1 += 1;
            }
        }
        map
    }

    /// Render the human diff-style report: one header per file, `>`-marked
    /// offending lines, suppressed findings folded into a trailing summary.
    pub fn human(&self) -> String {
        let mut out = String::new();
        let mut last_file = "";
        for f in self.unsuppressed() {
            if f.file != last_file {
                if !last_file.is_empty() {
                    out.push('\n');
                }
                let _ = writeln!(out, "--- {}", f.file);
                last_file = &f.file;
            }
            let _ = writeln!(out, "{}:{}: [{}:{}] {}", f.file, f.line, f.pass, f.check, f.message);
            let _ = writeln!(out, "> {}", f.snippet);
        }
        if !out.is_empty() {
            out.push('\n');
        }
        let counts = self.pass_counts();
        for (pass, (total, suppressed)) in &counts {
            let _ =
                writeln!(out, "pass {pass}: {} unsuppressed, {suppressed} suppressed", total - suppressed);
        }
        for u in &self.unused_suppressions {
            let _ = writeln!(out, "warning: unused suppression for `{}` at {}:{}", u.target, u.file, u.line);
        }
        let _ = writeln!(
            out,
            "quadra-analyze: {} findings ({} suppressed, {} unsuppressed) across {} files",
            self.findings.len(),
            self.suppressed_count(),
            self.unsuppressed_count(),
            self.files_analyzed
        );
        out
    }

    /// Parse a report previously written by [`Report::to_json`]. Snippets
    /// are not serialized, so they come back empty — baseline matching and
    /// deny gating never look at them.
    pub fn from_json(text: &str) -> Result<Report, String> {
        use crate::json::{self, Json};
        let doc = json::parse(text)?;
        if doc.get("tool").and_then(Json::as_str) != Some("quadra-analyze") {
            return Err("not a quadra-analyze report (missing tool tag)".to_string());
        }
        let files_analyzed =
            doc.get("files_analyzed").and_then(Json::as_u64).ok_or("report missing `files_analyzed`")?
                as usize;
        let mut findings = Vec::new();
        for item in doc.get("findings").and_then(Json::as_array).ok_or("report missing `findings`")? {
            let field = |k: &str| {
                item.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("finding missing `{k}`"))
            };
            findings.push(Finding {
                pass: field("pass")?,
                check: field("check")?,
                file: field("file")?,
                line: item.get("line").and_then(Json::as_u64).ok_or("finding missing `line`")? as u32,
                message: field("message")?,
                snippet: String::new(),
                suppressed_reason: item.get("reason").and_then(Json::as_str).map(str::to_string),
            });
        }
        let mut unused_suppressions = Vec::new();
        let unused = doc
            .get("unused_suppressions")
            .and_then(Json::as_array)
            .ok_or("report missing `unused_suppressions`")?;
        for item in unused {
            unused_suppressions.push(UnusedSuppression {
                file: item
                    .get("file")
                    .and_then(Json::as_str)
                    .ok_or("unused suppression missing `file`")?
                    .to_string(),
                line: item.get("line").and_then(Json::as_u64).ok_or("unused suppression missing `line`")?
                    as u32,
                target: item
                    .get("target")
                    .and_then(Json::as_str)
                    .ok_or("unused suppression missing `target`")?
                    .to_string(),
            });
        }
        Ok(Report { findings, unused_suppressions, files_analyzed })
    }

    /// Serialize the machine-readable report.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": 1,");
        let _ = writeln!(out, "  \"tool\": \"quadra-analyze\",");
        let _ = writeln!(out, "  \"files_analyzed\": {},", self.files_analyzed);
        let _ = writeln!(out, "  \"total_findings\": {},", self.findings.len());
        let _ = writeln!(out, "  \"suppressed\": {},", self.suppressed_count());
        let _ = writeln!(out, "  \"unsuppressed\": {},", self.unsuppressed_count());
        out.push_str("  \"passes\": {\n");
        let counts = self.pass_counts();
        for (i, (pass, (total, suppressed))) in counts.iter().enumerate() {
            let comma = if i + 1 == counts.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {}: {{\"findings\": {total}, \"suppressed\": {suppressed}, \"unsuppressed\": {}}}{comma}",
                json_str(pass),
                total - suppressed
            );
        }
        out.push_str("  },\n");
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let comma = if i + 1 == self.findings.len() { "" } else { "," };
            let reason = match &f.suppressed_reason {
                Some(r) => json_str(r),
                None => "null".to_string(),
            };
            let _ = writeln!(
                out,
                "    {{\"pass\": {}, \"check\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"suppressed\": {}, \"reason\": {}}}{comma}",
                json_str(&f.pass),
                json_str(&f.check),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                !f.is_unsuppressed(),
                reason
            );
        }
        out.push_str("  ],\n");
        out.push_str("  \"unused_suppressions\": [\n");
        for (i, u) in self.unused_suppressions.iter().enumerate() {
            let comma = if i + 1 == self.unused_suppressions.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"file\": {}, \"line\": {}, \"target\": {}}}{comma}",
                json_str(&u.file),
                u.line,
                json_str(&u.target)
            );
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

/// JSON-escape a string, quotes included.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(pass: &str, suppressed: bool) -> Finding {
        Finding {
            pass: pass.to_string(),
            check: "c".to_string(),
            file: "f.rs".to_string(),
            line: 1,
            message: "msg with \"quotes\"".to_string(),
            snippet: "let x = 1;".to_string(),
            suppressed_reason: suppressed.then(|| "reason".to_string()),
        }
    }

    #[test]
    fn counts_split_suppressed() {
        let report = Report {
            findings: vec![finding("a", false), finding("a", true), finding("b", true)],
            unused_suppressions: vec![],
            files_analyzed: 2,
        };
        assert_eq!(report.unsuppressed_count(), 1);
        assert_eq!(report.suppressed_count(), 2);
        let counts = report.pass_counts();
        assert_eq!(counts["a"], (2, 1));
        assert_eq!(counts["b"], (1, 1));
    }

    #[test]
    fn json_escapes_quotes() {
        let report =
            Report { findings: vec![finding("a", false)], unused_suppressions: vec![], files_analyzed: 1 };
        let json = report.to_json();
        assert!(json.contains("msg with \\\"quotes\\\""));
        assert!(json.contains("\"unsuppressed\": 1"));
    }

    #[test]
    fn json_roundtrips_without_snippets() {
        let report = Report {
            findings: vec![finding("a", false), finding("b", true)],
            unused_suppressions: vec![UnusedSuppression {
                file: "f.rs".to_string(),
                line: 7,
                target: "a:c".to_string(),
            }],
            files_analyzed: 3,
        };
        let parsed = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed.files_analyzed, 3);
        assert_eq!(parsed.unsuppressed_count(), 1);
        assert_eq!(parsed.suppressed_count(), 1);
        assert_eq!(parsed.findings[0].message, "msg with \"quotes\"");
        assert_eq!(parsed.findings[1].suppressed_reason.as_deref(), Some("reason"));
        assert_eq!(parsed.unused_suppressions[0].target, "a:c");
        // Snippets are not serialized.
        assert_eq!(parsed.findings[0].snippet, "");
    }

    #[test]
    fn human_marks_offending_line() {
        let report =
            Report { findings: vec![finding("a", false)], unused_suppressions: vec![], files_analyzed: 1 };
        let text = report.human();
        assert!(text.contains("> let x = 1;"));
        assert!(text.contains("--- f.rs"));
    }
}
