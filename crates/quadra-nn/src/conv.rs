//! First-order 2-D convolution layer.

use crate::layer::Layer;
use crate::param::Param;
use quadra_tensor::{Conv2dParams, InitKind, Tensor};
use rand::Rng;

/// A standard (first-order) 2-D convolution layer over NCHW tensors.
///
/// Supports stride, zero padding and grouped convolution; setting
/// `groups == in_channels` yields the depth-wise convolution used by
/// MobileNetV1.
pub struct Conv2d {
    weight: Param,
    bias: Option<Param>,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    conv: Conv2dParams,
    cached_input: Option<Tensor>,
    flops: usize,
}

impl Conv2d {
    /// Create a convolution layer with Kaiming-normal initialised weights.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        groups: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(groups >= 1 && in_channels % groups == 0, "groups must divide in_channels");
        assert!(out_channels % groups == 0, "groups must divide out_channels");
        let fan_in = (in_channels / groups) * kernel * kernel;
        let fan_out = (out_channels / groups) * kernel * kernel;
        let weight = Tensor::init(
            &[out_channels, in_channels / groups, kernel, kernel],
            InitKind::KaimingNormal,
            fan_in,
            fan_out,
            rng,
        );
        let bias = if bias {
            Some(Param::new_no_decay("conv2d.bias", Tensor::zeros(&[out_channels])))
        } else {
            None
        };
        Conv2d {
            weight: Param::new("conv2d.weight", weight),
            bias,
            in_channels,
            out_channels,
            kernel,
            conv: Conv2dParams::new(stride, padding, groups),
            cached_input: None,
            flops: 0,
        }
    }

    /// Standard 3×3 convolution with padding 1 and stride 1.
    pub fn conv3x3(in_channels: usize, out_channels: usize, rng: &mut impl Rng) -> Self {
        Self::new(in_channels, out_channels, 3, 1, 1, 1, true, rng)
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel side length.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Convolution hyper-parameters (stride / padding / groups).
    pub fn conv_params(&self) -> Conv2dParams {
        self.conv
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let y = x
            .conv2d(&self.weight.value, self.bias.as_ref().map(|b| &b.value), self.conv)
            .expect("conv2d shapes");
        // MACs = N * OC * OH * OW * (IC/groups) * K * K
        let (n, _c, _h, _w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oh, ow) = (y.shape()[2], y.shape()[3]);
        self.flops = n
            * self.out_channels
            * oh
            * ow
            * (self.in_channels / self.conv.groups)
            * self.kernel
            * self.kernel;
        self.cached_input = Some(x.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_input.take().expect("backward called before forward");
        let gw = Tensor::conv2d_backward_weight(grad_out, &x, self.weight.value.shape(), self.conv)
            .expect("conv2d backward weight");
        self.weight.accumulate_grad(&gw);
        if let Some(b) = &mut self.bias {
            let gb = Tensor::conv2d_backward_bias(grad_out).expect("conv2d backward bias");
            b.accumulate_grad(&gb);
        }
        Tensor::conv2d_backward_input(grad_out, &self.weight.value, x.shape(), self.conv)
            .expect("conv2d backward input")
    }

    fn params(&self) -> Vec<&Param> {
        let mut p = vec![&self.weight];
        if let Some(b) = &self.bias {
            p.push(b);
        }
        p
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            p.push(b);
        }
        p
    }

    fn cached_bytes(&self) -> usize {
        self.cached_input.as_ref().map(|t| t.nbytes()).unwrap_or(0)
    }

    fn clear_cache(&mut self) {
        self.cached_input = None;
    }

    fn flops_last_forward(&self) -> usize {
        self.flops
    }

    fn layer_type(&self) -> &'static str {
        "conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadra_autograd::{check_close, numeric_gradient};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2)
    }

    #[test]
    fn forward_shapes_and_flops() {
        let mut r = rng();
        let mut conv = Conv2d::conv3x3(3, 8, &mut r);
        let x = Tensor::randn(&[2, 3, 16, 16], 0.0, 1.0, &mut r);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[2, 8, 16, 16]);
        assert_eq!(conv.flops_last_forward(), 2 * 8 * 16 * 16 * 3 * 9);
        assert_eq!(conv.in_channels(), 3);
        assert_eq!(conv.out_channels(), 8);
        assert_eq!(conv.kernel(), 3);
        assert_eq!(conv.conv_params().padding, 1);
        assert_eq!(conv.layer_type(), "conv2d");
        assert!(conv.param_count() > 0);
    }

    #[test]
    fn strided_conv_halves_resolution() {
        let mut r = rng();
        let mut conv = Conv2d::new(4, 8, 3, 2, 1, 1, false, &mut r);
        let x = Tensor::randn(&[1, 4, 8, 8], 0.0, 1.0, &mut r);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[1, 8, 4, 4]);
        assert_eq!(conv.params().len(), 1);
    }

    #[test]
    fn depthwise_conv_parameters() {
        let mut r = rng();
        let conv = Conv2d::new(8, 8, 3, 1, 1, 8, false, &mut r);
        // depthwise: one 3x3 filter per channel
        assert_eq!(conv.param_count(), 8 * 9);
    }

    #[test]
    fn backward_input_gradcheck() {
        let mut r = rng();
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, 1, true, &mut r);
        let x = Tensor::randn(&[1, 2, 5, 5], 0.0, 1.0, &mut r);
        let y = conv.forward(&x, true);
        let gin = conv.backward(&Tensor::ones_like(&y));
        let w = conv.params()[0].value.clone();
        let b = conv.params()[1].value.clone();
        let p = conv.conv_params();
        let f = |t: &Tensor| t.conv2d(&w, Some(&b), p).unwrap().sum();
        let numeric = numeric_gradient(f, &x, 1e-2);
        assert!(check_close(&gin, &numeric).passes(5e-2));
    }

    #[test]
    fn backward_weight_gradcheck() {
        let mut r = rng();
        let mut conv = Conv2d::new(2, 2, 3, 1, 1, 1, false, &mut r);
        let x = Tensor::randn(&[2, 2, 4, 4], 0.0, 1.0, &mut r);
        let y = conv.forward(&x, true);
        conv.backward(&Tensor::ones_like(&y));
        let gw = conv.params()[0].grad.clone();
        let x2 = x.clone();
        let p = conv.conv_params();
        let f = |w: &Tensor| x2.conv2d(w, None, p).unwrap().sum();
        let numeric = numeric_gradient(f, &conv.params()[0].value, 1e-2);
        assert!(check_close(&gw, &numeric).passes(5e-2));
    }

    #[test]
    fn cache_lifecycle() {
        let mut r = rng();
        let mut conv = Conv2d::conv3x3(1, 1, &mut r);
        assert_eq!(conv.cached_bytes(), 0);
        let x = Tensor::randn(&[1, 1, 4, 4], 0.0, 1.0, &mut r);
        let _ = conv.forward(&x, true);
        assert_eq!(conv.cached_bytes(), x.nbytes());
        conv.clear_cache();
        assert_eq!(conv.cached_bytes(), 0);
    }

    #[test]
    #[should_panic]
    fn invalid_groups_panic() {
        let mut r = rng();
        let _ = Conv2d::new(3, 4, 3, 1, 1, 2, false, &mut r);
    }
}
