//! The serving front-ends: the multi-model [`Router`] (named endpoints, each
//! with its own admission queue, worker pool, and hot-reload version, all
//! sharing one fleet scheduler) and the single-model [`InferenceServer`]
//! convenience wrapper.

use crate::endpoint::EndpointShared;
use crate::metrics::{RouterMetrics, ServeMetrics};
use crate::request::{InferResponse, Priority, Request, ResponseHandle, ServeConfig, ServeError};
use crate::scheduler::FleetScheduler;
use crate::worker::{self, ModelFactory};
use quadra_nn::{Layer, StateDict};
use quadra_tensor::Tensor;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Endpoint name used by the single-model [`InferenceServer`] wrapper.
pub const DEFAULT_ENDPOINT: &str = "default";

struct EndpointRuntime {
    shared: Arc<EndpointShared>,
    factory: Arc<ModelFactory>,
    workers: Vec<JoinHandle<()>>,
}

/// A multi-model routing engine: N named model endpoints behind one admission
/// layer and one fleet scheduler.
///
/// Each endpoint owns its own bounded priority admission queue, batch policy,
/// worker pool of model replicas, hot-reload version, and metrics hub — so
/// one model's backlog cannot delay another model's requests, hot-reloading
/// one endpoint never disturbs the rest of the fleet, and latency percentiles
/// are always per model. Batches are formed by **idle workers pulling from
/// the queue** (never ahead of execution), arbitrated across endpoints by
/// deficit-round-robin weighted fair sharing ([`ServeConfig::weight`]).
/// Requests are admitted or shed synchronously at submission
/// ([`ServeError::Overloaded`] carries a live `retry_after` estimate) and
/// lifecycle-aware afterwards: a queued request can be
/// [cancelled](ResponseHandle::cancel) or expire at its
/// [deadline](Request::deadline), in which case it is shed at dispatch time.
///
/// ```
/// use quadra_nn::{Layer, Linear, Sequential};
/// use quadra_serve::{Priority, Request, Router, ServeConfig};
/// use quadra_tensor::Tensor;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// fn mlp(inputs: usize, seed: u64) -> Box<dyn Layer> {
///     let mut rng = StdRng::seed_from_u64(seed);
///     Box::new(Sequential::new(vec![Box::new(Linear::new(inputs, 3, true, &mut rng)) as Box<dyn Layer>]))
/// }
///
/// let router = Router::builder()
///     .endpoint("narrow", ServeConfig::default(), || mlp(4, 0))
///     .endpoint("wide", ServeConfig::default(), || mlp(8, 1))
///     .start()
///     .unwrap();
/// let client = router.client();
/// let narrow = client.infer("narrow", Tensor::ones(&[1, 4])).unwrap();
/// assert_eq!(narrow.output.shape(), &[1, 3]);
/// let wide = client
///     .send("wide", Request::new(Tensor::ones(&[2, 8])).priority(Priority::Batch).tag("nightly"))
///     .unwrap()
///     .wait()
///     .unwrap();
/// assert_eq!(wide.model, "wide");
/// assert_eq!(wide.tag.as_deref(), Some("nightly"));
/// let metrics = router.shutdown();
/// assert_eq!(metrics.get("narrow").unwrap().completed_requests, 1);
/// ```
#[must_use = "dropping a Router without shutdown() leaks its worker threads"]
pub struct Router {
    endpoints: BTreeMap<String, EndpointRuntime>,
    client_map: Arc<BTreeMap<String, Arc<EndpointShared>>>,
    fleet: Arc<FleetScheduler>,
    next_id: Arc<AtomicU64>,
}

/// Accumulates named endpoints for [`RouterBuilder::start`].
#[derive(Default)]
#[must_use = "a builder does nothing until start() is called"]
pub struct RouterBuilder {
    endpoints: Vec<(String, ServeConfig, Arc<ModelFactory>)>,
}

impl RouterBuilder {
    /// Register a model endpoint. `factory` builds one replica of the model;
    /// it is called once per worker on the worker's own thread (plus once per
    /// [`Router::reload`] for validation), so replicas never cross threads.
    pub fn endpoint<F>(mut self, name: &str, config: ServeConfig, factory: F) -> Self
    where
        F: Fn() -> Box<dyn Layer> + Send + Sync + 'static,
    {
        self.endpoints.push((name.to_string(), config, Arc::new(factory)));
        self
    }

    /// Validate every endpoint configuration and spawn the engine.
    pub fn start(self) -> Result<Router, ServeError> {
        if self.endpoints.is_empty() {
            return Err(ServeError::BadInput("router needs at least one endpoint".into()));
        }
        let fleet = Arc::new(FleetScheduler::new());
        let mut runtimes = BTreeMap::new();
        for (name, config, factory) in self.endpoints {
            if name.is_empty() {
                return Err(ServeError::BadInput("endpoint name must not be empty".into()));
            }
            config.validate()?;
            if runtimes.contains_key(&name) {
                return Err(ServeError::BadInput(format!("duplicate endpoint name `{}`", name)));
            }
            let shared = Arc::new(EndpointShared::new(&name, config, Arc::clone(&fleet)));
            let workers = spawn_workers(&shared, &factory)?;
            runtimes.insert(name, EndpointRuntime { shared, factory, workers });
        }
        let client_map: BTreeMap<String, Arc<EndpointShared>> =
            runtimes.iter().map(|(name, rt)| (name.clone(), Arc::clone(&rt.shared))).collect();
        Ok(Router {
            endpoints: runtimes,
            client_map: Arc::new(client_map),
            fleet,
            next_id: Arc::new(AtomicU64::new(0)),
        })
    }
}

/// Spawn one endpoint's worker pool. Each worker pulls batches straight from
/// the admission queue through the scheduler the moment it goes idle — there
/// is no batcher thread and no batch ever waits formed-but-unexecuted.
fn spawn_workers(
    shared: &Arc<EndpointShared>,
    factory: &Arc<ModelFactory>,
) -> Result<Vec<JoinHandle<()>>, ServeError> {
    let mut workers = Vec::with_capacity(shared.config.workers);
    for i in 0..shared.config.workers {
        let factory = Arc::clone(factory);
        let worker_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name(format!("quadra-serve-worker-{}-{}", shared.name, i))
            .spawn(move || worker::run(factory, worker_shared))
            .map_err(|e| ServeError::BadInput(format!("cannot spawn worker thread: {e}")))?;
        workers.push(handle);
    }
    Ok(workers)
}

impl Router {
    /// Start declaring endpoints for a new router.
    pub fn builder() -> RouterBuilder {
        RouterBuilder::default()
    }

    /// A cheap cloneable handle for submitting requests to any endpoint.
    /// Clients stay valid until shutdown; submissions afterwards fail with
    /// [`ServeError::ShuttingDown`].
    pub fn client(&self) -> RouterClient {
        RouterClient { endpoints: Arc::clone(&self.client_map), next_id: Arc::clone(&self.next_id) }
    }

    /// The registered endpoint names, sorted.
    pub fn models(&self) -> Vec<String> {
        self.endpoints.keys().cloned().collect()
    }

    fn endpoint(&self, model: &str) -> Result<&EndpointRuntime, ServeError> {
        self.endpoints.get(model).ok_or_else(|| ServeError::UnknownModel(model.to_string()))
    }

    /// Swap in a new state for one endpoint between batches, leaving every
    /// other endpoint untouched.
    ///
    /// The checkpoint is validated against a freshly built replica first; an
    /// incompatible one is rejected without disturbing the serving state. On
    /// success the endpoint's new version number is returned and each of its
    /// workers picks the state up before its next batch — requests never
    /// observe a half-loaded model.
    pub fn reload(&self, model: &str, state: StateDict) -> Result<u64, ServeError> {
        let runtime = self.endpoint(model)?;
        let mut probe = (runtime.factory)();
        state.load_into(probe.as_mut()).map_err(ServeError::InvalidState)?;
        let version = runtime.shared.reload.publish(state);
        runtime.shared.metrics.record_reload();
        Ok(version)
    }

    /// The state version `model`'s workers currently serve from (0 until the
    /// endpoint's first [`Router::reload`]).
    pub fn version(&self, model: &str) -> Result<u64, ServeError> {
        Ok(self.endpoint(model)?.shared.reload.version())
    }

    /// A point-in-time snapshot of one endpoint's serving statistics.
    pub fn metrics_for(&self, model: &str) -> Result<ServeMetrics, ServeError> {
        Ok(self.endpoint(model)?.shared.snapshot())
    }

    /// Point-in-time snapshots of every endpoint, sorted by model name.
    pub fn metrics(&self) -> RouterMetrics {
        RouterMetrics { models: self.endpoints.values().map(|rt| rt.shared.snapshot()).collect() }
    }

    /// Stop accepting requests, drain every admitted request (each still
    /// receives its response — or its [`ServeError::Cancelled`] /
    /// [`ServeError::DeadlineExceeded`] shed if its lifecycle ended first),
    /// join all threads, and return the final per-model metrics snapshots.
    pub fn shutdown(mut self) -> RouterMetrics {
        self.shutdown_inner();
        self.metrics()
    }

    fn shutdown_inner(&mut self) {
        // Close every admission queue and lift the fair-share throttle first,
        // so all endpoints drain in parallel, then join their workers.
        for runtime in self.endpoints.values() {
            runtime.shared.queue.close();
            self.fleet.close_member(runtime.shared.member);
        }
        for runtime in self.endpoints.values_mut() {
            for handle in runtime.workers.drain(..) {
                // quadra-analyze: allow(must_use, a worker that panicked already answered its batch with WorkerFailed; the join result adds nothing)
                let _ = handle.join();
            }
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        if self.endpoints.values().any(|rt| !rt.workers.is_empty()) {
            self.shutdown_inner();
        }
    }
}

/// Client handle for submitting inference requests to a [`Router`].
#[derive(Clone)]
#[must_use = "a client handle that is never used submits nothing"]
pub struct RouterClient {
    endpoints: Arc<BTreeMap<String, Arc<EndpointShared>>>,
    next_id: Arc<AtomicU64>,
}

impl RouterClient {
    /// Submit a built [`Request`] to `model` and return the handle to its
    /// response — the primary entry point of the serving API.
    ///
    /// Axis 0 of the request input is always the sample axis: submit
    /// `[n, features]` rows or `[n, C, H, W]` images (`n` may exceed the
    /// endpoint's `max_batch_size`, forming an oversized batch of its own).
    /// The response's output has the same leading axis. A full admission
    /// queue sheds the request with [`ServeError::Overloaded`] instead of
    /// queueing it unboundedly; a queued request can still be
    /// [cancelled](ResponseHandle::cancel) or expire at its
    /// [deadline](Request::deadline).
    pub fn send(&self, model: &str, request: Request) -> Result<ResponseHandle, ServeError> {
        let endpoint =
            self.endpoints.get(model).ok_or_else(|| ServeError::UnknownModel(model.to_string()))?;
        // quadra-analyze: allow(atomics:relaxed-fetch, request ids are a monotonic counter; no memory is published through them)
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        endpoint.submit(id, request)
    }

    /// Enqueue `input` for `model` under `priority`: shorthand for
    /// [`send`](RouterClient::send) with a bare builder.
    pub fn submit(
        &self,
        model: &str,
        input: Tensor,
        priority: Priority,
    ) -> Result<ResponseHandle, ServeError> {
        self.send(model, Request::new(input).priority(priority))
    }

    /// Submit at [`Priority::Interactive`] and block until the response arrives.
    pub fn infer(&self, model: &str, input: Tensor) -> Result<InferResponse, ServeError> {
        // quadra-analyze: allow(condvar:wait-not-in-loop, ResponseHandle::wait is a one-shot channel join, not a condvar wait)
        self.send(model, Request::new(input))?.wait()
    }

    /// The endpoint names this client can route to, sorted.
    pub fn models(&self) -> Vec<String> {
        self.endpoints.keys().cloned().collect()
    }
}

/// A single-model batched-inference server: a [`Router`] with exactly one
/// endpoint (named [`DEFAULT_ENDPOINT`]), kept as the one-line construction
/// path for callers that serve a single architecture.
#[must_use = "dropping an InferenceServer without shutdown() leaks its worker threads"]
pub struct InferenceServer {
    router: Router,
}

impl InferenceServer {
    /// Start a single-model server. `factory` builds one model replica; it is
    /// called once per worker on the worker's own thread (plus once per
    /// [`reload`] for validation), so replicas never cross threads.
    ///
    /// [`reload`]: InferenceServer::reload
    pub fn start<F>(config: ServeConfig, factory: F) -> Result<InferenceServer, ServeError>
    where
        F: Fn() -> Box<dyn Layer> + Send + Sync + 'static,
    {
        Ok(InferenceServer { router: Router::builder().endpoint(DEFAULT_ENDPOINT, config, factory).start()? })
    }

    /// The underlying single-endpoint router.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// A cheap cloneable handle for submitting requests.
    pub fn client(&self) -> ServeClient {
        ServeClient { inner: self.router.client(), model: DEFAULT_ENDPOINT.to_string() }
    }

    /// Swap in a new model state between batches (see [`Router::reload`]).
    pub fn reload(&self, state: StateDict) -> Result<u64, ServeError> {
        self.router.reload(DEFAULT_ENDPOINT, state)
    }

    /// The state version workers are currently serving from (0 until the
    /// first [`InferenceServer::reload`]).
    pub fn version(&self) -> u64 {
        self.router.version(DEFAULT_ENDPOINT).expect("default endpoint exists")
    }

    /// A point-in-time snapshot of the serving statistics.
    pub fn metrics(&self) -> ServeMetrics {
        self.router.metrics_for(DEFAULT_ENDPOINT).expect("default endpoint exists")
    }

    /// Stop accepting requests, drain every admitted request (each still
    /// receives its response), join all threads, and return the final
    /// metrics snapshot.
    pub fn shutdown(self) -> ServeMetrics {
        let mut fleet = self.router.shutdown();
        fleet.models.pop().expect("default endpoint exists")
    }
}

/// Client handle of a single-model [`InferenceServer`]: the [`RouterClient`]
/// API with the model name fixed.
#[derive(Clone)]
#[must_use = "a client handle that is never used submits nothing"]
pub struct ServeClient {
    inner: RouterClient,
    model: String,
}

impl ServeClient {
    /// Submit a built [`Request`] and return the handle to its response —
    /// the full lifecycle API (priority, deadline, tag, cancellation).
    pub fn send(&self, request: Request) -> Result<ResponseHandle, ServeError> {
        self.inner.send(&self.model, request)
    }

    /// Enqueue `input` at [`Priority::Interactive`]: a thin wrapper over the
    /// [`Request`] builder kept so pre-builder callers migrate in one line
    /// (see [`RouterClient::send`] for input rules).
    pub fn submit(&self, input: Tensor) -> Result<ResponseHandle, ServeError> {
        self.send(Request::new(input))
    }

    /// Enqueue `input` under an explicit priority class: a thin wrapper over
    /// the [`Request`] builder.
    pub fn submit_with_priority(
        &self,
        input: Tensor,
        priority: Priority,
    ) -> Result<ResponseHandle, ServeError> {
        self.send(Request::new(input).priority(priority))
    }

    /// Submit and block until the response arrives.
    pub fn infer(&self, input: Tensor) -> Result<InferResponse, ServeError> {
        // quadra-analyze: allow(condvar:wait-not-in-loop, ResponseHandle::wait is a one-shot channel join, not a condvar wait)
        self.submit(input)?.wait()
    }

    /// Convenience for single samples: wraps a `[C, H, W]` (or `[features]`)
    /// tensor in a leading sample axis and blocks for the response, whose
    /// output then has shape `[1, ...]`.
    pub fn infer_one(&self, sample: &Tensor) -> Result<InferResponse, ServeError> {
        let mut shape = vec![1];
        shape.extend_from_slice(sample.shape());
        let input = sample.reshape(&shape).map_err(|e| ServeError::BadInput(e.to_string()))?;
        self.infer(input)
    }
}
