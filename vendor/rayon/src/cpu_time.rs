//! Per-thread CPU time, the clock behind task-attributed accounting.
//!
//! On 64-bit Linux this reads `clock_gettime(CLOCK_THREAD_CPUTIME_ID)`
//! through a minimal FFI shim (the build environment has no `libc` crate).
//! The `timespec` layout is only declared where it is unambiguous: every
//! 64-bit Linux target Rust supports is LP64, so `time_t` and `long` are
//! both `i64`. 32-bit targets are *not* given a hand-rolled layout — musl
//! 1.2+ moved them to 64-bit `time_t` while glibc kept 32-bit, so any single
//! declaration would read garbage on the other ABI; they use the wall-clock
//! fallback instead.
//!
//! Downstream, `quadra-serve`'s service-time ledger builds on this clock via
//! [`crate::pool::start_cpu_charge`].

#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
mod imp {
    /// From `linux/time.h`; stable across architectures.
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;

    /// `struct timespec` on LP64 Linux, where `time_t` and `long` are `i64`.
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    extern "C" {
        fn clock_gettime(clock_id: i32, tp: *mut Timespec) -> i32;
    }

    /// Nanoseconds of CPU time consumed by the calling thread.
    pub(super) fn thread_time_ns() -> u64 {
        let mut ts = Timespec { tv_sec: 0, tv_nsec: 0 };
        // Safety: `ts` is a valid, writable timespec for the duration of the
        // call; the clock id is a compile-time constant the kernel accepts.
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        if rc != 0 {
            // EINVAL can only mean the clock id is unsupported (pre-2.6
            // kernels); degrade to wall time rather than return garbage.
            return super::wall::monotonic_ns();
        }
        (ts.tv_sec as u64).saturating_mul(1_000_000_000).saturating_add(ts.tv_nsec as u64)
    }
}

#[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
mod imp {
    //! Portable fallback: monotonic wall time. Callers that sum per-task
    //! segments across threads will overcount descheduled time here, which
    //! is the best portable approximation (and matches the pre-CPU-clock
    //! behavior).

    pub(super) fn thread_time_ns() -> u64 {
        super::wall::monotonic_ns()
    }
}

mod wall {
    //! Monotonic wall-clock nanoseconds against a process-global anchor,
    //! used only when a per-thread CPU clock is unavailable.

    use std::sync::OnceLock;
    use std::time::Instant;

    static ANCHOR: OnceLock<Instant> = OnceLock::new();

    #[cfg_attr(all(target_os = "linux", target_pointer_width = "64"), allow(dead_code))]
    pub(super) fn monotonic_ns() -> u64 {
        let anchor = ANCHOR.get_or_init(Instant::now);
        u64::try_from(anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Nanoseconds of CPU time the calling thread has consumed (monotonic wall
/// time where no per-thread CPU clock is available: non-Linux and 32-bit
/// Linux targets).
pub fn thread_cpu_ns() -> u64 {
    imp::thread_time_ns()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cpu_is_monotonic_nondecreasing() {
        let a = thread_cpu_ns();
        let b = thread_cpu_ns();
        assert!(b >= a);
    }

    #[test]
    fn busy_work_accrues_thread_cpu() {
        let start = thread_cpu_ns();
        let mut acc = 0u64;
        // Burn enough CPU that even a coarse thread clock must advance.
        while thread_cpu_ns().saturating_sub(start) < 2_000_000 {
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc);
        }
        assert!(thread_cpu_ns() - start >= 2_000_000);
    }

    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    #[test]
    fn sleeping_accrues_almost_no_thread_cpu() {
        // The point of a thread CPU clock: blocked time is not counted.
        let start = thread_cpu_ns();
        std::thread::sleep(std::time::Duration::from_millis(60));
        let cpu_ns = thread_cpu_ns() - start;
        assert!(cpu_ns < 30_000_000, "a sleeping thread consumed {cpu_ns}ns of CPU time");
    }
}
