//! Back-propagation modes for quadratic layers.
//!
//! The paper observes (problem **P6**) that QDNN training with the default
//! reverse-mode auto-differentiation keeps *every* intermediate tensor of the
//! quadratic layer alive until the backward pass: the input `X`, both
//! first-order branches `Wa·X` and `Wb·X`, and (for designs with a squared
//! input term) `X²`. Its remedy is a **hybrid back-propagation** scheme: the
//! gradients of the quadratic layer are derived symbolically (Eq. 7 in the
//! paper), so only the layer input has to be cached and the branch activations
//! are recomputed on demand during backward, while the surrounding first-order
//! layers (batch-norm, pooling, ...) keep using ordinary AD.
//!
//! [`BackpropMode`] selects between the two behaviours on every quadratic
//! layer in this crate. The memory profiler ([`crate::profiler`]) measures the
//! difference, reproducing Fig. 8 of the paper.

use serde::{Deserialize, Serialize};

/// How a quadratic layer balances activation caching against recomputation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BackpropMode {
    /// Default auto-differentiation behaviour: cache the input and every
    /// intermediate branch activation produced during forward.
    #[default]
    Default,
    /// Hybrid AD + symbolic differentiation: cache only the layer input and
    /// recompute branch activations inside backward using the closed-form
    /// gradient expressions.
    Hybrid,
}

impl BackpropMode {
    /// Human-readable label used by the benchmark harnesses.
    pub fn label(&self) -> &'static str {
        match self {
            BackpropMode::Default => "default-BP (AD)",
            BackpropMode::Hybrid => "hybrid-BP (AD+SD)",
        }
    }
}

impl std::fmt::Display for BackpropMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mode_is_default_bp() {
        assert_eq!(BackpropMode::default(), BackpropMode::Default);
    }

    #[test]
    fn labels_and_display() {
        assert!(BackpropMode::Default.label().contains("default"));
        assert!(BackpropMode::Hybrid.label().contains("hybrid"));
        assert_eq!(format!("{}", BackpropMode::Hybrid), BackpropMode::Hybrid.label());
    }

    #[test]
    fn serde_roundtrip() {
        for m in [BackpropMode::Default, BackpropMode::Hybrid] {
            let s = serde_json::to_string(&m).unwrap();
            let back: BackpropMode = serde_json::from_str(&s).unwrap();
            assert_eq!(back, m);
        }
    }
}
