//! Error types for tensor operations.

use std::fmt;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors produced by tensor construction and tensor operations.
///
/// The library favours returning `TensorError` over panicking for every error
/// that can be triggered by user-supplied shapes or parameters; internal
/// invariant violations still panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data length.
    ShapeDataMismatch {
        /// Shape requested by the caller.
        shape: Vec<usize>,
        /// Number of elements actually provided.
        data_len: usize,
    },
    /// Two shapes cannot be broadcast together.
    BroadcastMismatch {
        /// Left-hand operand shape.
        lhs: Vec<usize>,
        /// Right-hand operand shape.
        rhs: Vec<usize>,
    },
    /// Shapes are incompatible for the requested operation (matmul, concat, ...).
    IncompatibleShapes {
        /// Human-readable description of the failed operation.
        op: &'static str,
        /// Left-hand operand shape.
        lhs: Vec<usize>,
        /// Right-hand operand shape.
        rhs: Vec<usize>,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// Requested axis.
        axis: usize,
        /// Rank of the tensor.
        ndim: usize,
    },
    /// A reshape changed the total number of elements.
    InvalidReshape {
        /// Original shape.
        from: Vec<usize>,
        /// Requested shape.
        to: Vec<usize>,
    },
    /// The tensor did not have the rank required by an operation.
    RankMismatch {
        /// Operation name.
        op: &'static str,
        /// Expected rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// A convolution / pooling configuration is invalid for the input size.
    InvalidConvConfig {
        /// Human-readable description.
        msg: String,
    },
    /// Generic invalid-argument error.
    InvalidArgument {
        /// Human-readable description.
        msg: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { shape, data_len } => write!(
                f,
                "shape {:?} implies {} elements but {} were provided",
                shape,
                shape.iter().product::<usize>(),
                data_len
            ),
            TensorError::BroadcastMismatch { lhs, rhs } => {
                write!(f, "cannot broadcast shapes {:?} and {:?}", lhs, rhs)
            }
            TensorError::IncompatibleShapes { op, lhs, rhs } => {
                write!(f, "{}: incompatible shapes {:?} and {:?}", op, lhs, rhs)
            }
            TensorError::AxisOutOfRange { axis, ndim } => {
                write!(f, "axis {} out of range for rank-{} tensor", axis, ndim)
            }
            TensorError::InvalidReshape { from, to } => write!(
                f,
                "cannot reshape {:?} ({} elements) into {:?} ({} elements)",
                from,
                from.iter().product::<usize>(),
                to,
                to.iter().product::<usize>()
            ),
            TensorError::RankMismatch { op, expected, actual } => {
                write!(f, "{}: expected rank {} tensor, got rank {}", op, expected, actual)
            }
            TensorError::InvalidConvConfig { msg } => write!(f, "invalid conv config: {}", msg),
            TensorError::InvalidArgument { msg } => write!(f, "invalid argument: {}", msg),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TensorError::ShapeDataMismatch { shape: vec![2, 3], data_len: 5 };
        assert!(e.to_string().contains("6 elements"));
        let e = TensorError::BroadcastMismatch { lhs: vec![2], rhs: vec![3] };
        assert!(e.to_string().contains("broadcast"));
        let e = TensorError::IncompatibleShapes { op: "matmul", lhs: vec![2, 2], rhs: vec![3, 3] };
        assert!(e.to_string().contains("matmul"));
        let e = TensorError::AxisOutOfRange { axis: 4, ndim: 2 };
        assert!(e.to_string().contains("axis 4"));
        let e = TensorError::InvalidReshape { from: vec![2, 2], to: vec![5] };
        assert!(e.to_string().contains("reshape"));
        let e = TensorError::RankMismatch { op: "conv2d", expected: 4, actual: 2 };
        assert!(e.to_string().contains("rank 4"));
        let e = TensorError::InvalidConvConfig { msg: "kernel too large".into() };
        assert!(e.to_string().contains("kernel too large"));
        let e = TensorError::InvalidArgument { msg: "negative probability".into() };
        assert!(e.to_string().contains("negative probability"));
    }

    #[test]
    fn errors_are_comparable_and_cloneable() {
        let a = TensorError::AxisOutOfRange { axis: 1, ndim: 1 };
        let b = a.clone();
        assert_eq!(a, b);
    }
}
