//! Must-use / dropped-Result audit for the serve public API.
//!
//! Two checks over the crates listed in `must_use_crates`:
//!
//! - **missing-attr** — a `pub struct` returned by value from a fully-`pub`
//!   function must carry `#[must_use]`: silently dropping a client, builder,
//!   or server handle either leaks a resource or (for `InferenceServer`)
//!   shuts it down on the spot.
//! - **let-underscore** — `let _ = ...` explicitly discards a value; each
//!   site must carry a suppression stating why the discard is sound
//!   (e.g. a reply send whose receiver may have legitimately hung up).

use crate::config::AnalyzeConfig;
use crate::report::Finding;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Run the pass over all files of one crate (needs the whole crate to pair
/// return types in one file with struct definitions in another).
pub fn run(files: &[&SourceFile], cfg: &AnalyzeConfig, findings: &mut Vec<Finding>) {
    let crate_name = match files.first() {
        Some(f) => f.crate_name.clone(),
        None => return,
    };
    if !cfg.must_use_crates.iter().any(|c| c == &crate_name) {
        return;
    }
    // Pass A: collect pub structs and whether they carry #[must_use].
    // struct name -> (file, line, has_attr)
    let mut structs: BTreeMap<String, (String, u32, bool)> = BTreeMap::new();
    for file in files {
        let toks = &file.toks;
        for i in 0..toks.len() {
            if file.is_test_tok(i) || !toks[i].is_ident("struct") {
                continue;
            }
            if i == 0 || !toks[i - 1].is_ident("pub") {
                continue; // includes pub(crate): previous token is `)`
            }
            let Some(name_tok) = toks.get(i + 1) else { continue };
            if name_tok.kind != crate::lexer::TokKind::Ident {
                continue;
            }
            // Scan the attribute block(s) above the item for `must_use`.
            let mut has_attr = false;
            let mut j = i - 1; // at `pub`
            while j >= 2 && toks[j - 1].is_punct(']') {
                let mut depth = 1usize;
                let mut k = j - 1;
                while k > 0 && depth > 0 {
                    k -= 1;
                    if toks[k].is_punct(']') {
                        depth += 1;
                    } else if toks[k].is_punct('[') {
                        depth -= 1;
                    }
                }
                if k == 0 || !toks[k - 1].is_punct('#') {
                    break;
                }
                if toks[k..j - 1].iter().any(|t| t.is_ident("must_use")) {
                    has_attr = true;
                }
                j = k - 1;
                if j == 0 {
                    break;
                }
            }
            structs.insert(name_tok.text.clone(), (file.path.clone(), name_tok.line, has_attr));
        }
    }
    // Pass B: find pub fns returning one of those structs by value.
    let mut flagged: BTreeSet<String> = BTreeSet::new();
    for file in files {
        let toks = &file.toks;
        for i in 0..toks.len() {
            if file.is_test_tok(i) || !toks[i].is_ident("fn") {
                continue;
            }
            if i == 0 || !toks[i - 1].is_ident("pub") {
                continue;
            }
            // Find `->` in the signature (before the body `{` or `;`).
            let mut j = i + 1;
            let mut ret_at = None;
            while j + 1 < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                if toks[j].is_punct('-') && toks[j + 1].is_punct('>') {
                    ret_at = Some(j + 2);
                    break;
                }
                j += 1;
            }
            let Some(mut r) = ret_at else { continue };
            // Unwrap `Result<T, ..>` / `Option<T>` / `Vec<T>` wrappers down
            // to the first by-value type; stop at references and impl Trait.
            let name = loop {
                let Some(t) = toks.get(r) else { break None };
                if t.is_punct('&') || t.is_ident("impl") || t.is_ident("dyn") || t.is_punct('(') {
                    break None;
                }
                if t.kind != crate::lexer::TokKind::Ident {
                    break None;
                }
                if matches!(t.text.as_str(), "Result" | "Option" | "Vec" | "Box" | "Arc")
                    && toks.get(r + 1).is_some_and(|n| n.is_punct('<'))
                {
                    r += 2;
                    continue;
                }
                break Some(t.text.clone());
            };
            let Some(name) = name else { continue };
            if let Some((def_file, def_line, has_attr)) = structs.get(&name) {
                if !has_attr && flagged.insert(name.clone()) {
                    findings.push(Finding {
                        pass: "must_use".to_string(),
                        check: "missing-attr".to_string(),
                        file: def_file.clone(),
                        line: *def_line,
                        message: format!(
                            "`{name}` is returned by value from a pub fn but is not `#[must_use]`"
                        ),
                        snippet: String::new(),
                        suppressed_reason: None,
                    });
                }
            }
        }
    }
    // Pass C: `let _ = ...` discards.
    for file in files {
        let toks = &file.toks;
        for i in 0..toks.len() {
            if file.is_test_tok(i) || !toks[i].is_ident("let") {
                continue;
            }
            let underscore = toks.get(i + 1).is_some_and(|t| t.is_ident("_"));
            let eq = toks.get(i + 2).is_some_and(|t| t.is_punct('='));
            if underscore && eq {
                findings.push(Finding {
                    pass: "must_use".to_string(),
                    check: "let-underscore".to_string(),
                    file: file.path.clone(),
                    line: toks[i].line,
                    message: "`let _ =` discards a result; justify with a suppression or handle it"
                        .to_string(),
                    snippet: file.line_text(toks[i].line).to_string(),
                    suppressed_reason: None,
                });
            }
        }
    }
}
