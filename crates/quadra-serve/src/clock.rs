//! The sanctioned clock for service-time accounting.
//!
//! The DRR fair-share ledger charges each endpoint for the time its batches
//! actually occupy a worker. Today that is monotonic wall time, but the
//! ROADMAP plans to migrate the ledger to per-thread CPU time
//! (`CLOCK_THREAD_CPUTIME_ID`) so that a worker descheduled by the OS does
//! not get billed for time it never computed. This module is the seam for
//! that migration: every ledger and service-metrics read goes through
//! [`service_now`]/[`elapsed_us`], so swapping the clock source is a
//! one-file change.
//!
//! The static-analysis gate enforces the discipline: a raw `Instant::now()`
//! or `.elapsed()` inside the ledger functions (see
//! `quadra-analyze`'s workspace config) is a `clock:raw-instant` /
//! `clock:raw-elapsed` finding.

use std::time::Instant;

/// An opaque timestamp from the service clock. Deliberately *not* an
/// `Instant` so arithmetic cannot bypass this module.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ServiceInstant(Instant);

/// Read the service clock.
pub(crate) fn service_now() -> ServiceInstant {
    ServiceInstant(Instant::now())
}

/// Whole microseconds of service time elapsed since `start`, saturating.
pub(crate) fn elapsed_us(start: ServiceInstant) -> u64 {
    u64::try_from(start.0.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic_nondecreasing() {
        let start = service_now();
        let a = elapsed_us(start);
        let b = elapsed_us(start);
        assert!(b >= a);
    }
}
