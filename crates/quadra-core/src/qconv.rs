//! Quadratic 2-D convolution layers — the encapsulated quadratic layer modules
//! of QuadraLib (`qua.type#()` in the paper's API), generalised to every
//! practical neuron type.
//!
//! T1 and T1&2 are deliberately *not* offered as convolution layers: their
//! full-rank bilinear weight is a `C·r⁴·N·C` tensor (problem **P2**), which the
//! paper reports blowing a 0.2 M-parameter ResNet up to 128 M parameters — the
//! very reason those designs are impractical for deep models. Requesting one
//! panics with an explanatory message.

use crate::hybrid_bp::BackpropMode;
use crate::neuron::NeuronType;
use quadra_nn::{Layer, Param};
use quadra_tensor::{Conv2dParams, InitKind, Tensor};
use rand::Rng;

/// A quadratic convolution layer over NCHW tensors.
///
/// For the proposed design ("Ours") the forward pass is
/// `Y = conv(X, Wa) ∘ conv(X, Wb) + conv(X, Wc) + b`, i.e. three ordinary
/// convolutions plus element-wise arithmetic — which is why it is as
/// implementation-friendly as a first-order layer (design insight 4 of the
/// paper). The other supported types drop or alter individual branches.
pub struct QuadraticConv2d {
    neuron_type: NeuronType,
    mode: BackpropMode,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    conv: Conv2dParams,
    wa: Option<Param>,
    wb: Option<Param>,
    wc: Option<Param>,
    bias: Param,
    // Caches.
    cached_x: Option<Tensor>,
    cached_za: Option<Tensor>,
    cached_zb: Option<Tensor>,
    flops: usize,
}

impl QuadraticConv2d {
    /// Create a quadratic convolution layer.
    ///
    /// # Panics
    /// Panics for [`NeuronType::T1`] / [`NeuronType::T1And2`] (see module docs)
    /// and for [`NeuronType::T4Identity`] when the configuration would change
    /// the tensor shape (identity mapping requires equal input/output shape).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        neuron_type: NeuronType,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        groups: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            !matches!(neuron_type, NeuronType::T1 | NeuronType::T1And2),
            "{} convolution is not supported: its full-rank bilinear weight is O(n^2) per neuron \
             (problem P2 in the paper) and cannot be assembled from first-order convolutions (P4)",
            neuron_type.name()
        );
        if neuron_type == NeuronType::T4Identity {
            assert!(
                in_channels == out_channels && stride == 1 && padding * 2 + 1 == kernel,
                "T4+Identity requires shape-preserving convolution (in==out channels, stride 1, 'same' padding)"
            );
        }
        let fan_in = (in_channels / groups) * kernel * kernel;
        let fan_out = (out_channels / groups) * kernel * kernel;
        let mut mk = |name: &str| {
            Param::new(
                name,
                Tensor::init(
                    &[out_channels, in_channels / groups, kernel, kernel],
                    InitKind::KaimingNormal,
                    fan_in,
                    fan_out,
                    rng,
                ),
            )
        };
        let needs_b = matches!(
            neuron_type,
            NeuronType::T4 | NeuronType::T4Identity | NeuronType::T2And4 | NeuronType::Ours
        );
        let needs_c = matches!(neuron_type, NeuronType::T2And4 | NeuronType::Ours);
        let wa = Some(mk("qconv.wa"));
        let wb = needs_b.then(|| mk("qconv.wb"));
        let wc = needs_c.then(|| mk("qconv.wc"));
        QuadraticConv2d {
            neuron_type,
            mode: BackpropMode::Default,
            in_channels,
            out_channels,
            kernel,
            conv: Conv2dParams::new(stride, padding, groups),
            wa,
            wb,
            wc,
            bias: Param::new_no_decay("qconv.bias", Tensor::zeros(&[out_channels])),
            cached_x: None,
            cached_za: None,
            cached_zb: None,
            flops: 0,
        }
    }

    /// Standard 3×3 shape-preserving quadratic convolution.
    pub fn conv3x3(
        neuron_type: NeuronType,
        in_channels: usize,
        out_channels: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self::new(neuron_type, in_channels, out_channels, 3, 1, 1, 1, rng)
    }

    /// The neuron design of this layer.
    pub fn neuron_type(&self) -> NeuronType {
        self.neuron_type
    }

    /// Select the back-propagation mode.
    pub fn set_mode(&mut self, mode: BackpropMode) {
        self.mode = mode;
    }

    /// The current back-propagation mode.
    pub fn mode(&self) -> BackpropMode {
        self.mode
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel side length.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Convolution hyper-parameters.
    pub fn conv_params(&self) -> Conv2dParams {
        self.conv
    }

    fn conv_branch(&self, x: &Tensor, w: &Option<Param>) -> Tensor {
        x.conv2d(&w.as_ref().expect("branch weight").value, None, self.conv).expect("conv shapes")
    }

    fn branch_flops(&self, x: &Tensor, y: &Tensor) -> usize {
        let n = x.shape()[0];
        let (oh, ow) = (y.shape()[2], y.shape()[3]);
        n * self.out_channels * oh * ow * (self.in_channels / self.conv.groups) * self.kernel * self.kernel
    }
}

impl Layer for QuadraticConv2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.ndim(), 4, "QuadraticConv2d expects NCHW input");
        let (mut out, za, zb, nbranches) = match self.neuron_type {
            NeuronType::T2 => {
                let y = self.conv_branch(&x.square(), &self.wa);
                (y, None, None, 1)
            }
            NeuronType::T3 => {
                let za = self.conv_branch(x, &self.wa);
                (za.square(), Some(za), None, 1)
            }
            NeuronType::T4 => {
                let za = self.conv_branch(x, &self.wa);
                let zb = self.conv_branch(x, &self.wb);
                (za.mul(&zb).expect("shape"), Some(za), Some(zb), 2)
            }
            NeuronType::T4Identity => {
                let za = self.conv_branch(x, &self.wa);
                let zb = self.conv_branch(x, &self.wb);
                (za.mul(&zb).expect("shape").add(x).expect("shape"), Some(za), Some(zb), 2)
            }
            NeuronType::T2And4 => {
                let za = self.conv_branch(x, &self.wa);
                let zb = self.conv_branch(x, &self.wb);
                let sq = self.conv_branch(&x.square(), &self.wc);
                (za.mul(&zb).expect("shape").add(&sq).expect("shape"), Some(za), Some(zb), 3)
            }
            NeuronType::Ours => {
                let za = self.conv_branch(x, &self.wa);
                let zb = self.conv_branch(x, &self.wb);
                let lin = self.conv_branch(x, &self.wc);
                (za.mul(&zb).expect("shape").add(&lin).expect("shape"), Some(za), Some(zb), 3)
            }
            NeuronType::T1 | NeuronType::T1And2 => unreachable!("rejected in constructor"),
        };
        // Per-channel bias.
        let bias = self.bias.value.reshape(&[1, self.out_channels, 1, 1]).expect("bias shape");
        out = out.add(&bias).expect("bias broadcast");
        self.flops = nbranches * self.branch_flops(x, &out);

        self.cached_x = Some(x.clone());
        match self.mode {
            BackpropMode::Default => {
                self.cached_za = za;
                self.cached_zb = zb;
            }
            BackpropMode::Hybrid => {
                self.cached_za = None;
                self.cached_zb = None;
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_x.take().expect("backward called before forward");
        self.bias.accumulate_grad(&Tensor::conv2d_backward_bias(grad_out).expect("bias grad"));

        let conv = self.conv;
        let mut grad_in = Tensor::zeros(x.shape());

        // Contribution of a branch y = conv(x_used, w) receiving gradient branch_grad.
        let conv_branch_backward = |w: &mut Option<Param>,
                                    branch_grad: &Tensor,
                                    grad_in: &mut Tensor,
                                    x_used: &Tensor,
                                    x_is_square: bool,
                                    x_orig: &Tensor| {
            let w = w.as_mut().expect("branch weight");
            let gw = Tensor::conv2d_backward_weight(branch_grad, x_used, w.value.shape(), conv)
                .expect("conv weight grad");
            w.accumulate_grad(&gw);
            let gx = Tensor::conv2d_backward_input(branch_grad, &w.value, x_used.shape(), conv)
                .expect("conv input grad");
            if x_is_square {
                // d(x²)/dx = 2x
                let gx = gx.mul(&x_orig.mul_scalar(2.0)).expect("shape");
                grad_in.add_assign(&gx).expect("shape");
            } else {
                grad_in.add_assign(&gx).expect("shape");
            }
        };

        match self.neuron_type {
            NeuronType::T2 => {
                let xsq = x.square();
                conv_branch_backward(&mut self.wa, grad_out, &mut grad_in, &xsq, true, &x);
            }
            NeuronType::T3 => {
                let za = match self.cached_za.take() {
                    Some(z) => z,
                    None => self.conv_branch(&x, &self.wa),
                };
                let gz = grad_out.mul(&za.mul_scalar(2.0)).expect("shape");
                conv_branch_backward(&mut self.wa, &gz, &mut grad_in, &x, false, &x);
            }
            NeuronType::T4 | NeuronType::T4Identity | NeuronType::T2And4 | NeuronType::Ours => {
                let za = match self.cached_za.take() {
                    Some(z) => z,
                    None => self.conv_branch(&x, &self.wa),
                };
                let zb = match self.cached_zb.take() {
                    Some(z) => z,
                    None => self.conv_branch(&x, &self.wb),
                };
                let ga = grad_out.mul(&zb).expect("shape");
                let gb = grad_out.mul(&za).expect("shape");
                conv_branch_backward(&mut self.wa, &ga, &mut grad_in, &x, false, &x);
                conv_branch_backward(&mut self.wb, &gb, &mut grad_in, &x, false, &x);
                match self.neuron_type {
                    NeuronType::T4Identity => {
                        grad_in.add_assign(grad_out).expect("shape");
                    }
                    NeuronType::T2And4 => {
                        let xsq = x.square();
                        conv_branch_backward(&mut self.wc, grad_out, &mut grad_in, &xsq, true, &x);
                    }
                    NeuronType::Ours => {
                        conv_branch_backward(&mut self.wc, grad_out, &mut grad_in, &x, false, &x);
                    }
                    _ => {}
                }
            }
            NeuronType::T1 | NeuronType::T1And2 => unreachable!("rejected in constructor"),
        }
        grad_in
    }

    fn params(&self) -> Vec<&Param> {
        let mut p = Vec::new();
        for w in [&self.wa, &self.wb, &self.wc].into_iter().flatten() {
            p.push(w);
        }
        p.push(&self.bias);
        p
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = Vec::new();
        for w in [&mut self.wa, &mut self.wb, &mut self.wc].into_iter().flatten() {
            p.push(w);
        }
        p.push(&mut self.bias);
        p
    }

    fn cached_bytes(&self) -> usize {
        self.cached_x.as_ref().map(|t| t.nbytes()).unwrap_or(0)
            + self.cached_za.as_ref().map(|t| t.nbytes()).unwrap_or(0)
            + self.cached_zb.as_ref().map(|t| t.nbytes()).unwrap_or(0)
    }

    fn clear_cache(&mut self) {
        self.cached_x = None;
        self.cached_za = None;
        self.cached_zb = None;
    }

    fn flops_last_forward(&self) -> usize {
        self.flops
    }

    fn set_memory_saving(&mut self, enabled: bool) {
        self.mode = if enabled { BackpropMode::Hybrid } else { BackpropMode::Default };
    }

    fn memory_saving(&self) -> bool {
        self.mode == BackpropMode::Hybrid
    }

    fn layer_type(&self) -> &'static str {
        "quadratic_conv2d"
    }

    fn describe(&self) -> String {
        format!(
            "quadratic_conv2d[{}] {}→{} k{} ({} params, {})",
            self.neuron_type.name(),
            self.in_channels,
            self.out_channels,
            self.kernel,
            self.param_count(),
            self.mode
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadra_autograd::{check_close, numeric_gradient};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(44)
    }

    const CONV_TYPES: [NeuronType; 6] = [
        NeuronType::T2,
        NeuronType::T3,
        NeuronType::T4,
        NeuronType::T4Identity,
        NeuronType::T2And4,
        NeuronType::Ours,
    ];

    /// Reference forward used by the finite-difference checks.
    fn reference_forward(layer: &QuadraticConv2d, x: &Tensor) -> Tensor {
        let p = layer.conv;
        let get = |w: &Option<Param>| w.as_ref().unwrap().value.clone();
        let out = match layer.neuron_type {
            NeuronType::T2 => x.square().conv2d(&get(&layer.wa), None, p).unwrap(),
            NeuronType::T3 => x.conv2d(&get(&layer.wa), None, p).unwrap().square(),
            NeuronType::T4 => {
                let a = x.conv2d(&get(&layer.wa), None, p).unwrap();
                let b = x.conv2d(&get(&layer.wb), None, p).unwrap();
                a.mul(&b).unwrap()
            }
            NeuronType::T4Identity => {
                let a = x.conv2d(&get(&layer.wa), None, p).unwrap();
                let b = x.conv2d(&get(&layer.wb), None, p).unwrap();
                a.mul(&b).unwrap().add(x).unwrap()
            }
            NeuronType::T2And4 => {
                let a = x.conv2d(&get(&layer.wa), None, p).unwrap();
                let b = x.conv2d(&get(&layer.wb), None, p).unwrap();
                a.mul(&b).unwrap().add(&x.square().conv2d(&get(&layer.wc), None, p).unwrap()).unwrap()
            }
            NeuronType::Ours => {
                let a = x.conv2d(&get(&layer.wa), None, p).unwrap();
                let b = x.conv2d(&get(&layer.wb), None, p).unwrap();
                a.mul(&b).unwrap().add(&x.conv2d(&get(&layer.wc), None, p).unwrap()).unwrap()
            }
            _ => unreachable!(),
        };
        let bias = layer.bias.value.reshape(&[1, layer.out_channels, 1, 1]).unwrap();
        out.add(&bias).unwrap()
    }

    #[test]
    fn forward_matches_reference_for_all_conv_types() {
        let mut r = rng();
        for t in CONV_TYPES {
            let mut layer = QuadraticConv2d::conv3x3(t, 2, 2, &mut r);
            let x = Tensor::randn(&[2, 2, 6, 6], 0.0, 1.0, &mut r);
            let y = layer.forward(&x, true);
            assert!(y.allclose(&reference_forward(&layer, &x), 1e-4), "type {}", t);
            assert_eq!(y.shape(), &[2, 2, 6, 6]);
            assert!(layer.flops_last_forward() > 0);
        }
    }

    #[test]
    fn backward_input_gradcheck_all_conv_types() {
        let mut r = rng();
        for t in CONV_TYPES {
            let mut layer = QuadraticConv2d::conv3x3(t, 2, 2, &mut r);
            let x = Tensor::randn(&[1, 2, 4, 4], 0.0, 1.0, &mut r);
            let y = layer.forward(&x, true);
            let gin = layer.backward(&Tensor::ones_like(&y));
            let lref = &layer;
            let numeric = numeric_gradient(|xv| reference_forward(lref, xv).sum(), &x, 1e-2);
            let rep = check_close(&gin, &numeric);
            assert!(rep.passes(8e-2), "type {}: {:?}", t, rep);
        }
    }

    #[test]
    fn backward_weight_gradcheck_ours() {
        let mut r = rng();
        let mut layer = QuadraticConv2d::conv3x3(NeuronType::Ours, 2, 2, &mut r);
        let x = Tensor::randn(&[2, 2, 4, 4], 0.0, 1.0, &mut r);
        let y = layer.forward(&x, true);
        layer.backward(&Tensor::ones_like(&y));
        for idx in 0..3 {
            let analytic = layer.params()[idx].grad.clone();
            let x2 = x.clone();
            let p = layer.conv;
            let wa = layer.wa.as_ref().unwrap().value.clone();
            let wb = layer.wb.as_ref().unwrap().value.clone();
            let wc = layer.wc.as_ref().unwrap().value.clone();
            let f = move |w: &Tensor| {
                let (wa, wb, wc) = match idx {
                    0 => (w.clone(), wb.clone(), wc.clone()),
                    1 => (wa.clone(), w.clone(), wc.clone()),
                    _ => (wa.clone(), wb.clone(), w.clone()),
                };
                let a = x2.conv2d(&wa, None, p).unwrap();
                let b = x2.conv2d(&wb, None, p).unwrap();
                a.mul(&b).unwrap().add(&x2.conv2d(&wc, None, p).unwrap()).unwrap().sum()
            };
            let numeric = numeric_gradient(f, &layer.params()[idx].value, 1e-2);
            let rep = check_close(&analytic, &numeric);
            assert!(rep.passes(1e-1), "weight {}: {:?}", idx, rep);
        }
    }

    #[test]
    fn hybrid_mode_identical_gradients_lower_memory() {
        let mut r = rng();
        let mut d = QuadraticConv2d::conv3x3(NeuronType::Ours, 3, 4, &mut r);
        let mut h = QuadraticConv2d::conv3x3(NeuronType::Ours, 3, 4, &mut r);
        for (pd, ph) in d.params().iter().zip(h.params_mut()) {
            ph.value.copy_from(&pd.value).unwrap();
        }
        h.set_mode(BackpropMode::Hybrid);
        let x = Tensor::randn(&[2, 3, 8, 8], 0.0, 1.0, &mut r);
        let yd = d.forward(&x, true);
        let yh = h.forward(&x, true);
        assert!(yd.allclose(&yh, 1e-5));
        // Default caches x + za + zb; hybrid only x.
        assert_eq!(h.cached_bytes(), x.nbytes());
        assert!(d.cached_bytes() > h.cached_bytes());
        let g = Tensor::randn(yd.shape(), 0.0, 1.0, &mut r);
        let gd = d.backward(&g);
        let gh = h.backward(&g);
        assert!(gd.allclose(&gh, 1e-4));
        for (pd, ph) in d.params().iter().zip(h.params()) {
            assert!(pd.grad.allclose(&ph.grad, 1e-4));
        }
    }

    #[test]
    fn ours_conv_param_count_is_three_first_order_convs() {
        let mut r = rng();
        let layer = QuadraticConv2d::conv3x3(NeuronType::Ours, 16, 32, &mut r);
        let first_order = 32 * 16 * 9;
        assert_eq!(layer.param_count(), 3 * first_order + 32);
        assert_eq!(layer.neuron_type(), NeuronType::Ours);
        assert_eq!(layer.in_channels(), 16);
        assert_eq!(layer.out_channels(), 32);
        assert_eq!(layer.kernel(), 3);
        assert_eq!(layer.layer_type(), "quadratic_conv2d");
        assert!(layer.describe().contains("Ours"));
    }

    #[test]
    fn strided_and_grouped_quadratic_conv() {
        let mut r = rng();
        let mut layer = QuadraticConv2d::new(NeuronType::Ours, 4, 8, 3, 2, 1, 2, &mut r);
        let x = Tensor::randn(&[1, 4, 8, 8], 0.0, 1.0, &mut r);
        let y = layer.forward(&x, true);
        assert_eq!(y.shape(), &[1, 8, 4, 4]);
        let gin = layer.backward(&Tensor::ones_like(&y));
        assert_eq!(gin.shape(), x.shape());
        assert!(!gin.has_non_finite());
        assert_eq!(layer.conv_params().groups, 2);
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn t1_conv_is_rejected() {
        let mut r = rng();
        let _ = QuadraticConv2d::conv3x3(NeuronType::T1, 2, 2, &mut r);
    }

    #[test]
    #[should_panic]
    fn t4_identity_requires_shape_preserving_config() {
        let mut r = rng();
        let _ = QuadraticConv2d::new(NeuronType::T4Identity, 2, 4, 3, 1, 1, 1, &mut r);
    }

    #[test]
    fn cache_lifecycle() {
        let mut r = rng();
        let mut layer = QuadraticConv2d::conv3x3(NeuronType::T2, 1, 1, &mut r);
        let x = Tensor::randn(&[1, 1, 4, 4], 0.0, 1.0, &mut r);
        let _ = layer.forward(&x, true);
        assert!(layer.cached_bytes() > 0);
        layer.clear_cache();
        assert_eq!(layer.cached_bytes(), 0);
        assert_eq!(layer.mode(), BackpropMode::Default);
    }
}
