//! Worker threads: each owns one replica of its endpoint's model, pulls
//! batches straight from the admission queue through the scheduler the moment
//! it goes idle, executes them in eval mode, splits outputs per request, and
//! applies hot-reloaded state between batches.

use crate::endpoint::EndpointShared;
use crate::request::{InferResponse, ServeError};
use crate::scheduler::{self, assemble, Batch};
use crate::sync::lock_or_recover;
use quadra_core::MemoryProfiler;
use quadra_nn::{Layer, StateDict};
use quadra_tensor::Tensor;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Builds one model replica. Called on each worker thread, so the models
/// themselves never cross a thread boundary and the `Layer` trait needs no
/// `Send` bound.
pub(crate) type ModelFactory = dyn Fn() -> Box<dyn Layer> + Send + Sync;

/// The published checkpoint workers swap in between batches.
///
/// The fast path is a single atomic load per batch; only a version change
/// takes the lock. State dicts are validated against a throwaway replica
/// before being published, so applying them on a worker cannot fail.
pub(crate) struct ReloadSlot {
    version: AtomicU64,
    state: Mutex<Option<Arc<StateDict>>>,
}

impl ReloadSlot {
    pub fn new() -> Self {
        ReloadSlot { version: AtomicU64::new(0), state: Mutex::new(None) }
    }

    /// Current state version (0 = initial factory weights).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// Publish a validated state dict, returning the new version.
    pub fn publish(&self, state: StateDict) -> u64 {
        let mut guard = lock_or_recover(&self.state);
        *guard = Some(Arc::new(state));
        self.version.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// The latest (version, state) pair, read consistently.
    fn latest(&self) -> (u64, Option<Arc<StateDict>>) {
        let guard = lock_or_recover(&self.state);
        (self.version.load(Ordering::SeqCst), guard.clone())
    }

    /// Bring `model` up to the latest published state if `local` is stale.
    /// Returns the version the model now holds.
    pub fn apply_if_newer(&self, model: &mut dyn Layer, local: u64) -> u64 {
        if self.version.load(Ordering::SeqCst) == local {
            return local;
        }
        self.force_apply(model)
    }

    /// Unconditionally load the latest published state (used when a replica
    /// is first built or rebuilt after a panic). Returns its version.
    // quadra-analyze: allow(panic_path:expect, state dicts are validated against a throwaway replica before publish so load_into cannot fail here)
    pub fn force_apply(&self, model: &mut dyn Layer) -> u64 {
        let (version, state) = self.latest();
        if let Some(state) = state {
            state.load_into(model).expect("hot-reload state was validated at publish time");
        }
        version
    }
}

// quadra-analyze: allow(hot_alloc:to-string, cold path: runs only when a model forward panicked and the replica is being rebuilt)
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model panicked".to_string()
    }
}

/// The worker thread body: pull a batch (blocking until the endpoint has work
/// and the fair-share gate opens), execute it, settle the service-time books,
/// repeat until the queue is closed and drained.
pub(crate) fn run(factory: Arc<ModelFactory>, shared: Arc<EndpointShared>) {
    let mut model = factory();
    let mut version = shared.reload.force_apply(model.as_mut());
    // The guard settles the fair-share grant even if this thread unwinds
    // past `execute`'s catch (e.g. a poisoned lock): a leaked grant would
    // otherwise wedge the fleet's execution gate permanently.
    while let Some((batch, mut guard)) = scheduler::next_batch(&shared) {
        version = shared.reload.apply_if_newer(model.as_mut(), version);
        guard.start_execution();
        let outcome = execute(model.as_mut(), batch, version, &shared);
        let actual_us = guard.finish();
        shared.metrics.record_service(actual_us);
        if outcome.is_ok() {
            // Feed the batch-cost EWMA from the same settled figure the DRR
            // books use, so estimates and charges can never drift apart.
            shared.record_batch_service(Duration::from_micros(actual_us));
        }
        if outcome.is_err() {
            // The replica's caches may be inconsistent after an unwound
            // forward; rebuild it from scratch and re-apply the latest state.
            model = factory();
            version = shared.reload.force_apply(model.as_mut());
        }
    }
}

/// Run one batch on `model`, replying to every request. `Err` means the
/// forward pass panicked and the replica must be rebuilt.
fn execute(model: &mut dyn Layer, batch: Batch, version: u64, shared: &EndpointShared) -> Result<(), ()> {
    let (input, counts) = match assemble(&batch.requests) {
        Ok(assembled) => assembled,
        Err(err) => {
            // A malformed batch is a dispatch bug, not a replica fault: answer
            // every rider with the error and keep the replica.
            shared.metrics.record_errors(batch.requests.len());
            for request in &batch.requests {
                // quadra-analyze: allow(must_use, a dropped receiver means the client stopped waiting)
                let _ = request.reply.send(Err(err.clone()));
            }
            return Ok(());
        }
    };
    let batch_samples = batch.samples();
    match catch_unwind(AssertUnwindSafe(|| model.forward(&input, false))) {
        Ok(output) => {
            let done_at = Instant::now();
            let attributed = MemoryProfiler::new().inference_report_for(&shared.name, model, &input, &output);
            model.clear_cache();
            // Phase 1: split the batch output into per-request row views and
            // collect latencies, borrowing the requests — responses are built
            // in phase 2, which consumes them, so tags move instead of
            // deep-copying.
            let mut latencies = Vec::with_capacity(batch.requests.len());
            let mut outcomes: Vec<Result<Tensor, ServeError>> = Vec::with_capacity(batch.requests.len());
            let mut split_errors = 0;
            let mut offset = 0;
            for (request, n) in batch.requests.iter().zip(counts) {
                let start = offset;
                offset += n;
                match output.narrow(0, start, n) {
                    Ok(rows) => {
                        latencies.push((done_at.duration_since(request.submitted_at), request.priority));
                        outcomes.push(Ok(rows));
                    }
                    Err(e) => {
                        split_errors += 1;
                        // quadra-analyze: allow(hot_alloc:format, split failure is a dispatch bug, not steady-state traffic)
                        let msg = format!("per-request split failed: {e}");
                        outcomes.push(Err(ServeError::WorkerFailed(msg)));
                    }
                }
            }
            // Record before replying so a metrics snapshot taken by a caller
            // that just received its response always includes it.
            shared.metrics.record_batch(batch_samples, &latencies, attributed.report.peak_activation_bytes);
            if split_errors > 0 {
                shared.metrics.record_errors(split_errors);
            }
            // Phase 2: consume the requests, moving each tag into its reply.
            let (batch_id, formed_at) = (batch.id, batch.formed_at);
            for (request, outcome) in batch.requests.into_iter().zip(outcomes) {
                let reply = outcome.map(|rows| InferResponse {
                    id: request.id,
                    model: shared.name.clone(),
                    priority: request.priority,
                    tag: request.tag,
                    output: rows,
                    model_version: version,
                    batch_id,
                    batch_samples,
                    queue_wait: formed_at.duration_since(request.submitted_at),
                    latency: done_at.duration_since(request.submitted_at),
                });
                // A dropped receiver just means the client stopped waiting.
                // quadra-analyze: allow(must_use, a dropped receiver means the client stopped waiting)
                let _ = request.reply.send(reply);
            }
            Ok(())
        }
        Err(payload) => {
            let message = panic_message(payload);
            shared.metrics.record_errors(batch.requests.len());
            for request in &batch.requests {
                // quadra-analyze: allow(must_use, a dropped receiver means the client stopped waiting)
                let _ = request.reply.send(Err(ServeError::WorkerFailed(message.clone())));
            }
            Err(())
        }
    }
}
