//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde
//! stub, written against the bare `proc_macro` API (the container has no
//! network, so `syn`/`quote` are unavailable).
//!
//! Supported shapes — exactly what QuadraLib-rs derives on:
//! * structs with named fields → JSON object keyed by field name,
//! * newtype structs (`struct N(T);`) → the inner value, transparently,
//! * tuple structs (`struct P(A, B, …);`) → JSON array `[a, b, …]`,
//! * any of the struct shapes with **one type parameter**
//!   (`struct S<T> { … }`, `struct W<T>(T);`) — the impls bound the
//!   parameter by the derived trait, matching serde's default behaviour,
//! * enums with unit variants → JSON string of the variant name,
//! * enums with struct variants → externally tagged `{"Variant": {fields…}}`,
//! * enums with tuple variants → `{"Variant": value}` (1 field) or
//!   `{"Variant": [v0, v1, …]}` (n fields).
//!
//! These match serde's default representations, so any JSON produced here
//! stays readable by the real serde should the workspace ever go online.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A single type parameter on a struct: its name plus any bounds declared on
/// the definition (which the generated impl must repeat to name the type).
#[derive(Debug)]
struct TypeParam {
    name: String,
    bounds: Option<String>,
}

#[derive(Debug)]
enum Shape {
    Struct { name: String, generic: Option<TypeParam>, fields: Vec<String> },
    TupleStruct { name: String, generic: Option<TypeParam>, arity: usize },
    Enum { name: String, variants: Vec<Variant> },
}

impl Shape {
    /// `impl` header pieces for the given trait: the generics clause (the
    /// type parameter bounded by its declared bounds plus the derived trait,
    /// matching serde's default) and the self type.
    fn impl_parts(&self, trait_name: &str) -> (String, String) {
        let (name, generic) = match self {
            Shape::Struct { name, generic, .. } => (name, generic.as_ref()),
            Shape::TupleStruct { name, generic, .. } => (name, generic.as_ref()),
            Shape::Enum { name, .. } => (name, None),
        };
        match generic {
            Some(TypeParam { name: param, bounds }) => {
                let declared = bounds.as_ref().map(|b| format!("{b} + ")).unwrap_or_default();
                (format!("<{param}: {declared}::serde::{trait_name}>"), format!("{name}<{param}>"))
            }
            None => (String::new(), name.clone()),
        }
    }
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_ident(tt: &TokenTree, name: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == name)
}

/// Skip `#[...]` attributes (doc comments arrive in this form too).
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len()
        && is_punct(&tokens[i], '#')
        && matches!(&tokens[i + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
    {
        i += 2;
    }
    // A trailing lone `#` cannot start an attribute; leave it for the caller.
    i
}

/// Skip `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if i < tokens.len() && is_ident(&tokens[i], "pub") {
        i += 1;
        if i < tokens.len()
            && matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Split a comma-separated token list at top level (groups keep their commas).
fn split_top_level_commas(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut depth = 0i32;
    for tt in tokens {
        match &tt {
            TokenTree::Punct(p) if depth == 0 && p.as_char() == ',' => {
                if !current.is_empty() {
                    out.push(std::mem::take(&mut current));
                }
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Field names of a `{ name: Type, ... }` body.
fn parse_named_fields(body: &proc_macro::Group) -> Vec<String> {
    let mut fields = Vec::new();
    for entry in split_top_level_commas(body.stream().into_iter().collect()) {
        let mut i = skip_attrs(&entry, 0);
        i = skip_visibility(&entry, i);
        if let Some(TokenTree::Ident(name)) = entry.get(i) {
            if entry.get(i + 1).is_some_and(|t| is_punct(t, ':')) {
                fields.push(name.to_string());
            }
        }
    }
    fields
}

fn parse_variants(body: &proc_macro::Group) -> Vec<Variant> {
    let mut variants = Vec::new();
    for entry in split_top_level_commas(body.stream().into_iter().collect()) {
        let i = skip_attrs(&entry, 0);
        let Some(TokenTree::Ident(name)) = entry.get(i) else { continue };
        let kind = match entry.get(i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantKind::Struct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                VariantKind::Tuple(split_top_level_commas(g.stream().into_iter().collect()).len())
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name: name.to_string(), kind });
    }
    variants
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_visibility(&tokens, i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
            id.to_string()
        }
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    let mut generic = None;
    if tokens.get(i).is_some_and(|t| is_punct(t, '<')) {
        if kind == "enum" {
            return Err(format!("generic enum `{name}` is not supported by the vendored serde derive"));
        }
        let (param, next) = parse_single_type_param(&tokens, i + 1, &name)?;
        generic = Some(param);
        i = next;
    }
    if tokens.get(i).is_some_and(|t| is_ident(t, "where")) {
        return Err(format!("`where` clause on `{name}` is not supported by the vendored serde derive"));
    }
    // `struct Name(A, B, …);` — a tuple struct: the body is a parenthesised
    // field list followed by a semicolon.
    if kind == "struct" {
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                let arity = split_top_level_commas(g.stream().into_iter().collect()).len();
                if arity == 0 {
                    return Err(format!(
                        "unit-like tuple struct `{name}()` is not supported by the vendored serde derive"
                    ));
                }
                return Ok(Shape::TupleStruct { name, generic, arity });
            }
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => return Err(format!("expected `{{ ... }}` body for `{name}`, found {other:?}")),
    };

    Ok(if kind == "struct" {
        Shape::Struct { name, generic, fields: parse_named_fields(body) }
    } else {
        Shape::Enum { name, variants: parse_variants(body) }
    })
}

/// Parse exactly one type parameter (optionally with bounds, which are
/// preserved for the generated impl) from a `<...>` generics list; `i`
/// points just past the `<`. Returns the parameter and the index just past
/// the closing `>`.
fn parse_single_type_param(
    tokens: &[TokenTree],
    mut i: usize,
    name: &str,
) -> Result<(TypeParam, usize), String> {
    let param = match tokens.get(i) {
        // `const N: usize` would otherwise parse `const` as the parameter
        // name and emit unparsable generated code — reject it cleanly.
        Some(TokenTree::Ident(id)) if id.to_string() == "const" => {
            return Err(format!("const generics on `{name}` are not supported by the vendored serde derive"))
        }
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "vendored serde derive supports one plain type parameter on `{name}`, found {other:?}"
            ))
        }
    };
    i += 1;
    // Collect any bounds (`: Clone + Default`) verbatim — the impl must
    // repeat them to name the type — tracking nesting so bounds like
    // `Into<Vec<f64>>` close correctly; reject a second parameter. Joint
    // puncts glue to their successor so `std::fmt::Debug` renders with its
    // `::` separators intact instead of the unparsable `: :`.
    let mut depth = 1usize;
    let mut bounds = String::new();
    let mut in_bounds = false;
    let mut prev_dash = false;
    while i < tokens.len() {
        // A `>` directly after a joint `-` is the tail of a `->` return arrow
        // (e.g. `T: Fn() -> f64`), not a generics closer.
        let arrow_tail = prev_dash && is_punct(&tokens[i], '>');
        match &tokens[i] {
            t if is_punct(t, '<') => depth += 1,
            t if is_punct(t, '>') && !arrow_tail => {
                depth -= 1;
                if depth == 0 {
                    let bounds = bounds.trim().to_string();
                    let bounds = if bounds.is_empty() { None } else { Some(bounds) };
                    return Ok((TypeParam { name: param, bounds }, i + 1));
                }
            }
            t if is_punct(t, ',') && depth == 1 => {
                return Err(format!("vendored serde derive supports at most one type parameter on `{name}`"));
            }
            t if is_punct(t, ':') && depth == 1 && !in_bounds => {
                in_bounds = true;
                prev_dash = false;
                i += 1;
                continue;
            }
            _ => {}
        }
        prev_dash = matches!(
            &tokens[i],
            TokenTree::Punct(p) if p.as_char() == '-' && p.spacing() == proc_macro::Spacing::Joint
        );
        if in_bounds {
            bounds.push_str(&tokens[i].to_string());
            let glued = matches!(
                &tokens[i],
                TokenTree::Punct(p) if p.spacing() == proc_macro::Spacing::Joint
            );
            if !glued {
                bounds.push(' ');
            }
        }
        i += 1;
    }
    Err(format!("unclosed generics list on `{name}`"))
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

fn gen_serialize(shape: &Shape) -> String {
    let (generics, self_ty) = shape.impl_parts("Serialize");
    match shape {
        Shape::Struct { fields, .. } => {
            let entries: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl{generics} ::serde::Serialize for {self_ty} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Obj(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { arity: 1, .. } => {
            // serde's default newtype representation: transparently the inner value.
            format!(
                "impl{generics} ::serde::Serialize for {self_ty} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Serialize::to_value(&self.0)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { arity, .. } => {
            let items: String =
                (0..*arity).map(|k| format!("::serde::Serialize::to_value(&self.{k}),")).collect();
            format!(
                "impl{generics} ::serde::Serialize for {self_ty} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Arr(::std::vec![{items}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Obj(::std::vec![(\"{vname}\".to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Obj(::std::vec![(\"{vname}\".to_string(), ::serde::Value::Arr(::std::vec![{items}]))]),",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),")
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Obj(::std::vec![(\"{vname}\".to_string(), ::serde::Value::Obj(::std::vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    let (generics, self_ty) = shape.impl_parts("Deserialize");
    match shape {
        Shape::Struct { name, fields, .. } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(::serde::field(__obj, \"{f}\")?)?,"))
                .collect();
            format!(
                "impl{generics} ::serde::Deserialize for {self_ty} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::std::string::String> {{\n\
                         let __obj = v.as_obj().ok_or_else(|| ::std::format!(\"expected object for {name}, found {{}}\", v.kind()))?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1, .. } => {
            format!(
                "impl{generics} ::serde::Deserialize for {self_ty} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::std::string::String> {{\n\
                         ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity, .. } => {
            let inits: String =
                (0..*arity).map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?,")).collect();
            format!(
                "impl{generics} ::serde::Deserialize for {self_ty} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::std::string::String> {{\n\
                         let __items = v.as_arr().ok_or_else(|| ::std::format!(\"expected array for {name}, found {{}}\", v.kind()))?;\n\
                         if __items.len() != {arity} {{ return ::std::result::Result::Err(::std::format!(\"expected {arity} elements for {name}, found {{}}\", __items.len())); }}\n\
                         ::std::result::Result::Ok({name}({inits}))\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: String = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?,"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let __items = __inner.as_arr().ok_or_else(|| ::std::format!(\"expected array for {name}::{vname}\"))?;\n\
                                     if __items.len() != {n} {{ return ::std::result::Result::Err(::std::format!(\"expected {n} elements for {name}::{vname}, found {{}}\", __items.len())); }}\n\
                                     ::std::result::Result::Ok({name}::{vname}({inits}))\n\
                                 }}"
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!("{f}: ::serde::Deserialize::from_value(::serde::field(__fields, \"{f}\")?)?,")
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let __fields = __inner.as_obj().ok_or_else(|| ::std::format!(\"expected object for {name}::{vname}, found {{}}\", __inner.kind()))?;\n\
                                     ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                                 }}"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::std::string::String> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => ::std::result::Result::Err(::std::format!(\"unknown {name} variant `{{__other}}`\")),\n\
                             }},\n\
                             ::serde::Value::Obj(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__entries[0];\n\
                                 let _ = __inner;\n\
                                 match __tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     __other => ::std::result::Result::Err(::std::format!(\"unknown {name} variant `{{__other}}`\")),\n\
                                 }}\n\
                             }}\n\
                             __other => ::std::result::Result::Err(::std::format!(\"expected string or single-key object for {name}, found {{}}\", __other.kind())),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// Derive the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_serialize(&shape).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

/// Derive the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_deserialize(&shape).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}
