//! The sanctioned clock for service-time accounting: **task-attributed CPU
//! time**.
//!
//! The DRR fair-share ledger charges each endpoint for the compute its
//! batches actually burn. Wall time overstated that whenever the OS
//! descheduled a worker mid-batch, so the scheduler once had to cap
//! concurrent grants at `available_parallelism` to keep the books honest.
//! Billing the grant-holding worker's own `CLOCK_THREAD_CPUTIME_ID` fixed
//! the deschedule inflation but opened two holes once the forward pass
//! started dispatching GEMM row-blocks to the shared work-stealing pool:
//! cycles burned by *pool* threads on stolen blocks were never billed, and a
//! worker helping the pool while it waited could execute another endpoint's
//! jobs and charge that CPU to its own grant.
//!
//! A [`ChargeSession`] closes both holes. It is backed by the pool's CPU
//! charge sessions (`rayon::start_cpu_charge`): every thread that executes
//! one of the session's tasks — the owning worker inline, a pool worker that
//! stole a GEMM block, an external helper — measures its own thread-CPU
//! delta around exactly that task and accumulates it into the session, while
//! intervals spent on a *different* session's tasks are charged there
//! instead. Concurrent grants therefore overlap freely and each endpoint is
//! billed precisely the cycles computed on its behalf, with no concurrency
//! cap (see `scheduler.rs`).
//!
//! The underlying clock is `clock_gettime(CLOCK_THREAD_CPUTIME_ID)` on
//! 64-bit Linux and monotonic wall time elsewhere (`rayon::thread_cpu_ns`).
//!
//! Invariant: a session must start and finish on the same worker thread —
//! its first and last CPU segments are measured on that thread's clock. The
//! ledger honors this: `GrantGuard::start_execution` and the settle on
//! finish/drop both run on the owning worker thread.
//!
//! The static-analysis gate enforces the discipline: a raw `Instant::now()`
//! or `.elapsed()` inside the ledger functions (see `quadra-analyze`'s
//! workspace config) is a `clock:raw-instant` / `clock:raw-elapsed` finding.

/// An open CPU-attribution session for one granted batch. Deliberately *not*
/// an `Instant` pair so ledger arithmetic cannot bypass this module.
pub(crate) struct ChargeSession(rayon::CpuChargeSession);

/// Begin billing the current thread — and every pool task it (transitively)
/// spawns until the session ends — to a fresh session.
pub(crate) fn start_charge() -> ChargeSession {
    ChargeSession(rayon::start_cpu_charge())
}

impl ChargeSession {
    /// End the session, returning the whole microseconds of CPU time
    /// attributed to it across all executing threads. Must be called on the
    /// thread that started the session.
    pub fn finish_us(self) -> u64 {
        self.0.finish() / 1_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_work_accrues_service_time() {
        let session = start_charge();
        // Burn enough CPU that even a coarse thread clock must advance.
        let start = rayon::thread_cpu_ns();
        let mut acc = 0u64;
        while rayon::thread_cpu_ns().saturating_sub(start) < 2_000_000 {
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc);
        }
        assert!(session.finish_us() >= 2_000);
    }

    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    #[test]
    fn sleeping_accrues_almost_no_service_time() {
        // The point of the CPU-time migration: blocked/descheduled time is
        // not billed.
        let session = start_charge();
        std::thread::sleep(std::time::Duration::from_millis(60));
        let cpu_us = session.finish_us();
        assert!(cpu_us < 30_000, "a sleeping session was billed {cpu_us}us of CPU time");
    }

    #[test]
    fn parallel_kernel_work_is_billed_to_the_session() {
        // A session wrapping a pool-parallel region must bill the work the
        // pool threads did, not just the owning thread's share.
        let pool = rayon::ThreadPool::new(4);
        const TASKS: u64 = 8;
        const PER_TASK_NS: u64 = 5_000_000;
        let billed_us = pool.install(|| {
            let session = start_charge();
            rayon::pool::join(|| spin_cpu(PER_TASK_NS * TASKS / 2), || spin_cpu(PER_TASK_NS * TASKS / 2));
            session.finish_us()
        });
        let floor_us = TASKS * PER_TASK_NS / 1_000 * 9 / 10;
        assert!(billed_us >= floor_us, "billed {billed_us}us, expected at least {floor_us}us");
    }

    fn spin_cpu(ns: u64) {
        let start = rayon::thread_cpu_ns();
        let mut acc = 0u64;
        while rayon::thread_cpu_ns().saturating_sub(start) < ns {
            for i in 0..1_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc);
        }
    }
}
