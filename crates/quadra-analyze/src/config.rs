//! Analysis configuration: which files are hot paths, where the clock
//! discipline applies, and which helper functions the lock-order pass
//! understands. [`AnalyzeConfig::workspace`] is the checked-in policy for
//! this repository; fixture tests build custom configs.

/// Checks the panic-path pass can enforce per hot-path file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicCheck {
    /// Forbid `.unwrap()`.
    Unwrap,
    /// Forbid `.expect(...)`.
    Expect,
    /// Forbid `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    Panic,
    /// Forbid slice/array indexing.
    Indexing,
}

/// A file designated as a hot path, with the checks enforced in it.
#[derive(Debug, Clone)]
pub struct HotPath {
    /// Path suffix, forward slashes (e.g. `quadra-serve/src/scheduler.rs`).
    pub path_suffix: String,
    /// Checks enforced in the file.
    pub checks: Vec<PanicCheck>,
}

/// A service-time ledger region: functions in one file whose clock reads
/// must go through the sanctioned abstraction.
#[derive(Debug, Clone)]
pub struct ClockRegion {
    /// Path suffix of the file.
    pub path_suffix: String,
    /// Function names forming the ledger region.
    pub fns: Vec<String>,
}

/// Full analyzer configuration.
#[derive(Debug, Clone, Default)]
pub struct AnalyzeConfig {
    /// Free functions treated as lock acquisitions: `helper(&mutex)`.
    pub lock_helpers: Vec<String>,
    /// Free functions treated as condvar waits: `helper(&cv, guard, ...)`.
    pub wait_helpers: Vec<String>,
    /// Hot-path files for the panic-path pass.
    pub hot_paths: Vec<HotPath>,
    /// Crates where `.lock().unwrap()` is forbidden everywhere.
    pub lock_unwrap_crates: Vec<String>,
    /// Ledger regions for the clock pass.
    pub clock_regions: Vec<ClockRegion>,
    /// Crates where `SystemTime` is forbidden outright.
    pub clock_forbid_system_time_crates: Vec<String>,
    /// Crates audited by the must-use pass.
    pub must_use_crates: Vec<String>,
    /// Crates audited by the atomics pass (`Relaxed` RMW allowlisting and
    /// load-modify-store races).
    pub atomics_crates: Vec<String>,
    /// Crates where every condvar wait must sit inside a `while`/`loop`
    /// re-checking its predicate.
    pub condvar_crates: Vec<String>,
    /// Per-request hot-path files for the allocation pass: path suffixes
    /// where `Vec::new`, `format!`, and payload clones are findings.
    pub hot_alloc_paths: Vec<String>,
    /// Identifiers that denote request payloads in hot-path files: a
    /// `.clone()` whose receiver chain contains one is a finding.
    pub hot_alloc_payload_idents: Vec<String>,
}

impl AnalyzeConfig {
    /// True when `name` is a configured lock-acquisition helper.
    pub fn is_lock_helper(&self, name: &str) -> bool {
        self.lock_helpers.iter().any(|h| h == name)
    }

    /// True when `name` is a configured condvar-wait helper.
    pub fn is_wait_helper(&self, name: &str) -> bool {
        self.wait_helpers.iter().any(|h| h == name)
    }

    /// The panic checks enforced for `path` (empty = not a hot path).
    pub fn hot_path_checks(&self, path: &str) -> Vec<PanicCheck> {
        self.hot_paths
            .iter()
            .filter(|h| path.ends_with(&h.path_suffix))
            .flat_map(|h| h.checks.iter().copied())
            .collect()
    }

    /// True when `path` is designated a per-request hot path for the
    /// allocation pass.
    pub fn is_hot_alloc_path(&self, path: &str) -> bool {
        self.hot_alloc_paths.iter().any(|suffix| path.ends_with(suffix.as_str()))
    }

    /// True when `ident` denotes a request payload for the allocation pass.
    pub fn is_payload_ident(&self, ident: &str) -> bool {
        self.hot_alloc_payload_idents.iter().any(|p| p == ident)
    }

    /// Ledger-region function names for `path`.
    pub fn clock_region_fns(&self, path: &str) -> Vec<String> {
        self.clock_regions
            .iter()
            .filter(|r| path.ends_with(&r.path_suffix))
            .flat_map(|r| r.fns.iter().cloned())
            .collect()
    }

    /// The checked-in policy for the QuadraLib-rs workspace.
    pub fn workspace() -> AnalyzeConfig {
        let all = vec![PanicCheck::Unwrap, PanicCheck::Expect, PanicCheck::Panic, PanicCheck::Indexing];
        AnalyzeConfig {
            lock_helpers: vec!["lock_or_recover".to_string()],
            wait_helpers: vec![
                "wait_or_recover".to_string(),
                "wait_timeout_or_recover".to_string(),
                "wait_deadline_or_recover".to_string(),
            ],
            hot_paths: vec![
                HotPath { path_suffix: "quadra-serve/src/scheduler.rs".into(), checks: all.clone() },
                HotPath { path_suffix: "quadra-serve/src/worker.rs".into(), checks: all.clone() },
                HotPath { path_suffix: "quadra-serve/src/admission.rs".into(), checks: all.clone() },
                HotPath { path_suffix: "quadra-tensor/src/gemm.rs".into(), checks: all.clone() },
                HotPath { path_suffix: "quadra-core/src/profiler.rs".into(), checks: all.clone() },
                HotPath { path_suffix: "vendor/rayon/src/lib.rs".into(), checks: all.clone() },
                HotPath { path_suffix: "vendor/rayon/src/pool.rs".into(), checks: all.clone() },
                HotPath { path_suffix: "quadra-gateway/src/frame.rs".into(), checks: all.clone() },
                HotPath { path_suffix: "quadra-gateway/src/conn.rs".into(), checks: all.clone() },
                HotPath { path_suffix: "quadra-gateway/src/event_loop.rs".into(), checks: all },
            ],
            lock_unwrap_crates: vec!["quadra-serve".to_string()],
            clock_regions: vec![
                ClockRegion {
                    path_suffix: "quadra-serve/src/scheduler.rs".into(),
                    fns: vec![
                        "start_execution".into(),
                        "settle_now".into(),
                        "finish".into(),
                        "acquire".into(),
                        "settle".into(),
                        "register".into(),
                        "close_member".into(),
                    ],
                },
                ClockRegion { path_suffix: "quadra-serve/src/worker.rs".into(), fns: vec!["run".into()] },
                ClockRegion {
                    path_suffix: "quadra-serve/src/metrics.rs".into(),
                    fns: vec![
                        "record_service".into(),
                        "record_batch".into(),
                        "record_shed".into(),
                        "record_dispatch_shed".into(),
                        "record_errors".into(),
                        "record_reload".into(),
                    ],
                },
            ],
            clock_forbid_system_time_crates: vec!["quadra-serve".to_string()],
            must_use_crates: vec!["quadra-serve".to_string()],
            atomics_crates: vec!["quadra-serve".to_string(), "quadra-core".to_string()],
            condvar_crates: vec!["quadra-serve".to_string()],
            hot_alloc_paths: vec![
                "quadra-serve/src/scheduler.rs".into(),
                "quadra-serve/src/admission.rs".into(),
                "quadra-serve/src/worker.rs".into(),
                "quadra-serve/src/endpoint.rs".into(),
                "quadra-gateway/src/frame.rs".into(),
                "quadra-gateway/src/conn.rs".into(),
                "quadra-gateway/src/event_loop.rs".into(),
            ],
            hot_alloc_payload_idents: vec![
                "input".to_string(),
                "payload".to_string(),
                "request".to_string(),
                "requests".to_string(),
            ],
        }
    }
}
