//! # quadra-serve
//!
//! Batched inference serving for QuadraLib-rs: the subsystem that turns the
//! training library into a serving *system* — the throughput/latency side of
//! the MLSys story.
//!
//! ## Architecture
//!
//! Everything is plain threads (compatible with the vendored rayon; no async
//! runtime):
//!
//! * A **dynamic batcher** thread queues [`ServeClient`] submissions (mpsc)
//!   and coalesces them into batches under a [`BatchPolicy`]
//!   (`max_batch_size` samples or `max_wait`, whichever first). Only
//!   same-shape requests coalesce by default — predictions never depend on
//!   concurrent traffic; `BatchPolicy::pad_mixed_spatial` opts NCHW inputs
//!   into zero-padded mixed-size batches. Outputs are split back into
//!   per-request rows.
//! * A **[`ModelWorkerPool`]** of N model replicas, each owned by a dedicated
//!   worker thread, executes batches in eval mode. Replicas are built *on*
//!   their worker thread by a `Fn() -> Box<dyn Layer>` factory, so the
//!   [`Layer`](quadra_nn::Layer) trait needs no `Send` bound.
//! * **Checkpoint hot-reload**: a [`StateDict`](quadra_nn::StateDict) is
//!   validated, published, and atomically picked up by every worker between
//!   batches. Responses carry the model version that produced them.
//! * **[`ServeMetrics`]**: throughput, p50/p95/max latency, batch-occupancy
//!   histogram, and per-batch activation memory accounted through
//!   `quadra_core::MemoryProfiler::inference_report`.
//!
//! ## Example
//!
//! ```
//! use quadra_nn::{Layer, Linear, Relu, Sequential, StateDict};
//! use quadra_serve::{InferenceServer, ServeConfig};
//! use quadra_tensor::Tensor;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let model = |seed: u64| -> Box<dyn Layer> {
//!     let mut rng = StdRng::seed_from_u64(seed);
//!     Box::new(Sequential::new(vec![
//!         Box::new(Linear::new(4, 16, true, &mut rng)),
//!         Box::new(Relu::new()),
//!         Box::new(Linear::new(16, 3, true, &mut rng)),
//!     ]))
//! };
//! let server = InferenceServer::start(ServeConfig::default(), move || model(0)).unwrap();
//! let client = server.client();
//!
//! // Serve a batch of two 4-feature rows.
//! let response = client.infer(Tensor::ones(&[2, 4])).unwrap();
//! assert_eq!(response.output.shape(), &[2, 3]);
//! assert_eq!(response.model_version, 0);
//!
//! // Hot-reload different weights; later responses report the new version.
//! let mut rng = StdRng::seed_from_u64(1);
//! let retrained = Sequential::new(vec![
//!     Box::new(Linear::new(4, 16, true, &mut rng)),
//!     Box::new(Relu::new()),
//!     Box::new(Linear::new(16, 3, true, &mut rng)),
//! ]);
//! let version = server.reload(StateDict::from_layer(&retrained)).unwrap();
//! assert_eq!(version, 1);
//!
//! let metrics = server.shutdown();
//! assert_eq!(metrics.completed_requests, 1);
//! ```

#![warn(missing_docs)]

mod batcher;
mod metrics;
mod request;
mod server;
mod worker;

pub use metrics::ServeMetrics;
pub use request::{BatchPolicy, InferResponse, PendingResponse, ServeConfig, ServeError};
pub use server::{InferenceServer, ServeClient};

/// Alias emphasising the paper-facing name of the subsystem: the pool of
/// model replicas behind the batcher.
pub type ModelWorkerPool = InferenceServer;
