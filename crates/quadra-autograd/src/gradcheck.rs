//! Finite-difference gradient checking.
//!
//! Every layer in `quadra-nn` and every quadratic layer in `quadra-core`
//! implements its backward pass by hand (symbolic differentiation); these
//! helpers verify those implementations against central finite differences.

use quadra_tensor::Tensor;

/// Outcome of comparing an analytic gradient against a numeric one.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest absolute element-wise difference found.
    pub max_abs_err: f32,
    /// Largest relative difference found (|a-n| / max(|a|,|n|,1e-8)).
    pub max_rel_err: f32,
    /// Number of elements compared.
    pub count: usize,
}

impl GradCheckReport {
    /// True if the maximum absolute error is within `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_err <= tol
    }
}

/// Compute the numeric gradient of `f` with respect to `input` using central
/// differences with step `eps`.
///
/// `f` must be a deterministic scalar function of the input tensor.
pub fn numeric_gradient(f: impl Fn(&Tensor) -> f32, input: &Tensor, eps: f32) -> Tensor {
    let mut grad = Tensor::zeros(input.shape());
    for i in 0..input.numel() {
        let mut plus = input.clone();
        plus.as_mut_slice()[i] += eps;
        let mut minus = input.clone();
        minus.as_mut_slice()[i] -= eps;
        grad.as_mut_slice()[i] = (f(&plus) - f(&minus)) / (2.0 * eps);
    }
    grad
}

/// Compare an analytic gradient against a numeric one element-wise.
pub fn check_close(analytic: &Tensor, numeric: &Tensor) -> GradCheckReport {
    assert_eq!(analytic.shape(), numeric.shape(), "gradient shapes differ");
    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for (&a, &n) in analytic.as_slice().iter().zip(numeric.as_slice()) {
        let abs = (a - n).abs();
        let rel = abs / a.abs().max(n.abs()).max(1e-8);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    GradCheckReport { max_abs_err: max_abs, max_rel_err: max_rel, count: analytic.numel() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn numeric_gradient_of_quadratic() {
        // f(x) = sum(x^2) => grad = 2x
        let x = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        let g = numeric_gradient(|t| t.square().sum(), &x, 1e-3);
        let expect = x.mul_scalar(2.0);
        let report = check_close(&expect, &g);
        assert!(report.passes(1e-2), "{:?}", report);
        assert_eq!(report.count, 3);
    }

    #[test]
    fn tape_gradients_match_numeric_for_composite_function() {
        let mut rng = StdRng::seed_from_u64(11);
        let x0 = Tensor::randn(&[6], 0.0, 1.0, &mut rng);
        let w0 = Tensor::randn(&[6], 0.0, 1.0, &mut rng);

        // Analytic gradient via the tape.
        let mut g = Graph::new();
        let x = g.input(x0.clone());
        let w = g.input(w0.clone());
        let wx = g.mul(w, x);
        let act = g.tanh(wx);
        let sq = g.square(act);
        let loss = g.mean(sq);
        g.backward(loss);
        let analytic = g.grad(x).unwrap().clone();

        // Numeric gradient of the same function.
        let f = |t: &Tensor| {
            let wx = w0.mul(t).unwrap();
            wx.tanh().square().mean()
        };
        let numeric = numeric_gradient(f, &x0, 1e-3);
        let report = check_close(&analytic, &numeric);
        assert!(report.passes(1e-3), "{:?}", report);
    }

    #[test]
    fn report_rel_err_is_finite_for_zero_gradients() {
        let a = Tensor::zeros(&[4]);
        let n = Tensor::zeros(&[4]);
        let r = check_close(&a, &n);
        assert_eq!(r.max_abs_err, 0.0);
        assert_eq!(r.max_rel_err, 0.0);
        assert!(r.passes(0.0));
    }

    #[test]
    #[should_panic]
    fn mismatched_shapes_panic() {
        let _ = check_close(&Tensor::zeros(&[2]), &Tensor::zeros(&[3]));
    }
}
