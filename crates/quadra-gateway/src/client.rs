//! A small blocking client for the gateway's wire protocol.
//!
//! This is the reference implementation of the client side — the loopback
//! integration tests and the `gateway_load` open-loop bench both speak the
//! protocol through it. Two usage styles:
//!
//! * [`GatewayClient::call`] — one request, block for its reply (simple
//!   request/response callers).
//! * [`GatewayClient::send`] + [`GatewayClient::recv`] — fire requests
//!   without waiting and drain replies separately, matching them by
//!   correlation id (pipelined / open-loop callers; this is what an honest
//!   tail-latency bench needs, since a closed loop would gate arrivals on
//!   completions).

use crate::frame::{
    decode_frame, encode_frame, Frame, FrameError, RequestFrame, ResponseFrame, FRAME_HEADER_BYTES,
};
use quadra_serve::Priority;
use quadra_tensor::Tensor;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failure while talking to a gateway.
#[derive(Debug)]
pub enum GatewayError {
    /// The socket failed.
    Io(io::Error),
    /// The gateway sent bytes that do not decode (or a frame that makes no
    /// sense client-side).
    Protocol(FrameError),
    /// The gateway closed the connection.
    Disconnected,
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::Io(e) => write!(f, "socket error: {e}"),
            GatewayError::Protocol(e) => write!(f, "protocol error: {e}"),
            GatewayError::Disconnected => write!(f, "gateway closed the connection"),
        }
    }
}

impl std::error::Error for GatewayError {}

impl From<io::Error> for GatewayError {
    fn from(e: io::Error) -> GatewayError {
        GatewayError::Io(e)
    }
}

impl From<FrameError> for GatewayError {
    fn from(e: FrameError) -> GatewayError {
        GatewayError::Protocol(e)
    }
}

/// What the gateway said about one request.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The inference completed; the frame carries the output split plus
    /// batch provenance.
    Response(ResponseFrame),
    /// The request failed with the typed error in the frame (decode with
    /// [`crate::frame::ErrorFrame::to_serve_error`]).
    Error(crate::frame::ErrorFrame),
    /// The request was shed under overload; retry after roughly the carried
    /// hint and slow down.
    Backpressure(crate::frame::BackpressureFrame),
    /// The gateway is draining; no further requests will be admitted on this
    /// connection.
    GoAway,
}

impl Reply {
    /// The correlation id this reply settles (`None` for GoAway, which is
    /// connection-level).
    pub fn correlation_id(&self) -> Option<u64> {
        match self {
            Reply::Response(r) => Some(r.correlation_id),
            Reply::Error(e) => Some(e.correlation_id),
            Reply::Backpressure(b) => Some(b.correlation_id),
            Reply::GoAway => None,
        }
    }
}

/// A blocking connection to a gateway.
pub struct GatewayClient {
    stream: TcpStream,
    buf: Vec<u8>,
    filled: usize,
    next_corr: u64,
    max_frame: usize,
}

impl GatewayClient {
    /// Connect to a gateway. `max_frame` must be at least the server's
    /// configured cap to decode the largest response it can send.
    pub fn connect(addr: impl ToSocketAddrs, max_frame: usize) -> io::Result<GatewayClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(GatewayClient { stream, buf: vec![0u8; 64 * 1024], filled: 0, next_corr: 1, max_frame })
    }

    /// Bound how long [`GatewayClient::recv`] may block on the socket.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Fire one request without waiting; returns its correlation id.
    pub fn send(
        &mut self,
        model: &str,
        input: Tensor,
        priority: Priority,
        deadline: Option<Duration>,
        tag: Option<&str>,
    ) -> Result<u64, GatewayError> {
        let correlation_id = self.next_corr;
        self.next_corr += 1;
        let rf = RequestFrame {
            correlation_id,
            priority,
            deadline_ms: deadline.map_or(0, |d| d.as_millis().min(u128::from(u32::MAX)) as u32),
            model: model.to_string(),
            tag: tag.map(str::to_string),
            input,
        };
        let mut wire = Vec::new();
        encode_frame(&Frame::Request(rf), &mut wire)?;
        self.stream.write_all(&wire)?;
        Ok(correlation_id)
    }

    /// Block until the next reply frame arrives.
    pub fn recv(&mut self) -> Result<Reply, GatewayError> {
        loop {
            if let Some((frame, consumed)) = decode_frame(&self.buf[..self.filled], self.max_frame)? {
                self.buf.copy_within(consumed..self.filled, 0);
                self.filled -= consumed;
                return match frame {
                    Frame::Response(r) => Ok(Reply::Response(r)),
                    Frame::Error(e) => Ok(Reply::Error(e)),
                    Frame::Backpressure(b) => Ok(Reply::Backpressure(b)),
                    Frame::GoAway => Ok(Reply::GoAway),
                    Frame::Request(_) => Err(GatewayError::Protocol(FrameError::UnknownKind(1))),
                };
            }
            if self.filled == self.buf.len() {
                // The partial frame is bigger than the buffer; grow to fit
                // the declared body.
                let needed = self.declared_total().unwrap_or(self.buf.len() * 2);
                self.buf.resize(needed.max(self.buf.len() * 2), 0);
            }
            let n = self.stream.read(&mut self.buf[self.filled..])?;
            if n == 0 {
                return Err(GatewayError::Disconnected);
            }
            self.filled += n;
        }
    }

    /// Total length of the frame currently heading the buffer, if the
    /// length prefix has arrived.
    fn declared_total(&self) -> Option<usize> {
        let header: [u8; 4] = self.buf.get(..FRAME_HEADER_BYTES)?.try_into().ok()?;
        Some(FRAME_HEADER_BYTES + u32::from_le_bytes(header) as usize)
    }

    /// Send one request and block for **its** reply, skipping replies to
    /// other in-flight correlation ids (they are dropped — use
    /// [`GatewayClient::send`]/[`GatewayClient::recv`] when pipelining).
    pub fn call(
        &mut self,
        model: &str,
        input: Tensor,
        priority: Priority,
        deadline: Option<Duration>,
        tag: Option<&str>,
    ) -> Result<Reply, GatewayError> {
        let correlation_id = self.send(model, input, priority, deadline, tag)?;
        loop {
            let reply = self.recv()?;
            match reply.correlation_id() {
                Some(id) if id == correlation_id => return Ok(reply),
                Some(_) => continue,
                None => return Ok(reply), // GoAway pre-empts the call
            }
        }
    }
}
