//! The [`Gateway`] lifecycle handle: start, observe, drain, shut down.

use crate::config::GatewayConfig;
use crate::event_loop;
use crate::sys::{Poller, Waker};
use quadra_serve::{Router, RouterClient, RouterMetrics};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running socket front-end serving a [`Router`] over TCP.
///
/// Starting a gateway takes ownership of the router: the gateway becomes the
/// router's lifecycle owner so the shutdown ordering below cannot be
/// violated by callers. In-process clients remain available through
/// [`Gateway::client`].
///
/// ## Shutdown ordering
///
/// [`Gateway::shutdown`] performs the two phases in the only safe order:
///
/// 1. **Gateway drain** — stop accepting, broadcast GoAway, answer late
///    requests with `ShuttingDown`, and flush every in-flight response to
///    its socket (bounded by [`GatewayConfig::drain_timeout`]).
/// 2. **Router shutdown** — only after the drain, so every response the
///    engine produced for an admitted request has reached (or been offered
///    to) its connection.
///
/// Shutting the router down first would settle in-flight handles with
/// `ShuttingDown` while the sockets are still open — clients would see
/// spurious failures for requests the engine had already finished. The
/// drain regression test pins phase 1 completing before phase 2 begins.
pub struct Gateway {
    addr: SocketAddr,
    client: RouterClient,
    router: Option<Router>,
    stop: Arc<AtomicBool>,
    waker: Arc<Waker>,
    thread: Option<JoinHandle<io::Result<()>>>,
}

impl Gateway {
    /// Bind `config.listen`, take ownership of `router`, and spawn the event
    /// loop (`gateway-loop`) and completion pump (`gateway-pump`) threads.
    ///
    /// Fails fast on invalid config, bind errors, or unsupported platforms
    /// (non-Unix targets have no readiness syscalls without external
    /// crates).
    pub fn start(config: GatewayConfig, router: Router) -> io::Result<Gateway> {
        config.validate().map_err(|msg| io::Error::new(io::ErrorKind::InvalidInput, msg))?;
        let listener = TcpListener::bind(&config.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let poller = Poller::new()?;
        let waker = Arc::new(Waker::new()?);
        let stop = Arc::new(AtomicBool::new(false));
        let client = router.client();

        let loop_client = client.clone();
        let loop_stop = Arc::clone(&stop);
        let loop_waker = Arc::clone(&waker);
        let thread = std::thread::Builder::new()
            .name("gateway-loop".into())
            .spawn(move || event_loop::run(config, listener, poller, loop_client, loop_stop, loop_waker))?;

        Ok(Gateway { addr, client, router: Some(router), stop, waker, thread: Some(thread) })
    }

    /// The bound address (resolves the ephemeral port of `"…:0"` listens).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// An in-process client to the same router the gateway serves — the
    /// loopback test uses this to compare socket-served responses against
    /// direct submissions, bitwise.
    pub fn client(&self) -> RouterClient {
        self.client.clone()
    }

    /// Drain the gateway, then shut the router down (see the type-level
    /// ordering contract). Returns the router's final metrics.
    pub fn shutdown(mut self) -> RouterMetrics {
        self.stop_loop();
        match self.router.take() {
            Some(router) => router.shutdown(),
            None => RouterMetrics { models: Vec::new() },
        }
    }

    /// Signal the event loop and join it (drain phase). Idempotent.
    fn stop_loop(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.waker.notify();
        if let Some(thread) = self.thread.take() {
            match thread.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => eprintln!("quadra-gateway: event loop failed: {e}"),
                Err(_) => eprintln!("quadra-gateway: event loop panicked"),
            }
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        // A dropped gateway still drains: tests that panic mid-flight must
        // not leave the loop thread running against a dead router.
        self.stop_loop();
        if let Some(router) = self.router.take() {
            let _ = router.shutdown();
        }
    }
}
