//! Model checkpointing: save and restore the parameters of any [`Layer`] as a
//! named state dictionary (JSON on disk).
//!
//! The paper's detection experiments initialise the SSD backbone from a model
//! pre-trained on classification; this module provides the mechanism for that
//! workflow — extract a state dict from one model, persist it, and load it into
//! another model with the same architecture.

use crate::layer::Layer;
use quadra_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// A serialisable snapshot of one parameter tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamState {
    /// Tensor shape.
    pub shape: Vec<usize>,
    /// Row-major values.
    pub data: Vec<f32>,
}

/// A named collection of parameter snapshots.
///
/// Keys are `"{index:04}:{param_name}"`, which makes the ordering explicit and
/// detects architecture mismatches on load.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StateDict {
    /// Parameter snapshots keyed by position and name.
    pub params: BTreeMap<String, ParamState>,
}

impl StateDict {
    /// Capture the current parameters of a model.
    pub fn from_layer(model: &dyn Layer) -> Self {
        let mut params = BTreeMap::new();
        for (i, p) in model.params().iter().enumerate() {
            params.insert(
                format!("{:04}:{}", i, p.name),
                ParamState { shape: p.value.shape().to_vec(), data: p.value.as_slice().to_vec() },
            );
        }
        StateDict { params }
    }

    /// Number of stored parameter tensors.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True if the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar values stored.
    pub fn numel(&self) -> usize {
        self.params.values().map(|p| p.data.len()).sum()
    }

    /// Load the snapshot into a model with the same architecture.
    ///
    /// Returns an error message when the number, names or shapes of the
    /// parameters do not match.
    pub fn load_into(&self, model: &mut dyn Layer) -> Result<(), String> {
        let mut target = model.params_mut();
        if target.len() != self.params.len() {
            return Err(format!(
                "parameter count mismatch: checkpoint has {}, model has {}",
                self.params.len(),
                target.len()
            ));
        }
        for (i, (key, state)) in self.params.iter().enumerate() {
            let p = &mut target[i];
            let expected_key = format!("{:04}:{}", i, p.name);
            if key != &expected_key {
                return Err(format!(
                    "parameter {} name mismatch: checkpoint '{}', model '{}'",
                    i, key, expected_key
                ));
            }
            if p.value.shape() != state.shape.as_slice() {
                return Err(format!(
                    "parameter '{}' shape mismatch: checkpoint {:?}, model {:?}",
                    key,
                    state.shape,
                    p.value.shape()
                ));
            }
            let tensor = Tensor::from_vec(state.data.clone(), &state.shape)
                .map_err(|e| format!("corrupt checkpoint entry '{}': {}", key, e))?;
            p.value.copy_from(&tensor).map_err(|e| format!("copy failed for '{}': {}", key, e))?;
        }
        Ok(())
    }

    /// Serialise to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("state dict serialises")
    }

    /// Parse from a JSON string.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Write the checkpoint to disk.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Read a checkpoint from disk.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::layer::Sequential;
    use crate::linear::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new(vec![
            Box::new(Linear::new(4, 8, true, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(8, 3, true, &mut rng)),
        ])
    }

    #[test]
    fn roundtrip_restores_exact_outputs() {
        let mut src = model(1);
        let mut dst = model(2);
        let x = Tensor::randn(&[5, 4], 0.0, 1.0, &mut StdRng::seed_from_u64(3));
        let before_src = src.forward(&x, false);
        let before_dst = dst.forward(&x, false);
        assert!(before_src.max_abs_diff(&before_dst).unwrap() > 1e-3);

        let state = StateDict::from_layer(&src);
        assert_eq!(state.len(), 4);
        assert!(!state.is_empty());
        assert_eq!(state.numel(), src.param_count());
        state.load_into(&mut dst).unwrap();
        let after_dst = dst.forward(&x, false);
        assert!(after_dst.allclose(&before_src, 1e-6));
    }

    #[test]
    fn json_and_file_roundtrip() {
        let src = model(4);
        let state = StateDict::from_layer(&src);
        let json = state.to_json();
        let back = StateDict::from_json(&json).unwrap();
        assert_eq!(back, state);
        assert!(StateDict::from_json("{bad").is_err());

        let path = std::env::temp_dir().join("quadralib_ckpt_test.json");
        state.save(&path).unwrap();
        let loaded = StateDict::load(&path).unwrap();
        assert_eq!(loaded, state);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_architecture_is_rejected() {
        let src = model(5);
        let state = StateDict::from_layer(&src);

        // Different layer sizes -> shape mismatch.
        let mut rng = StdRng::seed_from_u64(6);
        let mut wrong_shape = Sequential::new(vec![
            Box::new(Linear::new(4, 16, true, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(16, 3, true, &mut rng)),
        ]);
        assert!(state.load_into(&mut wrong_shape).unwrap_err().contains("shape mismatch"));

        // Different parameter count -> count mismatch.
        let mut fewer = Sequential::new(vec![Box::new(Linear::new(4, 3, true, &mut rng))]);
        assert!(state.load_into(&mut fewer).unwrap_err().contains("count mismatch"));
    }

    #[test]
    fn empty_model_produces_empty_state() {
        let relu_only = Sequential::new(vec![Box::new(Relu::new())]);
        let state = StateDict::from_layer(&relu_only);
        assert!(state.is_empty());
        assert_eq!(state.numel(), 0);
        let mut other = Sequential::new(vec![Box::new(Relu::new())]);
        state.load_into(&mut other).unwrap();
    }
}
