//! Class-conditional procedural shape images — the CIFAR / Tiny-ImageNet stand-in.

use quadra_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The geometric/texture primitives a class can be built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeKind {
    /// Filled disc.
    Circle,
    /// Filled axis-aligned square.
    Square,
    /// Filled upward triangle.
    Triangle,
    /// Plus / cross shape.
    Cross,
    /// Ring (disc with a hole).
    Ring,
    /// Horizontal stripes.
    StripesH,
    /// Vertical stripes.
    StripesV,
    /// Checkerboard texture.
    Checker,
    /// Diamond (rotated square).
    Diamond,
    /// Two small discs.
    TwoDots,
}

impl ShapeKind {
    /// All shape primitives.
    pub const ALL: [ShapeKind; 10] = [
        ShapeKind::Circle,
        ShapeKind::Square,
        ShapeKind::Triangle,
        ShapeKind::Cross,
        ShapeKind::Ring,
        ShapeKind::StripesH,
        ShapeKind::StripesV,
        ShapeKind::Checker,
        ShapeKind::Diamond,
        ShapeKind::TwoDots,
    ];

    /// The primitive associated with a class index (classes cycle through the
    /// primitives; higher class counts also vary the colour family).
    pub fn for_class(class: usize) -> ShapeKind {
        ShapeKind::ALL[class % ShapeKind::ALL.len()]
    }

    /// Whether a pixel at normalised coordinates `(u, v)` relative to the shape
    /// centre with normalised radius `r` belongs to the shape.
    fn contains(&self, u: f32, v: f32, r: f32) -> bool {
        let d2 = u * u + v * v;
        match self {
            ShapeKind::Circle => d2 <= r * r,
            ShapeKind::Square => u.abs() <= r && v.abs() <= r,
            ShapeKind::Triangle => v >= -r && v <= r && u.abs() <= (r - v) * 0.5 + 0.05,
            ShapeKind::Cross => {
                (u.abs() <= r * 0.35 && v.abs() <= r) || (v.abs() <= r * 0.35 && u.abs() <= r)
            }
            ShapeKind::Ring => d2 <= r * r && d2 >= (0.55 * r) * (0.55 * r),
            ShapeKind::StripesH => {
                v.abs() <= r && u.abs() <= r && ((v / r * 3.0).floor() as i32).rem_euclid(2) == 0
            }
            ShapeKind::StripesV => {
                v.abs() <= r && u.abs() <= r && ((u / r * 3.0).floor() as i32).rem_euclid(2) == 0
            }
            ShapeKind::Checker => {
                u.abs() <= r
                    && v.abs() <= r
                    && (((u / r * 2.0).floor() + (v / r * 2.0).floor()) as i32).rem_euclid(2) == 0
            }
            ShapeKind::Diamond => u.abs() + v.abs() <= r,
            ShapeKind::TwoDots => {
                let a = (u - 0.4 * r) * (u - 0.4 * r) + v * v <= (0.35 * r) * (0.35 * r);
                let b = (u + 0.4 * r) * (u + 0.4 * r) + v * v <= (0.35 * r) * (0.35 * r);
                a || b
            }
        }
    }
}

/// A generated classification dataset of shape images.
#[derive(Debug, Clone)]
pub struct ShapeImageDataset {
    /// Images as an `[n, channels, size, size]` tensor with values roughly in `[-1, 1]`.
    pub images: Tensor,
    /// Integer class labels stored as `f32`, shape `[n]`.
    pub labels: Tensor,
    /// Number of classes.
    pub num_classes: usize,
}

impl ShapeImageDataset {
    /// Generate `n` samples of `num_classes` classes at `size`×`size` pixels
    /// with `channels` colour channels, Gaussian pixel noise of the given
    /// standard deviation, and a deterministic seed.
    pub fn generate(
        n: usize,
        num_classes: usize,
        size: usize,
        channels: usize,
        noise: f32,
        seed: u64,
    ) -> Self {
        assert!(num_classes >= 2, "need at least two classes");
        assert!(size >= 8, "images must be at least 8x8");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = vec![0.0f32; n * channels * size * size];
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = rng.gen_range(0..num_classes);
            labels.push(class as f32);
            let img = &mut data[i * channels * size * size..(i + 1) * channels * size * size];
            render_class(img, class, num_classes, size, channels, noise, &mut rng);
        }
        ShapeImageDataset {
            images: Tensor::from_vec(data, &[n, channels, size, size]).expect("shape"),
            labels: Tensor::from_vec(labels, &[n]).expect("shape"),
            num_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.numel()
    }

    /// True if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Deterministic per-class colour in `[-1, 1]³`, spread over hue-like space.
fn class_color(class: usize, num_classes: usize, channel: usize) -> f32 {
    let phase = class as f32 / num_classes.max(1) as f32 * std::f32::consts::TAU;
    match channel {
        0 => phase.cos(),
        1 => (phase + 2.0).cos(),
        _ => (phase + 4.0).cos(),
    }
}

fn render_class(
    img: &mut [f32],
    class: usize,
    num_classes: usize,
    size: usize,
    channels: usize,
    noise: f32,
    rng: &mut StdRng,
) {
    let kind = ShapeKind::for_class(class);
    // Placement jitter: centre offset and radius jitter.
    let cx = 0.5 + rng.gen_range(-0.15..0.15);
    let cy = 0.5 + rng.gen_range(-0.15..0.15);
    let radius = 0.30 + rng.gen_range(-0.05..0.08);
    // Higher class indices beyond the primitive count vary the colour family,
    // so synth-CIFAR-100 classes remain distinguishable.
    let color_group = class / ShapeKind::ALL.len();
    let background = -0.8f32;
    for c in 0..channels {
        let fg = class_color(class + color_group * 7, num_classes, c);
        for y in 0..size {
            for x in 0..size {
                let u = x as f32 / size as f32 - cx;
                let v = y as f32 / size as f32 - cy;
                let inside = kind.contains(u, v, radius);
                let base = if inside { fg } else { background };
                img[(c * size + y) * size + x] = base + noise * gaussian(rng);
            }
        }
    }
}

fn gaussian(rng: &mut StdRng) -> f32 {
    // Box–Muller with a single draw pair; good enough for pixel noise.
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// CIFAR-10 stand-in: 10 classes of 3×32×32 images.
pub fn synth_cifar10(n: usize, seed: u64) -> ShapeImageDataset {
    ShapeImageDataset::generate(n, 10, 32, 3, 0.15, seed)
}

/// CIFAR-100 stand-in: 100 classes of 3×32×32 images.
pub fn synth_cifar100(n: usize, seed: u64) -> ShapeImageDataset {
    ShapeImageDataset::generate(n, 100, 32, 3, 0.15, seed)
}

/// Tiny-ImageNet stand-in: 20 classes of 3×64×64 images (scaled down from 200
/// classes so the CPU harness stays tractable; the comparison axis — relative
/// accuracy of first-order vs quadratic models — is unaffected).
pub fn synth_tiny_imagenet(n: usize, seed: u64) -> ShapeImageDataset {
    ShapeImageDataset::generate(n, 20, 64, 3, 0.15, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shapes_and_labels() {
        let ds = ShapeImageDataset::generate(50, 4, 16, 3, 0.1, 7);
        assert_eq!(ds.images.shape(), &[50, 3, 16, 16]);
        assert_eq!(ds.labels.shape(), &[50]);
        assert_eq!(ds.num_classes, 4);
        assert_eq!(ds.len(), 50);
        assert!(!ds.is_empty());
        assert!(ds.labels.as_slice().iter().all(|&l| (0.0..4.0).contains(&l)));
        assert!(!ds.images.has_non_finite());
        // Pixel range is roughly [-1, 1] plus noise.
        assert!(ds.images.max() < 2.0 && ds.images.min() > -2.0);
    }

    #[test]
    fn deterministic_for_same_seed_and_different_for_other_seeds() {
        let a = ShapeImageDataset::generate(10, 3, 16, 3, 0.1, 42);
        let b = ShapeImageDataset::generate(10, 3, 16, 3, 0.1, 42);
        let c = ShapeImageDataset::generate(10, 3, 16, 3, 0.1, 43);
        assert_eq!(a.images.as_slice(), b.images.as_slice());
        assert_eq!(a.labels.as_slice(), b.labels.as_slice());
        assert_ne!(a.images.as_slice(), c.images.as_slice());
    }

    #[test]
    fn classes_are_visually_distinct_on_average() {
        // Mean image of class 0 should differ substantially from class 1's.
        let ds = ShapeImageDataset::generate(200, 2, 16, 3, 0.05, 3);
        let mut mean = [vec![0.0f32; 3 * 16 * 16], vec![0.0f32; 3 * 16 * 16]];
        let mut count = [0usize; 2];
        let px = 3 * 16 * 16;
        for i in 0..ds.len() {
            let cls = ds.labels.as_slice()[i] as usize;
            count[cls] += 1;
            for (j, m) in mean[cls].iter_mut().enumerate() {
                *m += ds.images.as_slice()[i * px + j];
            }
        }
        for (m, c) in mean.iter_mut().zip(count) {
            for v in m.iter_mut() {
                *v /= c.max(1) as f32;
            }
        }
        let diff: f32 = mean[0].iter().zip(&mean[1]).map(|(a, b)| (a - b).abs()).sum::<f32>() / px as f32;
        assert!(diff > 0.05, "classes look identical, diff {}", diff);
    }

    #[test]
    fn every_shape_kind_draws_some_foreground() {
        for (i, kind) in ShapeKind::ALL.iter().enumerate() {
            assert_eq!(ShapeKind::for_class(i), *kind);
            // Sample the unit square and make sure the predicate is true somewhere
            // and false somewhere (no degenerate always-on / always-off shapes).
            let mut inside = 0;
            let mut total = 0;
            for y in 0..20 {
                for x in 0..20 {
                    let u = x as f32 / 20.0 - 0.5;
                    let v = y as f32 / 20.0 - 0.5;
                    if kind.contains(u, v, 0.35) {
                        inside += 1;
                    }
                    total += 1;
                }
            }
            assert!(inside > 0, "{:?} never draws", kind);
            assert!(inside < total, "{:?} fills everything", kind);
        }
        // Classes beyond the primitive count wrap around.
        assert_eq!(ShapeKind::for_class(10), ShapeKind::Circle);
    }

    #[test]
    fn wrappers_produce_expected_geometry() {
        let c10 = synth_cifar10(4, 0);
        assert_eq!(c10.images.shape(), &[4, 3, 32, 32]);
        assert_eq!(c10.num_classes, 10);
        let c100 = synth_cifar100(4, 0);
        assert_eq!(c100.num_classes, 100);
        let tin = synth_tiny_imagenet(2, 0);
        assert_eq!(tin.images.shape(), &[2, 3, 64, 64]);
        assert_eq!(tin.num_classes, 20);
    }

    #[test]
    #[should_panic]
    fn single_class_dataset_rejected() {
        let _ = ShapeImageDataset::generate(4, 1, 16, 3, 0.1, 0);
    }
}
