//! The analysis passes. Each pass turns parsed [`SourceFile`]s into
//! [`Finding`]s; the driver in the crate root applies suppressions.
//!
//! [`SourceFile`]: crate::source::SourceFile
//! [`Finding`]: crate::report::Finding

pub mod atomics;
pub mod clock;
pub mod condvar;
pub mod hot_alloc;
pub mod lock_order;
pub mod must_use;
pub mod panic_path;
