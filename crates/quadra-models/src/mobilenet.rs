//! MobileNetV1 (Howard et al. 2017): a stack of depth-wise separable
//! convolutions, the third backbone of Table 3. Each "DW" in the paper is a
//! pair of depth-wise 3×3 and point-wise 1×1 convolutions.

use quadra_core::{LayerSpec, ModelConfig};

/// Build a MobileNetV1-style configuration with `num_dw_pairs` depth-wise /
/// point-wise pairs (the original network uses 13) and channel widths scaled
/// by `width_mult`.
pub fn mobilenet_v1_config(
    num_dw_pairs: usize,
    width_mult: f32,
    input_channels: usize,
    image_size: usize,
    num_classes: usize,
) -> ModelConfig {
    assert!(num_dw_pairs >= 1, "need at least one depth-wise pair");
    assert!(width_mult > 0.0, "width multiplier must be positive");
    let ch = |c: f32| ((c * width_mult).round() as usize).max(4);
    // Standard MobileNetV1 channel plan (output channels of each point-wise conv).
    let full_plan =
        [64.0, 128.0, 128.0, 256.0, 256.0, 512.0, 512.0, 512.0, 512.0, 512.0, 512.0, 1024.0, 1024.0];
    // Strides of the depth-wise convs in the standard plan.
    let full_strides = [1usize, 2, 1, 2, 1, 2, 1, 1, 1, 1, 1, 2, 1];

    let mut layers = vec![LayerSpec::Conv {
        out_channels: ch(32.0),
        kernel: 3,
        stride: 2,
        padding: 1,
        groups: 1,
        batch_norm: true,
        relu: true,
    }];
    let mut current = ch(32.0);
    let mut spatial = image_size / 2;
    for i in 0..num_dw_pairs {
        let plan_idx = i.min(full_plan.len() - 1);
        // Only down-sample while the feature map stays at least 2x2.
        let stride = if full_strides[plan_idx] == 2 && spatial >= 4 { 2 } else { 1 };
        // Depth-wise 3x3 (groups == channels).
        layers.push(LayerSpec::Conv {
            out_channels: current,
            kernel: 3,
            stride,
            padding: 1,
            groups: current,
            batch_norm: true,
            relu: true,
        });
        spatial /= stride;
        // Point-wise 1x1.
        let out = ch(full_plan[plan_idx]);
        layers.push(LayerSpec::Conv {
            out_channels: out,
            kernel: 1,
            stride: 1,
            padding: 0,
            groups: 1,
            batch_norm: true,
            relu: true,
        });
        current = out;
    }
    layers.push(LayerSpec::GlobalAvgPool);
    layers.push(LayerSpec::Linear { out_features: num_classes, relu: false });
    ModelConfig::new(
        format!("mobilenetv1-{}dw-w{:.2}", num_dw_pairs, width_mult),
        input_channels,
        image_size,
        num_classes,
        layers,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadra_core::{build_model, estimate_param_count, AutoBuilder, NeuronType};
    use quadra_nn::Layer;
    use quadra_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_plan_has_13_pairs_and_plausible_size() {
        let cfg = mobilenet_v1_config(13, 1.0, 3, 32, 10);
        // stem + 13 * 2 convs
        assert_eq!(cfg.conv_layer_count(), 27);
        // The paper reports 4.22M parameters for first-order MobileNetV1.
        let params = estimate_param_count(&cfg);
        assert!(params > 3_000_000 && params < 5_500_000, "params {}", params);
    }

    #[test]
    fn tiny_variant_builds_and_runs() {
        let cfg = mobilenet_v1_config(4, 0.125, 3, 16, 5);
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = build_model(&cfg, &mut rng);
        let x = Tensor::randn(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
        let y = model.forward(&x, true);
        assert_eq!(y.shape(), &[2, 5]);
        let gin = model.backward(&Tensor::ones_like(&y));
        assert_eq!(gin.shape(), x.shape());
    }

    #[test]
    fn depthwise_layers_use_grouped_convolution() {
        let cfg = mobilenet_v1_config(3, 0.25, 3, 32, 10);
        let grouped =
            cfg.layers.iter().filter(|l| matches!(l, LayerSpec::Conv { groups, .. } if *groups > 1)).count();
        assert_eq!(grouped, 3);
    }

    #[test]
    fn reduction_to_8_pairs_matches_paper_quadrann() {
        // Table 3: first-order MobileNetV1 uses 13 DW pairs, QuadraNN only 8.
        let cfg = mobilenet_v1_config(13, 0.125, 3, 32, 10);
        let builder = AutoBuilder::new(NeuronType::Ours);
        // 8 pairs + stem = 17 conv layers.
        let reduced = builder.build(&cfg, 17, &[]);
        assert!(reduced.conv_layer_count() <= 17);
        assert!(reduced.is_quadratic());
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = build_model(&reduced, &mut rng);
        let y = model.forward(&Tensor::randn(&[1, 3, 32, 32], 0.0, 1.0, &mut rng), true);
        assert_eq!(y.shape(), &[1, 10]);
    }

    #[test]
    #[should_panic]
    fn zero_pairs_rejected() {
        let _ = mobilenet_v1_config(0, 1.0, 3, 32, 10);
    }
}
