//! Deterministic random initialisation of tensors (uniform, normal, Kaiming, Xavier).
//!
//! All constructors take an explicit [`rand::Rng`] so that every experiment in
//! the benchmark harness is reproducible from a single seed.

use crate::tensor::Tensor;
use rand::distributions::Distribution;
use rand::Rng;

/// The weight-initialisation schemes used by the layer zoo.
///
/// `KaimingNormal`/`KaimingUniform` correspond to He et al. 2015 ("Delving deep
/// into rectifiers"), which the paper uses to initialise both the first-order
/// and quadratic SSD backbones trained from scratch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitKind {
    /// All zeros.
    Zeros,
    /// All ones.
    Ones,
    /// Uniform in `[-bound, bound]`.
    Uniform {
        /// Half-width of the sampling interval.
        bound: f32,
    },
    /// Normal with the given standard deviation (mean 0).
    Normal {
        /// Standard deviation.
        std: f32,
    },
    /// Kaiming (He) uniform: `U(-sqrt(6/fan_in), sqrt(6/fan_in))`.
    KaimingUniform,
    /// Kaiming (He) normal: `N(0, sqrt(2/fan_in))`.
    KaimingNormal,
    /// Xavier/Glorot uniform: `U(-sqrt(6/(fan_in+fan_out)), ...)`.
    XavierUniform,
}

impl Tensor {
    /// Sample every element i.i.d. uniformly from `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor::from_vec(data, shape).expect("shape/product consistency")
    }

    /// Sample every element i.i.d. from a normal distribution `N(mean, std^2)`.
    ///
    /// Uses a Box–Muller transform so the only external dependency is a uniform
    /// random source.
    pub fn randn(shape: &[usize], mean: f32, std: f32, rng: &mut impl Rng) -> Tensor {
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(mean + std * r * theta.cos());
            if data.len() < n {
                data.push(mean + std * r * theta.sin());
            }
        }
        Tensor::from_vec(data, shape).expect("shape/product consistency")
    }

    /// Sample each element as 1.0 with probability `p`, else 0.0 (used by Dropout masks).
    pub fn bernoulli(shape: &[usize], p: f32, rng: &mut impl Rng) -> Tensor {
        let n: usize = shape.iter().product();
        let dist = rand::distributions::Uniform::new(0.0f32, 1.0f32);
        let data = (0..n).map(|_| if dist.sample(rng) < p { 1.0 } else { 0.0 }).collect();
        Tensor::from_vec(data, shape).expect("shape/product consistency")
    }

    /// Initialise a tensor according to `kind`, given fan-in/fan-out of the layer
    /// the tensor parameterises.
    pub fn init(
        shape: &[usize],
        kind: InitKind,
        fan_in: usize,
        fan_out: usize,
        rng: &mut impl Rng,
    ) -> Tensor {
        let fan_in = fan_in.max(1);
        let fan_out = fan_out.max(1);
        match kind {
            InitKind::Zeros => Tensor::zeros(shape),
            InitKind::Ones => Tensor::ones(shape),
            InitKind::Uniform { bound } => Tensor::rand_uniform(shape, -bound, bound, rng),
            InitKind::Normal { std } => Tensor::randn(shape, 0.0, std, rng),
            InitKind::KaimingUniform => {
                let bound = (6.0 / fan_in as f32).sqrt();
                Tensor::rand_uniform(shape, -bound, bound, rng)
            }
            InitKind::KaimingNormal => {
                let std = (2.0 / fan_in as f32).sqrt();
                Tensor::randn(shape, 0.0, std, rng)
            }
            InitKind::XavierUniform => {
                let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
                Tensor::rand_uniform(shape, -bound, bound, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = Tensor::rand_uniform(&[1000], -0.5, 0.5, &mut rng());
        assert!(t.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
        assert_eq!(t.shape(), &[1000]);
    }

    #[test]
    fn randn_moments_are_plausible() {
        let t = Tensor::randn(&[20000], 1.0, 2.0, &mut rng());
        let mean = t.as_slice().iter().sum::<f32>() / t.numel() as f32;
        let var = t.as_slice().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / t.numel() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {}", mean);
        assert!((var - 4.0).abs() < 0.3, "var {}", var);
    }

    #[test]
    fn randn_odd_length() {
        let t = Tensor::randn(&[7], 0.0, 1.0, &mut rng());
        assert_eq!(t.numel(), 7);
    }

    #[test]
    fn bernoulli_rate() {
        let t = Tensor::bernoulli(&[10000], 0.3, &mut rng());
        let rate = t.as_slice().iter().sum::<f32>() / t.numel() as f32;
        assert!((rate - 0.3).abs() < 0.03, "rate {}", rate);
        assert!(t.as_slice().iter().all(|&x| x == 0.0 || x == 1.0));
    }

    #[test]
    fn determinism_from_seed() {
        let a = Tensor::randn(&[32], 0.0, 1.0, &mut rng());
        let b = Tensor::randn(&[32], 0.0, 1.0, &mut rng());
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn kaiming_scales_with_fan_in() {
        let small_fan = Tensor::init(&[1000], InitKind::KaimingUniform, 10, 10, &mut rng());
        let large_fan = Tensor::init(&[1000], InitKind::KaimingUniform, 1000, 10, &mut rng());
        let amax = |t: &Tensor| t.as_slice().iter().fold(0.0f32, |m, x| m.max(x.abs()));
        assert!(amax(&small_fan) > amax(&large_fan));
        assert!(amax(&small_fan) <= (6.0f32 / 10.0).sqrt());
        assert!(amax(&large_fan) <= (6.0f32 / 1000.0).sqrt());
    }

    #[test]
    fn init_kinds_cover_all_variants() {
        let mut r = rng();
        assert_eq!(Tensor::init(&[4], InitKind::Zeros, 4, 4, &mut r).as_slice(), &[0.0; 4]);
        assert_eq!(Tensor::init(&[4], InitKind::Ones, 4, 4, &mut r).as_slice(), &[1.0; 4]);
        let u = Tensor::init(&[100], InitKind::Uniform { bound: 0.1 }, 4, 4, &mut r);
        assert!(u.as_slice().iter().all(|x| x.abs() <= 0.1));
        let n = Tensor::init(&[100], InitKind::Normal { std: 0.01 }, 4, 4, &mut r);
        assert!(n.as_slice().iter().all(|x| x.abs() < 0.1));
        let k = Tensor::init(&[100], InitKind::KaimingNormal, 50, 50, &mut r);
        assert!(!k.has_non_finite());
        let x = Tensor::init(&[100], InitKind::XavierUniform, 50, 50, &mut r);
        assert!(x.as_slice().iter().all(|v| v.abs() <= (6.0f32 / 100.0).sqrt()));
    }

    #[test]
    fn zero_fan_in_does_not_divide_by_zero() {
        let t = Tensor::init(&[8], InitKind::KaimingNormal, 0, 0, &mut rng());
        assert!(!t.has_non_finite());
    }
}
