//! # quadra-core
//!
//! The core of **QuadraLib-rs** — a Rust reproduction of *"QuadraLib: A
//! Performant Quadratic Neural Network Library for Architecture Optimization
//! and Design Exploration"* (MLSys 2022).
//!
//! Quadratic deep neural networks (QDNNs) replace the linear neuron
//! `f(X) = W·X + b` with a second-order polynomial of the input. The paper
//! surveys the existing quadratic-neuron designs (types T1–T4 and hybrids,
//! [`NeuronType`]), identifies six practical problems (P1–P6), proposes a new
//! neuron `f(X) = (Wa·X) ∘ (Wb·X) + Wc·X`, and builds a library around it.
//! This crate provides those "complementary components":
//!
//! * **Model level** — encapsulated quadratic layer modules
//!   ([`QuadraticLinear`], [`QuadraticConv2d`]) for every practical neuron
//!   type, model-structure configuration files ([`ModelConfig`]) with a
//!   construction function ([`build_model`]), and the QDNN [`AutoBuilder`]
//!   that converts any first-order model into a QuadraNN via layer replacement
//!   and RI-heuristic layer reduction (Eq. 5).
//! * **Training / inference level** — the [`MemoryProfiler`], the
//!   [`BackpropMode`] switch implementing hybrid (AD + symbolic)
//!   back-propagation, and the [`QuadraticOptimizer`] that couples the two.
//! * **Application level** — analysis tools: [`GradientRecorder`],
//!   weight/activation statistics, ASCII histograms and activation-attention
//!   maps ([`activation_attention`]).
//!
//! ## Quick example
//!
//! ```
//! use quadra_core::{NeuronType, QuadraticConv2d};
//! use quadra_nn::Layer;
//! use quadra_tensor::Tensor;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! // The proposed neuron: conv_a(x) ∘ conv_b(x) + conv_c(x)
//! let mut layer = QuadraticConv2d::conv3x3(NeuronType::Ours, 3, 16, &mut rng);
//! let x = Tensor::randn(&[1, 3, 32, 32], 0.0, 1.0, &mut rng);
//! let y = layer.forward(&x, true);
//! assert_eq!(y.shape(), &[1, 16, 32, 32]);
//! ```

#![warn(missing_docs)]

mod analysis;
mod builder;
mod config;
mod hybrid_bp;
mod neuron;
mod optimizer;
mod profiler;
mod qconv;
mod qlinear;

pub use analysis::{
    activation_attention, ascii_histogram, edge_vs_region_score, render_heatmap, tensor_stats, weight_stats,
    GradientRecorder, TensorStats,
};
pub use builder::{
    estimate_costs, estimate_flops, estimate_param_count, layer_performance_indicator, AutoBuilder, RiScore,
    SpecCost,
};
pub use config::{advance_geometry, build_model, walk_geometry, Geometry, LayerSpec, ModelConfig};
pub use hybrid_bp::BackpropMode;
pub use neuron::{DenseQuadraticNeuron, NeuronType};
pub use optimizer::{MemoryDecision, QuadraticOptimizer};
pub use profiler::{MemoryProfiler, MemoryReport, MemoryTimeline, ModelMemoryReport, TimelinePoint};
pub use qconv::QuadraticConv2d;
pub use qlinear::QuadraticLinear;
