//! Model checkpointing: save and restore the parameters of any [`Layer`] as a
//! named state dictionary (JSON on disk).
//!
//! The paper's detection experiments initialise the SSD backbone from a model
//! pre-trained on classification; this module provides the mechanism for that
//! workflow — extract a state dict from one model, persist it, and load it into
//! another model with the same architecture.

use crate::layer::Layer;
use quadra_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// A serialisable snapshot of one parameter tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamState {
    /// Tensor shape.
    pub shape: Vec<usize>,
    /// Row-major values.
    pub data: Vec<f32>,
}

/// A named collection of parameter snapshots.
///
/// Keys are `"{index:04}:{param_name}"`, which makes the ordering explicit and
/// detects architecture mismatches on load.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct StateDict {
    /// Parameter snapshots keyed by position and name.
    pub params: BTreeMap<String, ParamState>,
    /// Non-trainable buffer snapshots (batch-norm running statistics and the
    /// like), keyed the same way. Without these a restored model would fall
    /// back to the layer-construction defaults in eval mode.
    pub buffers: BTreeMap<String, ParamState>,
}

// Hand-written (the vendored derive has no `#[serde(default)]`): checkpoints
// written before buffers were persisted lack the "buffers" key and must keep
// loading — a buffer-free model accepts them as-is, and a buffer-bearing
// model rejects them in `load_into` with the count-mismatch diagnostic.
impl Deserialize for StateDict {
    fn from_value(v: &serde::Value) -> Result<Self, String> {
        let obj = v.as_obj().ok_or_else(|| format!("expected object for StateDict, found {}", v.kind()))?;
        let params = Deserialize::from_value(serde::field(obj, "params")?)?;
        let buffers = match serde::field(obj, "buffers") {
            Ok(value) => Deserialize::from_value(value)?,
            Err(_) => BTreeMap::new(),
        };
        Ok(StateDict { params, buffers })
    }
}

/// Check one checkpoint entry against a model tensor and copy it over.
fn restore_entry(
    what: &str,
    i: usize,
    key: &str,
    state: &ParamState,
    name: &str,
    value: &mut Tensor,
) -> Result<(), String> {
    let expected_key = format!("{:04}:{}", i, name);
    if key != expected_key {
        return Err(format!("{} {} name mismatch: checkpoint '{}', model '{}'", what, i, key, expected_key));
    }
    if value.shape() != state.shape.as_slice() {
        return Err(format!(
            "{} '{}' shape mismatch: checkpoint {:?}, model {:?}",
            what,
            key,
            state.shape,
            value.shape()
        ));
    }
    let tensor = Tensor::from_vec(state.data.clone(), &state.shape)
        .map_err(|e| format!("corrupt checkpoint entry '{}': {}", key, e))?;
    value.copy_from(&tensor).map_err(|e| format!("copy failed for '{}': {}", key, e))
}

impl StateDict {
    /// Capture the current parameters and buffers of a model.
    pub fn from_layer(model: &dyn Layer) -> Self {
        let mut params = BTreeMap::new();
        for (i, p) in model.params().iter().enumerate() {
            params.insert(
                format!("{:04}:{}", i, p.name),
                ParamState { shape: p.value.shape().to_vec(), data: p.value.as_slice().to_vec() },
            );
        }
        let mut buffers = BTreeMap::new();
        for (i, (name, t)) in model.buffers().iter().enumerate() {
            buffers.insert(
                format!("{:04}:{}", i, name),
                ParamState { shape: t.shape().to_vec(), data: t.as_slice().to_vec() },
            );
        }
        StateDict { params, buffers }
    }

    /// Number of stored parameter tensors (excluding buffers).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True if the snapshot holds neither parameters nor buffers.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty() && self.buffers.is_empty()
    }

    /// Total number of scalar values stored, parameters plus buffers.
    pub fn numel(&self) -> usize {
        self.params.values().chain(self.buffers.values()).map(|p| p.data.len()).sum()
    }

    /// Load the snapshot into a model with the same architecture.
    ///
    /// Returns an error message when the number, names or shapes of the
    /// parameters or buffers do not match.
    pub fn load_into(&self, model: &mut dyn Layer) -> Result<(), String> {
        {
            let mut target = model.params_mut();
            if target.len() != self.params.len() {
                return Err(format!(
                    "parameter count mismatch: checkpoint has {}, model has {}",
                    self.params.len(),
                    target.len()
                ));
            }
            for (i, (key, state)) in self.params.iter().enumerate() {
                let p = &mut target[i];
                restore_entry("parameter", i, key, state, &p.name, &mut p.value)?;
            }
        }
        let mut target = model.buffers_mut();
        if target.len() != self.buffers.len() {
            return Err(format!(
                "buffer count mismatch: checkpoint has {}, model has {} (was the checkpoint saved before buffers were persisted?)",
                self.buffers.len(),
                target.len()
            ));
        }
        for (i, (key, state)) in self.buffers.iter().enumerate() {
            let (name, value) = &mut target[i];
            restore_entry("buffer", i, key, state, name, value)?;
        }
        Ok(())
    }

    /// Serialise to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("state dict serialises")
    }

    /// Parse from a JSON string.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Write the checkpoint to disk.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Read a checkpoint from disk.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::layer::Sequential;
    use crate::linear::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new(vec![
            Box::new(Linear::new(4, 8, true, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(8, 3, true, &mut rng)),
        ])
    }

    #[test]
    fn roundtrip_restores_exact_outputs() {
        let mut src = model(1);
        let mut dst = model(2);
        let x = Tensor::randn(&[5, 4], 0.0, 1.0, &mut StdRng::seed_from_u64(3));
        let before_src = src.forward(&x, false);
        let before_dst = dst.forward(&x, false);
        assert!(before_src.max_abs_diff(&before_dst).unwrap() > 1e-3);

        let state = StateDict::from_layer(&src);
        assert_eq!(state.len(), 4);
        assert!(!state.is_empty());
        assert_eq!(state.numel(), src.param_count());
        state.load_into(&mut dst).unwrap();
        let after_dst = dst.forward(&x, false);
        assert!(after_dst.allclose(&before_src, 1e-6));
    }

    #[test]
    fn json_and_file_roundtrip() {
        let src = model(4);
        let state = StateDict::from_layer(&src);
        let json = state.to_json();
        let back = StateDict::from_json(&json).unwrap();
        assert_eq!(back, state);
        assert!(StateDict::from_json("{bad").is_err());

        let path = std::env::temp_dir().join("quadralib_ckpt_test.json");
        state.save(&path).unwrap();
        let loaded = StateDict::load(&path).unwrap();
        assert_eq!(loaded, state);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batchnorm_running_stats_survive_roundtrip() {
        use crate::batchnorm::BatchNorm2d;
        use crate::dropout::Flatten;
        let bn_model = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            Sequential::new(vec![
                Box::new(BatchNorm2d::new(3)) as Box<dyn crate::layer::Layer>,
                Box::new(Flatten::new()),
                Box::new(Linear::new(3 * 2 * 2, 2, true, &mut rng)),
            ])
        };
        let mut src = bn_model(1);
        // Drive the running statistics away from their (0, 1) defaults.
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let batch = Tensor::randn(&[6, 3, 2, 2], 3.0, 2.0, &mut rng);
            src.forward(&batch, true);
        }
        let x = Tensor::randn(&[4, 3, 2, 2], 3.0, 2.0, &mut rng);
        let expected = src.forward(&x, false);

        let state = StateDict::from_layer(&src);
        assert_eq!(state.buffers.len(), 2, "running_mean and running_var must be captured");
        assert_eq!(state.numel(), src.param_count() + 6);
        // JSON round-trip preserves the buffers too.
        let state = StateDict::from_json(&state.to_json()).unwrap();
        let mut dst = bn_model(2);
        state.load_into(&mut dst).unwrap();
        let got = dst.forward(&x, false);
        assert_eq!(
            got.as_slice(),
            expected.as_slice(),
            "restored eval forward must match the original exactly"
        );
    }

    #[test]
    fn pre_buffer_checkpoints_still_parse() {
        // JSON written before buffers were persisted has no "buffers" key; it
        // must parse (empty buffers) and load into buffer-free models.
        let src = model(8);
        let mut legacy = StateDict::from_layer(&src);
        legacy.buffers.clear();
        let json = legacy.to_json();
        let without_buffers = json.replace(",\"buffers\":{}", "").replace("\"buffers\":{},", "");
        assert!(!without_buffers.contains("buffers"), "test must exercise the missing-key path");
        let parsed = StateDict::from_json(&without_buffers).unwrap();
        assert!(parsed.buffers.is_empty());
        assert_eq!(parsed.params, legacy.params);
        let mut dst = model(9);
        parsed.load_into(&mut dst).unwrap();
    }

    #[test]
    fn missing_buffers_are_rejected() {
        use crate::batchnorm::BatchNorm2d;
        let src = Sequential::new(vec![Box::new(Relu::new()) as Box<dyn crate::layer::Layer>]);
        let state = StateDict::from_layer(&src);
        let mut dst = Sequential::new(vec![Box::new(BatchNorm2d::new(2)) as Box<dyn crate::layer::Layer>]);
        // Checkpoint has gamma/beta missing too, so the parameter check fires
        // first; a buffer-only mismatch must also be caught.
        let mut no_params = StateDict { params: state.params.clone(), buffers: BTreeMap::new() };
        no_params.params.insert("0000:bn.gamma".into(), ParamState { shape: vec![2], data: vec![1.0, 1.0] });
        no_params.params.insert("0001:bn.beta".into(), ParamState { shape: vec![2], data: vec![0.0, 0.0] });
        let err = no_params.load_into(&mut dst).unwrap_err();
        assert!(err.contains("buffer count mismatch"), "{}", err);
    }

    #[test]
    fn mismatched_architecture_is_rejected() {
        let src = model(5);
        let state = StateDict::from_layer(&src);

        // Different layer sizes -> shape mismatch.
        let mut rng = StdRng::seed_from_u64(6);
        let mut wrong_shape = Sequential::new(vec![
            Box::new(Linear::new(4, 16, true, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(16, 3, true, &mut rng)),
        ]);
        assert!(state.load_into(&mut wrong_shape).unwrap_err().contains("shape mismatch"));

        // Different parameter count -> count mismatch.
        let mut fewer = Sequential::new(vec![Box::new(Linear::new(4, 3, true, &mut rng))]);
        assert!(state.load_into(&mut fewer).unwrap_err().contains("count mismatch"));
    }

    #[test]
    fn empty_model_produces_empty_state() {
        let relu_only = Sequential::new(vec![Box::new(Relu::new())]);
        let state = StateDict::from_layer(&relu_only);
        assert!(state.is_empty());
        assert_eq!(state.numel(), 0);
        let mut other = Sequential::new(vec![Box::new(Relu::new())]);
        state.load_into(&mut other).unwrap();
    }
}
