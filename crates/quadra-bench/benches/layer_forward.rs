//! Criterion benchmark: first-order vs quadratic convolution, forward and
//! forward+backward (the per-layer cost behind Table 3's time columns).

use criterion::{criterion_group, criterion_main, Criterion};
use quadra_core::{NeuronType, QuadraticConv2d};
use quadra_nn::{Conv2d, Layer};
use quadra_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_layers(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_layer");
    group.sample_size(15);
    let mut rng = StdRng::seed_from_u64(0);
    let x = Tensor::randn(&[4, 8, 16, 16], 0.0, 1.0, &mut rng);

    let mut first = Conv2d::conv3x3(8, 16, &mut rng);
    group.bench_function("first_order_forward", |b| b.iter(|| std::hint::black_box(first.forward(&x, true))));
    group.bench_function("first_order_fwd_bwd", |b| {
        b.iter(|| {
            let y = first.forward(&x, true);
            std::hint::black_box(first.backward(&Tensor::ones_like(&y)))
        })
    });

    let mut quad = QuadraticConv2d::conv3x3(NeuronType::Ours, 8, 16, &mut rng);
    group.bench_function("quadratic_ours_forward", |b| {
        b.iter(|| std::hint::black_box(quad.forward(&x, true)))
    });
    group.bench_function("quadratic_ours_fwd_bwd", |b| {
        b.iter(|| {
            let y = quad.forward(&x, true);
            std::hint::black_box(quad.backward(&Tensor::ones_like(&y)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_layers);
criterion_main!(benches);
