//! Classification metrics: accuracy, top-k accuracy and confusion matrices.

use quadra_tensor::Tensor;

/// Fraction of rows of `logits` (`[batch, classes]`) whose argmax equals the
/// integer label stored (as `f32`) in `labels` (`[batch]`).
pub fn accuracy(logits: &Tensor, labels: &Tensor) -> f32 {
    assert_eq!(logits.ndim(), 2, "accuracy expects [batch, classes] logits");
    let n = logits.shape()[0];
    assert_eq!(labels.numel(), n, "one label per sample");
    if n == 0 {
        return 0.0;
    }
    let preds = logits.argmax_last_axis().expect("argmax");
    let correct =
        preds.as_slice().iter().zip(labels.as_slice()).filter(|(p, l)| (**p - **l).abs() < 0.5).count();
    correct as f32 / n as f32
}

/// Fraction of samples whose true label is among the `k` highest logits.
pub fn topk_accuracy(logits: &Tensor, labels: &Tensor, k: usize) -> f32 {
    assert_eq!(logits.ndim(), 2, "topk_accuracy expects [batch, classes] logits");
    let n = logits.shape()[0];
    let c = logits.shape()[1];
    assert_eq!(labels.numel(), n, "one label per sample");
    let k = k.min(c);
    if n == 0 || k == 0 {
        return 0.0;
    }
    let src = logits.as_slice();
    let mut correct = 0usize;
    for i in 0..n {
        let row = &src[i * c..(i + 1) * c];
        let label = labels.as_slice()[i] as usize;
        let label_score = row[label];
        // Count how many classes strictly beat the label's score.
        let better = row.iter().filter(|&&v| v > label_score).count();
        if better < k {
            correct += 1;
        }
    }
    correct as f32 / n as f32
}

/// Confusion matrix `M[true][pred]` with raw counts.
pub fn confusion_matrix(logits: &Tensor, labels: &Tensor, num_classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(logits.ndim(), 2, "confusion_matrix expects [batch, classes] logits");
    let preds = logits.argmax_last_axis().expect("argmax");
    let mut m = vec![vec![0usize; num_classes]; num_classes];
    for (p, l) in preds.as_slice().iter().zip(labels.as_slice()) {
        let (p, l) = (*p as usize, *l as usize);
        if p < num_classes && l < num_classes {
            m[l][p] += 1;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits() -> Tensor {
        // predictions: 1, 0, 2, 2 for labels 1, 1, 2, 0
        Tensor::from_vec(
            vec![
                0.1, 0.8, 0.1, //
                0.9, 0.05, 0.05, //
                0.0, 0.2, 0.8, //
                0.3, 0.2, 0.5,
            ],
            &[4, 3],
        )
        .unwrap()
    }

    #[test]
    fn accuracy_counts_matches() {
        let labels = Tensor::from_slice(&[1.0, 1.0, 2.0, 0.0]);
        assert!((accuracy(&logits(), &labels) - 0.5).abs() < 1e-6);
        let perfect = Tensor::from_slice(&[1.0, 0.0, 2.0, 2.0]);
        assert_eq!(accuracy(&logits(), &perfect), 1.0);
        assert_eq!(accuracy(&Tensor::zeros(&[0, 3]), &Tensor::zeros(&[0])), 0.0);
    }

    #[test]
    fn topk_includes_lower_ranked_labels() {
        let labels = Tensor::from_slice(&[1.0, 1.0, 2.0, 0.0]);
        let top1 = topk_accuracy(&logits(), &labels, 1);
        let top2 = topk_accuracy(&logits(), &labels, 2);
        let top3 = topk_accuracy(&logits(), &labels, 3);
        assert!((top1 - 0.5).abs() < 1e-6);
        assert!(top2 >= top1);
        assert_eq!(top3, 1.0);
        // k larger than the number of classes saturates at 1.
        assert_eq!(topk_accuracy(&logits(), &labels, 10), 1.0);
        assert_eq!(topk_accuracy(&Tensor::zeros(&[0, 3]), &Tensor::zeros(&[0]), 1), 0.0);
    }

    #[test]
    fn confusion_matrix_diagonal_counts_correct_predictions() {
        let labels = Tensor::from_slice(&[1.0, 1.0, 2.0, 0.0]);
        let m = confusion_matrix(&logits(), &labels, 3);
        assert_eq!(m[1][1], 1); // one correct class-1 prediction
        assert_eq!(m[1][0], 1); // one class-1 sample predicted as 0
        assert_eq!(m[2][2], 1);
        assert_eq!(m[0][2], 1);
        let total: usize = m.iter().flatten().sum();
        assert_eq!(total, 4);
    }

    #[test]
    #[should_panic]
    fn label_count_mismatch_panics() {
        let _ = accuracy(&logits(), &Tensor::zeros(&[3]));
    }
}
