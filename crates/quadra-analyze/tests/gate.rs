//! Gate-semantics tests: baseline ratcheting and the incremental-run cache,
//! exercised through the library API end-to-end (real analyses over
//! in-memory fixtures, real files for the cache under `CARGO_TARGET_TMPDIR`).

use quadra_analyze::baseline::Baseline;
use quadra_analyze::cache::{fnv1a, CacheFile};
use quadra_analyze::{analyze_sources, AnalyzeConfig, Report};
use std::path::PathBuf;

fn analyze(files: &[(&str, &str)], cfg: &AnalyzeConfig) -> Report {
    let owned: Vec<(String, String)> =
        files.iter().map(|(p, s)| ((*p).to_string(), (*s).to_string())).collect();
    analyze_sources(&owned, cfg)
}

/// A fixture with one real finding: a lock held across a channel send.
const HELD_ACROSS_SEND: &str = r#"
static A_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

fn ship(tx: &std::sync::mpsc::Sender<u32>) {
    let a = A_LOCK.lock();
    tx.send(1);
    drop(a);
}
"#;

/// The same fixture with a second, distinct finding added.
const HELD_ACROSS_SEND_AND_RECV: &str = r#"
static A_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

fn ship(tx: &std::sync::mpsc::Sender<u32>) {
    let a = A_LOCK.lock();
    tx.send(1);
    drop(a);
}

fn take(rx: &std::sync::mpsc::Receiver<u32>) {
    let a = A_LOCK.lock();
    rx.recv();
    drop(a);
}
"#;

#[test]
fn baselined_finding_passes_and_new_finding_fails() {
    let cfg = AnalyzeConfig::default();
    let before = analyze(&[("crates/fixture/src/lib.rs", HELD_ACROSS_SEND)], &cfg);
    assert_eq!(before.unsuppressed_count(), 1);
    let baseline = Baseline::from_report(&before);

    // Unchanged workspace: the tolerated finding is not drift.
    let unchanged = analyze(&[("crates/fixture/src/lib.rs", HELD_ACROSS_SEND)], &cfg);
    assert!(baseline.new_findings(&unchanged).is_empty());

    // A second finding appears: only IT is drift, the baselined one stays
    // tolerated.
    let grown = analyze(&[("crates/fixture/src/lib.rs", HELD_ACROSS_SEND_AND_RECV)], &cfg);
    assert_eq!(grown.unsuppressed_count(), 2);
    let new = baseline.new_findings(&grown);
    assert_eq!(new.len(), 1);
    assert!(new[0].message.contains("recv"), "the new finding is the recv one: {}", new[0].message);
}

#[test]
fn shrinking_the_workspace_yields_stale_entries_not_failures() {
    let cfg = AnalyzeConfig::default();
    let before = analyze(&[("crates/fixture/src/lib.rs", HELD_ACROSS_SEND_AND_RECV)], &cfg);
    let baseline = Baseline::from_report(&before);
    assert_eq!(baseline.entries.values().sum::<usize>(), 2);

    // One finding fixed: no drift, one stale entry ready to ratchet away.
    let after = analyze(&[("crates/fixture/src/lib.rs", HELD_ACROSS_SEND)], &cfg);
    assert!(baseline.new_findings(&after).is_empty());
    assert_eq!(baseline.stale_count(&after), 1);

    // Re-snapshot (what `--write-baseline` does): the ratchet tightens and
    // the fixed finding would now be drift if it came back.
    let ratcheted = Baseline::from_report(&after);
    assert_eq!(ratcheted.entries.values().sum::<usize>(), 1);
    let regressed = analyze(&[("crates/fixture/src/lib.rs", HELD_ACROSS_SEND_AND_RECV)], &cfg);
    assert_eq!(ratcheted.new_findings(&regressed).len(), 1);
}

#[test]
fn baseline_files_roundtrip_through_disk() {
    let cfg = AnalyzeConfig::default();
    let report = analyze(&[("crates/fixture/src/lib.rs", HELD_ACROSS_SEND)], &cfg);
    let baseline = Baseline::from_report(&report);
    let path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("gate_baseline.json");
    std::fs::write(&path, baseline.to_json()).unwrap();
    let loaded = Baseline::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(loaded, baseline);
    assert!(loaded.new_findings(&report).is_empty());
}

#[test]
fn cached_run_replays_report_byte_identical() {
    let cfg = AnalyzeConfig::default();
    let sources: Vec<(String, String)> =
        vec![("crates/fixture/src/lib.rs".to_string(), HELD_ACROSS_SEND.to_string())];
    let report = analyze_sources(&sources, &cfg);
    let report_json = report.to_json();
    let human = report.human();
    let fingerprint = fnv1a(format!("{cfg:?}").as_bytes());

    // Persist (what the CLI does after a miss), reload, and verify a hit
    // replays the exact bytes.
    let path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("gate_cache.json");
    let entry = CacheFile::new(fingerprint, &sources, report_json.clone(), human.clone());
    std::fs::write(&path, entry.to_json()).unwrap();
    let loaded = CacheFile::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert!(loaded.matches(fingerprint, &sources));
    assert_eq!(loaded.report_json, report_json);
    assert_eq!(loaded.human, human);

    // The replayed report supports gating decisions without re-analysis.
    let replayed = Report::from_json(&loaded.report_json).unwrap();
    assert_eq!(replayed.unsuppressed_count(), report.unsuppressed_count());
    assert!(Baseline::from_report(&replayed).new_findings(&report).is_empty());
}

#[test]
fn cache_misses_on_edit_and_on_config_change() {
    let cfg = AnalyzeConfig::default();
    let sources: Vec<(String, String)> =
        vec![("crates/fixture/src/lib.rs".to_string(), HELD_ACROSS_SEND.to_string())];
    let fingerprint = fnv1a(format!("{cfg:?}").as_bytes());
    let entry = CacheFile::new(fingerprint, &sources, String::new(), String::new());

    // Editing any file invalidates.
    let mut edited = sources.clone();
    edited[0].1.push_str("\n// trailing comment\n");
    assert!(!entry.matches(fingerprint, &edited));

    // Changing the config (here: enabling a pass) changes the fingerprint.
    let stricter = AnalyzeConfig { condvar_crates: vec!["fixture".to_string()], ..AnalyzeConfig::default() };
    let other_fingerprint = fnv1a(format!("{stricter:?}").as_bytes());
    assert_ne!(fingerprint, other_fingerprint);
    assert!(!entry.matches(other_fingerprint, &sources));
}
