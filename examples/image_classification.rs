//! Image classification with the auto-built QuadraNN: convert a first-order
//! VGG-8 into a quadratic model, reduce its depth with the RI heuristic, and
//! compare both on the synthetic CIFAR-10 stand-in.
//!
//! Run with `cargo run --example image_classification --release`.

use quadralib::core::{build_model, AutoBuilder, NeuronType};
use quadralib::data::ShapeImageDataset;
use quadralib::models::vgg8_config;
use quadralib::nn::{CosineAnnealingLr, CrossEntropyLoss, Layer, Sgd, SgdConfig, Trainer, TrainerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let train = ShapeImageDataset::generate(300, 10, 16, 3, 0.1, 1);
    let test = ShapeImageDataset::generate(100, 10, 16, 3, 0.1, 2);

    let first_order = vgg8_config(0.0625, 10, 16);
    let quadra = AutoBuilder::new(NeuronType::Ours).build(&first_order, 4, &[]);
    println!("first-order config: {} conv layers", first_order.conv_layer_count());
    println!("QuadraNN config   : {} conv layers (auto-builder reduced)", quadra.conv_layer_count());

    for (name, cfg) in [("first-order VGG-8", &first_order), ("QuadraNN", &quadra)] {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = build_model(cfg, &mut rng);
        let mut trainer =
            Trainer::new(TrainerConfig { epochs: 6, batch_size: 32, shuffle: true, seed: 4, verbose: false });
        let mut opt = Sgd::new(SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 5e-4, nesterov: false });
        let report = trainer.fit(
            &mut model,
            &CrossEntropyLoss::new(),
            &mut opt,
            &CosineAnnealingLr::new(0.05, 6, 1e-4),
            &train.images,
            &train.labels,
            None,
        );
        let (acc, _) = trainer.evaluate(&mut model, &test.images, &test.labels);
        println!(
            "{:<20} params {:>8}  train acc {:>5.1}%  test acc {:>5.1}%  mem {:.1} MiB",
            name,
            model.param_count(),
            report.final_train_acc() * 100.0,
            acc * 100.0,
            report.total_train_memory_bytes() as f64 / (1024.0 * 1024.0)
        );
    }
}
