//! The event loop: one thread multiplexing every connection.
//!
//! Single-threaded readiness dispatch over the [`Poller`](crate::sys): the
//! listener, the pump's waker fd, and every connection socket are registered
//! under integer tokens; each wait returns the ready set and the loop
//! reads/writes until `WouldBlock`. Inference never runs here — requests are
//! forwarded to [`RouterClient::send`] (a bounded-queue handoff) and
//! completions come back through the
//! [`CompletionPump`](crate::pump::CompletionPump)'s waker, so the loop's
//! per-event work is bounded by codec throughput.
//!
//! ## Backpressure
//!
//! Two mechanisms compose:
//! * **Shed signalling**: a request shed with [`ServeError::Overloaded`] is
//!   answered with a backpressure frame carrying the engine's `retry_after`
//!   estimate — the client's cue to slow its open loop.
//! * **Read pausing**: once a connection's outbound buffer crosses
//!   [`GatewayConfig::write_high_water`], the loop drops the socket's
//!   readable interest (on epoll: `EPOLLIN` unregistered). The client's
//!   submissions then pile up in kernel buffers and eventually block its own
//!   writes — flow control without gateway memory growth. Reads resume at
//!   [`GatewayConfig::write_low_water`]; the gap is flap hysteresis.
//!
//! ## Graceful drain
//!
//! On shutdown the loop (1) deregisters the listener, (2) broadcasts GoAway,
//! (3) answers any further requests with [`ServeError::ShuttingDown`] error
//! frames while continuing to flush in-flight responses, and (4) exits once
//! nothing is outstanding and every outbound buffer is empty — or the
//! [`GatewayConfig::drain_timeout`] expires. Only after the loop exits may
//! [`Router::shutdown`](quadra_serve::Router::shutdown) run; see
//! [`Gateway::shutdown`](crate::Gateway::shutdown) for the ordering
//! contract.

use crate::config::GatewayConfig;
use crate::conn::{ConnError, Connection};
use crate::frame::{error_frame, BackpressureFrame, ErrorFrame, Frame, ResponseFrame, PROTOCOL_ERROR_CODE};
use crate::pump::CompletionPump;
use crate::sys::{self, Event, Poller, Waker};
use quadra_serve::{Request, RouterClient, ServeError};
use std::collections::HashMap;
use std::io;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Poll cadence while draining: short, so the quiesce condition is
/// re-checked promptly even with no socket activity.
const DRAIN_TICK: Duration = Duration::from_millis(2);

/// One multiplexed connection and its registration state.
struct Conn {
    link: Connection<std::net::TcpStream>,
    fd: i32,
    /// Interests currently registered with the poller (avoids a syscall per
    /// event when nothing changed).
    interest_r: bool,
    interest_w: bool,
    /// Reads paused by the write-buffer high-water mark.
    reads_paused: bool,
    /// Peer sent EOF; no further requests will arrive.
    read_closed: bool,
    /// Requests forwarded to the engine whose completions have not yet been
    /// written back to this connection.
    open_requests: usize,
}

impl Conn {
    fn wants_read(&self) -> bool {
        !self.reads_paused && !self.read_closed
    }

    /// A connection is done when the peer stopped sending, nothing is in
    /// flight for it, and its outbound buffer is flushed.
    fn finished(&self) -> bool {
        self.read_closed && self.open_requests == 0 && !self.link.wants_write()
    }
}

/// Run the loop until `stop` is observed and the drain completes. Called on
/// the dedicated `gateway-loop` thread; returns only on fatal poller errors
/// or clean shutdown.
pub(crate) fn run(
    cfg: GatewayConfig,
    listener: TcpListener,
    mut poller: Poller,
    client: RouterClient,
    stop: Arc<AtomicBool>,
    waker: Arc<Waker>,
) -> io::Result<()> {
    let pump = CompletionPump::start(Arc::clone(&waker));
    let lfd = sys::listener_fd(&listener);
    poller.register(lfd, TOKEN_LISTENER, true, false)?;
    poller.register(waker.read_fd(), TOKEN_WAKER, true, false)?;

    let mut conns: HashMap<u64, Conn> = HashMap::with_capacity(64);
    let mut next_token = FIRST_CONN_TOKEN;
    let mut events: Vec<Event> = Vec::with_capacity(256);
    let mut draining = false;
    let mut listener_registered = true;
    let mut drain_deadline = Instant::now();

    loop {
        events.clear();
        let timeout = if draining { Some(DRAIN_TICK) } else { None };
        poller.wait(timeout, &mut events)?;

        for i in 0..events.len() {
            let Some(ev) = events.get(i).copied() else { break };
            match ev.token {
                TOKEN_LISTENER => {
                    accept_ready(&cfg, &listener, &mut poller, &mut conns, &mut next_token, draining);
                }
                TOKEN_WAKER => waker.drain(),
                token => {
                    let keep = match conns.get_mut(&token) {
                        Some(conn) => {
                            on_conn_event(&cfg, &mut poller, &pump, &client, conn, token, ev, draining)
                        }
                        None => true, // already closed this sweep
                    };
                    if !keep {
                        close_conn(&mut poller, &mut conns, token);
                    }
                }
            }
        }

        deliver_completions(&cfg, &mut poller, &pump, &mut conns);

        if stop.load(Ordering::Acquire) && !draining {
            draining = true;
            drain_deadline = Instant::now() + cfg.drain_timeout;
            if listener_registered {
                let _ = poller.deregister(lfd);
                listener_registered = false;
            }
            broadcast_goaway(&cfg, &mut poller, &mut conns);
        }
        if draining {
            let quiesced = pump.outstanding() == 0 && conns.values().all(|c| !c.link.wants_write());
            if quiesced || Instant::now() >= drain_deadline {
                break;
            }
        }
    }

    for (_, conn) in conns.drain() {
        let _ = poller.deregister(conn.fd);
    }
    if listener_registered {
        let _ = poller.deregister(lfd);
    }
    pump.shutdown();
    Ok(())
}

/// Accept until the listener would block. Connections above the cap (or
/// arriving mid-drain) are closed immediately by dropping the stream.
fn accept_ready(
    cfg: &GatewayConfig,
    listener: &TcpListener,
    poller: &mut Poller,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    draining: bool,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if draining || conns.len() >= cfg.max_connections {
                    continue; // dropping the stream closes it
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                // Latency over throughput: frames are already coalesced.
                let _ = stream.set_nodelay(true);
                let fd = sys::stream_fd(&stream);
                let token = *next_token;
                *next_token += 1;
                if poller.register(fd, token, true, false).is_err() {
                    continue;
                }
                conns.insert(
                    token,
                    Conn {
                        link: Connection::new(stream, cfg.max_frame_bytes),
                        fd,
                        interest_r: true,
                        interest_w: false,
                        reads_paused: false,
                        read_closed: false,
                        open_requests: 0,
                    },
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break, // transient accept failure; the next event retries
        }
    }
}

/// Handle one readiness event for a connection. Returns `false` when the
/// connection must be torn down.
#[allow(clippy::too_many_arguments)]
fn on_conn_event(
    cfg: &GatewayConfig,
    poller: &mut Poller,
    pump: &CompletionPump,
    client: &RouterClient,
    conn: &mut Conn,
    token: u64,
    ev: Event,
    draining: bool,
) -> bool {
    if ev.readable {
        match conn.link.on_readable() {
            Ok(outcome) => {
                if outcome.eof {
                    conn.read_closed = true;
                }
                for frame in outcome.frames {
                    if !handle_frame(pump, client, conn, token, frame, draining) {
                        // Protocol violation: the reply frame is already
                        // queued; push it out best-effort and close.
                        let _ = conn.link.on_writable();
                        return false;
                    }
                }
            }
            Err(ConnError::Protocol(violation)) => {
                send_protocol_error(conn, violation);
                return false;
            }
            Err(ConnError::Io(_)) => return false,
        }
    }
    if ev.writable && conn.link.on_writable().is_err() {
        return false;
    }
    if ev.closed && !ev.readable {
        return false;
    }
    if conn.finished() {
        return false;
    }
    update_watermark(cfg, conn);
    sync_interest(poller, conn, token);
    true
}

/// Dispatch one decoded frame. Returns `false` on protocol violations
/// (clients may only send requests).
fn handle_frame(
    pump: &CompletionPump,
    client: &RouterClient,
    conn: &mut Conn,
    token: u64,
    frame: Frame,
    draining: bool,
) -> bool {
    let rf = match frame {
        Frame::Request(rf) => rf,
        _ => {
            send_protocol_error(conn, crate::frame::FrameError::UnknownKind(0));
            return false;
        }
    };
    if draining {
        let reply = Frame::Error(error_frame(rf.correlation_id, &ServeError::ShuttingDown));
        let _ = conn.link.queue_frame(&reply);
        return true;
    }
    let mut req = Request::new(rf.input).priority(rf.priority);
    if rf.deadline_ms > 0 {
        req = req.deadline(Duration::from_millis(u64::from(rf.deadline_ms)));
    }
    if let Some(tag) = rf.tag {
        req = req.tag(tag);
    }
    match client.send(&rf.model, req) {
        Ok(handle) => {
            conn.open_requests += 1;
            pump.submit(token, rf.correlation_id, handle);
        }
        Err(ServeError::Overloaded { retry_after }) => {
            let reply = Frame::Backpressure(BackpressureFrame {
                correlation_id: rf.correlation_id,
                retry_after_ms: retry_after.as_millis().min(u128::from(u32::MAX)) as u32,
            });
            let _ = conn.link.queue_frame(&reply);
        }
        Err(err) => {
            let reply = Frame::Error(error_frame(rf.correlation_id, &err));
            let _ = conn.link.queue_frame(&reply);
        }
    }
    true
}

/// Queue a connection-level protocol-error frame and push it best-effort:
/// the caller closes the connection immediately after, so this is the last
/// thing the peer hears.
fn send_protocol_error(conn: &mut Conn, violation: crate::frame::FrameError) {
    let reply = Frame::Error(ErrorFrame {
        correlation_id: 0,
        code: PROTOCOL_ERROR_CODE,
        retry_after_ms: 0,
        // quadra-analyze: allow(hot_alloc:to-string, teardown path: runs once per misbehaving connection, never on served traffic)
        message: violation.to_string(),
    });
    let _ = conn.link.queue_frame(&reply);
    let _ = conn.link.on_writable();
}

/// Write settled completions back to their connections.
fn deliver_completions(
    cfg: &GatewayConfig,
    poller: &mut Poller,
    pump: &CompletionPump,
    conns: &mut HashMap<u64, Conn>,
) {
    let completions = pump.take_completions();
    if completions.is_empty() {
        return;
    }
    let mut dead: Vec<u64> = Vec::with_capacity(2);
    for completion in completions {
        let Some(conn) = conns.get_mut(&completion.token) else {
            continue; // connection closed while the request was in flight
        };
        conn.open_requests = conn.open_requests.saturating_sub(1);
        let reply = match completion.result {
            Ok(resp) => Frame::Response(ResponseFrame {
                correlation_id: completion.correlation_id,
                batch_id: resp.batch_id,
                model_version: resp.model_version,
                batch_samples: resp.batch_samples.min(u32::MAX as usize) as u32,
                queue_wait_us: resp.queue_wait.as_micros().min(u128::from(u32::MAX)) as u32,
                latency_us: resp.latency.as_micros().min(u128::from(u32::MAX)) as u32,
                tag: resp.tag,
                output: resp.output,
            }),
            Err(ServeError::Overloaded { retry_after }) => Frame::Backpressure(BackpressureFrame {
                correlation_id: completion.correlation_id,
                retry_after_ms: retry_after.as_millis().min(u128::from(u32::MAX)) as u32,
            }),
            Err(err) => Frame::Error(error_frame(completion.correlation_id, &err)),
        };
        let queued = conn.link.queue_frame(&reply).is_ok();
        let flushed = conn.link.on_writable().is_ok();
        if !queued || !flushed || conn.finished() {
            dead.push(completion.token);
            continue;
        }
        update_watermark(cfg, conn);
        sync_interest(poller, conn, completion.token);
    }
    for token in dead {
        close_conn(poller, conns, token);
    }
}

/// Tell every connection the gateway is draining.
fn broadcast_goaway(cfg: &GatewayConfig, poller: &mut Poller, conns: &mut HashMap<u64, Conn>) {
    let mut dead: Vec<u64> = Vec::with_capacity(2);
    for (token, conn) in conns.iter_mut() {
        let queued = conn.link.queue_frame(&Frame::GoAway).is_ok();
        let flushed = conn.link.on_writable().is_ok();
        if !queued || !flushed {
            dead.push(*token);
            continue;
        }
        update_watermark(cfg, conn);
        sync_interest(poller, conn, *token);
    }
    for token in dead {
        close_conn(poller, conns, token);
    }
}

/// Flip the read-pause state across the configured watermarks.
fn update_watermark(cfg: &GatewayConfig, conn: &mut Conn) {
    let backlog = conn.link.pending_out();
    if !conn.reads_paused && backlog >= cfg.write_high_water {
        conn.reads_paused = true;
    } else if conn.reads_paused && backlog <= cfg.write_low_water {
        conn.reads_paused = false;
    }
}

/// Re-register the connection's poller interests if they changed.
fn sync_interest(poller: &mut Poller, conn: &mut Conn, token: u64) {
    let want_r = conn.wants_read();
    let want_w = conn.link.wants_write();
    let changed = want_r != conn.interest_r || want_w != conn.interest_w;
    if changed && poller.modify(conn.fd, token, want_r, want_w).is_ok() {
        conn.interest_r = want_r;
        conn.interest_w = want_w;
    }
}

/// Deregister and drop a connection (dropping the stream closes the fd).
fn close_conn(poller: &mut Poller, conns: &mut HashMap<u64, Conn>, token: u64) {
    if let Some(conn) = conns.remove(&token) {
        let _ = poller.deregister(conn.fd);
    }
}
