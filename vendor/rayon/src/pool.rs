//! A persistent work-stealing thread pool: the execution engine behind the
//! parallel-iterator facade in `lib.rs`.
//!
//! Design — a deliberately small crossbeam/rayon hybrid:
//!
//! - Each pool worker owns a deque of type-erased jobs. The owner pushes and
//!   pops at the back (LIFO, so nested splits stay cache-hot); thieves steal
//!   half from the front (FIFO, so they take the oldest and therefore largest
//!   unsplit subtasks).
//! - Threads outside the pool submit through a shared FIFO injector, and help
//!   execute queued jobs while they wait for their own, so a blocked external
//!   caller still contributes cycles instead of burning them.
//! - Idle workers park on a condvar. A single atomic `pending` counter plus a
//!   `sleepers` count make the handoff race-free: pushers bump `pending`
//!   before reading `sleepers`, parkers bump `sleepers` before re-checking
//!   `pending`, and notification happens under the park lock, so a worker can
//!   never sleep through a push (SeqCst orders the two counters). A 500 ms
//!   wait timeout is kept as pure insurance.
//! - `join(a, b)` is the only fork primitive: it pushes `b`, runs `a` inline,
//!   then pops/steals/helps until `b`'s latch fires. Panics in either closure
//!   are captured and re-thrown at the join point; pool workers themselves
//!   never die from a task panic.
//!
//! - [`start_cpu_charge`] opens a **CPU charge session**: every thread that
//!   executes one of the session's jobs (transitively, however it was stolen
//!   or helped) measures its own thread-CPU delta around the job and
//!   accumulates it into the session, segmented so concurrent sessions on
//!   one pool never cross-bill. This is the seam `quadra-serve`'s DRR
//!   ledger bills through.
//!
//! The global pool is built lazily on first use with
//! `QUADRA_NUM_THREADS`-many workers (default: `available_parallelism`).
//! `ThreadPool::new(n)` builds an isolated pool for tests; `install` scopes a
//! calling thread to it. Every entry point short-circuits to plain sequential
//! execution when the effective pool size is 1, so a single-core host pays no
//! synchronization cost at all.

use crate::cpu_time::thread_cpu_ns;
use std::cell::{RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// Poison-tolerant lock: a panic while holding a pool lock leaves plain data
/// (queues of inert job pointers), never a broken invariant, so recovering
/// the guard is always sound and keeps panic handling on the job level.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Thread-local CPU-attribution state: the sink the current thread is
/// charging its CPU time to, and when the open charge segment began.
struct ChargeState {
    sink: Option<Arc<AtomicU64>>,
    segment_start_ns: u64,
}

thread_local! {
    static CHARGE: RefCell<ChargeState> =
        const { RefCell::new(ChargeState { sink: None, segment_start_ns: 0 }) };
}

/// Flush the open charge segment into its sink (if any), then make `new` the
/// current sink with a fresh segment. Returns the previous sink so callers
/// can restore it. When neither old nor new sink exists this is free — no
/// clock read — so code that never charges pays nothing.
fn swap_charge_sink(new: Option<Arc<AtomicU64>>) -> Option<Arc<AtomicU64>> {
    CHARGE.with(|cell| {
        let mut state = cell.borrow_mut();
        if state.sink.is_none() && new.is_none() {
            return None;
        }
        let now = thread_cpu_ns();
        let prev = state.sink.take();
        if let Some(sink) = &prev {
            sink.fetch_add(now.saturating_sub(state.segment_start_ns), Ordering::Relaxed);
        }
        state.sink = new;
        state.segment_start_ns = now;
        prev
    })
}

/// The sink the current thread is charging, to be captured into spawned jobs.
fn current_charge_sink() -> Option<Arc<AtomicU64>> {
    CHARGE.with(|cell| cell.borrow().sink.clone())
}

/// Attributes CPU time to one unit of work across *every* thread that
/// executes its tasks.
///
/// Between [`start_cpu_charge`] and [`CpuChargeSession::finish`], CPU burned
/// by the owning thread — and by any pool or helper thread executing a job
/// that the session's `join`s spawned, transitively — accumulates into the
/// session. Attribution is segmented per thread: a thread that interleaves
/// another session's job (e.g. while helping in a `join` wait) charges that
/// interval to the *other* session, never to this one, so concurrent
/// sessions sharing a pool cannot cross-bill.
///
/// `finish` (or drop) must run on the thread that called
/// [`start_cpu_charge`]: the final segment is measured on the calling
/// thread's CPU clock.
pub struct CpuChargeSession {
    sink: Arc<AtomicU64>,
    prev: Option<Arc<AtomicU64>>,
    open: bool,
}

/// Begin attributing the current thread's (and its spawned tasks') CPU time
/// to a fresh session. Sessions nest: the enclosing session's sink is
/// restored when this one finishes, and it is *not* charged for the inner
/// session's interval.
pub fn start_cpu_charge() -> CpuChargeSession {
    let sink = Arc::new(AtomicU64::new(0));
    let prev = swap_charge_sink(Some(Arc::clone(&sink)));
    CpuChargeSession { sink, prev, open: true }
}

impl CpuChargeSession {
    fn close(&mut self) -> u64 {
        if self.open {
            self.open = false;
            swap_charge_sink(self.prev.take());
        }
        self.sink.load(Ordering::Relaxed)
    }

    /// End the session and return the total attributed CPU nanoseconds.
    pub fn finish(mut self) -> u64 {
        self.close()
    }
}

impl Drop for CpuChargeSession {
    fn drop(&mut self) {
        self.close();
    }
}

/// A type-erased pointer to a [`StackJob`] living in some `join` caller's
/// stack frame.
///
/// Safety contract: the frame that created the job blocks on its latch before
/// unwinding (even when its own half panics), so the pointer outlives every
/// queue it sits in and `execute` is called at most once.
struct JobRef {
    ptr: *const (),
    exec: unsafe fn(*const ()),
}

// The raw pointer crosses threads only under the contract above.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Run the job. Safety: see the type-level contract.
    unsafe fn execute(self) {
        (self.exec)(self.ptr)
    }
}

/// One-shot completion flag with blocking waiters.
struct Latch {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn new() -> Latch {
        Latch { done: Mutex::new(false), cv: Condvar::new() }
    }

    fn set(&self) {
        // Notify while still holding the lock (rayon's LockLatch pattern):
        // a waiter can only observe `done == true` through this mutex, so it
        // cannot return — and deallocate the stack frame holding this latch —
        // until `notify_all` has completed and the guard drops. Releasing
        // before notifying would let a `probe`/timeout wake race the
        // notification into freed memory.
        let mut guard = lock(&self.done);
        *guard = true;
        self.cv.notify_all();
    }

    fn probe(&self) -> bool {
        *lock(&self.done)
    }

    /// Park briefly (bounded, so a waiter polls for newly stealable work a
    /// few thousand times a second instead of spinning).
    fn wait_brief(&self) {
        let guard = lock(&self.done);
        if *guard {
            return;
        }
        let _ =
            self.cv.wait_timeout(guard, Duration::from_micros(200)).unwrap_or_else(PoisonError::into_inner);
    }
}

/// The stack-allocated closure + result slot behind a [`JobRef`].
struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    /// CPU-attribution sink captured from the spawning thread at creation;
    /// installed on whichever thread ends up executing the job, so stolen
    /// work is billed to the session that spawned it.
    sink: Option<Arc<AtomicU64>>,
    latch: Latch,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(func: F) -> StackJob<F, R> {
        StackJob {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            sink: current_charge_sink(),
            latch: Latch::new(),
        }
    }

    fn as_job_ref(&self) -> JobRef {
        JobRef { ptr: self as *const StackJob<F, R> as *const (), exec: Self::execute_erased }
    }

    /// Safety: `ptr` came from `as_job_ref` on a live `StackJob`, and only
    /// one thread ever dequeues a given `JobRef`.
    unsafe fn execute_erased(ptr: *const ()) {
        let this = &*(ptr as *const StackJob<F, R>);
        if let Some(func) = (*this.func.get()).take() {
            // Charge this job's CPU to the session that spawned it (and
            // pause whatever this thread was charging before — helping on a
            // foreign job must not bill the helper's own session).
            let prev = swap_charge_sink(this.sink.clone());
            let result = catch_unwind(AssertUnwindSafe(func));
            swap_charge_sink(prev);
            *this.result.get() = Some(result);
        }
        // Set last: the owner may deallocate the frame once this fires.
        this.latch.set();
    }

    /// Take the result. Called by the owner only after the latch fired, which
    /// synchronizes with the executor's write through the latch mutex.
    fn take_result(&self) -> std::thread::Result<R> {
        match unsafe { (*self.result.get()).take() } {
            Some(result) => result,
            // Unreachable: the latch only fires after the slot is written.
            None => {
                Err(Box::new("work-stealing job completed without a result") as Box<dyn std::any::Any + Send>)
            }
        }
    }
}

/// State shared by every worker of one pool plus any external submitters.
struct PoolShared {
    /// Per-worker job deques: owner pushes/pops back, thieves drain the front.
    deques: Vec<Mutex<VecDeque<JobRef>>>,
    /// FIFO queue for jobs submitted by threads outside the pool.
    injector: Mutex<VecDeque<JobRef>>,
    /// Number of jobs sitting in any deque or the injector. Pushers increment
    /// it *before* checking `sleepers`; parkers increment `sleepers` before
    /// re-checking it. SeqCst on both makes a missed wakeup impossible.
    pending: AtomicUsize,
    /// Number of workers inside (or entering) a condvar wait.
    sleepers: AtomicUsize,
    /// Park lock; the guarded flag is the shutdown signal.
    park: Mutex<bool>,
    unpark: Condvar,
    /// Effective worker count, the single source of truth for parallelism
    /// decisions. Corrected downward after spawning when some workers failed
    /// to start (see [`PoolShared::build`]), hence atomic.
    num_threads: AtomicUsize,
}

impl PoolShared {
    /// Build the shared state and spawn the workers. Pools of size 1 spawn
    /// no threads at all: every entry point runs sequentially inline.
    ///
    /// A failed spawn is logged and the effective thread count is lowered to
    /// the workers that actually started (down to 1 = fully sequential), so
    /// GEMM block sizing and the facade short-circuits never assume
    /// parallelism that does not exist.
    fn build(num_threads: usize) -> (Arc<PoolShared>, Vec<std::thread::JoinHandle<()>>) {
        let shared = Arc::new(PoolShared {
            deques: (0..num_threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            pending: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            park: Mutex::new(false),
            unpark: Condvar::new(),
            num_threads: AtomicUsize::new(num_threads),
        });
        let mut workers = Vec::new();
        if num_threads >= 2 {
            for index in 0..num_threads {
                let worker_shared = Arc::clone(&shared);
                match std::thread::Builder::new()
                    .name(format!("quadra-pool-{index}"))
                    .spawn(move || worker_main(worker_shared, index))
                {
                    Ok(handle) => workers.push(handle),
                    Err(err) => eprintln!("quadra-pool: failed to spawn worker {index}: {err}"),
                }
            }
            if workers.len() < num_threads {
                shared.num_threads.store(workers.len().max(1), Ordering::Relaxed);
            }
        }
        (shared, workers)
    }

    /// The pool's effective worker count.
    fn threads(&self) -> usize {
        self.num_threads.load(Ordering::Relaxed)
    }

    /// Wake one parked worker if any might be asleep. Notifying under the
    /// park lock pairs with the parker's lock-held `pending` re-check, so
    /// the notification cannot land between that check and the wait.
    fn notify_one(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = lock(&self.park);
            self.unpark.notify_one();
        }
    }

    /// Push onto worker `index`'s own deque (LIFO end).
    fn push_local(&self, index: usize, job: JobRef) {
        match self.deques.get(index) {
            Some(deque) => lock(deque).push_back(job),
            None => lock(&self.injector).push_back(job),
        }
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.notify_one();
    }

    /// Push onto the shared injector (used by threads outside the pool).
    fn inject(&self, job: JobRef) {
        lock(&self.injector).push_back(job);
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.notify_one();
    }

    /// Pop from our own deque's back (most recently pushed first).
    fn pop_local(&self, index: usize) -> Option<JobRef> {
        let job = self.deques.get(index).and_then(|deque| lock(deque).pop_back());
        if job.is_some() {
            self.pending.fetch_sub(1, Ordering::SeqCst);
        }
        job
    }

    /// Find one job to run: own deque, then the injector, then steal half of
    /// some victim's deque (keeping one, re-queueing the rest locally).
    fn find_work(&self, me: Option<usize>) -> Option<JobRef> {
        if let Some(index) = me {
            if let Some(job) = self.pop_local(index) {
                return Some(job);
            }
        }
        if let Some(job) = lock(&self.injector).pop_front() {
            self.pending.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        let n = self.deques.len();
        let start = me.map_or(0, |index| index + 1);
        for offset in 0..n {
            let victim_index = (start + offset) % n;
            if Some(victim_index) == me {
                continue;
            }
            let Some(victim) = self.deques.get(victim_index) else { continue };
            let mut stolen: VecDeque<JobRef> = {
                let mut deque = lock(victim);
                let take = deque.len().div_ceil(2);
                deque.drain(..take).collect()
            };
            let Some(job) = stolen.pop_front() else { continue };
            self.pending.fetch_sub(1, Ordering::SeqCst);
            if !stolen.is_empty() {
                // Relocated jobs stay queued (and counted); park them where
                // this thread can pop them, and wake a peer to share.
                match me.and_then(|index| self.deques.get(index)) {
                    Some(own) => lock(own).append(&mut stolen),
                    None => lock(&self.injector).append(&mut stolen),
                }
                self.notify_one();
            }
            return Some(job);
        }
        None
    }

    /// Help execute queued jobs until `latch` fires. This is how a `join`
    /// caller waits: it never blocks while there is runnable work anywhere.
    fn wait_until(&self, me: Option<usize>, latch: &Latch) {
        while !latch.probe() {
            match self.find_work(me) {
                Some(job) => unsafe { job.execute() },
                None => latch.wait_brief(),
            }
        }
    }
}

/// Worker thread body: run jobs while any exist, park otherwise.
fn worker_main(shared: Arc<PoolShared>, index: usize) {
    CURRENT.with(|current| {
        *current.borrow_mut() = Some(Context { shared: Arc::clone(&shared), index: Some(index) });
    });
    loop {
        if let Some(job) = shared.find_work(Some(index)) {
            unsafe { job.execute() };
            continue;
        }
        let mut guard = lock(&shared.park);
        if *guard {
            return; // shutdown
        }
        shared.sleepers.fetch_add(1, Ordering::SeqCst);
        if shared.pending.load(Ordering::SeqCst) == 0 {
            // The timeout is insurance only; the pending/sleepers handshake
            // already rules out lost wakeups.
            let (g, _) = shared
                .unpark
                .wait_timeout(guard, Duration::from_millis(500))
                .unwrap_or_else(PoisonError::into_inner);
            guard = g;
        }
        shared.sleepers.fetch_sub(1, Ordering::SeqCst);
        if *guard {
            return;
        }
    }
}

/// Which pool (and worker slot, for pool threads) the current thread runs in.
#[derive(Clone)]
struct Context {
    shared: Arc<PoolShared>,
    index: Option<usize>,
}

thread_local! {
    static CURRENT: RefCell<Option<Context>> = const { RefCell::new(None) };
}

static GLOBAL: OnceLock<Arc<PoolShared>> = OnceLock::new();

/// The lazily-built process-wide pool (its workers are never joined).
fn global_pool() -> &'static Arc<PoolShared> {
    GLOBAL.get_or_init(|| PoolShared::build(default_num_threads()).0)
}

/// Parse a `QUADRA_NUM_THREADS`-style override; `None` means "use default".
fn parse_thread_override(value: Option<&str>) -> Option<usize> {
    value.and_then(|s| s.trim().parse::<usize>().ok()).filter(|&n| n >= 1)
}

/// Pool size for the global pool: `QUADRA_NUM_THREADS` if set and valid,
/// otherwise the number of available cores.
fn default_num_threads() -> usize {
    let var = std::env::var("QUADRA_NUM_THREADS").ok();
    parse_thread_override(var.as_deref())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

fn current_context() -> Context {
    CURRENT
        .with(|current| current.borrow().clone())
        .unwrap_or_else(|| Context { shared: Arc::clone(global_pool()), index: None })
}

/// The number of threads in the pool the current thread would submit to:
/// the installed/owning pool if any, otherwise the global pool. This is the
/// single source of truth for parallelism decisions (GEMM block sizing,
/// facade short-circuits), honoring `QUADRA_NUM_THREADS`.
pub fn current_num_threads() -> usize {
    CURRENT
        .with(|current| current.borrow().as_ref().map(|ctx| ctx.shared.threads()))
        .unwrap_or_else(|| global_pool().threads())
}

/// Run `oper_a` and `oper_b`, potentially in parallel, returning both
/// results. `oper_b` is made stealable; the caller runs `oper_a` inline and
/// then pops `oper_b` back (or helps run other queued jobs) until it is done.
/// A panic in either closure resurfaces here after both halves finished.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let ctx = current_context();
    if ctx.shared.threads() <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    let job_b = StackJob::new(oper_b);
    match ctx.index {
        Some(index) => ctx.shared.push_local(index, job_b.as_job_ref()),
        None => ctx.shared.inject(job_b.as_job_ref()),
    }
    let result_a = catch_unwind(AssertUnwindSafe(oper_a));
    // Always wait for b's latch — even on panic — so the JobRef into this
    // frame can never dangle in a queue while we unwind.
    ctx.shared.wait_until(ctx.index, &job_b.latch);
    let result_b = job_b.take_result();
    match result_a {
        Ok(ra) => match result_b {
            Ok(rb) => (ra, rb),
            Err(payload) => resume_unwind(payload),
        },
        Err(payload) => resume_unwind(payload),
    }
}

/// An explicitly-sized work-stealing pool, primarily for tests that need a
/// thread count independent of the host (`QUADRA_NUM_THREADS` sizes the
/// global pool instead). Workers are parked when idle and joined on drop.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Build a pool with `num_threads` workers (clamped to at least 1; a
    /// 1-thread pool spawns no OS threads and runs everything inline).
    pub fn new(num_threads: usize) -> ThreadPool {
        let (shared, workers) = PoolShared::build(num_threads.max(1));
        ThreadPool { shared, workers }
    }

    /// This pool's effective worker count.
    pub fn num_threads(&self) -> usize {
        self.shared.threads()
    }

    /// Run `f` on the calling thread with this pool as its submission
    /// target: `join` and the parallel iterators inside `f` use this pool.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = ContextGuard::enter(Arc::clone(&self.shared));
        f()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut guard = lock(&self.shared.park);
            *guard = true;
            self.shared.unpark.notify_all();
        }
        for handle in self.workers.drain(..) {
            // Workers catch job panics, so join failures cannot happen; a
            // best-effort join keeps drop panic-free regardless.
            let _ = handle.join();
        }
    }
}

/// Restores the previous thread-local pool binding when `install` returns
/// (or unwinds).
struct ContextGuard {
    prev: Option<Context>,
}

impl ContextGuard {
    fn enter(shared: Arc<PoolShared>) -> ContextGuard {
        let prev = CURRENT.with(|current| current.borrow_mut().replace(Context { shared, index: None }));
        ContextGuard { prev }
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|current| *current.borrow_mut() = prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::thread::ThreadId;

    #[test]
    fn join_returns_both_results() {
        let pool = ThreadPool::new(2);
        let (a, b) = pool.install(|| join(|| 2 + 2, || "ok"));
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn injected_job_runs_on_a_pool_thread() {
        // The external caller parks in oper_a long enough for a worker to
        // steal oper_b from the injector: deterministic cross-thread hand-off.
        let pool = ThreadPool::new(2);
        let caller = std::thread::current().id();
        let (_, b_thread) = pool.install(|| {
            join(|| std::thread::sleep(Duration::from_millis(30)), || std::thread::current().id())
        });
        assert_ne!(b_thread, caller, "oper_b should have been stolen by a pool worker");
    }

    #[test]
    fn steal_under_skewed_load_uses_multiple_threads() {
        let pool = ThreadPool::new(4);
        let ran = Mutex::new(vec![0usize; 24]);
        let threads = Mutex::new(HashSet::<ThreadId>::new());
        pool.install(|| {
            crate::parallel_for_range(0, 24, 1, &|i| {
                // Skewed: early indices are much heavier, so finishing the
                // range fast requires the later splits to be stolen.
                let delay = if i < 4 { 20 } else { 1 };
                std::thread::sleep(Duration::from_millis(delay));
                lock(&ran)[i] += 1;
                lock(&threads).insert(std::thread::current().id());
            });
        });
        let ran = lock(&ran);
        assert!(ran.iter().all(|&count| count == 1), "every index exactly once: {ran:?}");
        assert!(lock(&threads).len() >= 2, "skewed load should spread over several threads");
    }

    #[test]
    fn nested_join_computes_correct_sum() {
        fn sum(range: std::ops::Range<u64>) -> u64 {
            let len = range.end - range.start;
            if len <= 3 {
                return range.sum();
            }
            let mid = range.start + len / 2;
            let (lo, hi) = join(|| sum(range.start..mid), move || sum(mid..range.end));
            lo + hi
        }
        let pool = ThreadPool::new(4);
        let total = pool.install(|| sum(0..10_000));
        assert_eq!(total, 10_000 * 9_999 / 2);
    }

    #[test]
    fn panic_in_either_half_propagates_and_pool_survives() {
        let pool = ThreadPool::new(2);
        let left = catch_unwind(AssertUnwindSafe(|| pool.install(|| join(|| panic!("left half"), || 1))));
        assert!(left.is_err(), "left-half panic must propagate");
        let right = catch_unwind(AssertUnwindSafe(|| pool.install(|| join(|| 1, || panic!("right half")))));
        assert!(right.is_err(), "right-half panic must propagate");
        // Workers caught the panics; the pool still runs real work.
        let (a, b) = pool.install(|| join(|| 21, || 21));
        assert_eq!(a + b, 42);
    }

    #[test]
    fn one_thread_pool_is_sequential_and_correct() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.num_threads(), 1);
        let here = std::thread::current().id();
        let (a, b) = pool.install(|| {
            assert_eq!(current_num_threads(), 1);
            join(|| std::thread::current().id(), || std::thread::current().id())
        });
        assert_eq!(a, here);
        assert_eq!(b, here);
        let counter = AtomicUsize::new(0);
        pool.install(|| {
            crate::parallel_for_range(0, 100, 1, &|_| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn install_restores_previous_context() {
        let outer = ThreadPool::new(3);
        let inner = ThreadPool::new(2);
        outer.install(|| {
            assert_eq!(current_num_threads(), 3);
            inner.install(|| assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn thread_override_parser_accepts_only_positive_integers() {
        assert_eq!(parse_thread_override(Some("4")), Some(4));
        assert_eq!(parse_thread_override(Some(" 2 ")), Some(2));
        assert_eq!(parse_thread_override(Some("0")), None);
        assert_eq!(parse_thread_override(Some("-1")), None);
        assert_eq!(parse_thread_override(Some("lots")), None);
        assert_eq!(parse_thread_override(None), None);
    }

    /// Spin until the executing thread has accrued `ns` of CPU time.
    fn burn_thread_cpu(ns: u64) {
        let start = thread_cpu_ns();
        let mut acc = 0u64;
        while thread_cpu_ns().saturating_sub(start) < ns {
            for i in 0..1_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc);
        }
    }

    #[test]
    fn charge_session_bills_work_stolen_by_pool_threads() {
        let pool = ThreadPool::new(4);
        const TASKS: u64 = 8;
        const PER_TASK_NS: u64 = 10_000_000;
        let billed = pool.install(|| {
            let session = start_cpu_charge();
            crate::parallel_for_range(0, TASKS as usize, 1, &|_| burn_thread_cpu(PER_TASK_NS));
            session.finish()
        });
        // Each task burned PER_TASK_NS on whichever thread executed it; the
        // session must see (essentially) all of it regardless of where the
        // task ran — this is exactly what per-owner-thread billing missed.
        let floor = TASKS * PER_TASK_NS * 9 / 10;
        assert!(billed >= floor, "session billed {billed}ns, expected at least {floor}ns");
    }

    #[test]
    fn concurrent_charge_sessions_do_not_cross_bill() {
        let pool = Arc::new(ThreadPool::new(4));
        const TASKS: u64 = 6;
        const PER_TASK_NS: u64 = 8_000_000;
        let sessions: Vec<_> = (0..2)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    pool.install(|| {
                        let session = start_cpu_charge();
                        crate::parallel_for_range(0, TASKS as usize, 1, &|_| {
                            burn_thread_cpu(PER_TASK_NS);
                        });
                        session.finish()
                    })
                })
            })
            .collect();
        let expected = TASKS * PER_TASK_NS;
        for handle in sessions {
            let billed = handle.join().unwrap();
            assert!(billed >= expected * 9 / 10, "billed {billed}ns, floor {expected}ns");
            // A helper thread running the *other* session's tasks must charge
            // them there: cross-billing would show up as ~2× the expected
            // figure. Allow 50% slack for framework overhead.
            assert!(billed <= expected * 3 / 2, "billed {billed}ns suggests cross-billing");
        }
    }

    #[test]
    fn dropped_charge_session_restores_enclosing_sink() {
        let pool = ThreadPool::new(2);
        let billed = pool.install(|| {
            let outer = start_cpu_charge();
            {
                // The inner session's interval must not leak into `outer`
                // (and dropping it unread must restore outer's sink).
                let _inner = start_cpu_charge();
                burn_thread_cpu(4_000_000);
            }
            burn_thread_cpu(2_000_000);
            outer.finish()
        });
        assert!(billed >= 2_000_000 * 9 / 10, "outer billed {billed}ns");
        assert!(billed < 4_000_000, "outer session absorbed the inner session's {billed}ns");
    }

    #[test]
    fn heavy_nested_stress() {
        // Many concurrent installs from external threads hammering one pool.
        let pool = Arc::new(ThreadPool::new(3));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                pool.install(|| {
                    let n = 2_000 + t;
                    let total = Mutex::new(0u64);
                    crate::parallel_for_range(0, n as usize, 7, &|i| {
                        *lock(&total) += i as u64;
                    });
                    let total = *lock(&total);
                    assert_eq!(total, n * (n - 1) / 2);
                })
            }));
        }
        for handle in handles {
            let joined = handle.join();
            assert!(joined.is_ok());
        }
    }
}
