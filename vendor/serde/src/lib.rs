//! Offline stand-in for the subset of `serde` that QuadraLib-rs uses.
//!
//! Instead of serde's zero-copy visitor architecture, this stub round-trips
//! through an owned JSON-like [`Value`] tree: `Serialize` renders a value into
//! the tree, `Deserialize` rebuilds a value from it, and the companion
//! `serde_json` stub handles text. The derive macros re-exported from
//! `serde_derive` generate externally-tagged enum and plain-object struct
//! representations matching serde's defaults, so checkpoints and model
//! configurations keep the same JSON shape they would have with the real
//! crates.

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (integers are exact up to 2^53).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow the array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Get the number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Get the boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Look up an object field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// One-word description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Fetch a required field from an object's entries (derive-macro helper).
pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> Result<&'a Value, String> {
    entries.iter().find(|(k, _)| k == name).map(|(_, v)| v).ok_or_else(|| format!("missing field `{name}`"))
}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    /// Convert to the document-tree representation.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert from the document-tree representation.
    fn from_value(v: &Value) -> Result<Self, String>;
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                v.as_num().map(|n| n as $t).ok_or_else(|| format!("expected number, found {}", v.kind()))
            }
        }
    )*};
}
impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_bool().ok_or_else(|| format!("expected bool, found {}", v.kind()))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_str().map(str::to_string).ok_or_else(|| format!("expected string, found {}", v.kind()))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_arr()
            .ok_or_else(|| format!("expected array, found {}", v.kind()))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_obj()
            .ok_or_else(|| format!("expected object, found {}", v.kind()))?
            .iter()
            .map(|(k, val)| V::from_value(val).map(|parsed| (k.clone(), parsed)))
            .collect()
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(entries)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_obj()
            .ok_or_else(|| format!("expected object, found {}", v.kind()))?
            .iter()
            .map(|(k, val)| V::from_value(val).map(|parsed| (k.clone(), parsed)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, String> {
                let items = v.as_arr().ok_or_else(|| format!("expected array, found {}", v.kind()))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(format!("expected array of length {expected}, found {}", items.len()));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));
