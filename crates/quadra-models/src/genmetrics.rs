//! Proxy generation metrics: Inception Score and Fréchet distance computed
//! against a small, independently trained "inception stand-in" classifier.
//!
//! The real IS / FID use a pre-trained Inception-v3; since no pre-trained
//! network is available in this environment, the [`FeatureExtractor`] trains a
//! compact CNN on the real (synthetic) dataset and its penultimate features /
//! class posteriors play the role of the Inception activations. Both metrics
//! preserve the *ordering* between generators, which is what Table 5 reports.

use quadra_nn::{
    BatchNorm2d, Conv2d, CrossEntropyLoss, GlobalAvgPool, Layer, Linear, Loss, MaxPool2d, Optimizer, Relu,
    Sequential, Sgd, SgdConfig,
};
use quadra_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A small CNN classifier used as the reference network for IS / FID proxies.
pub struct FeatureExtractor {
    backbone: Sequential,
    head: Linear,
    num_classes: usize,
}

impl FeatureExtractor {
    /// Create an untrained extractor for `channels`-channel images of the given
    /// size and `num_classes` classes. `width` controls the feature dimension.
    pub fn new(channels: usize, num_classes: usize, width: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let backbone = Sequential::new(vec![
            Box::new(Conv2d::new(channels, width, 3, 1, 1, 1, false, &mut rng)),
            Box::new(BatchNorm2d::new(width)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Conv2d::new(width, width * 2, 3, 1, 1, 1, false, &mut rng)),
            Box::new(BatchNorm2d::new(width * 2)),
            Box::new(Relu::new()),
            Box::new(GlobalAvgPool::new()),
        ]);
        let head = Linear::new(width * 2, num_classes, true, &mut rng);
        FeatureExtractor { backbone, head, num_classes }
    }

    /// Feature dimension of the penultimate layer.
    pub fn feature_dim(&self) -> usize {
        self.head.in_features()
    }

    /// Train the extractor on labelled real images.
    pub fn fit(&mut self, images: &Tensor, labels: &Tensor, epochs: usize, batch_size: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut opt = Sgd::new(SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 1e-4, nesterov: false });
        let loss_fn = CrossEntropyLoss::new();
        let n = images.shape()[0];
        let mut indices: Vec<usize> = (0..n).collect();
        for _ in 0..epochs {
            indices.shuffle(&mut rng);
            for chunk in indices.chunks(batch_size) {
                let xb = images.select_rows(chunk).expect("rows");
                let yb = labels.select_rows(chunk).expect("rows");
                let feats = self.backbone.forward(&xb, true);
                let logits = self.head.forward(&feats, true);
                let (_l, grad) = loss_fn.compute(&logits, &yb);
                let gfeat = self.head.backward(&grad);
                self.backbone.backward(&gfeat);
                let mut params = self.backbone.params_mut();
                params.extend(self.head.params_mut());
                opt.step(&mut params);
                opt.zero_grad(&mut params);
            }
        }
        self.backbone.clear_cache();
        self.head.clear_cache();
    }

    /// Classification accuracy on a labelled set (sanity check of the stand-in).
    pub fn accuracy(&mut self, images: &Tensor, labels: &Tensor) -> f32 {
        let logits = self.class_logits(images);
        quadra_nn::accuracy(&logits, labels)
    }

    /// Penultimate features `[n, feature_dim]`.
    pub fn features(&mut self, images: &Tensor) -> Tensor {
        let f = self.backbone.forward(images, false);
        self.backbone.clear_cache();
        f
    }

    /// Class logits `[n, num_classes]`.
    pub fn class_logits(&mut self, images: &Tensor) -> Tensor {
        let f = self.features(images);
        let logits = self.head.forward(&f, false);
        self.head.clear_cache();
        logits
    }

    /// Class posteriors `[n, num_classes]`.
    pub fn class_probs(&mut self, images: &Tensor) -> Tensor {
        self.class_logits(images).softmax_last_axis()
    }

    /// Number of classes of the reference task.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }
}

/// Inception Score from class posteriors `[n, classes]`:
/// `exp( E_x[ KL(p(y|x) || p(y)) ] )`. Higher is better.
pub fn inception_score(probs: &Tensor) -> f32 {
    assert_eq!(probs.ndim(), 2, "probs must be [n, classes]");
    let n = probs.shape()[0];
    let c = probs.shape()[1];
    if n == 0 {
        return 0.0;
    }
    let marginal = probs.mean_axis(0).expect("axis 0");
    let p = probs.as_slice();
    let m = marginal.as_slice();
    let mut kl_sum = 0.0f32;
    for i in 0..n {
        for j in 0..c {
            let pij = p[i * c + j].max(1e-12);
            kl_sum += pij * (pij.ln() - m[j].max(1e-12).ln());
        }
    }
    (kl_sum / n as f32).exp()
}

/// Fréchet distance between two feature sets under a diagonal-Gaussian
/// approximation: `||μ₁-μ₂||² + Σᵢ (σ₁ᵢ² + σ₂ᵢ² - 2·σ₁ᵢσ₂ᵢ)`. Lower is better.
pub fn frechet_distance_diag(real: &Tensor, fake: &Tensor) -> f32 {
    assert_eq!(real.ndim(), 2, "features must be [n, d]");
    assert_eq!(fake.ndim(), 2, "features must be [n, d]");
    assert_eq!(real.shape()[1], fake.shape()[1], "feature dims must match");
    let d = real.shape()[1];
    let stats = |t: &Tensor| {
        let n = t.shape()[0].max(1) as f32;
        let mean = t.mean_axis(0).expect("axis 0");
        let mut var = vec![0.0f32; d];
        for i in 0..t.shape()[0] {
            for (j, vj) in var.iter_mut().enumerate() {
                let diff = t.at(&[i, j]) - mean.as_slice()[j];
                *vj += diff * diff / n;
            }
        }
        (mean, var)
    };
    let (m1, v1) = stats(real);
    let (m2, v2) = stats(fake);
    let mut dist = 0.0f32;
    for j in 0..d {
        let dm = m1.as_slice()[j] - m2.as_slice()[j];
        dist += dm * dm + v1[j] + v2[j] - 2.0 * (v1[j] * v2[j]).max(0.0).sqrt();
    }
    dist
}

/// The pair of generation metrics reported in Table 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationMetrics {
    /// Proxy Inception Score (higher is better).
    pub inception_score: f32,
    /// Proxy Fréchet distance (lower is better).
    pub fid: f32,
}

impl GenerationMetrics {
    /// Evaluate generated images against real images using a trained extractor.
    pub fn evaluate(extractor: &mut FeatureExtractor, real: &Tensor, fake: &Tensor) -> Self {
        let probs = extractor.class_probs(fake);
        let real_feat = extractor.features(real);
        let fake_feat = extractor.features(fake);
        GenerationMetrics {
            inception_score: inception_score(&probs),
            fid: frechet_distance_diag(&real_feat, &fake_feat),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadra_data::ShapeImageDataset;

    #[test]
    fn inception_score_bounds() {
        // Perfectly confident, perfectly diverse predictions over 4 classes -> IS = 4.
        let confident = Tensor::from_vec(
            vec![
                1.0, 0.0, 0.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, //
                0.0, 0.0, 1.0, 0.0, //
                0.0, 0.0, 0.0, 1.0,
            ],
            &[4, 4],
        )
        .unwrap();
        assert!((inception_score(&confident) - 4.0).abs() < 0.05);
        // Uniform predictions -> IS = 1 (worst case).
        let uniform = Tensor::full(&[8, 4], 0.25);
        assert!((inception_score(&uniform) - 1.0).abs() < 1e-3);
        // Mode collapse (always the same confident class) -> IS = 1.
        let mut collapsed = Tensor::zeros(&[8, 4]);
        for i in 0..8 {
            collapsed.set(&[i, 2], 1.0);
        }
        assert!((inception_score(&collapsed) - 1.0).abs() < 1e-3);
        assert_eq!(inception_score(&Tensor::zeros(&[0, 4])), 0.0);
    }

    #[test]
    fn frechet_distance_properties() {
        let a = Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0], &[4, 2]).unwrap();
        // Identical sets -> distance 0.
        assert!(frechet_distance_diag(&a, &a).abs() < 1e-6);
        // Shifting the mean by 1 in both dims -> distance about 2.
        let b = a.add_scalar(1.0);
        let d = frechet_distance_diag(&a, &b);
        assert!((d - 2.0).abs() < 1e-4, "d {}", d);
        // A bigger shift gives a bigger distance.
        let c = a.add_scalar(3.0);
        assert!(frechet_distance_diag(&a, &c) > d);
    }

    #[test]
    fn extractor_learns_the_reference_task_and_scores_real_above_noise() {
        let train = ShapeImageDataset::generate(240, 4, 16, 3, 0.05, 1);
        let mut fx = FeatureExtractor::new(3, 4, 8, 2);
        assert_eq!(fx.num_classes(), 4);
        assert_eq!(fx.feature_dim(), 16);
        fx.fit(&train.images, &train.labels, 4, 32, 3);
        let acc = fx.accuracy(&train.images, &train.labels);
        assert!(acc > 0.5, "stand-in classifier failed to learn: acc {}", acc);

        // Real held-out images should score better (higher IS, lower FID) than pure noise.
        let real = ShapeImageDataset::generate(120, 4, 16, 3, 0.05, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let noise = Tensor::randn(&[120, 3, 16, 16], 0.0, 1.0, &mut rng);
        let m_real = GenerationMetrics::evaluate(&mut fx, &train.images, &real.images);
        let m_noise = GenerationMetrics::evaluate(&mut fx, &train.images, &noise);
        assert!(m_real.fid < m_noise.fid, "real FID {} vs noise FID {}", m_real.fid, m_noise.fid);
        assert!(m_real.inception_score >= 1.0);
    }
}
