//! Optimizers: SGD with momentum / weight decay / Nesterov, and Adam.
//!
//! Optimizer state (velocities, moment estimates) is keyed by the position of
//! each parameter in the `params_mut()` ordering, which is stable for a given
//! model structure.

use crate::param::Param;
use quadra_tensor::Tensor;

/// The optimizer interface used by the [`crate::Trainer`].
pub trait Optimizer {
    /// Apply one update step to the given parameters using their accumulated
    /// gradients, then it is the caller's responsibility to zero the gradients.
    fn step(&mut self, params: &mut [&mut Param]);

    /// Set the learning rate (called by schedulers between epochs).
    fn set_lr(&mut self, lr: f32);

    /// The current learning rate.
    fn lr(&self) -> f32;

    /// Bytes of optimizer state currently held (velocities, moments); part of
    /// the training-memory accounting.
    fn state_bytes(&self) -> usize;

    /// Reset all gradients of the given parameters to zero.
    fn zero_grad(&mut self, params: &mut [&mut Param]) {
        for p in params.iter_mut() {
            p.zero_grad();
        }
    }
}

/// Configuration of the [`Sgd`] optimizer.
#[derive(Debug, Clone, Copy)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// Decoupled L2 weight decay applied to parameters that opt in.
    pub weight_decay: f32,
    /// Use Nesterov momentum.
    pub nesterov: bool,
}

impl Default for SgdConfig {
    fn default() -> Self {
        // The paper's image-classification setup: SGD, initial LR 0.1.
        SgdConfig { lr: 0.1, momentum: 0.9, weight_decay: 5e-4, nesterov: false }
    }
}

/// Stochastic gradient descent with momentum.
pub struct Sgd {
    config: SgdConfig,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Create an SGD optimizer.
    pub fn new(config: SgdConfig) -> Self {
        Sgd { config, velocity: Vec::new() }
    }

    /// Convenience constructor with plain SGD (no momentum, no decay).
    pub fn plain(lr: f32) -> Self {
        Sgd::new(SgdConfig { lr, momentum: 0.0, weight_decay: 0.0, nesterov: false })
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() < params.len() {
            for p in params[self.velocity.len()..].iter() {
                self.velocity.push(Tensor::zeros(p.value.shape()));
            }
        }
        for (i, p) in params.iter_mut().enumerate() {
            let mut grad = p.grad.clone();
            if self.config.weight_decay > 0.0 && p.apply_weight_decay {
                grad.add_scaled_assign(&p.value, self.config.weight_decay).expect("shape");
            }
            if self.config.momentum > 0.0 {
                let v = &mut self.velocity[i];
                v.scale_inplace(self.config.momentum);
                v.add_assign(&grad).expect("shape");
                if self.config.nesterov {
                    grad.add_scaled_assign(v, self.config.momentum).expect("shape");
                } else {
                    grad = v.clone();
                }
            }
            p.value.add_scaled_assign(&grad, -self.config.lr).expect("shape");
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.config.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.config.lr
    }

    fn state_bytes(&self) -> usize {
        self.velocity.iter().map(|v| v.nbytes()).sum()
    }
}

/// Configuration of the [`Adam`] optimizer.
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical stabiliser.
    pub eps: f32,
    /// Decoupled L2 weight decay.
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0 }
    }
}

/// Adam optimizer (Kingma & Ba 2015), used for GAN training.
pub struct Adam {
    config: AdamConfig,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: usize,
}

impl Adam {
    /// Create an Adam optimizer.
    pub fn new(config: AdamConfig) -> Self {
        Adam { config, m: Vec::new(), v: Vec::new(), t: 0 }
    }

    /// GAN-style Adam with the two-timescale betas of SNGAN (0.0 / 0.9).
    pub fn for_gan(lr: f32) -> Self {
        Adam::new(AdamConfig { lr, beta1: 0.0, beta2: 0.9, ..AdamConfig::default() })
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        while self.m.len() < params.len() {
            let shape = params[self.m.len()].value.shape().to_vec();
            self.m.push(Tensor::zeros(&shape));
            self.v.push(Tensor::zeros(&shape));
        }
        self.t += 1;
        let b1 = self.config.beta1;
        let b2 = self.config.beta2;
        let bias1 = 1.0 - b1.powi(self.t as i32);
        let bias2 = 1.0 - b2.powi(self.t as i32);
        for (i, p) in params.iter_mut().enumerate() {
            let mut grad = p.grad.clone();
            if self.config.weight_decay > 0.0 && p.apply_weight_decay {
                grad.add_scaled_assign(&p.value, self.config.weight_decay).expect("shape");
            }
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((mi, vi), gi) in
                m.as_mut_slice().iter_mut().zip(v.as_mut_slice().iter_mut()).zip(grad.as_slice())
            {
                *mi = b1 * *mi + (1.0 - b1) * gi;
                *vi = b2 * *vi + (1.0 - b2) * gi * gi;
            }
            let lr = self.config.lr;
            let eps = self.config.eps;
            for ((pv, mi), vi) in p.value.as_mut_slice().iter_mut().zip(m.as_slice()).zip(v.as_slice()) {
                let mhat = mi / bias1;
                let vhat = vi / bias2;
                *pv -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.config.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.config.lr
    }

    fn state_bytes(&self) -> usize {
        self.m.iter().map(|t| t.nbytes()).sum::<usize>() + self.v.iter().map(|t| t.nbytes()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param(start: f32) -> Param {
        Param::new("w", Tensor::from_slice(&[start]))
    }

    /// Minimise f(w) = (w - 3)^2 and return the final value of w.
    fn minimise(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut p = quadratic_param(0.0);
        for _ in 0..steps {
            let w = p.value.as_slice()[0];
            p.grad = Tensor::from_slice(&[2.0 * (w - 3.0)]);
            let mut params = [&mut p];
            opt.step(&mut params);
        }
        p.value.as_slice()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::plain(0.1);
        let w = minimise(&mut opt, 100);
        assert!((w - 3.0).abs() < 1e-3, "w = {}", w);
    }

    #[test]
    fn sgd_momentum_converges_faster_than_plain() {
        let mut plain = Sgd::plain(0.02);
        let w_plain = minimise(&mut plain, 30);
        let mut mom = Sgd::new(SgdConfig { lr: 0.02, momentum: 0.9, weight_decay: 0.0, nesterov: false });
        let w_mom = minimise(&mut mom, 30);
        assert!((w_mom - 3.0).abs() < (w_plain - 3.0).abs());
        assert!(mom.state_bytes() > 0);
    }

    #[test]
    fn nesterov_variant_converges() {
        let mut opt = Sgd::new(SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 0.0, nesterov: true });
        let w = minimise(&mut opt, 100);
        assert!((w - 3.0).abs() < 1e-2, "w = {}", w);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(AdamConfig { lr: 0.2, ..AdamConfig::default() });
        let w = minimise(&mut opt, 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {}", w);
        assert!(opt.state_bytes() > 0);
        assert_eq!(opt.lr(), 0.2);
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut opt = Sgd::new(SgdConfig { lr: 0.1, momentum: 0.0, weight_decay: 0.1, nesterov: false });
        let mut p = Param::new("w", Tensor::from_slice(&[1.0]));
        let mut params = [&mut p];
        opt.step(&mut params);
        assert!(p.value.as_slice()[0] < 1.0);

        // A parameter opting out of decay stays put.
        let mut opt = Sgd::new(SgdConfig { lr: 0.1, momentum: 0.0, weight_decay: 0.1, nesterov: false });
        let mut b = Param::new_no_decay("b", Tensor::from_slice(&[1.0]));
        let mut params = [&mut b];
        opt.step(&mut params);
        assert_eq!(b.value.as_slice()[0], 1.0);
    }

    #[test]
    fn zero_grad_and_lr_updates() {
        let mut opt = Sgd::plain(0.1);
        let mut p = Param::new("w", Tensor::from_slice(&[1.0]));
        p.grad = Tensor::from_slice(&[2.0]);
        let mut params = [&mut p];
        opt.zero_grad(&mut params);
        assert_eq!(p.grad.as_slice(), &[0.0]);
        opt.set_lr(0.5);
        assert_eq!(opt.lr(), 0.5);
        let mut adam = Adam::for_gan(2e-4);
        adam.set_lr(1e-4);
        assert_eq!(adam.lr(), 1e-4);
    }

    #[test]
    fn optimizer_handles_growing_param_list() {
        // Simulates the auto-builder adding layers mid-training: state resizes.
        let mut opt = Sgd::new(SgdConfig { lr: 0.1, momentum: 0.9, weight_decay: 0.0, nesterov: false });
        let mut p1 = Param::new("a", Tensor::from_slice(&[1.0]));
        p1.grad = Tensor::from_slice(&[1.0]);
        {
            let mut params = [&mut p1];
            opt.step(&mut params);
        }
        let mut p2 = Param::new("b", Tensor::from_slice(&[1.0, 1.0]));
        p2.grad = Tensor::from_slice(&[1.0, 1.0]);
        p1.grad = Tensor::from_slice(&[1.0]);
        let mut params = [&mut p1, &mut p2];
        opt.step(&mut params);
        assert!(p2.value.as_slice()[0] < 1.0);
    }
}
