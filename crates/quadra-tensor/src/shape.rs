//! Shape and stride utilities: row-major strides, broadcasting rules, index math.

use crate::error::{Result, TensorError};

/// Compute row-major (C-order) strides for `shape`.
///
/// The stride of the last axis is 1; the stride of axis `i` is the product of
/// the extents of all axes after `i`. Zero-sized axes are handled gracefully.
///
/// ```
/// assert_eq!(quadra_tensor::strides_for(&[2, 3, 4]), vec![12, 4, 1]);
/// ```
pub fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

/// Number of elements implied by `shape` (product of extents, 1 for scalars).
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Compute the broadcast result shape of two shapes following NumPy rules.
///
/// Shapes are aligned at their trailing axes; each pair of extents must either
/// be equal or one of them must be 1.
///
/// ```
/// use quadra_tensor::broadcast_shapes;
/// assert_eq!(broadcast_shapes(&[4, 1, 3], &[2, 3]).unwrap(), vec![4, 2, 3]);
/// ```
pub fn broadcast_shapes(lhs: &[usize], rhs: &[usize]) -> Result<Vec<usize>> {
    let ndim = lhs.len().max(rhs.len());
    let mut out = vec![0usize; ndim];
    for i in 0..ndim {
        let l = if i < ndim - lhs.len() { 1 } else { lhs[i - (ndim - lhs.len())] };
        let r = if i < ndim - rhs.len() { 1 } else { rhs[i - (ndim - rhs.len())] };
        if l == r || l == 1 || r == 1 {
            out[i] = l.max(r);
        } else {
            return Err(TensorError::BroadcastMismatch { lhs: lhs.to_vec(), rhs: rhs.to_vec() });
        }
    }
    Ok(out)
}

/// Strides to use when iterating a tensor of shape `shape` as if it had the
/// (broadcast) shape `target`: axes of extent 1 get stride 0 so the single
/// element is reused along that axis.
pub(crate) fn broadcast_strides(shape: &[usize], target: &[usize]) -> Vec<usize> {
    let strides = strides_for(shape);
    let offset = target.len() - shape.len();
    let mut out = vec![0usize; target.len()];
    for i in 0..shape.len() {
        out[i + offset] = if shape[i] == 1 && target[i + offset] != 1 { 0 } else { strides[i] };
    }
    out
}

/// Convert a flat row-major index into multi-dimensional coordinates.
pub(crate) fn unravel_index(mut flat: usize, shape: &[usize]) -> Vec<usize> {
    let mut coords = vec![0usize; shape.len()];
    for i in (0..shape.len()).rev() {
        if shape[i] == 0 {
            coords[i] = 0;
            continue;
        }
        coords[i] = flat % shape[i];
        flat /= shape[i];
    }
    coords
}

/// Dot product of coordinates and strides (flat offset into storage).
pub(crate) fn offset_of(coords: &[usize], strides: &[usize]) -> usize {
    coords.iter().zip(strides.iter()).map(|(c, s)| c * s).sum()
}

/// Validate an axis against a rank, returning it on success.
pub(crate) fn check_axis(axis: usize, ndim: usize) -> Result<usize> {
    if axis >= ndim {
        Err(TensorError::AxisOutOfRange { axis, ndim })
    } else {
        Ok(axis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_for(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_for(&[5]), vec![1]);
        assert_eq!(strides_for(&[]), Vec::<usize>::new());
        assert_eq!(strides_for(&[1, 1, 7]), vec![7, 7, 1]);
    }

    #[test]
    fn numel_products() {
        assert_eq!(numel(&[2, 3, 4]), 24);
        assert_eq!(numel(&[]), 1);
        assert_eq!(numel(&[0, 5]), 0);
    }

    #[test]
    fn broadcast_basic() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[2, 1], &[1, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[3], &[2, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[4, 1, 3], &[2, 3]).unwrap(), vec![4, 2, 3]);
        assert_eq!(broadcast_shapes(&[], &[2, 3]).unwrap(), vec![2, 3]);
    }

    #[test]
    fn broadcast_mismatch() {
        assert!(broadcast_shapes(&[2, 3], &[2, 4]).is_err());
        assert!(broadcast_shapes(&[5], &[4]).is_err());
    }

    #[test]
    fn broadcast_is_symmetric() {
        let a = [7, 1, 5];
        let b = [1, 6, 5];
        assert_eq!(broadcast_shapes(&a, &b).unwrap(), broadcast_shapes(&b, &a).unwrap());
    }

    #[test]
    fn broadcast_strides_zeroes_broadcast_axes() {
        // shape [3, 1] broadcast to [3, 4]: the last axis repeats element 0.
        assert_eq!(broadcast_strides(&[3, 1], &[3, 4]), vec![1, 0]);
        // shape [4] broadcast to [2, 4]: leading axis repeats.
        assert_eq!(broadcast_strides(&[4], &[2, 4]), vec![0, 1]);
    }

    #[test]
    fn unravel_and_offset_roundtrip() {
        let shape = [2, 3, 4];
        let strides = strides_for(&shape);
        for flat in 0..numel(&shape) {
            let coords = unravel_index(flat, &shape);
            assert_eq!(offset_of(&coords, &strides), flat);
        }
    }

    #[test]
    fn axis_check() {
        assert!(check_axis(0, 2).is_ok());
        assert!(check_axis(1, 2).is_ok());
        assert!(check_axis(2, 2).is_err());
    }
}
