//! Finding baseline for ratcheting.
//!
//! A baseline records the multiset of *unsuppressed* findings a team has
//! consciously decided to tolerate for now: CI runs with
//! `--baseline ANALYZE_baseline.json` and fails only on findings **not** in
//! the baseline, so existing debt never blocks a merge but new debt always
//! does. The baseline can only shrink over time (`--write-baseline` after
//! fixing findings re-ratchets it down); growing it is a reviewed change to
//! a committed file, never an analyzer default.
//!
//! Entries are keyed `(pass, check, file, message)` with a count — no line
//! numbers, so unrelated edits that shift a tolerated finding up or down a
//! file do not show up as drift, while a *second* instance of the same
//! finding in the same file does.

use crate::json::{self, Json};
use crate::report::Report;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Key of one tolerated finding class: `(pass, check, file, message)`.
pub type BaselineKey = (String, String, String, String);

/// A committed snapshot of tolerated findings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    /// Tolerated finding classes and how many instances of each.
    pub entries: BTreeMap<BaselineKey, usize>,
}

impl Baseline {
    /// Snapshot the unsuppressed findings of a report.
    pub fn from_report(report: &Report) -> Baseline {
        let mut entries: BTreeMap<BaselineKey, usize> = BTreeMap::new();
        for f in report.unsuppressed() {
            *entries
                .entry((f.pass.clone(), f.check.clone(), f.file.clone(), f.message.clone()))
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Parse the committed baseline file.
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let doc = json::parse(text)?;
        if doc.get("tool").and_then(Json::as_str) != Some("quadra-analyze-baseline") {
            return Err("not a quadra-analyze baseline file (missing tool tag)".to_string());
        }
        let mut entries: BTreeMap<BaselineKey, usize> = BTreeMap::new();
        let items = doc.get("entries").and_then(Json::as_array).ok_or("baseline has no `entries` array")?;
        for item in items {
            let field = |k: &str| {
                item.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline entry missing `{k}`"))
            };
            let key = (field("pass")?, field("check")?, field("file")?, field("message")?);
            let count =
                item.get("count").and_then(Json::as_u64).ok_or("baseline entry missing `count`")? as usize;
            *entries.entry(key).or_insert(0) += count;
        }
        Ok(Baseline { entries })
    }

    /// Serialize for committing.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": 1,");
        let _ = writeln!(out, "  \"tool\": \"quadra-analyze-baseline\",");
        out.push_str("  \"entries\": [\n");
        for (i, ((pass, check, file, message), count)) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"pass\": {}, \"check\": {}, \"file\": {}, \"message\": {}, \"count\": {count}}}{comma}",
                json_str(pass),
                json_str(check),
                json_str(file),
                json_str(message)
            );
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// Unsuppressed findings of `report` that exceed the baseline: every
    /// instance beyond an entry's tolerated count, in report order. These
    /// fail the gate under `--baseline`.
    pub fn new_findings<'r>(&self, report: &'r Report) -> Vec<&'r crate::report::Finding> {
        let mut budget: BTreeMap<BaselineKey, usize> = self.entries.clone();
        let mut out = Vec::new();
        for f in report.unsuppressed() {
            let key = (f.pass.clone(), f.check.clone(), f.file.clone(), f.message.clone());
            match budget.get_mut(&key) {
                Some(n) if *n > 0 => *n -= 1,
                _ => out.push(f),
            }
        }
        out
    }

    /// Number of baseline instances the current report no longer produces —
    /// fixed debt the baseline could ratchet down by (`--write-baseline`).
    pub fn stale_count(&self, report: &Report) -> usize {
        let current = Baseline::from_report(report);
        let mut stale = 0usize;
        for (key, &count) in &self.entries {
            let now = current.entries.get(key).copied().unwrap_or(0);
            stale += count.saturating_sub(now);
        }
        stale
    }
}

/// JSON-escape a string, quotes included (same escapes as the report writer).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Finding;

    fn finding(pass: &str, file: &str, message: &str) -> Finding {
        Finding {
            pass: pass.to_string(),
            check: "c".to_string(),
            file: file.to_string(),
            line: 1,
            message: message.to_string(),
            snippet: String::new(),
            suppressed_reason: None,
        }
    }

    fn report(findings: Vec<Finding>) -> Report {
        Report { findings, unused_suppressions: vec![], files_analyzed: 1 }
    }

    #[test]
    fn roundtrips_through_json() {
        let b = Baseline::from_report(&report(vec![
            finding("a", "f.rs", "msg \"quoted\""),
            finding("a", "f.rs", "msg \"quoted\""),
            finding("b", "g.rs", "other"),
        ]));
        let parsed = Baseline::from_json(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.entries[&("a".into(), "c".into(), "f.rs".into(), "msg \"quoted\"".into())], 2);
    }

    #[test]
    fn baselined_findings_are_tolerated_and_new_ones_are_not() {
        let b = Baseline::from_report(&report(vec![finding("a", "f.rs", "known")]));
        // Same finding again: tolerated. A second instance and a new class: not.
        let r = report(vec![
            finding("a", "f.rs", "known"),
            finding("a", "f.rs", "known"),
            finding("b", "g.rs", "fresh"),
        ]);
        let new = b.new_findings(&r);
        assert_eq!(new.len(), 2);
        assert!(new.iter().any(|f| f.message == "fresh"));
    }

    #[test]
    fn line_shifts_are_not_drift() {
        let b = Baseline::from_report(&report(vec![finding("a", "f.rs", "known")]));
        let mut moved = finding("a", "f.rs", "known");
        moved.line = 99;
        assert!(b.new_findings(&report(vec![moved])).is_empty());
    }

    #[test]
    fn suppressed_findings_never_enter_the_baseline() {
        let mut f = finding("a", "f.rs", "suppressed");
        f.suppressed_reason = Some("reason".to_string());
        let b = Baseline::from_report(&report(vec![f]));
        assert!(b.entries.is_empty());
    }

    #[test]
    fn stale_count_measures_fixed_debt() {
        let b = Baseline::from_report(&report(vec![
            finding("a", "f.rs", "fixed"),
            finding("a", "f.rs", "fixed"),
            finding("b", "g.rs", "still-here"),
        ]));
        let r = report(vec![finding("b", "g.rs", "still-here")]);
        assert_eq!(b.stale_count(&r), 2);
        assert!(b.new_findings(&r).is_empty());
    }

    #[test]
    fn rejects_foreign_json() {
        assert!(Baseline::from_json("{\"tool\": \"other\", \"entries\": []}").is_err());
        assert!(Baseline::from_json("not json").is_err());
    }
}
