//! Serving load tests over `quadra-serve`.
//!
//! Four parts:
//!
//! 1. **Closed-loop sweep** (as in PR 3): concurrent clients drive a
//!    single-model server over the MobileNetV1 and ResNet-20 backbones for a
//!    sweep of worker-pool / batch-policy settings — the value of dynamic
//!    batching.
//! 2. **Overload scenario**: a mixed MobileNetV1 + ResNet-20 router fleet
//!    under *open-loop* offered load at 2× its measured capacity, with
//!    bounded admission (load shedding) versus the unbounded baseline. With
//!    shedding, the p95 latency of admitted requests stays near the
//!    uncontended p95; without it, latency grows with the backlog for as long
//!    as the overload lasts. Since the worker-pull scheduler the pipeline
//!    holds only the executing batch (no batch formed ahead), so the
//!    admitted-request floor sojourn is roughly halved versus the PR-4
//!    batcher-thread numbers.
//! 3. **Deadline scenario**: the same overload with per-request deadlines —
//!    requests whose deadline passes while they queue are shed at dispatch
//!    with `DeadlineExceeded` instead of being served late.
//! 4. **Fairness scenario**: a MobileNet flood next to a driven ResNet, both
//!    saturating, on the deficit-round-robin fleet scheduler: each model's
//!    service share tracks its weight, and ResNet's effective capacity stays
//!    within ~20% of its fair share of its solo capacity.
//!
//! Results are printed as tables and written machine-readably to
//! `BENCH_serve.json` (override the path with `QUADRA_BENCH_JSON`), so the
//! perf trajectory is tracked across PRs.
//!
//! Regenerate with `cargo run -p quadra-bench --release --bin serve_load`
//! (set `QUADRA_SCALE=full` for the larger settings). Set
//! `QUADRA_SCALING_CHECK=1` to exit non-zero when adding workers loses
//! throughput along the fixed-batch 1→2→4 series — the CI scaling smoke.

use quadra_bench::{print_table, scale, Scale};
use quadra_core::{build_model, ModelConfig};
use quadra_models::{mobilenet_v1_config, resnet20_config};
use quadra_serve::{
    AdmissionPolicy, BatchPolicy, InferenceServer, Priority, Request, Router, ServeConfig, ServeError,
};
use quadra_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Latency summary in milliseconds: `(p50, p95, max)`.
#[derive(serde::Serialize, Debug, Clone, Copy)]
struct LatencyMs(f64, f64, f64);

/// One titled report section — exercises the vendored serde derive's generic
/// structs on a real consumer.
#[derive(serde::Serialize, Debug)]
struct Section<T> {
    title: String,
    records: Vec<T>,
}

#[derive(serde::Serialize, Debug)]
struct ClosedLoopRecord {
    model: String,
    workers: usize,
    max_batch: usize,
    requests: u64,
    throughput_rps: f64,
    latency_ms: LatencyMs,
    mean_batch: f64,
}

#[derive(serde::Serialize, Debug)]
struct OverloadRecord {
    model: String,
    /// `uncontended` (0.5× capacity, bounded), `shed` (2×, bounded),
    /// `deadline` (2×, bounded, per-request deadlines) or `unbounded`
    /// (2×, no queue cap).
    mode: String,
    offered_rps: f64,
    completed: u64,
    shed: u64,
    /// Requests admitted but shed at dispatch because their deadline passed
    /// while they queued (0 outside the `deadline` mode).
    deadline_expired: u64,
    /// The per-request deadline of the `deadline` mode, if any.
    deadline_ms: Option<f64>,
    throughput_rps: f64,
    admitted_latency_ms: LatencyMs,
    /// p95 of the interactive class alone (the class the priority queue
    /// protects from batch-class backlog).
    interactive_p95_ms: f64,
    /// Interactive p95 over the first and second half of the run: flat when
    /// admission is bounded, growing when the queue is unbounded.
    p95_first_half_ms: f64,
    p95_second_half_ms: f64,
}

#[derive(serde::Serialize, Debug)]
struct FairnessRecord {
    model: String,
    weight: u32,
    completed: u64,
    shed: u64,
    /// Mean coalesced batch size and per-batch wall time during the
    /// contended run (batching efficiency shifts under throttling, which is
    /// why throughput shares and service-time shares differ).
    mean_batch: f64,
    ms_per_batch: f64,
    solo_ms_per_batch: f64,
    throughput_rps: f64,
    /// This model's fraction of the fleet's worker service time during the
    /// contended run.
    service_share: f64,
    /// `weight / Σ weights` — where the scheduler should steer the share.
    fair_share: f64,
    /// Closed-loop capacity with the rest of the fleet idle.
    solo_rps: f64,
    /// `throughput_rps / (solo_rps × fair_share)`: 1.0 = the model gets
    /// exactly its fair share of its own solo capacity under contention.
    vs_fair_capacity: f64,
}

#[derive(serde::Serialize, Debug)]
struct ServeReport {
    scale: String,
    closed_loop: Section<ClosedLoopRecord>,
    overload: Section<OverloadRecord>,
    fairness: Section<FairnessRecord>,
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * q).round() as usize;
    sorted_ms[idx]
}

fn latency_summary(ms: &mut [f64]) -> LatencyMs {
    ms.sort_by(f64::total_cmp);
    LatencyMs(percentile(ms, 0.50), percentile(ms, 0.95), ms.last().copied().unwrap_or(0.0))
}

/// One closed-loop run: `clients` threads each serve `requests_per_client`
/// single-sample requests back to back, then the server reports its metrics.
fn closed_loop(
    config: &ModelConfig,
    workers: usize,
    max_batch: usize,
    clients: usize,
    requests_per_client: usize,
) -> quadra_serve::ServeMetrics {
    let (channels, image) = (config.input_channels, config.image_size);
    let model_config = config.clone();
    let server = InferenceServer::start(
        ServeConfig {
            workers,
            policy: BatchPolicy {
                max_batch_size: max_batch,
                max_wait: Duration::from_millis(1),
                ..BatchPolicy::default()
            },
            ..ServeConfig::default()
        },
        move || Box::new(build_model(&model_config, &mut StdRng::seed_from_u64(11))),
    )
    .expect("server starts");

    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let client = server.client();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + c as u64);
                let x = Tensor::randn(&[1, channels, image, image], 0.0, 1.0, &mut rng);
                for _ in 0..requests_per_client {
                    let response = client.infer(x.clone()).expect("request served");
                    assert_eq!(response.output.shape()[0], 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    server.shutdown()
}

/// Endpoint description of the overload fleet. Batch size, shed-queue depth
/// and fair-share weight are per model: the light model batches wide for
/// throughput, the heavy model batches narrow so an admitted request's
/// sojourn (the executing batch plus the queue) stays short.
struct FleetModel {
    name: &'static str,
    config: ModelConfig,
    max_batch: usize,
    shed_queue: usize,
    weight: u32,
}

fn fleet(models: &[FleetModel], workers: usize, bounded: bool) -> Router {
    let mut builder = Router::builder();
    for m in models {
        let config = m.config.clone();
        builder = builder.endpoint(
            m.name,
            ServeConfig {
                workers,
                policy: BatchPolicy {
                    max_batch_size: m.max_batch,
                    max_wait: Duration::from_millis(2),
                    ..BatchPolicy::default()
                },
                admission: AdmissionPolicy {
                    queue_capacity: if bounded { Some(m.shed_queue) } else { None },
                    ..AdmissionPolicy::default()
                },
                weight: m.weight,
            },
            move || Box::new(build_model(&config, &mut StdRng::seed_from_u64(11))),
        );
    }
    builder.start().expect("fleet starts")
}

/// Closed-loop saturation of every fleet model at once: per-model capacity
/// (req/s) under shared CPU, which the overload runs then multiply.
fn measure_capacity(
    models: &[FleetModel],
    workers: usize,
    clients_per_model: usize,
    requests_per_client: usize,
) -> Vec<f64> {
    let router = fleet(models, workers, false);
    let handles: Vec<_> = models
        .iter()
        .map(|m| {
            let (name, channels, image) = (m.name, m.config.input_channels, m.config.image_size);
            let clients: Vec<_> = (0..clients_per_model)
                .map(|c| {
                    let client = router.client();
                    std::thread::spawn(move || {
                        let mut rng = StdRng::seed_from_u64(7 + c as u64);
                        let x = Tensor::randn(&[1, channels, image, image], 0.0, 1.0, &mut rng);
                        for _ in 0..requests_per_client {
                            let _ = client.infer(name, x.clone()).expect("request served");
                        }
                    })
                })
                .collect();
            std::thread::spawn(move || {
                let started = Instant::now();
                for c in clients {
                    c.join().unwrap();
                }
                (clients_per_model * requests_per_client) as f64 / started.elapsed().as_secs_f64()
            })
        })
        .collect();
    let capacities = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let _ = router.shutdown();
    capacities
}

/// Per-model open-loop outcome: `(completed, shed, deadline_expired,
/// (latency_ms, was_interactive) in submission order)`.
type OpenLoopOutcome = (u64, u64, u64, Vec<(f64, bool)>);

/// Open-loop drive of one fleet: per model, `generators` threads submit
/// single-sample requests at a fixed offered rate (3:1 interactive:batch
/// class mix, optionally with a per-request deadline), then wait for every
/// admitted response.
fn open_loop(
    router: &Router,
    models: &[FleetModel],
    offered_rps: &[f64],
    totals: &[usize],
    generators: usize,
    deadline: Option<Duration>,
) -> Vec<OpenLoopOutcome> {
    let handles: Vec<Vec<_>> = models
        .iter()
        .zip(offered_rps.iter().zip(totals))
        .map(|(m, (&offered, &total))| {
            (0..generators)
                .map(|g| {
                    let client = router.client();
                    let (name, channels, image) = (m.name, m.config.input_channels, m.config.image_size);
                    let per_gen = total / generators;
                    std::thread::spawn(move || {
                        let mut rng = StdRng::seed_from_u64(900 + g as u64);
                        let x = Tensor::randn(&[1, channels, image, image], 0.0, 1.0, &mut rng);
                        let period = Duration::from_secs_f64(generators as f64 / offered);
                        // Stagger generators across one period.
                        let mut next = Instant::now() + period.mul_f64(g as f64 / generators as f64);
                        let mut shed = 0u64;
                        let mut expired = 0u64;
                        let mut pending = Vec::with_capacity(per_gen);
                        for k in 0..per_gen {
                            let now = Instant::now();
                            if next > now {
                                std::thread::sleep(next - now);
                            }
                            next += period;
                            let priority = if k % 4 == 3 { Priority::Batch } else { Priority::Interactive };
                            let mut request = Request::new(x.clone()).priority(priority);
                            if let Some(d) = deadline {
                                request = request.deadline(d);
                            }
                            match client.send(name, request) {
                                Ok(handle) => pending.push((k, handle)),
                                Err(ServeError::Overloaded { .. }) => shed += 1,
                                Err(e) => panic!("submit failed: {e}"),
                            }
                        }
                        let mut latencies = Vec::with_capacity(pending.len());
                        for (k, handle) in pending {
                            match handle.wait() {
                                Ok(response) => {
                                    let interactive = response.priority == Priority::Interactive;
                                    latencies.push((k, (response.latency.as_secs_f64() * 1e3, interactive)));
                                }
                                Err(ServeError::DeadlineExceeded) => expired += 1,
                                Err(e) => panic!("admitted request failed: {e}"),
                            }
                        }
                        (shed, expired, latencies)
                    })
                })
                .collect()
        })
        .collect();

    handles
        .into_iter()
        .map(|model_handles| {
            let mut shed = 0u64;
            let mut expired = 0u64;
            let mut indexed: Vec<(usize, (f64, bool))> = Vec::new();
            for h in model_handles {
                let (s, e, lats) = h.join().unwrap();
                shed += s;
                expired += e;
                indexed.extend(lats);
            }
            indexed.sort_by_key(|&(k, _)| k);
            let latencies: Vec<(f64, bool)> = indexed.into_iter().map(|(_, v)| v).collect();
            (latencies.len() as u64, shed, expired, latencies)
        })
        .collect()
}

#[allow(clippy::too_many_arguments)] // a bench harness, not an API surface
fn overload_scenario(
    models: &[FleetModel],
    mode: &str,
    bounded: bool,
    offered_rps: &[f64],
    run_secs: f64,
    workers: usize,
    generators: usize,
    deadline: Option<Duration>,
) -> Vec<OverloadRecord> {
    let router = fleet(models, workers, bounded);
    // Same wall-clock run length per model: request counts scale with rate.
    let totals: Vec<usize> =
        offered_rps.iter().map(|r| ((r * run_secs) as usize).max(generators * 8)).collect();
    let started = Instant::now();
    let outcomes = open_loop(&router, models, offered_rps, &totals, generators, deadline);
    let run_elapsed = started.elapsed().as_secs_f64();
    let metrics = router.shutdown();
    models
        .iter()
        .zip(offered_rps)
        .zip(outcomes)
        .map(|((m, &offered), (completed, shed, expired, latencies))| {
            let snapshot = metrics.get(m.name).expect("endpoint metrics");
            assert_eq!(shed, snapshot.shed_requests, "client-side and server-side shed counts agree");
            assert_eq!(
                expired, snapshot.deadline_missed_requests,
                "client-side and server-side deadline-miss counts agree"
            );
            // Drop the warm-up head (first 15% of admitted responses: replica
            // construction, first-touch caches) so every mode's percentiles
            // describe the steady state.
            let latencies: Vec<(f64, bool)> = latencies[latencies.len() * 15 / 100..].to_vec();
            // The growth comparison is per half of the run, interactive class
            // only: under strict priority the unbounded baseline starves the
            // batch class wholesale, which would smear the halves.
            let ordered_interactive: Vec<f64> =
                latencies.iter().filter(|&&(_, int)| int).map(|&(ms, _)| ms).collect();
            let half = ordered_interactive.len() / 2;
            let mut first: Vec<f64> = ordered_interactive[..half].to_vec();
            let mut second: Vec<f64> = ordered_interactive[half..].to_vec();
            first.sort_by(f64::total_cmp);
            second.sort_by(f64::total_cmp);
            let mut interactive = ordered_interactive.clone();
            interactive.sort_by(f64::total_cmp);
            let mut all: Vec<f64> = latencies.iter().map(|&(ms, _)| ms).collect();
            OverloadRecord {
                model: m.name.to_string(),
                mode: mode.to_string(),
                offered_rps: offered,
                completed,
                shed,
                deadline_expired: expired,
                deadline_ms: deadline.map(|d| d.as_secs_f64() * 1e3),
                throughput_rps: completed as f64 / run_elapsed,
                admitted_latency_ms: latency_summary(&mut all),
                interactive_p95_ms: percentile(&interactive, 0.95),
                p95_first_half_ms: percentile(&first, 0.95),
                p95_second_half_ms: percentile(&second, 0.95),
            }
        })
        .collect()
}

/// Closed-loop drive of selected fleet models for a fixed wall-clock window:
/// `clients` threads per driven model submit back to back until the window
/// closes. Returns per driven model `(completed, shed)`.
fn drive_for(router: &Router, driven: &[&FleetModel], clients: usize, window: Duration) -> Vec<(u64, u64)> {
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<Vec<_>> = driven
        .iter()
        .map(|m| {
            (0..clients)
                .map(|c| {
                    let client = router.client();
                    let stop = Arc::clone(&stop);
                    let (name, channels, image) = (m.name, m.config.input_channels, m.config.image_size);
                    std::thread::spawn(move || {
                        let mut rng = StdRng::seed_from_u64(400 + c as u64);
                        let x = Tensor::randn(&[1, channels, image, image], 0.0, 1.0, &mut rng);
                        let (mut completed, mut shed) = (0u64, 0u64);
                        while !stop.load(Ordering::Relaxed) {
                            match client.infer(name, x.clone()) {
                                Ok(_) => completed += 1,
                                Err(ServeError::Overloaded { retry_after }) => {
                                    shed += 1;
                                    std::thread::sleep(retry_after.min(Duration::from_millis(5)));
                                }
                                Err(e) => panic!("drive failed: {e}"),
                            }
                        }
                        (completed, shed)
                    })
                })
                .collect()
        })
        .collect();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    handles
        .into_iter()
        .map(|model_handles| {
            model_handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .fold((0, 0), |(c, s), (c2, s2)| (c + c2, s + s2))
        })
        .collect()
}

/// Fairness scenario: measure each model's solo closed-loop capacity inside
/// the fleet (the other endpoint idle — the scheduler is work-conserving, so
/// solo throughput is uncontended), then saturate both at once and check
/// each model's throughput against its fair share of its solo capacity.
fn fairness_scenario(models: &[FleetModel], clients: usize, run_secs: f64) -> Vec<FairnessRecord> {
    let window = Duration::from_secs_f64(run_secs);
    let total_weight: u32 = models.iter().map(|m| m.weight).sum();

    // Solo capacities: one fresh fleet per phase so metrics don't blend.
    let mut solo_rps = Vec::new();
    let mut solo_ms_per_batch = Vec::new();
    for m in models {
        let router = fleet(models, 1, true);
        let outcome = drive_for(&router, &[m], clients, window);
        let metrics = router.shutdown();
        let snap = metrics.get(m.name).expect("endpoint metrics");
        solo_rps.push(outcome[0].0 as f64 / run_secs);
        solo_ms_per_batch.push(snap.service_time_ms / (snap.batches.max(1) as f64));
    }

    // Contended run: every model saturated by its own closed-loop clients.
    let router = fleet(models, 1, true);
    let driven: Vec<&FleetModel> = models.iter().collect();
    let outcomes = drive_for(&router, &driven, clients, window);
    let metrics = router.shutdown();

    models
        .iter()
        .zip(solo_rps.into_iter().zip(solo_ms_per_batch))
        .zip(outcomes)
        .map(|((m, (solo, solo_batch_ms)), (completed, shed))| {
            let fair_share = m.weight as f64 / total_weight as f64;
            let throughput = completed as f64 / run_secs;
            let snap = metrics.get(m.name).expect("endpoint metrics");
            FairnessRecord {
                model: m.name.to_string(),
                weight: m.weight,
                completed,
                shed,
                mean_batch: snap.mean_batch_size,
                ms_per_batch: snap.service_time_ms / (snap.batches.max(1) as f64),
                solo_ms_per_batch: solo_batch_ms,
                throughput_rps: throughput,
                service_share: metrics.service_share(m.name).unwrap_or(0.0),
                fair_share,
                solo_rps: solo,
                vs_fair_capacity: if solo > 0.0 { throughput / (solo * fair_share) } else { 0.0 },
            }
        })
        .collect()
}

fn main() {
    let (requests_per_client, clients, image, run_secs) = match scale() {
        Scale::Full => (256usize, 8usize, 32usize, 4.0f64),
        Scale::Quick => (48, 8, 16, 1.2),
    };
    let models: Vec<(&str, ModelConfig)> = vec![
        ("MobileNetV1 (0.25x, 5 DW pairs)", mobilenet_v1_config(5, 0.25, 3, image, 10)),
        ("ResNet-20 (width 8)", resnet20_config(8, 10, image)),
    ];
    // (workers, max_batch): no batching baseline, batching on one worker,
    // then scaling the replica pool at a fixed batch cap (1→2→4 workers at
    // max_batch 8 is the monotonicity series the scaling check reads), plus
    // a wide-batch point.
    let sweep = [(1usize, 1usize), (1, 8), (2, 8), (4, 8), (4, 16)];

    let mut closed_records = Vec::new();
    for (name, config) in &models {
        let mut rows = Vec::new();
        let mut occupancies = Vec::new();
        for &(workers, max_batch) in &sweep {
            let metrics = closed_loop(config, workers, max_batch, clients, requests_per_client);
            rows.push(vec![
                format!("{}", workers),
                format!("{}", max_batch),
                format!("{}", metrics.completed_requests),
                format!("{:.0}", metrics.throughput_rps),
                format!("{:.2}", metrics.p50_latency_ms),
                format!("{:.2}", metrics.p95_latency_ms),
                format!("{:.2}", metrics.mean_batch_size),
                format!("{:.0}", metrics.peak_batch_activation_bytes as f64 / 1024.0),
            ]);
            closed_records.push(ClosedLoopRecord {
                model: name.to_string(),
                workers,
                max_batch,
                requests: metrics.completed_requests,
                throughput_rps: metrics.throughput_rps,
                latency_ms: LatencyMs(metrics.p50_latency_ms, metrics.p95_latency_ms, metrics.max_latency_ms),
                mean_batch: metrics.mean_batch_size,
            });
            occupancies.push((workers, max_batch, metrics));
        }
        print_table(
            &format!("Serving load test — {} ({} closed-loop clients)", name, clients),
            &["workers", "max batch", "requests", "req/s", "p50 ms", "p95 ms", "mean batch", "peak act KiB"],
            &rows,
        );
        if let Some((workers, max_batch, metrics)) =
            occupancies.iter().max_by(|a, b| a.2.throughput_rps.total_cmp(&b.2.throughput_rps))
        {
            println!(
                "best: {} workers × max batch {} — batch occupancy:\n{}",
                workers,
                max_batch,
                metrics.occupancy_ascii(32)
            );
        }
    }

    // ---- Overload scenario: mixed fleet, offered load at 2× capacity. ----
    let fleet_models = vec![
        FleetModel {
            name: "mobilenet",
            config: mobilenet_v1_config(5, 0.25, 3, image, 10),
            max_batch: 8,
            shed_queue: 8,
            weight: 1,
        },
        FleetModel {
            name: "resnet",
            config: resnet20_config(8, 10, image),
            max_batch: 4,
            shed_queue: 4,
            weight: 1,
        },
    ];
    let workers = 1;
    let generators = 4;
    let closed_capacity = measure_capacity(&fleet_models, workers, clients, requests_per_client);
    println!(
        "\nclosed-loop fleet capacity: mobilenet {:.0} req/s, resnet {:.0} req/s",
        closed_capacity[0], closed_capacity[1]
    );
    // Both models share the CPU, so each model's *effective* capacity under
    // the mixed open-loop drive is below its closed-loop number. Calibrate
    // with a saturating probe run and express the scenarios as multiples of
    // the effective capacity — "2× capacity" then means what it says for
    // every model of the fleet.
    let probe_load: Vec<f64> = closed_capacity.iter().map(|c| (c * 2.0).max(32.0)).collect();
    let probe =
        overload_scenario(&fleet_models, "probe", true, &probe_load, run_secs, workers, generators, None);
    let capacity: Vec<f64> = probe.iter().map(|r| r.throughput_rps.max(8.0)).collect();
    println!(
        "effective capacity under mixed overload: mobilenet {:.0} req/s, resnet {:.0} req/s",
        capacity[0], capacity[1]
    );
    let half_load: Vec<f64> = capacity.iter().map(|c| (c * 0.5).max(8.0)).collect();
    let double_load: Vec<f64> = capacity.iter().map(|c| (c * 2.0).max(32.0)).collect();
    let mut overload = Vec::new();
    overload.extend(overload_scenario(
        &fleet_models,
        "uncontended",
        true,
        &half_load,
        run_secs,
        workers,
        generators,
        None,
    ));
    overload.extend(overload_scenario(
        &fleet_models,
        "shed",
        true,
        &double_load,
        run_secs,
        workers,
        generators,
        None,
    ));
    // Deadline mode: the same 2× overload, but every request gives up after
    // 6× the probe's uncontended p50 — late answers are shed at dispatch, so
    // the served requests' tail stays near the deadline instead of the queue
    // drain time.
    let deadline = Duration::from_secs_f64(
        (probe.iter().map(|r| r.admitted_latency_ms.0).fold(f64::MIN, f64::max) * 6.0 / 1e3).max(0.02),
    );
    overload.extend(overload_scenario(
        &fleet_models,
        "deadline",
        true,
        &double_load,
        run_secs,
        workers,
        generators,
        Some(deadline),
    ));
    overload.extend(overload_scenario(
        &fleet_models,
        "unbounded",
        false,
        &double_load,
        run_secs,
        workers,
        generators,
        None,
    ));

    let rows: Vec<Vec<String>> = overload
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.mode.clone(),
                format!("{:.0}", r.offered_rps),
                format!("{}", r.completed),
                format!("{}", r.shed),
                format!("{}", r.deadline_expired),
                format!("{:.2}", r.admitted_latency_ms.0),
                format!("{:.2}", r.admitted_latency_ms.1),
                format!("{:.2}", r.interactive_p95_ms),
                format!("{:.2}", r.p95_first_half_ms),
                format!("{:.2}", r.p95_second_half_ms),
            ]
        })
        .collect();
    print_table(
        "Overload — mixed MobileNetV1 + ResNet-20 fleet (open loop)",
        &[
            "model",
            "mode",
            "offered/s",
            "done",
            "shed",
            "expired",
            "p50 ms",
            "p95 ms",
            "int p95 ms",
            "p95 1st half",
            "p95 2nd half",
        ],
        &rows,
    );
    println!(
        "bounded admission keeps the admitted-request p95 near the uncontended p95 under 2× load\n\
         (and the worker-pull scheduler halves the floor sojourn vs the PR-4 batcher thread);\n\
         the unbounded baseline's p95 keeps growing for as long as the overload lasts."
    );

    // ---- Fairness scenario: MobileNet flood next to a driven ResNet. ----
    let fairness = fairness_scenario(&fleet_models, clients.min(4), run_secs);
    let rows: Vec<Vec<String>> = fairness
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                format!("{}", r.weight),
                format!("{}", r.completed),
                format!("{:.0}", r.solo_rps),
                format!("{:.0}", r.throughput_rps),
                format!("{:.2}", r.mean_batch),
                format!("{:.2}/{:.2}", r.ms_per_batch, r.solo_ms_per_batch),
                format!("{:.2}", r.fair_share),
                format!("{:.2}", r.service_share),
                format!("{:.2}", r.vs_fair_capacity),
            ]
        })
        .collect();
    print_table(
        "Fairness — both models saturated on the DRR fleet scheduler",
        &[
            "model",
            "weight",
            "done",
            "solo req/s",
            "req/s",
            "mean batch",
            "ms/batch (vs solo)",
            "fair share",
            "svc share",
            "vs fair cap",
        ],
        &rows,
    );
    println!(
        "the deficit-round-robin gate bounds cross-model interference: a MobileNet flood can no\n\
         longer crowd ResNet off the CPU, and each model's effective capacity stays within ~20%\n\
         of its fair share of its solo capacity (`vs fair cap` ≈ 1). The gate is work-conserving:\n\
         time one model leaves idle (e.g. waiting to fill a batch) is used by the other."
    );

    let report = ServeReport {
        scale: format!("{:?}", scale()).to_lowercase(),
        closed_loop: Section { title: "closed-loop sweep".to_string(), records: closed_records },
        overload: Section { title: "open-loop overload".to_string(), records: overload },
        fairness: Section { title: "fair-share contention".to_string(), records: fairness },
    };
    let path = std::env::var("QUADRA_BENCH_JSON").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, text + "\n").expect("write bench report");
    println!("\nwrote {path}");

    // With QUADRA_SCALING_CHECK set, fail loudly when adding a worker *loses*
    // throughput — the regression this harness exists to catch. The report is
    // already on disk at this point so CI can archive it either way.
    if std::env::var("QUADRA_SCALING_CHECK").is_ok() && !scaling_check(&report.closed_loop.records) {
        std::process::exit(1);
    }
}

/// Verify worker scaling stayed monotone (with 5% noise tolerance) along the
/// fixed-batch series: for each model, throughput at 2 workers must be at
/// least 0.95× the 1-worker figure, and 4 workers at least 0.95× of 2.
/// Returns false (after printing the violations) when any step regresses.
fn scaling_check(records: &[ClosedLoopRecord]) -> bool {
    const TOLERANCE: f64 = 0.95;
    const SERIES_BATCH: usize = 8;
    let mut ok = true;
    let models: Vec<&str> = {
        let mut seen = Vec::new();
        for r in records {
            if !seen.contains(&r.model.as_str()) {
                seen.push(r.model.as_str());
            }
        }
        seen
    };
    println!("\nscaling check (throughput at max_batch {SERIES_BATCH}, tolerance {TOLERANCE}):");
    for model in models {
        let at = |workers: usize| {
            records
                .iter()
                .find(|r| r.model == model && r.workers == workers && r.max_batch == SERIES_BATCH)
                .map(|r| r.throughput_rps)
        };
        let (Some(w1), Some(w2), Some(w4)) = (at(1), at(2), at(4)) else {
            println!("  {model}: series incomplete, skipping");
            continue;
        };
        println!("  {model}: 1w {w1:.0} -> 2w {w2:.0} -> 4w {w4:.0} rps");
        if w2 < TOLERANCE * w1 {
            eprintln!("  SCALING REGRESSION: {model}: 2 workers ({w2:.0} rps) < {TOLERANCE} x 1 worker ({w1:.0} rps)");
            ok = false;
        }
        if w4 < TOLERANCE * w2 {
            eprintln!("  SCALING REGRESSION: {model}: 4 workers ({w4:.0} rps) < {TOLERANCE} x 2 workers ({w2:.0} rps)");
            ok = false;
        }
    }
    ok
}
