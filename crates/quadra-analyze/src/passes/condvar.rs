//! Condvar predicate-loop check.
//!
//! Condvars wake spuriously and notifications can race ahead of the
//! predicate they signal, so the only sound shape for a wait is inside a
//! `while`/`loop` that re-checks its predicate after every wakeup. In crates
//! listed in `condvar_crates`, this pass flags every wait site — raw
//! `.wait(..)` / `.wait_timeout(..)` method calls and the workspace's
//! configured `wait*_or_recover` helpers — that is not lexically enclosed by
//! a `while` or `loop` block inside its function. A `for` body does not
//! count: bounded iteration is not predicate re-checking. An `if`-guarded
//! wait is exactly the bug this pass exists to catch.

use crate::config::AnalyzeConfig;
use crate::lexer::TokKind;
use crate::report::Finding;
use crate::source::SourceFile;

/// Raw condvar wait methods (the poison-recovering helpers are configured).
const WAIT_METHODS: [&str; 4] = ["wait", "wait_timeout", "wait_while", "wait_timeout_while"];

/// What kind of block a `{` opened, for the enclosing-loop test.
#[derive(Clone, Copy, PartialEq, Eq)]
enum BlockKind {
    Loop,
    Other,
}

/// Run the pass over one file.
pub fn run(file: &SourceFile, cfg: &AnalyzeConfig, findings: &mut Vec<Finding>) {
    if !cfg.condvar_crates.iter().any(|c| c == &file.crate_name) {
        return;
    }
    let toks = &file.toks;
    for f in &file.fns {
        if f.is_test {
            continue;
        }
        let Some((open, close)) = f.body else { continue };
        // Walk the body tracking what kind of block each `{` opens. A
        // keyword seen at expression-head position arms `pending`; the next
        // `{` consumes it. `;` disarms (statement ended without a block).
        let mut stack: Vec<BlockKind> = Vec::new();
        let mut pending: Option<BlockKind> = None;
        let mut i = open + 1;
        while i < close {
            let t = &toks[i];
            if t.is_punct('{') {
                stack.push(pending.take().unwrap_or(BlockKind::Other));
                i += 1;
                continue;
            }
            if t.is_punct('}') {
                stack.pop();
                i += 1;
                continue;
            }
            if t.is_punct(';') {
                pending = None;
                i += 1;
                continue;
            }
            if t.is_ident("loop") || t.is_ident("while") {
                pending = Some(BlockKind::Loop);
                i += 1;
                continue;
            }
            if t.is_ident("for") || t.is_ident("if") || t.is_ident("match") {
                pending = Some(BlockKind::Other);
                i += 1;
                continue;
            }
            let is_call = t.kind == TokKind::Ident && i < close && toks[i + 1].is_punct('(');
            if is_call && !file.is_test_tok(i) {
                let name = t.text.as_str();
                let is_method = i > 0 && toks[i - 1].is_punct('.');
                let is_wait =
                    (is_method && WAIT_METHODS.contains(&name)) || (!is_method && cfg.is_wait_helper(name));
                if is_wait && !stack.contains(&BlockKind::Loop) {
                    findings.push(Finding {
                        pass: "condvar".to_string(),
                        check: "wait-not-in-loop".to_string(),
                        file: file.path.clone(),
                        line: t.line,
                        message: format!(
                            "`{name}` in `{}` is not inside a `while`/`loop`: condvar waits wake \
                             spuriously — re-check the predicate in a loop around the wait",
                            f.name
                        ),
                        snippet: file.line_text(t.line).to_string(),
                        suppressed_reason: None,
                    });
                }
            }
            i += 1;
        }
    }
}
