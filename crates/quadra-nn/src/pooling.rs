//! Pooling layers: max pooling, average pooling and global average pooling.

use crate::layer::Layer;
use quadra_tensor::{PoolIndices, PoolParams, Tensor};

/// Max pooling over non-overlapping (or strided) square windows.
pub struct MaxPool2d {
    params: PoolParams,
    indices: Option<PoolIndices>,
}

impl MaxPool2d {
    /// Non-overlapping max pooling with window `kernel`.
    pub fn new(kernel: usize) -> Self {
        MaxPool2d { params: PoolParams::new(kernel), indices: None }
    }

    /// Max pooling with an explicit stride.
    pub fn with_stride(kernel: usize, stride: usize) -> Self {
        MaxPool2d { params: PoolParams::with_stride(kernel, stride), indices: None }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let (y, idx) = x.maxpool2d(self.params).expect("maxpool shapes");
        self.indices = Some(idx);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let idx = self.indices.take().expect("backward called before forward");
        Tensor::maxpool2d_backward(grad_out, &idx).expect("maxpool backward")
    }

    fn cached_bytes(&self) -> usize {
        self.indices.as_ref().map(|i| i.argmax.len() * std::mem::size_of::<usize>()).unwrap_or(0)
    }

    fn clear_cache(&mut self) {
        self.indices = None;
    }

    fn layer_type(&self) -> &'static str {
        "maxpool2d"
    }
}

/// Average pooling over square windows.
pub struct AvgPool2d {
    params: PoolParams,
    input_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Non-overlapping average pooling with window `kernel`.
    pub fn new(kernel: usize) -> Self {
        AvgPool2d { params: PoolParams::new(kernel), input_shape: None }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        self.input_shape = Some(x.shape().to_vec());
        x.avgpool2d(self.params).expect("avgpool shapes")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self.input_shape.take().expect("backward called before forward");
        Tensor::avgpool2d_backward(grad_out, &shape, self.params).expect("avgpool backward")
    }

    fn layer_type(&self) -> &'static str {
        "avgpool2d"
    }
}

/// Global average pooling collapsing each channel map to a single value:
/// `[n, c, h, w] -> [n, c]`.
#[derive(Default)]
pub struct GlobalAvgPool {
    input_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Create a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { input_shape: None }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        self.input_shape = Some(x.shape().to_vec());
        x.global_avg_pool().expect("global avg pool shapes")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self.input_shape.take().expect("backward called before forward");
        Tensor::global_avg_pool_backward(grad_out, &shape).expect("global avg pool backward")
    }

    fn layer_type(&self) -> &'static str {
        "global_avg_pool"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_layer_roundtrip() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let y = pool.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert!(pool.cached_bytes() > 0);
        let gin = pool.backward(&Tensor::ones_like(&y));
        assert_eq!(gin.shape(), x.shape());
        assert_eq!(gin.sum(), 4.0);
        assert_eq!(pool.layer_type(), "maxpool2d");
        let _ = pool.forward(&x, true);
        pool.clear_cache();
        assert_eq!(pool.cached_bytes(), 0);
        let mut strided = MaxPool2d::with_stride(2, 1);
        assert_eq!(strided.forward(&x, true).shape(), &[1, 1, 3, 3]);
    }

    #[test]
    fn avgpool_layer_roundtrip() {
        let mut pool = AvgPool2d::new(2);
        let x = Tensor::ones(&[2, 3, 4, 4]);
        let y = pool.forward(&x, true);
        assert_eq!(y.shape(), &[2, 3, 2, 2]);
        assert!((y.mean() - 1.0).abs() < 1e-6);
        let gin = pool.backward(&Tensor::ones_like(&y));
        assert_eq!(gin.shape(), x.shape());
        assert!((gin.sum() - y.numel() as f32).abs() < 1e-4);
        assert_eq!(pool.layer_type(), "avgpool2d");
        assert_eq!(pool.params().len(), 0);
    }

    #[test]
    fn global_avg_pool_layer() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::from_vec((0..8).map(|i| i as f32).collect(), &[1, 2, 2, 2]).unwrap();
        let y = pool.forward(&x, true);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.as_slice(), &[1.5, 5.5]);
        let gin = pool.backward(&Tensor::ones_like(&y));
        assert_eq!(gin.shape(), x.shape());
        assert!((gin.sum() - 2.0).abs() < 1e-6);
        assert_eq!(pool.layer_type(), "global_avg_pool");
    }
}
