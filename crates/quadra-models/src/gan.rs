//! A compact GAN (the SNGAN stand-in of Table 5): an up-sampling convolutional
//! generator and a convolutional discriminator trained with the hinge loss.
//!
//! The generator's convolutions can be first-order or quadratic ("QuadraNN"
//! variant of Table 5, where every generator convolution is replaced by the
//! proposed quadratic layer); the discriminator is kept first-order in both
//! cases, mirroring the paper's setup.

use quadra_core::{NeuronType, QuadraticConv2d};
use quadra_nn::{
    Adam, BatchNorm2d, Conv2d, GlobalAvgPool, HingeGanLoss, Layer, LeakyRelu, Linear, Optimizer, Relu,
    Sequential, Tanh, Upsample2d,
};
use quadra_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the GAN stand-in.
#[derive(Debug, Clone, Copy)]
pub struct GanConfig {
    /// Dimension of the latent noise vector.
    pub latent_dim: usize,
    /// Output image side length (must be a multiple of 4).
    pub image_size: usize,
    /// Output image channels.
    pub channels: usize,
    /// Base channel width of generator / discriminator.
    pub base_width: usize,
    /// Use quadratic convolutions of this type in the generator.
    pub quadratic: Option<NeuronType>,
    /// Seed for weight initialisation and latent sampling.
    pub seed: u64,
}

impl Default for GanConfig {
    fn default() -> Self {
        GanConfig { latent_dim: 16, image_size: 16, channels: 3, base_width: 16, quadratic: None, seed: 0 }
    }
}

/// Loss curves produced by [`Gan::train`].
#[derive(Debug, Clone, Default)]
pub struct GanReport {
    /// Discriminator loss per step.
    pub d_losses: Vec<f32>,
    /// Generator loss per step.
    pub g_losses: Vec<f32>,
}

/// The GAN: generator (dense projection + up-sampling convolutions) and
/// convolutional discriminator.
pub struct Gan {
    config: GanConfig,
    gen_fc: Linear,
    gen_body: Sequential,
    discriminator: Sequential,
    rng: StdRng,
    base_spatial: usize,
}

impl Gan {
    /// Build a GAN from its configuration.
    pub fn new(config: GanConfig) -> Self {
        assert!(
            config.image_size % 4 == 0 && config.image_size >= 8,
            "image size must be a multiple of 4 and >= 8"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let base_spatial = config.image_size / 4;
        let w = config.base_width;

        // Generator: latent -> (w*2, s, s) -> upsample ×2 -> conv -> upsample ×2 -> conv -> image.
        let gen_fc = Linear::new(config.latent_dim, w * 2 * base_spatial * base_spatial, true, &mut rng);
        let mut gen_layers: Vec<Box<dyn Layer>> = Vec::new();
        let conv = |inp: usize, out: usize, quad: Option<NeuronType>, rng: &mut StdRng| -> Box<dyn Layer> {
            match quad {
                Some(t) => Box::new(QuadraticConv2d::conv3x3(t, inp, out, rng)),
                None => Box::new(Conv2d::conv3x3(inp, out, rng)),
            }
        };
        gen_layers.push(Box::new(Upsample2d::new(2)));
        gen_layers.push(conv(w * 2, w, config.quadratic, &mut rng));
        gen_layers.push(Box::new(BatchNorm2d::new(w)));
        gen_layers.push(Box::new(Relu::new()));
        gen_layers.push(Box::new(Upsample2d::new(2)));
        gen_layers.push(conv(w, w, config.quadratic, &mut rng));
        gen_layers.push(Box::new(BatchNorm2d::new(w)));
        gen_layers.push(Box::new(Relu::new()));
        gen_layers.push(Box::new(Conv2d::conv3x3(w, config.channels, &mut rng)));
        gen_layers.push(Box::new(Tanh::new()));
        let gen_body = Sequential::new(gen_layers);

        // Discriminator: conv stride-2 stack -> global pool -> score.
        let discriminator = Sequential::new(vec![
            Box::new(Conv2d::new(config.channels, w, 3, 2, 1, 1, true, &mut rng)),
            Box::new(LeakyRelu::new(0.2)),
            Box::new(Conv2d::new(w, w * 2, 3, 2, 1, 1, true, &mut rng)),
            Box::new(LeakyRelu::new(0.2)),
            Box::new(GlobalAvgPool::new()),
            Box::new(Linear::new(w * 2, 1, true, &mut rng)),
        ]);

        Gan { config, gen_fc, gen_body, discriminator, rng, base_spatial }
    }

    /// The GAN configuration.
    pub fn config(&self) -> &GanConfig {
        &self.config
    }

    /// Total generator parameter count.
    pub fn generator_param_count(&self) -> usize {
        self.gen_fc.param_count() + self.gen_body.param_count()
    }

    /// Total discriminator parameter count.
    pub fn discriminator_param_count(&self) -> usize {
        self.discriminator.param_count()
    }

    fn sample_latent(&mut self, n: usize) -> Tensor {
        Tensor::randn(&[n, self.config.latent_dim], 0.0, 1.0, &mut self.rng)
    }

    fn generator_forward(&mut self, z: &Tensor, train: bool) -> Tensor {
        let w = self.config.base_width;
        let s = self.base_spatial;
        let h = self.gen_fc.forward(z, train);
        let h = h.reshape(&[z.shape()[0], w * 2, s, s]).expect("projection reshape");
        self.gen_body.forward(&h, train)
    }

    fn generator_backward(&mut self, grad_images: &Tensor) {
        let grad_h = self.gen_body.backward(grad_images);
        let n = grad_h.shape()[0];
        let flat = grad_h.reshape(&[n, grad_h.numel() / n]).expect("flatten grad");
        self.gen_fc.backward(&flat);
    }

    /// Generate `n` images in inference mode.
    pub fn generate(&mut self, n: usize) -> Tensor {
        let z = self.sample_latent(n);
        let imgs = self.generator_forward(&z, false);
        self.gen_fc.clear_cache();
        self.gen_body.clear_cache();
        imgs
    }

    /// Train the GAN on `real_images` for `steps` alternating updates with the
    /// given batch size, using Adam with SNGAN-style betas.
    pub fn train(&mut self, real_images: &Tensor, steps: usize, batch_size: usize, lr: f32) -> GanReport {
        let n_real = real_images.shape()[0];
        assert!(n_real >= batch_size, "not enough real images for one batch");
        let hinge = HingeGanLoss::new();
        let mut d_opt = Adam::for_gan(lr);
        let mut g_opt = Adam::for_gan(lr);
        let mut report = GanReport::default();

        for step in 0..steps {
            // ---- Discriminator update ----
            let idx: Vec<usize> = (0..batch_size).map(|i| (step * batch_size + i) % n_real).collect();
            let real = real_images.select_rows(&idx).expect("rows");
            let fake = {
                let z = self.sample_latent(batch_size);
                let f = self.generator_forward(&z, true);
                self.gen_fc.clear_cache();
                self.gen_body.clear_cache();
                f
            };
            let score_real = self.discriminator.forward(&real, true);
            let (loss_real, grad_real) = hinge.d_real(&score_real);
            self.discriminator.backward(&grad_real);
            let score_fake = self.discriminator.forward(&fake, true);
            let (loss_fake, grad_fake) = hinge.d_fake(&score_fake);
            self.discriminator.backward(&grad_fake);
            {
                let mut params = self.discriminator.params_mut();
                d_opt.step(&mut params);
                d_opt.zero_grad(&mut params);
            }
            report.d_losses.push(loss_real + loss_fake);

            // ---- Generator update ----
            let z = self.sample_latent(batch_size);
            let fake = self.generator_forward(&z, true);
            let score = self.discriminator.forward(&fake, true);
            let (g_loss, grad_score) = hinge.generator(&score);
            let grad_fake_images = self.discriminator.backward(&grad_score);
            self.generator_backward(&grad_fake_images);
            {
                // The discriminator gradients from this pass are discarded.
                let mut d_params = self.discriminator.params_mut();
                d_opt.zero_grad(&mut d_params);
            }
            {
                let mut g_params: Vec<&mut quadra_nn::Param> = self.gen_fc.params_mut();
                g_params.extend(self.gen_body.params_mut());
                g_opt.step(&mut g_params);
                g_opt.zero_grad(&mut g_params);
            }
            report.g_losses.push(g_loss);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadra_data::ShapeImageDataset;

    #[test]
    fn generator_produces_images_in_tanh_range() {
        let mut gan = Gan::new(GanConfig { base_width: 8, ..Default::default() });
        let imgs = gan.generate(3);
        assert_eq!(imgs.shape(), &[3, 3, 16, 16]);
        assert!(imgs.max() <= 1.0 && imgs.min() >= -1.0);
        assert!(gan.generator_param_count() > 0);
        assert!(gan.discriminator_param_count() > 0);
        assert_eq!(gan.config().latent_dim, 16);
    }

    #[test]
    fn quadratic_generator_has_more_parameters_than_first_order() {
        let fo = Gan::new(GanConfig { base_width: 8, quadratic: None, ..Default::default() });
        let qd =
            Gan::new(GanConfig { base_width: 8, quadratic: Some(NeuronType::Ours), ..Default::default() });
        assert!(qd.generator_param_count() > fo.generator_param_count());
        // Discriminators are identical in size.
        assert_eq!(qd.discriminator_param_count(), fo.discriminator_param_count());
    }

    #[test]
    fn short_training_run_updates_both_networks_and_stays_finite() {
        let data = ShapeImageDataset::generate(32, 3, 16, 3, 0.05, 7);
        let mut gan = Gan::new(GanConfig { base_width: 8, seed: 3, ..Default::default() });
        let before = gan.generate(2);
        let report = gan.train(&data.images, 4, 8, 2e-3);
        assert_eq!(report.d_losses.len(), 4);
        assert_eq!(report.g_losses.len(), 4);
        assert!(report.d_losses.iter().all(|l| l.is_finite()));
        assert!(report.g_losses.iter().all(|l| l.is_finite()));
        let after = gan.generate(2);
        // Training must have changed the generator output.
        assert!(before.max_abs_diff(&after).unwrap() > 1e-6);
    }

    #[test]
    #[should_panic]
    fn invalid_image_size_rejected() {
        let _ = Gan::new(GanConfig { image_size: 10, ..Default::default() });
    }
}
