//! The serving front-ends: the multi-model [`Router`] (named endpoints, each
//! with its own admission queue, batcher, worker pool, and hot-reload
//! version) and the single-model [`InferenceServer`] convenience wrapper.

use crate::batcher::{self, Batch};
use crate::endpoint::EndpointShared;
use crate::metrics::{RouterMetrics, ServeMetrics};
use crate::request::{InferResponse, PendingResponse, Priority, ServeConfig, ServeError};
use crate::worker::{self, ModelFactory};
use quadra_nn::{Layer, StateDict};
use quadra_tensor::Tensor;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Endpoint name used by the single-model [`InferenceServer`] wrapper.
pub const DEFAULT_ENDPOINT: &str = "default";

struct EndpointRuntime {
    shared: Arc<EndpointShared>,
    factory: Arc<ModelFactory>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// A multi-model routing engine: N named model endpoints behind one admission
/// layer.
///
/// Each endpoint owns its own bounded priority admission queue, dynamic
/// batcher (with its own [`BatchPolicy`](crate::BatchPolicy)), worker pool of
/// model replicas, hot-reload version, and metrics hub — so one model's
/// backlog cannot delay another model's requests, hot-reloading one endpoint
/// never disturbs the rest of the fleet, and latency percentiles are always
/// per model. Requests are admitted or shed synchronously at submission
/// ([`ServeError::Overloaded`] carries a `retry_after` estimate) instead of
/// queueing unboundedly.
///
/// ```
/// use quadra_nn::{Layer, Linear, Sequential};
/// use quadra_serve::{Priority, Router, ServeConfig};
/// use quadra_tensor::Tensor;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// fn mlp(inputs: usize, seed: u64) -> Box<dyn Layer> {
///     let mut rng = StdRng::seed_from_u64(seed);
///     Box::new(Sequential::new(vec![Box::new(Linear::new(inputs, 3, true, &mut rng)) as Box<dyn Layer>]))
/// }
///
/// let router = Router::builder()
///     .endpoint("narrow", ServeConfig::default(), || mlp(4, 0))
///     .endpoint("wide", ServeConfig::default(), || mlp(8, 1))
///     .start()
///     .unwrap();
/// let client = router.client();
/// let narrow = client.infer("narrow", Tensor::ones(&[1, 4])).unwrap();
/// assert_eq!(narrow.output.shape(), &[1, 3]);
/// let wide = client.submit("wide", Tensor::ones(&[2, 8]), Priority::Batch).unwrap().wait().unwrap();
/// assert_eq!(wide.model, "wide");
/// let metrics = router.shutdown();
/// assert_eq!(metrics.get("narrow").unwrap().completed_requests, 1);
/// ```
pub struct Router {
    endpoints: BTreeMap<String, EndpointRuntime>,
    client_map: Arc<BTreeMap<String, Arc<EndpointShared>>>,
    next_id: Arc<AtomicU64>,
}

/// Accumulates named endpoints for [`Router::start`].
#[derive(Default)]
pub struct RouterBuilder {
    endpoints: Vec<(String, ServeConfig, Arc<ModelFactory>)>,
}

impl RouterBuilder {
    /// Register a model endpoint. `factory` builds one replica of the model;
    /// it is called once per worker on the worker's own thread (plus once per
    /// [`Router::reload`] for validation), so replicas never cross threads.
    pub fn endpoint<F>(mut self, name: &str, config: ServeConfig, factory: F) -> Self
    where
        F: Fn() -> Box<dyn Layer> + Send + Sync + 'static,
    {
        self.endpoints.push((name.to_string(), config, Arc::new(factory)));
        self
    }

    /// Validate every endpoint configuration and spawn the engine.
    pub fn start(self) -> Result<Router, ServeError> {
        if self.endpoints.is_empty() {
            return Err(ServeError::BadInput("router needs at least one endpoint".into()));
        }
        let mut runtimes = BTreeMap::new();
        for (name, config, factory) in self.endpoints {
            if name.is_empty() {
                return Err(ServeError::BadInput("endpoint name must not be empty".into()));
            }
            config.validate()?;
            if runtimes.contains_key(&name) {
                return Err(ServeError::BadInput(format!("duplicate endpoint name `{}`", name)));
            }
            let shared = Arc::new(EndpointShared::new(&name, config));
            let (batcher, workers) = spawn_endpoint(&shared, &factory)?;
            runtimes.insert(name, EndpointRuntime { shared, factory, batcher: Some(batcher), workers });
        }
        let client_map: BTreeMap<String, Arc<EndpointShared>> =
            runtimes.iter().map(|(name, rt)| (name.clone(), Arc::clone(&rt.shared))).collect();
        Ok(Router {
            endpoints: runtimes,
            client_map: Arc::new(client_map),
            next_id: Arc::new(AtomicU64::new(0)),
        })
    }
}

/// Spawn one endpoint's batcher thread and worker pool. The batch channel is
/// a rendezvous, so batches are handed over only when a worker is ready and
/// priority decisions stay fresh.
fn spawn_endpoint(
    shared: &Arc<EndpointShared>,
    factory: &Arc<ModelFactory>,
) -> Result<(JoinHandle<()>, Vec<JoinHandle<()>>), ServeError> {
    let (batch_tx, batch_rx) = mpsc::sync_channel::<Batch>(0);
    let batcher_shared = Arc::clone(shared);
    let batcher = std::thread::Builder::new()
        .name(format!("quadra-serve-batcher-{}", shared.name))
        .spawn(move || batcher::run(batcher_shared, batch_tx))
        .map_err(|e| ServeError::BadInput(format!("cannot spawn batcher thread: {e}")))?;
    let batch_rx = Arc::new(Mutex::new(batch_rx));
    let mut workers = Vec::with_capacity(shared.config.workers);
    for i in 0..shared.config.workers {
        let rx = Arc::clone(&batch_rx);
        let factory = Arc::clone(factory);
        let worker_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name(format!("quadra-serve-worker-{}-{}", shared.name, i))
            .spawn(move || worker::run(rx, factory, worker_shared))
            .map_err(|e| ServeError::BadInput(format!("cannot spawn worker thread: {e}")))?;
        workers.push(handle);
    }
    Ok((batcher, workers))
}

impl Router {
    /// Start declaring endpoints for a new router.
    pub fn builder() -> RouterBuilder {
        RouterBuilder::default()
    }

    /// A cheap cloneable handle for submitting requests to any endpoint.
    /// Clients stay valid until shutdown; submissions afterwards fail with
    /// [`ServeError::ShuttingDown`].
    pub fn client(&self) -> RouterClient {
        RouterClient { endpoints: Arc::clone(&self.client_map), next_id: Arc::clone(&self.next_id) }
    }

    /// The registered endpoint names, sorted.
    pub fn models(&self) -> Vec<String> {
        self.endpoints.keys().cloned().collect()
    }

    fn endpoint(&self, model: &str) -> Result<&EndpointRuntime, ServeError> {
        self.endpoints.get(model).ok_or_else(|| ServeError::UnknownModel(model.to_string()))
    }

    /// Swap in a new state for one endpoint between batches, leaving every
    /// other endpoint untouched.
    ///
    /// The checkpoint is validated against a freshly built replica first; an
    /// incompatible one is rejected without disturbing the serving state. On
    /// success the endpoint's new version number is returned and each of its
    /// workers picks the state up before its next batch — requests never
    /// observe a half-loaded model.
    pub fn reload(&self, model: &str, state: StateDict) -> Result<u64, ServeError> {
        let runtime = self.endpoint(model)?;
        let mut probe = (runtime.factory)();
        state.load_into(probe.as_mut()).map_err(ServeError::InvalidState)?;
        let version = runtime.shared.reload.publish(state);
        runtime.shared.metrics.record_reload();
        Ok(version)
    }

    /// The state version `model`'s workers currently serve from (0 until the
    /// endpoint's first [`Router::reload`]).
    pub fn version(&self, model: &str) -> Result<u64, ServeError> {
        Ok(self.endpoint(model)?.shared.reload.version())
    }

    /// A point-in-time snapshot of one endpoint's serving statistics.
    pub fn metrics_for(&self, model: &str) -> Result<ServeMetrics, ServeError> {
        Ok(self.endpoint(model)?.shared.snapshot())
    }

    /// Point-in-time snapshots of every endpoint, sorted by model name.
    pub fn metrics(&self) -> RouterMetrics {
        RouterMetrics { models: self.endpoints.values().map(|rt| rt.shared.snapshot()).collect() }
    }

    /// Stop accepting requests, drain every admitted request (each still
    /// receives its response), join all threads, and return the final
    /// per-model metrics snapshots.
    pub fn shutdown(mut self) -> RouterMetrics {
        self.shutdown_inner();
        self.metrics()
    }

    fn shutdown_inner(&mut self) {
        // Close every admission queue first so all endpoints drain in
        // parallel, then join their threads.
        for runtime in self.endpoints.values() {
            runtime.shared.queue.close();
        }
        for runtime in self.endpoints.values_mut() {
            if let Some(handle) = runtime.batcher.take() {
                let _ = handle.join();
            }
            for handle in runtime.workers.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        if self.endpoints.values().any(|rt| rt.batcher.is_some()) {
            self.shutdown_inner();
        }
    }
}

/// Client handle for submitting inference requests to a [`Router`].
#[derive(Clone)]
pub struct RouterClient {
    endpoints: Arc<BTreeMap<String, Arc<EndpointShared>>>,
    next_id: Arc<AtomicU64>,
}

impl RouterClient {
    /// Enqueue `input` for `model` under `priority` and return a handle to
    /// the pending response.
    ///
    /// Axis 0 of `input` is always the sample axis: submit `[n, features]`
    /// rows or `[n, C, H, W]` images (`n` may exceed the endpoint's
    /// `max_batch_size`, forming an oversized batch of its own). The
    /// response's output has the same leading axis. A full admission queue
    /// sheds the request with [`ServeError::Overloaded`] instead of queueing
    /// it unboundedly.
    pub fn submit(
        &self,
        model: &str,
        input: Tensor,
        priority: Priority,
    ) -> Result<PendingResponse, ServeError> {
        let endpoint =
            self.endpoints.get(model).ok_or_else(|| ServeError::UnknownModel(model.to_string()))?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        endpoint.submit(id, input, priority)
    }

    /// Submit at [`Priority::Interactive`] and block until the response arrives.
    pub fn infer(&self, model: &str, input: Tensor) -> Result<InferResponse, ServeError> {
        self.submit(model, input, Priority::Interactive)?.wait()
    }

    /// The endpoint names this client can route to, sorted.
    pub fn models(&self) -> Vec<String> {
        self.endpoints.keys().cloned().collect()
    }
}

/// A single-model batched-inference server: a [`Router`] with exactly one
/// endpoint (named [`DEFAULT_ENDPOINT`]), kept as the one-line construction
/// path for callers that serve a single architecture.
pub struct InferenceServer {
    router: Router,
}

impl InferenceServer {
    /// Start a single-model server. `factory` builds one model replica; it is
    /// called once per worker on the worker's own thread (plus once per
    /// [`reload`] for validation), so replicas never cross threads.
    ///
    /// [`reload`]: InferenceServer::reload
    pub fn start<F>(config: ServeConfig, factory: F) -> Result<InferenceServer, ServeError>
    where
        F: Fn() -> Box<dyn Layer> + Send + Sync + 'static,
    {
        Ok(InferenceServer { router: Router::builder().endpoint(DEFAULT_ENDPOINT, config, factory).start()? })
    }

    /// The underlying single-endpoint router.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// A cheap cloneable handle for submitting requests.
    pub fn client(&self) -> ServeClient {
        ServeClient { inner: self.router.client(), model: DEFAULT_ENDPOINT.to_string() }
    }

    /// Swap in a new model state between batches (see [`Router::reload`]).
    pub fn reload(&self, state: StateDict) -> Result<u64, ServeError> {
        self.router.reload(DEFAULT_ENDPOINT, state)
    }

    /// The state version workers are currently serving from (0 until the
    /// first [`InferenceServer::reload`]).
    pub fn version(&self) -> u64 {
        self.router.version(DEFAULT_ENDPOINT).expect("default endpoint exists")
    }

    /// A point-in-time snapshot of the serving statistics.
    pub fn metrics(&self) -> ServeMetrics {
        self.router.metrics_for(DEFAULT_ENDPOINT).expect("default endpoint exists")
    }

    /// Stop accepting requests, drain every admitted request (each still
    /// receives its response), join all threads, and return the final
    /// metrics snapshot.
    pub fn shutdown(self) -> ServeMetrics {
        let mut fleet = self.router.shutdown();
        fleet.models.pop().expect("default endpoint exists")
    }
}

/// Client handle of a single-model [`InferenceServer`]: the [`RouterClient`]
/// API with the model name fixed.
#[derive(Clone)]
pub struct ServeClient {
    inner: RouterClient,
    model: String,
}

impl ServeClient {
    /// Enqueue `input` at [`Priority::Interactive`] and return a handle to
    /// the pending response (see [`RouterClient::submit`] for input rules).
    pub fn submit(&self, input: Tensor) -> Result<PendingResponse, ServeError> {
        self.inner.submit(&self.model, input, Priority::Interactive)
    }

    /// Enqueue `input` under an explicit priority class.
    pub fn submit_with_priority(
        &self,
        input: Tensor,
        priority: Priority,
    ) -> Result<PendingResponse, ServeError> {
        self.inner.submit(&self.model, input, priority)
    }

    /// Submit and block until the response arrives.
    pub fn infer(&self, input: Tensor) -> Result<InferResponse, ServeError> {
        self.submit(input)?.wait()
    }

    /// Convenience for single samples: wraps a `[C, H, W]` (or `[features]`)
    /// tensor in a leading sample axis and blocks for the response, whose
    /// output then has shape `[1, ...]`.
    pub fn infer_one(&self, sample: &Tensor) -> Result<InferResponse, ServeError> {
        let mut shape = vec![1];
        shape.extend_from_slice(sample.shape());
        let input = sample.reshape(&shape).map_err(|e| ServeError::BadInput(e.to_string()))?;
        self.infer(input)
    }
}
