//! Offline stand-in for the subset of `serde_json` that QuadraLib-rs uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`] and [`Error`], all
//! operating through the vendored serde stub's [`serde::Value`] tree.

pub use serde::Value;

/// JSON serialisation / deserialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialise a value to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialise a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse a value from JSON text, rejecting trailing garbage.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", parser.pos)));
    }
    T::from_value(&value).map_err(Error::new)
}

fn write_number(n: f64, out: &mut String) {
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else if n.is_finite() {
        out.push_str(&format!("{n}"));
    } else {
        // JSON has no NaN/Inf; emit null like serde_json's arbitrary-precision
        // fallback would reject — null keeps the document well-formed.
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_in, colon) = match indent {
        Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1)), ": "),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(item, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push_str(colon);
                write_value(val, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r') {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => {
                Err(Error::new(format!("unexpected character `{}` at offset {}", c as char, self.pos)))
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number `{text}` at offset {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| Error::new("invalid unicode escape"))?);
                        }
                        other => return Err(Error::new(format!("invalid escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Re-decode the current UTF-8 character from the byte view.
                    let rest = &self.bytes[self.pos - 1..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8() - 1;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at offset {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip_via_text() {
        let v = Value::Obj(vec![
            ("name".to_string(), Value::Str("vgg\"7\"".to_string())),
            ("sizes".to_string(), Value::Arr(vec![Value::Num(1.0), Value::Num(2.5)])),
            ("deep".to_string(), Value::Bool(true)),
            ("none".to_string(), Value::Null),
        ]);
        let mut compact = String::new();
        write_value(&v, &mut compact, None, 0);
        let mut parser = Parser { bytes: compact.as_bytes(), pos: 0 };
        let back = parser.parse_value().unwrap();
        assert_eq!(back, v);

        let mut pretty = String::new();
        write_value(&v, &mut pretty, Some(2), 0);
        assert!(pretty.contains("\n  \"name\""));
        let mut parser = Parser { bytes: pretty.as_bytes(), pos: 0 };
        assert_eq!(parser.parse_value().unwrap(), v);
    }

    #[test]
    fn integers_print_without_fraction() {
        let mut out = String::new();
        write_number(1024.0, &mut out);
        assert_eq!(out, "1024");
        let mut out = String::new();
        write_number(0.5, &mut out);
        assert_eq!(out, "0.5");
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(from_str::<bool>("{bad").is_err());
        assert!(from_str::<bool>("true garbage").is_err());
        assert!(from_str::<bool>("").is_err());
        assert!(from_str::<bool>(" true ").unwrap());
    }

    #[test]
    fn unicode_escapes_parse() {
        let s: String = from_str("\"a\\u00e9b\\ud83d\\ude00c\"").unwrap();
        assert_eq!(s, "aéb😀c");
    }

    #[derive(serde::Serialize, serde::Deserialize, Debug, PartialEq)]
    struct Wrapper(f64);

    #[derive(serde::Serialize, serde::Deserialize, Debug, PartialEq)]
    struct Triple(String, f64, u64);

    #[test]
    fn derived_newtype_struct_is_transparent() {
        // serde's default newtype representation: the inner value itself.
        assert_eq!(to_string(&Wrapper(2.5)).unwrap(), "2.5");
        assert_eq!(from_str::<Wrapper>("2.5").unwrap(), Wrapper(2.5));
    }

    #[test]
    fn derived_tuple_struct_roundtrips_as_array() {
        let t = Triple("gemm/square_256".to_string(), 1234.5, 10);
        let text = to_string(&t).unwrap();
        assert_eq!(text, "[\"gemm/square_256\",1234.5,10]");
        assert_eq!(from_str::<Triple>(&text).unwrap(), t);
        assert!(from_str::<Triple>("[\"short\",1]").is_err(), "arity mismatch must be rejected");
        assert!(from_str::<Triple>("{}").is_err(), "non-array must be rejected");
    }

    #[derive(serde::Serialize, serde::Deserialize, Debug, PartialEq)]
    struct Labeled<T> {
        label: String,
        value: T,
    }

    #[derive(serde::Serialize, serde::Deserialize, Debug, PartialEq)]
    struct GenericWrapper<T>(T);

    #[derive(serde::Serialize, serde::Deserialize, Debug, PartialEq)]
    struct GenericPair<T: Clone>(T, T);

    // Path-qualified and multi-segment bounds must survive into the
    // generated impl header with their `::` separators intact.
    #[derive(serde::Serialize, serde::Deserialize, Debug, PartialEq)]
    struct PathBound<T: std::fmt::Debug + Clone> {
        value: T,
    }

    // Bounds containing their own generics list must not truncate the
    // parameter parse at the nested `>`.
    #[derive(serde::Serialize, serde::Deserialize, Debug, PartialEq)]
    struct NestedBound<T: Into<Vec<f64>> + Clone>(T);

    #[test]
    fn derived_generic_struct_roundtrips() {
        let rec = Labeled { label: "p95_ms".to_string(), value: 12.25 };
        let text = to_string(&rec).unwrap();
        assert_eq!(text, "{\"label\":\"p95_ms\",\"value\":12.25}");
        assert_eq!(from_str::<Labeled<f64>>(&text).unwrap(), rec);

        // The parameter can itself be a container — bounds flow through the
        // blanket Vec impls of the stub.
        let nested = Labeled { label: "histogram".to_string(), value: vec![1u64, 2, 3] };
        let text = to_string(&nested).unwrap();
        assert_eq!(from_str::<Labeled<Vec<u64>>>(&text).unwrap(), nested);

        // Mismatched inner type reports through the normal error path.
        assert!(from_str::<Labeled<bool>>("{\"label\":\"x\",\"value\":3}").is_err());
    }

    #[test]
    fn derived_generic_tuple_structs_roundtrip() {
        // Generic newtype: transparent, like the non-generic newtype.
        let w = GenericWrapper(vec![0.5f64, 1.5]);
        let text = to_string(&w).unwrap();
        assert_eq!(text, "[0.5,1.5]");
        assert_eq!(from_str::<GenericWrapper<Vec<f64>>>(&text).unwrap(), w);

        // Declared bounds on the parameter are parsed past (the generated
        // impl bounds by the serde traits instead, as real serde does).
        let p = GenericPair(3u64, 4u64);
        let text = to_string(&p).unwrap();
        assert_eq!(text, "[3,4]");
        assert_eq!(from_str::<GenericPair<u64>>(&text).unwrap(), p);
    }

    #[test]
    fn derived_generic_struct_with_path_bound_roundtrips() {
        let rec = PathBound { value: vec![1.5f64, 2.5] };
        let text = to_string(&rec).unwrap();
        assert_eq!(text, "{\"value\":[1.5,2.5]}");
        assert_eq!(from_str::<PathBound<Vec<f64>>>(&text).unwrap(), rec);

        let nested = NestedBound(vec![0.25f64]);
        let text = to_string(&nested).unwrap();
        assert_eq!(text, "[0.25]");
        assert_eq!(from_str::<NestedBound<Vec<f64>>>(&text).unwrap(), nested);
    }
}
