//! Property-based tests of the tensor substrate's core invariants.

use proptest::prelude::*;
use quadra_tensor::{broadcast_shapes, Conv2dParams, Tensor};

fn small_dims() -> impl Strategy<Value = (usize, usize)> {
    (1usize..6, 1usize..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// reshape keeps data and round-trips back to the original shape.
    #[test]
    fn reshape_roundtrip((r, c) in small_dims(), data in proptest::collection::vec(-10.0f32..10.0, 1..36)) {
        let n = r * c;
        prop_assume!(data.len() >= n);
        let t = Tensor::from_vec(data[..n].to_vec(), &[r, c]).unwrap();
        let flat = t.reshape(&[n]).unwrap();
        let back = flat.reshape(&[r, c]).unwrap();
        prop_assert_eq!(back.as_slice(), t.as_slice());
    }

    /// Transpose is an involution.
    #[test]
    fn transpose_involution((r, c) in small_dims(), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = Tensor::randn(&[r, c], 0.0, 1.0, &mut rng);
        let tt = t.transpose().unwrap().transpose().unwrap();
        prop_assert!(tt.allclose(&t, 0.0));
    }

    /// Broadcasting is symmetric in the result shape.
    #[test]
    fn broadcast_shape_symmetry(a in proptest::collection::vec(1usize..4, 1..4), b in proptest::collection::vec(1usize..4, 1..4)) {
        let ab = broadcast_shapes(&a, &b);
        let ba = broadcast_shapes(&b, &a);
        match (ab, ba) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "broadcast symmetry violated"),
        }
    }

    /// Addition commutes and multiplication distributes elementwise.
    #[test]
    fn elementwise_algebra(seed in 0u64..1000, (r, c) in small_dims()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[r, c], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[r, c], 0.0, 1.0, &mut rng);
        let cmat = Tensor::randn(&[r, c], 0.0, 1.0, &mut rng);
        prop_assert!(a.add(&b).unwrap().allclose(&b.add(&a).unwrap(), 1e-5));
        let lhs = a.mul(&b.add(&cmat).unwrap()).unwrap();
        let rhs = a.mul(&b).unwrap().add(&a.mul(&cmat).unwrap()).unwrap();
        prop_assert!(lhs.allclose(&rhs, 1e-4));
    }

    /// Matmul with the identity is a no-op; matmul is linear in its first argument.
    #[test]
    fn matmul_identity_and_linearity(seed in 0u64..1000, (m, k) in small_dims()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[m, k], 0.0, 1.0, &mut rng);
        let w = Tensor::randn(&[k, 3], 0.0, 1.0, &mut rng);
        prop_assert!(a.matmul(&Tensor::eye(k)).unwrap().allclose(&a, 1e-4));
        let lhs = a.add(&b).unwrap().matmul(&w).unwrap();
        let rhs = a.matmul(&w).unwrap().add(&b.matmul(&w).unwrap()).unwrap();
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    /// Convolution is linear in the input: conv(x+y) = conv(x) + conv(y).
    #[test]
    fn conv2d_linearity(seed in 0u64..500) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Tensor::randn(&[1, 2, 6, 6], 0.0, 1.0, &mut rng);
        let y = Tensor::randn(&[1, 2, 6, 6], 0.0, 1.0, &mut rng);
        let w = Tensor::randn(&[3, 2, 3, 3], 0.0, 0.5, &mut rng);
        let p = Conv2dParams::new(1, 1, 1);
        let lhs = x.add(&y).unwrap().conv2d(&w, None, p).unwrap();
        let rhs = x.conv2d(&w, None, p).unwrap().add(&y.conv2d(&w, None, p).unwrap()).unwrap();
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    /// Softmax rows always sum to one and stay finite, whatever the logits.
    #[test]
    fn softmax_rows_sum_to_one(data in proptest::collection::vec(-100.0f32..100.0, 4..20)) {
        let n = data.len() / 4 * 4;
        prop_assume!(n >= 4);
        let t = Tensor::from_vec(data[..n].to_vec(), &[n / 4, 4]).unwrap();
        let s = t.softmax_last_axis();
        prop_assert!(!s.has_non_finite());
        for r in 0..n / 4 {
            let row: f32 = s.as_slice()[r * 4..(r + 1) * 4].iter().sum();
            prop_assert!((row - 1.0).abs() < 1e-4);
        }
    }

    /// sum == sum over axis 0 then total, for any 2-D tensor.
    #[test]
    fn sum_axis_consistency(seed in 0u64..1000, (r, c) in small_dims()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = Tensor::randn(&[r, c], 0.0, 1.0, &mut rng);
        let total = t.sum();
        let by_axis = t.sum_axis(0).unwrap().sum();
        prop_assert!((total - by_axis).abs() < 1e-3);
    }
}
