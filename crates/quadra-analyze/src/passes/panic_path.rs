//! Panic-path lint.
//!
//! In designated hot-path files (scheduler, worker, admission, the GEMM
//! kernel, the memory profiler, the rayon stub) a panic is an outage, not a
//! bug report: it either poisons shared locks or kills a worker thread
//! mid-batch. This pass forbids, per file configuration:
//!
//! - **unwrap** / **expect** — `.unwrap()` / `.expect(...)`;
//! - **panic** — `panic!`, `unreachable!`, `todo!`, `unimplemented!`
//!   (`assert!` family is allowed: asserts state contracts);
//! - **indexing** — `expr[...]` slice/array indexing (the `[` sigil after an
//!   identifier, call, or index expression).
//!
//! Separately, in crates listed in `lock_unwrap_crates` (quadra-serve), a
//! poison-propagating `.lock().unwrap()` / `.wait(..).unwrap()` is forbidden
//! *everywhere*, hot path or not — the workspace pattern is
//! `sync::lock_or_recover` and friends, which confine a panicking worker's
//! poison instead of cascading it.

use crate::config::{AnalyzeConfig, PanicCheck};
use crate::report::Finding;
use crate::source::SourceFile;

/// Run the pass over one file.
pub fn run(file: &SourceFile, cfg: &AnalyzeConfig, findings: &mut Vec<Finding>) {
    let checks = cfg.hot_path_checks(&file.path);
    let lock_unwrap = cfg.lock_unwrap_crates.iter().any(|c| c == &file.crate_name);
    if checks.is_empty() && !lock_unwrap {
        return;
    }
    let toks = &file.toks;
    let mut last: Option<(u32, &'static str)> = None; // (line, check) dedup
    for i in 0..toks.len() {
        if file.is_test_tok(i) {
            continue;
        }
        let t = &toks[i];
        let mut emit = |check: &'static str, line: u32, message: String, findings: &mut Vec<Finding>| {
            if last == Some((line, check)) {
                return;
            }
            last = Some((line, check));
            findings.push(Finding {
                pass: "panic_path".to_string(),
                check: check.to_string(),
                file: file.path.clone(),
                line,
                message,
                snippet: file.line_text(line).to_string(),
                suppressed_reason: None,
            });
        };
        // `.lock().unwrap()` / `.lock().expect(...)` and condvar
        // `.wait(...).unwrap()` — crate-wide in serve.
        if lock_unwrap && t.is_punct('.') && i + 1 < toks.len() {
            let name = &toks[i + 1];
            if name.is_ident("lock") || name.is_ident("wait") || name.is_ident("wait_timeout") {
                if let Some(j) = skip_call(toks, i + 2) {
                    if j + 1 < toks.len()
                        && toks[j].is_punct('.')
                        && (toks[j + 1].is_ident("unwrap") || toks[j + 1].is_ident("expect"))
                    {
                        let helper = if name.is_ident("lock") {
                            "sync::lock_or_recover"
                        } else {
                            "sync::wait_or_recover / wait_timeout_or_recover"
                        };
                        emit(
                            "lock-unwrap",
                            name.line,
                            format!(
                                "`.{}(..).{}()` propagates lock poison across threads; use `{helper}`",
                                name.text,
                                toks[j + 1].text
                            ),
                            findings,
                        );
                        continue;
                    }
                }
            }
        }
        if checks.is_empty() {
            continue;
        }
        // `.unwrap()` / `.expect(...)`.
        if t.is_punct('.') && i + 1 < toks.len() {
            let name = &toks[i + 1];
            if name.is_ident("unwrap") && checks.contains(&PanicCheck::Unwrap) {
                emit(
                    "unwrap",
                    name.line,
                    "`.unwrap()` in a hot path; convert to a typed error or recovery".to_string(),
                    findings,
                );
                continue;
            }
            if name.is_ident("expect") && checks.contains(&PanicCheck::Expect) {
                emit(
                    "expect",
                    name.line,
                    "`.expect(...)` in a hot path; convert to a typed error or recovery".to_string(),
                    findings,
                );
                continue;
            }
        }
        // `panic!` and friends.
        if checks.contains(&PanicCheck::Panic)
            && t.kind == crate::lexer::TokKind::Ident
            && i + 1 < toks.len()
            && toks[i + 1].is_punct('!')
            && matches!(t.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
        {
            emit("panic", t.line, format!("`{}!` in a hot path; return an error instead", t.text), findings);
            continue;
        }
        // Indexing: `[` in expression position.
        if checks.contains(&PanicCheck::Indexing) && t.is_punct('[') && i > 0 {
            let prev = &toks[i - 1];
            let expr_position = (prev.kind == crate::lexer::TokKind::Ident && !is_keyword(&prev.text))
                || prev.is_punct(')')
                || prev.is_punct(']');
            if expr_position {
                emit(
                    "indexing",
                    t.line,
                    "slice indexing in a hot path can panic; use `get`/`get_mut` or justify with a suppression".to_string(),
                    findings,
                );
                continue;
            }
        }
    }
}

/// If `toks[i]` is `(`, return the index just past its matching `)`.
fn skip_call(toks: &[crate::lexer::Tok], i: usize) -> Option<usize> {
    if i >= toks.len() || !toks[i].is_punct('(') {
        return None;
    }
    let mut depth = 1usize;
    let mut j = i + 1;
    while j < toks.len() && depth > 0 {
        if toks[j].is_punct('(') {
            depth += 1;
        } else if toks[j].is_punct(')') {
            depth -= 1;
        }
        j += 1;
    }
    Some(j)
}

/// Keywords that precede `[` without forming an index expression
/// (`let [a, b] = ...`, `for x in [1, 2]`, `return [..]`, etc.).
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "let"
            | "in"
            | "for"
            | "return"
            | "if"
            | "else"
            | "match"
            | "mut"
            | "ref"
            | "move"
            | "as"
            | "dyn"
            | "impl"
            | "where"
            | "box"
            | "yield"
            | "break"
            | "continue"
    )
}
