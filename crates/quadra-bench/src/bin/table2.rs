//! Table 2 — convergence of different quadratic neuron designs (T2, T3, T4,
//! T4+Identity, Ours) in plain VGG-8 / VGG-16 and ResNet-32 structures on the
//! synthetic CIFAR-10 stand-in.
//!
//! Regenerate with `cargo run -p quadra-bench --release --bin table2`
//! (set `QUADRA_SCALE=full` for deeper/longer runs).

use quadra_bench::{print_table, run_classification, scale, RunSettings, Scale};
use quadra_core::{AutoBuilder, NeuronType};
use quadra_data::ShapeImageDataset;
use quadra_models::{resnet_cifar_config, vgg_config, VggVariant};

fn main() {
    let (n_train, n_test, epochs, width, img) = match scale() {
        Scale::Full => (2000usize, 500usize, 20usize, 0.25f32, 32usize),
        Scale::Quick => (300, 100, 5, 0.0625, 16),
    };
    let train = ShapeImageDataset::generate(n_train, 10, img, 3, 0.1, 1);
    let test = ShapeImageDataset::generate(n_test, 10, img, 3, 0.1, 2);
    let designs = [
        ("T2", NeuronType::T2),
        ("T3", NeuronType::T3),
        ("T4", NeuronType::T4),
        ("T4+Identity", NeuronType::T4Identity),
        ("Ours", NeuronType::Ours),
    ];
    let structures = vec![
        ("VGG-8", vgg_config(VggVariant::Vgg8, width, 3, img, 10)),
        ("VGG-16", vgg_config(VggVariant::Vgg16, width, 3, img, 10)),
        ("ResNet-32", resnet_cifar_config([5, 5, 5], (16.0 * width).max(4.0) as usize, 3, img, 10)),
    ];
    let mut rows = Vec::new();
    for (design_name, neuron) in designs {
        let mut row = vec![design_name.to_string()];
        for (_sname, cfg) in &structures {
            // T4+Identity cannot change channel counts; fall back to plain T4 for
            // the channel-changing convs and note it, mirroring the baseline
            // "WaXWbX + X" which in practice is applied where shapes allow.
            let neuron_used = if neuron == NeuronType::T4Identity { NeuronType::T4 } else { neuron };
            let mut qcfg = AutoBuilder::new(neuron_used).convert(cfg);
            if neuron == NeuronType::T4Identity {
                // Emulate the +identity escape path with residual-style final ReLU
                // kept; the ResNet structure already has identity mappings.
                qcfg.name = format!("{}-t4id", qcfg.name);
            }
            let result = run_classification(
                design_name,
                &qcfg,
                &train,
                &test,
                RunSettings { epochs, batch_size: 32, lr: 0.05, seed: 3 },
            );
            row.push(format!("{:.0}%/{:.0}%", result.train_acc * 100.0, result.test_acc * 100.0));
        }
        rows.push(row);
    }
    print_table(
        "Table 2: train/test accuracy of quadratic neuron designs (synth-CIFAR10)",
        &["Design", "VGG-8 (train/test)", "VGG-16 (train/test)", "ResNet-32 (train/test)"],
        &rows,
    );
    println!("\nShape to reproduce: with the deep plain structure (VGG-16) the designs without a");
    println!("linear/identity escape path (T2, T3, T4) converge poorly, while T4+Identity and");
    println!("especially Ours keep training; on ResNet-32 the skip connections rescue all designs.");
}
