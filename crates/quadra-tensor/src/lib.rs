//! # quadra-tensor
//!
//! A compact, CPU-only, `f32` N-dimensional tensor library that serves as the
//! computational substrate for QuadraLib-rs, the Rust reproduction of
//! *"QuadraLib: A Performant Quadratic Neural Network Library for Architecture
//! Optimization and Design Exploration"* (MLSys 2022).
//!
//! The crate intentionally mirrors the small subset of a deep-learning tensor
//! library that the paper's experiments actually require:
//!
//! * dense row-major storage with shape/stride bookkeeping ([`Tensor`]),
//! * element-wise arithmetic with NumPy/PyTorch-style broadcasting,
//! * 2-D and batched matrix multiplication backed by a cache-blocked,
//!   register-tiled GEMM with transpose-free `nt`/`tn` variants ([`gemm`]),
//! * `conv2d` (NCHW, arbitrary stride/padding/groups, so depth-wise convolution
//!   for MobileNetV1 works) with full backward passes,
//! * max / average pooling with backward passes,
//! * reductions, softmax, shape manipulation, padding and nearest-neighbour
//!   up-sampling (for the GAN generator),
//! * deterministic random initialisation (Kaiming / Xavier) driven by explicit
//!   seeds.
//!
//! Higher-level concepts (layers, autograd, optimizers, quadratic neurons) live
//! in the `quadra-autograd`, `quadra-nn` and `quadra-core` crates.
//!
//! ## Example
//!
//! ```
//! use quadra_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b).unwrap();
//! assert_eq!(c.as_slice(), a.as_slice());
//! ```

#![warn(missing_docs)]

mod conv;
mod error;
pub mod gemm;
mod init;
mod manip;
mod matmul;
mod ops;
mod pool;
mod reduce;
mod shape;
mod tensor;

pub use conv::{col2im, im2col, Conv2dParams};
pub use error::{Result, TensorError};
pub use init::InitKind;
pub use pool::{PoolIndices, PoolParams};
pub use shape::{broadcast_shapes, strides_for};
pub use tensor::Tensor;
