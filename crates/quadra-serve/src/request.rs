//! Request/response types of the serving pipeline and the policy knobs that
//! control batch formation.

use quadra_tensor::Tensor;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Errors surfaced to serving clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The server is shutting down (or has shut down) and no longer accepts
    /// or answers requests.
    ShuttingDown,
    /// The request input was rejected before it reached the batcher.
    BadInput(String),
    /// A checkpoint offered for hot-reload does not fit the served model.
    InvalidState(String),
    /// The model panicked while executing the batch containing this request.
    WorkerFailed(String),
    /// [`PendingResponse::wait_timeout`] expired before the response arrived.
    Timeout,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::BadInput(m) => write!(f, "bad input: {}", m),
            ServeError::InvalidState(m) => write!(f, "invalid checkpoint for hot-reload: {}", m),
            ServeError::WorkerFailed(m) => write!(f, "worker failed: {}", m),
            ServeError::Timeout => write!(f, "timed out waiting for response"),
        }
    }
}

impl std::error::Error for ServeError {}

/// When the dynamic batcher closes a batch and hands it to a worker.
///
/// A batch is dispatched as soon as it holds `max_batch_size` samples, or
/// `max_wait` after its first request arrived, whichever comes first. A single
/// request carrying more than `max_batch_size` samples is not rejected — it is
/// dispatched immediately as an oversized batch of its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Target number of *samples* (not requests) per coalesced batch.
    pub max_batch_size: usize,
    /// Longest time the first request of a batch may wait for company.
    pub max_wait: Duration,
    /// Allow NCHW requests with different H×W (same channel count) to share a
    /// batch by zero-padding every sample to the largest H and W present.
    ///
    /// Off by default: padding changes what the model sees (a pooling layer
    /// averages over the padded zeros, a `Flatten`+`Linear` head panics on the
    /// changed feature count), so a request's prediction could depend on the
    /// traffic it happened to ride with. Leave this off to keep served
    /// predictions bitwise-identical to direct `forward` calls; turn it on
    /// only for fully convolutional models where approximate mixed-size
    /// pooling is acceptable.
    pub pad_mixed_spatial: bool,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy { max_batch_size: 16, max_wait: Duration::from_millis(2), pad_mixed_spatial: false }
    }
}

/// Configuration of an [`InferenceServer`](crate::InferenceServer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Number of model replicas, each on its own dedicated worker thread.
    pub workers: usize,
    /// Batch-formation policy.
    pub policy: BatchPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { workers: 2, policy: BatchPolicy::default() }
    }
}

/// A completed inference, annotated with serving telemetry.
#[derive(Debug, Clone)]
pub struct InferResponse {
    /// The id `submit` returned for this request.
    pub id: u64,
    /// Model output rows for this request's samples: shape `[n, ...]` where
    /// `n` is the request's sample count.
    pub output: Tensor,
    /// Version of the model state that produced the output: 0 until the first
    /// hot-reload, incremented by each successful
    /// [`InferenceServer::reload`](crate::InferenceServer::reload).
    pub model_version: u64,
    /// Total samples in the coalesced batch this request rode in.
    pub batch_samples: usize,
    /// Time from submission until the batch was closed by the batcher.
    pub queue_wait: Duration,
    /// Time from submission until the response was produced.
    pub latency: Duration,
}

/// Handle to a response that has not arrived yet (returned by
/// [`ServeClient::submit`](crate::ServeClient::submit)).
#[derive(Debug)]
pub struct PendingResponse {
    pub(crate) id: u64,
    pub(crate) rx: mpsc::Receiver<Result<InferResponse, ServeError>>,
}

impl PendingResponse {
    /// The request id this handle waits for.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the response arrives.
    pub fn wait(self) -> Result<InferResponse, ServeError> {
        self.rx.recv().map_err(|_| ServeError::ShuttingDown)?
    }

    /// Block for at most `timeout`.
    pub fn wait_timeout(self, timeout: Duration) -> Result<InferResponse, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::ShuttingDown),
        }
    }
}

/// A request travelling through the batcher towards a worker.
pub(crate) struct PendingInfer {
    pub id: u64,
    pub input: Tensor,
    pub samples: usize,
    pub submitted_at: Instant,
    pub reply: mpsc::Sender<Result<InferResponse, ServeError>>,
}

/// What clients send to the batcher thread.
pub(crate) enum BatcherMsg {
    Request(PendingInfer),
    Shutdown,
}
