//! Integration test of the `quadralib` meta-crate: every member-crate
//! re-export must resolve, and a small quadratic forward/backward round-trip
//! must run entirely through the re-exported paths.

use quadralib::autograd::Graph;
use quadralib::core::{BackpropMode, NeuronType, QuadraticLinear};
use quadralib::data::xor_dataset;
use quadralib::models::vgg8_config;
use quadralib::nn::Layer;
use quadralib::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Each of the six re-exported modules resolves and exposes its core API.
#[test]
fn all_reexports_resolve() {
    // tensor
    let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
    assert_eq!(t.shape(), &[2, 2]);

    // autograd
    let mut g = Graph::new();
    let x = g.input(Tensor::from_slice(&[2.0, 3.0]));
    let s = g.sum(x);
    g.backward(s);
    assert_eq!(g.grad(x).unwrap().as_slice(), &[1.0, 1.0]);

    // nn: the Layer trait is the cross-crate contract quadratic layers build on
    let mut rng = StdRng::seed_from_u64(0);
    let mut linear = quadralib::nn::Linear::new(2, 3, true, &mut rng);
    assert_eq!(linear.forward(&t, false).shape(), &[2, 3]);

    // core
    assert_eq!(NeuronType::ALL.len(), 8);

    // data
    let (xs, ys) = xor_dataset(16, 0.05, 1);
    assert_eq!(xs.shape()[0], ys.numel());

    // models
    let cfg = vgg8_config(1.0, 10, 32);
    assert!(!cfg.layers.is_empty());

    // gateway: the wire codec round-trips through the re-exported paths
    let mut wire = Vec::new();
    quadralib::gateway::encode_frame(&quadralib::gateway::Frame::GoAway, &mut wire).unwrap();
    let decoded = quadralib::gateway::decode_frame(&wire, 1 << 20).unwrap().unwrap();
    assert_eq!(decoded.0, quadralib::gateway::Frame::GoAway);
    assert_eq!(decoded.1, wire.len());

    // meta-crate version constant
    assert!(!quadralib::VERSION.is_empty());
}

/// A tiny quadratic layer round-trips forward and backward through the
/// meta-crate paths, in both default and hybrid back-propagation modes.
#[test]
fn quadratic_forward_backward_roundtrip() {
    let mut rng = StdRng::seed_from_u64(7);
    let x = Tensor::randn(&[4, 6], 0.0, 1.0, &mut rng);

    for mode in [BackpropMode::Default, BackpropMode::Hybrid] {
        let mut layer = QuadraticLinear::new(NeuronType::Ours, 6, 5, &mut rng);
        layer.set_mode(mode);
        let y = layer.forward(&x, true);
        assert_eq!(y.shape(), &[4, 5]);
        assert!(!y.has_non_finite());

        let gx = layer.backward(&Tensor::ones_like(&y));
        assert_eq!(gx.shape(), x.shape());
        assert!(!gx.has_non_finite());
        assert!(
            layer.params().iter().all(|p| p.grad.as_slice().iter().any(|&v| v != 0.0)),
            "every parameter should receive gradient in mode {mode:?}"
        );
    }
}
