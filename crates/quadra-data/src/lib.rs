//! # quadra-data
//!
//! Synthetic datasets for the QuadraLib-rs experiments.
//!
//! The paper evaluates on CIFAR-10 / CIFAR-100 / Tiny-ImageNet, PASCAL VOC and
//! (for image generation) CIFAR-10 again. Those datasets cannot be downloaded
//! in this reproduction environment, so this crate generates **procedural
//! stand-ins** that exercise the same code paths and preserve the comparison
//! axes the paper cares about (see DESIGN.md for the substitution argument):
//!
//! * [`ShapeImageDataset`] — class-conditional images of geometric shapes and
//!   textures with noise and placement jitter; the stand-in for CIFAR-10/100
//!   and Tiny-ImageNet ([`synth_cifar10`], [`synth_cifar100`],
//!   [`synth_tiny_imagenet`]).
//! * [`DetectionDataset`] — scenes with 1–3 shapes and ground-truth bounding
//!   boxes; the stand-in for PASCAL VOC.
//! * Classic QDNN toy problems: [`xor_dataset`], [`two_spirals`],
//!   [`polynomial_regression`] — the tasks early quadratic-neuron papers used.
//!
//! Every generator takes an explicit seed and is fully deterministic.

#![warn(missing_docs)]

mod detection;
mod shapes;
mod simple;
mod split;

pub use detection::{DetectionDataset, DetectionScene, GtBox};
pub use shapes::{synth_cifar10, synth_cifar100, synth_tiny_imagenet, ShapeImageDataset, ShapeKind};
pub use simple::{polynomial_regression, two_spirals, xor_dataset};
pub use split::{train_test_split, Batches};
