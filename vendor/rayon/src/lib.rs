//! Offline stand-in for the subset of `rayon` that QuadraLib-rs uses:
//! `slice.par_chunks_mut(n).enumerate().for_each(f)`.
//!
//! The implementation is real data parallelism — chunks are distributed over
//! `std::thread::scope` workers, one batch per available core — so the hot
//! GEMM / im2col loops in `quadra-tensor` still scale with core count even
//! though the full rayon work-stealing pool is not vendored.

/// Import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::IntoParallelIterator;
    pub use crate::slice::ParallelSliceMut;
}

/// Parallel iteration over index ranges.
pub mod iter {
    use std::ops::Range;

    /// Conversion into a parallel iterator.
    pub trait IntoParallelIterator {
        /// Item type produced.
        type Item;
        /// Parallel iterator type.
        type Iter;

        /// Convert into the parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl IntoParallelIterator for Range<usize> {
        type Item = usize;
        type Iter = ParRange;

        fn into_par_iter(self) -> ParRange {
            ParRange { range: self }
        }
    }

    /// Parallel iterator over a `usize` range.
    pub struct ParRange {
        range: Range<usize>,
    }

    impl ParRange {
        /// Map every index through `f` (evaluated in parallel on `collect`).
        pub fn map<O, F: Fn(usize) -> O>(self, f: F) -> ParRangeMap<F> {
            ParRangeMap { range: self.range, f }
        }

        /// Run `f` for every index in parallel.
        pub fn for_each<F: Fn(usize) + Send + Sync>(self, f: F) {
            self.map(f).run();
        }
    }

    /// Mapped parallel range iterator.
    pub struct ParRangeMap<F> {
        range: Range<usize>,
        f: F,
    }

    impl<O: Send, F: Fn(usize) -> O + Send + Sync> ParRangeMap<F> {
        // quadra-analyze: allow(panic_path:expect, scoped threads fill every slot before the scope exits, so the expect is unreachable unless a worker panicked — which already aborts the scope)
        fn run(self) -> Vec<O> {
            let start = self.range.start;
            let n = self.range.len();
            let workers = std::thread::available_parallelism().map(|w| w.get()).unwrap_or(1);
            let f = &self.f;
            if workers <= 1 || n <= 1 {
                return (start..start + n).map(f).collect();
            }
            let per = n.div_ceil(workers);
            let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
            std::thread::scope(|s| {
                for (batch_idx, chunk) in slots.chunks_mut(per).enumerate() {
                    let base = start + batch_idx * per;
                    s.spawn(move || {
                        for (offset, slot) in chunk.iter_mut().enumerate() {
                            *slot = Some(f(base + offset));
                        }
                    });
                }
            });
            slots.into_iter().map(|slot| slot.expect("worker filled every slot")).collect()
        }

        /// Evaluate in parallel and collect the results in index order.
        pub fn collect<C: FromIterator<O>>(self) -> C {
            self.run().into_iter().collect()
        }

        /// Evaluate in parallel and sum the results.
        pub fn sum<S: std::iter::Sum<O>>(self) -> S {
            self.run().into_iter().sum()
        }
    }
}

/// Parallel slice operations.
pub mod slice {
    /// Mutable parallel chunk iteration over slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Split the slice into mutable chunks of `size` elements (the last
        /// chunk may be shorter), to be consumed in parallel.
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
            assert!(size > 0, "chunk size must be non-zero");
            ParChunksMut { data: self, size }
        }
    }

    /// Parallel mutable chunk iterator (consumed by [`ParChunksMut::enumerate`]
    /// or [`ParChunksMut::for_each`]).
    pub struct ParChunksMut<'a, T> {
        data: &'a mut [T],
        size: usize,
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        /// Pair every chunk with its index.
        pub fn enumerate(self) -> EnumeratedChunksMut<'a, T> {
            EnumeratedChunksMut { inner: self }
        }

        /// Run `f` over every chunk in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'a mut [T]) + Send + Sync,
        {
            run_batched(self.data.chunks_mut(self.size).collect(), &f);
        }
    }

    /// Enumerated parallel chunk iterator.
    pub struct EnumeratedChunksMut<'a, T> {
        inner: ParChunksMut<'a, T>,
    }

    impl<'a, T: Send> EnumeratedChunksMut<'a, T> {
        /// Run `f` over every `(index, chunk)` pair in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &'a mut [T])) + Send + Sync,
        {
            run_batched(self.inner.data.chunks_mut(self.inner.size).enumerate().collect(), &f);
        }
    }

    fn run_batched<I: Send, F: Fn(I) + Send + Sync>(mut items: Vec<I>, f: &F) {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if workers <= 1 || items.len() <= 1 {
            for item in items {
                f(item);
            }
            return;
        }
        let per = items.len().div_ceil(workers);
        std::thread::scope(|s| {
            while !items.is_empty() {
                let take = per.min(items.len());
                let batch: Vec<I> = items.drain(..take).collect();
                s.spawn(move || {
                    for item in batch {
                        f(item);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn enumerated_chunks_cover_whole_slice() {
        let mut v = vec![0usize; 103];
        v.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i + 1;
            }
        });
        assert!(v.iter().all(|&x| x > 0));
        assert_eq!(v[0], 1);
        assert_eq!(v[102], 11);
    }

    #[test]
    fn plain_for_each_runs_every_chunk() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let mut v = vec![1.0f32; 64];
        v.par_chunks_mut(8).for_each(|chunk| {
            counter.fetch_add(chunk.len(), Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }
}
