//! Offline stand-in for the subset of the `rand` 0.8 API that QuadraLib-rs
//! uses. The container image has no network access to crates.io, so the
//! workspace vendors a small, deterministic, dependency-free implementation
//! with the same public surface: [`Rng`], [`SeedableRng`], [`rngs::StdRng`],
//! [`seq::SliceRandom`] and [`distributions::Uniform`].
//!
//! The generator is SplitMix64 — statistically solid for test/data-generation
//! workloads and fully reproducible from a `u64` seed, which is all the
//! library's deterministic-seed contract requires.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose whole stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Sample a value from the "standard" distribution of `T`
    /// (uniform `[0, 1)` for floats, a fair coin for `bool`, a uniform word
    /// for unsigned integers).
    fn gen<T: distributions::StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    /// The standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed ^ 0xD1B5_4A32_D192_ED03 }
        }
    }
}

/// Distributions and range sampling.
pub mod distributions {
    use crate::RngCore;

    /// Uniform `[0, 1)` float from 53 (f64) / 24 (f32) random bits.
    pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    pub(crate) fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }

    /// Types samplable by [`crate::Rng::gen`].
    pub trait StandardSample {
        /// Draw one value from the type's standard distribution.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl StandardSample for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl StandardSample for f32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            unit_f32(rng)
        }
    }

    impl StandardSample for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            unit_f64(rng)
        }
    }

    impl StandardSample for u32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    impl StandardSample for u64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl StandardSample for usize {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() as usize
        }
    }

    /// A distribution that can be sampled repeatedly.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        /// Create a uniform distribution over `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new requires low < high");
            Uniform { low, high }
        }
    }

    impl Distribution<f32> for Uniform<f32> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            self.low + unit_f32(rng) * (self.high - self.low)
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            self.low + unit_f64(rng) * (self.high - self.low)
        }
    }

    impl Distribution<usize> for Uniform<usize> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            uniform::sample_uint(rng, self.low as u64, self.high as u64) as usize
        }
    }

    /// Range sampling used by [`crate::Rng::gen_range`].
    pub mod uniform {
        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Uniform integer in `[lo, hi)` by rejection-free modulo (bias is
        /// negligible for the small ranges used in tests and data generation).
        pub(crate) fn sample_uint<R: RngCore + ?Sized>(rng: &mut R, lo: u64, hi: u64) -> u64 {
            debug_assert!(lo < hi);
            lo + rng.next_u64() % (hi - lo)
        }

        /// Scalar types with a uniform sampler. Mirrors rand's `SampleUniform`
        /// so that the single generic [`SampleRange`] impl below drives type
        /// inference exactly like the real crate (unsuffixed float literals in
        /// `gen_range(-0.05..0.08)` unify with the surrounding `f32` context).
        pub trait SampleUniform: Copy + PartialOrd {
            /// Uniform sample from `[lo, hi)`.
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

            /// Uniform sample from `[lo, hi]`.
            fn sample_between_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
        }

        macro_rules! float_uniform {
            ($t:ty, $unit:path) => {
                impl SampleUniform for $t {
                    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                        lo + $unit(rng) * (hi - lo)
                    }
                    fn sample_between_inclusive<R: RngCore + ?Sized>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                    ) -> Self {
                        lo + $unit(rng) * (hi - lo)
                    }
                }
            };
        }
        float_uniform!(f32, super::unit_f32);
        float_uniform!(f64, super::unit_f64);

        macro_rules! uint_uniform {
            ($t:ty) => {
                impl SampleUniform for $t {
                    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                        sample_uint(rng, lo as u64, hi as u64) as $t
                    }
                    fn sample_between_inclusive<R: RngCore + ?Sized>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                    ) -> Self {
                        if lo as u64 == 0 && hi as u64 == u64::MAX {
                            rng.next_u64() as $t
                        } else {
                            sample_uint(rng, lo as u64, hi as u64 + 1) as $t
                        }
                    }
                }
            };
        }
        uint_uniform!(usize);
        uint_uniform!(u64);
        uint_uniform!(u32);
        uint_uniform!(u16);
        uint_uniform!(u8);

        macro_rules! int_uniform {
            ($t:ty) => {
                impl SampleUniform for $t {
                    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                        let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                        (lo as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
                    }
                    fn sample_between_inclusive<R: RngCore + ?Sized>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                    ) -> Self {
                        let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                        if span == u64::MAX {
                            rng.next_u64() as $t
                        } else {
                            (lo as i64).wrapping_add((rng.next_u64() % (span + 1)) as i64) as $t
                        }
                    }
                }
            };
        }
        int_uniform!(i64);
        int_uniform!(i32);
        int_uniform!(i16);
        int_uniform!(i8);
        int_uniform!(isize);

        /// Ranges accepted by [`crate::Rng::gen_range`].
        pub trait SampleRange<T> {
            /// Sample a single value from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                assert!(self.start < self.end, "gen_range requires start < end");
                T::sample_between(rng, self.start, self.end)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range requires start <= end");
                T::sample_between_inclusive(rng, lo, hi)
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use crate::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick a reference to one element (`None` when empty).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
            let i = rng.gen_range(1..=4usize);
            assert!((1..=4).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something for this seed");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
