//! Utility layers: Dropout, Flatten, Identity and nearest-neighbour up-sampling.

use crate::layer::Layer;
use quadra_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Inverted dropout: during training each element is zeroed with probability
/// `p` and the survivors are scaled by `1/(1-p)`; inference is a no-op.
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Create a dropout layer with drop probability `p` and a deterministic seed.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1)");
        Dropout { p, rng: StdRng::seed_from_u64(seed), mask: None }
    }

    /// The configured drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let mask = Tensor::bernoulli(x.shape(), keep, &mut self.rng).mul_scalar(1.0 / keep);
        let y = x.mul(&mask).expect("mask shape");
        self.mask = Some(mask);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match self.mask.take() {
            Some(mask) => grad_out.mul(&mask).expect("mask shape"),
            None => grad_out.clone(),
        }
    }

    fn cached_bytes(&self) -> usize {
        self.mask.as_ref().map(|m| m.nbytes()).unwrap_or(0)
    }

    fn clear_cache(&mut self) {
        self.mask = None;
    }

    fn layer_type(&self) -> &'static str {
        "dropout"
    }
}

/// Flatten an NCHW tensor to `[n, c*h*w]` for the classifier head.
#[derive(Default)]
pub struct Flatten {
    input_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Create a flatten layer.
    pub fn new() -> Self {
        Flatten { input_shape: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        self.input_shape = Some(x.shape().to_vec());
        x.flatten_batch()
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self.input_shape.take().expect("backward called before forward");
        grad_out.reshape(&shape).expect("flatten backward reshape")
    }

    fn layer_type(&self) -> &'static str {
        "flatten"
    }
}

/// A no-op layer, useful as a placeholder when the auto-builder removes a layer.
#[derive(Default)]
pub struct Identity;

impl Identity {
    /// Create an identity layer.
    pub fn new() -> Self {
        Identity
    }
}

impl Layer for Identity {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        x.clone()
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone()
    }

    fn layer_type(&self) -> &'static str {
        "identity"
    }
}

/// Nearest-neighbour spatial up-sampling by an integer factor (GAN generator).
pub struct Upsample2d {
    factor: usize,
}

impl Upsample2d {
    /// Create an up-sampling layer with the given integer factor.
    pub fn new(factor: usize) -> Self {
        assert!(factor >= 1, "upsample factor must be >= 1");
        Upsample2d { factor }
    }
}

impl Layer for Upsample2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        x.upsample_nearest2d(self.factor).expect("upsample shapes")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // The adjoint of nearest-neighbour up-sampling is summation over each
        // factor×factor block, i.e. average pooling times factor².
        grad_out
            .downsample_avg2d(self.factor)
            .expect("downsample shapes")
            .mul_scalar((self.factor * self.factor) as f32)
    }

    fn layer_type(&self) -> &'static str {
        "upsample2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropout_scales_and_masks_in_training() {
        let mut d = Dropout::new(0.5, 7);
        let x = Tensor::ones(&[1000]);
        let y = d.forward(&x, true);
        // Survivors are scaled to 2.0, dropped to 0.0.
        assert!(y.as_slice().iter().all(|&v| v == 0.0 || v == 2.0));
        let kept = y.as_slice().iter().filter(|&&v| v > 0.0).count();
        assert!((kept as f32 / 1000.0 - 0.5).abs() < 0.08);
        let g = d.backward(&Tensor::ones_like(&y));
        // Gradient is zero exactly where the activation was dropped.
        for (gy, yy) in g.as_slice().iter().zip(y.as_slice()) {
            assert_eq!(*gy == 0.0, *yy == 0.0);
        }
        assert_eq!(d.probability(), 0.5);
    }

    #[test]
    fn dropout_is_identity_in_eval() {
        let mut d = Dropout::new(0.5, 7);
        let x = Tensor::ones(&[16]);
        let y = d.forward(&x, false);
        assert_eq!(y.as_slice(), x.as_slice());
        let g = d.backward(&Tensor::ones_like(&y));
        assert_eq!(g.as_slice(), &[1.0; 16]);
        assert_eq!(d.cached_bytes(), 0);
        let mut d0 = Dropout::new(0.0, 1);
        assert_eq!(d0.forward(&x, true).as_slice(), x.as_slice());
        let _ = d.forward(&x, true);
        d.clear_cache();
        assert_eq!(d.cached_bytes(), 0);
    }

    #[test]
    #[should_panic]
    fn invalid_probability_panics() {
        let _ = Dropout::new(1.0, 0);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::ones(&[2, 3, 4, 4]);
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 48]);
        let g = f.backward(&Tensor::ones_like(&y));
        assert_eq!(g.shape(), x.shape());
        assert_eq!(f.layer_type(), "flatten");
    }

    #[test]
    fn identity_layer() {
        let mut id = Identity::new();
        let x = Tensor::from_slice(&[1.0, 2.0]);
        assert_eq!(id.forward(&x, true).as_slice(), x.as_slice());
        assert_eq!(id.backward(&x).as_slice(), x.as_slice());
        assert_eq!(id.layer_type(), "identity");
        assert_eq!(id.param_count(), 0);
    }

    #[test]
    fn upsample_forward_backward_adjoint() {
        let mut up = Upsample2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = up.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 4, 4]);
        let g = up.backward(&Tensor::ones_like(&y));
        // Each input pixel receives gradient from its 4 copies.
        assert_eq!(g.as_slice(), &[4.0, 4.0, 4.0, 4.0]);
        assert_eq!(up.layer_type(), "upsample2d");
    }

    #[test]
    #[should_panic]
    fn zero_upsample_factor_panics() {
        let _ = Upsample2d::new(0);
    }
}
