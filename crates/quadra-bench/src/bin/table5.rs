//! Table 5 — GAN-based image generation: proxy Inception Score and FID of the
//! first-order generator (SNGAN stand-in) versus the quadratic generator
//! (QuadraNN) on the synthetic shape-image distribution.
//!
//! Regenerate with `cargo run -p quadra-bench --release --bin table5`.

use quadra_bench::{print_table, scale, Scale};
use quadra_core::NeuronType;
use quadra_data::ShapeImageDataset;
use quadra_models::{FeatureExtractor, Gan, GanConfig, GenerationMetrics};

fn main() {
    let (n_real, steps, fx_epochs, eval_n) = match scale() {
        Scale::Full => (1000usize, 400usize, 8usize, 500usize),
        Scale::Quick => (200, 40, 4, 100),
    };
    let real = ShapeImageDataset::generate(n_real, 4, 16, 3, 0.05, 31);
    let eval_real = ShapeImageDataset::generate(eval_n, 4, 16, 3, 0.05, 32);

    // Train the "inception stand-in" feature extractor on the real distribution.
    let mut fx = FeatureExtractor::new(3, 4, 8, 33);
    fx.fit(&real.images, &real.labels, fx_epochs, 32, 34);
    println!(
        "stand-in classifier accuracy on real data: {:.2}%",
        fx.accuracy(&eval_real.images, &eval_real.labels) * 100.0
    );

    let mut rows = Vec::new();
    for (name, quadratic) in
        [("SNGAN stand-in (first-order)", None), ("QuadraNN generator (Ours)", Some(NeuronType::Ours))]
    {
        let mut gan = Gan::new(GanConfig { base_width: 12, quadratic, seed: 35, ..GanConfig::default() });
        let report = gan.train(&real.images, steps, 16, 2e-3);
        let fake = gan.generate(eval_n);
        let metrics = GenerationMetrics::evaluate(&mut fx, &eval_real.images, &fake);
        rows.push(vec![
            name.to_string(),
            format!("{}", gan.generator_param_count()),
            format!("{:.3}", metrics.inception_score),
            format!("{:.3}", metrics.fid),
            format!("{:.3}", report.g_losses.last().copied().unwrap_or(f32::NAN)),
        ]);
    }
    // Reference row: pure noise images, as a floor for the metrics.
    {
        let mut rng = rand::rngs::StdRng::seed_from_u64(36);
        use rand::SeedableRng;
        let noise = quadra_tensor::Tensor::randn(&[eval_n, 3, 16, 16], 0.0, 0.5, &mut rng);
        let metrics = GenerationMetrics::evaluate(&mut fx, &eval_real.images, &noise);
        rows.push(vec![
            "(noise baseline)".to_string(),
            "-".to_string(),
            format!("{:.3}", metrics.inception_score),
            format!("{:.3}", metrics.fid),
            "-".to_string(),
        ]);
    }
    print_table(
        "Table 5: image generation with proxy IS (higher better) / FID (lower better)",
        &["Model", "Gen. params", "IS (proxy)", "FID (proxy)", "final G loss"],
        &rows,
    );
    println!("\nShape to reproduce: the quadratic generator matches or improves on the first-order");
    println!("generator's IS/FID at the same structure, as the paper reports for SNGAN vs QuadraNN.");
}
