//! Quadratic fully connected layers for every neuron type of Table 1.

use crate::hybrid_bp::BackpropMode;
use crate::neuron::NeuronType;
use quadra_nn::{Layer, Param};
use quadra_tensor::{InitKind, Tensor};
use rand::Rng;

/// A quadratic dense layer: every output unit is a quadratic neuron of the
/// configured [`NeuronType`] over the input vector.
///
/// Weight layout follows the first-order [`quadra_nn::Linear`] convention
/// (`[in_features, out_features]`) so that a quadratic layer is literally "a
/// few first-order layers plus element-wise arithmetic" — the implementation
/// feasibility argument (P4) of the paper. The T1 and T1&2 designs need a full
/// bilinear tensor `[out, in, in]` instead, which is supported here for
/// completeness (and for the Table 1 micro-benchmarks) but is exactly the
/// memory blow-up the paper warns about.
pub struct QuadraticLinear {
    neuron_type: NeuronType,
    mode: BackpropMode,
    in_features: usize,
    out_features: usize,
    /// Full bilinear tensor for T1 / T1&2 (`[out, in, in]`).
    w_full: Option<Param>,
    wa: Option<Param>,
    wb: Option<Param>,
    wc: Option<Param>,
    bias: Param,
    // Caches (populated according to `mode`).
    cached_x: Option<Tensor>,
    cached_za: Option<Tensor>,
    cached_zb: Option<Tensor>,
    flops: usize,
}

impl QuadraticLinear {
    /// Create a quadratic dense layer of the given neuron type.
    pub fn new(neuron_type: NeuronType, in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        if neuron_type == NeuronType::T4Identity {
            assert_eq!(
                in_features, out_features,
                "T4+Identity requires in_features == out_features for the identity mapping"
            );
        }
        fn vec_init<R: Rng>(in_features: usize, out_features: usize, rng: &mut R) -> Tensor {
            Tensor::init(
                &[in_features, out_features],
                InitKind::KaimingUniform,
                in_features,
                out_features,
                rng,
            )
        }
        let needs = NeuronWeights::required(neuron_type);
        let w_full = needs.full.then(|| {
            Param::new(
                "qlinear.w_full",
                Tensor::randn(&[out_features, in_features, in_features], 0.0, 1.0 / in_features as f32, rng),
            )
        });
        let wa = needs.a.then(|| Param::new("qlinear.wa", vec_init(in_features, out_features, rng)));
        let wb = needs.b.then(|| Param::new("qlinear.wb", vec_init(in_features, out_features, rng)));
        let wc = needs.c.then(|| Param::new("qlinear.wc", vec_init(in_features, out_features, rng)));
        QuadraticLinear {
            neuron_type,
            mode: BackpropMode::Default,
            in_features,
            out_features,
            w_full,
            wa,
            wb,
            wc,
            bias: Param::new_no_decay("qlinear.bias", Tensor::zeros(&[out_features])),
            cached_x: None,
            cached_za: None,
            cached_zb: None,
            flops: 0,
        }
    }

    /// The neuron design implemented by this layer.
    pub fn neuron_type(&self) -> NeuronType {
        self.neuron_type
    }

    /// Select the back-propagation mode (default AD caching vs hybrid).
    pub fn set_mode(&mut self, mode: BackpropMode) {
        self.mode = mode;
    }

    /// The current back-propagation mode.
    pub fn mode(&self) -> BackpropMode {
        self.mode
    }

    /// Input feature dimension.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature dimension.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    fn branch(&self, x: &Tensor, w: &Option<Param>) -> Tensor {
        x.matmul(&w.as_ref().expect("branch weight present").value).expect("linear shapes")
    }

    /// Bilinear term for T1-style designs: `y[n, j] = x[n, :]ᵀ W_full[j] x[n, :]`.
    fn bilinear(&self, x: &Tensor) -> Tensor {
        let w = &self.w_full.as_ref().expect("T1 weight").value;
        let n = x.shape()[0];
        let d = self.in_features;
        let o = self.out_features;
        let xs = x.as_slice();
        let ws = w.as_slice();
        let mut out = Tensor::zeros(&[n, o]);
        let os = out.as_mut_slice();
        for ni in 0..n {
            let xrow = &xs[ni * d..(ni + 1) * d];
            for j in 0..o {
                let wj = &ws[j * d * d..(j + 1) * d * d];
                let mut acc = 0.0f32;
                for p in 0..d {
                    let xp = xrow[p];
                    if xp == 0.0 {
                        continue;
                    }
                    let row = &wj[p * d..(p + 1) * d];
                    acc += xp * row.iter().zip(xrow.iter()).map(|(a, b)| a * b).sum::<f32>();
                }
                os[ni * o + j] = acc;
            }
        }
        out
    }
}

/// Which weight tensors each neuron type requires.
struct NeuronWeights {
    full: bool,
    a: bool,
    b: bool,
    c: bool,
}

impl NeuronWeights {
    fn required(t: NeuronType) -> Self {
        match t {
            NeuronType::T1 => NeuronWeights { full: true, a: true, b: false, c: false },
            NeuronType::T2 | NeuronType::T3 => NeuronWeights { full: false, a: true, b: false, c: false },
            NeuronType::T4 | NeuronType::T4Identity => {
                NeuronWeights { full: false, a: true, b: true, c: false }
            }
            NeuronType::T1And2 => NeuronWeights { full: true, a: false, b: true, c: false },
            NeuronType::T2And4 | NeuronType::Ours => NeuronWeights { full: false, a: true, b: true, c: true },
        }
    }
}

impl Layer for QuadraticLinear {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.ndim(), 2, "QuadraticLinear expects [batch, features] input");
        assert_eq!(x.shape()[1], self.in_features, "input width mismatch");
        let n = x.shape()[0];
        let base_flops = n * self.in_features * self.out_features;

        let (out, za, zb, flops) = match self.neuron_type {
            NeuronType::T1 => {
                let quad = self.bilinear(x);
                let lin = self.branch(x, &self.wa);
                (
                    quad.add(&lin).expect("shape"),
                    None,
                    None,
                    n * self.in_features * self.in_features * self.out_features + base_flops,
                )
            }
            NeuronType::T1And2 => {
                let quad = self.bilinear(x);
                let sq = x.square().matmul(&self.wb.as_ref().unwrap().value).expect("shape");
                (
                    quad.add(&sq).expect("shape"),
                    None,
                    None,
                    n * self.in_features * self.in_features * self.out_features + 2 * base_flops,
                )
            }
            NeuronType::T2 => {
                let out = x.square().matmul(&self.wa.as_ref().unwrap().value).expect("shape");
                (out, None, None, 2 * base_flops)
            }
            NeuronType::T3 => {
                let za = self.branch(x, &self.wa);
                (za.square(), Some(za), None, 2 * base_flops)
            }
            NeuronType::T4 => {
                let za = self.branch(x, &self.wa);
                let zb = self.branch(x, &self.wb);
                (za.mul(&zb).expect("shape"), Some(za), Some(zb), 3 * base_flops)
            }
            NeuronType::T4Identity => {
                let za = self.branch(x, &self.wa);
                let zb = self.branch(x, &self.wb);
                (za.mul(&zb).expect("shape").add(x).expect("shape"), Some(za), Some(zb), 3 * base_flops)
            }
            NeuronType::T2And4 => {
                let za = self.branch(x, &self.wa);
                let zb = self.branch(x, &self.wb);
                let sq = x.square().matmul(&self.wc.as_ref().unwrap().value).expect("shape");
                (za.mul(&zb).expect("shape").add(&sq).expect("shape"), Some(za), Some(zb), 5 * base_flops)
            }
            NeuronType::Ours => {
                let za = self.branch(x, &self.wa);
                let zb = self.branch(x, &self.wb);
                let lin = self.branch(x, &self.wc);
                (za.mul(&zb).expect("shape").add(&lin).expect("shape"), Some(za), Some(zb), 4 * base_flops)
            }
        };
        self.flops = flops;
        let out = out.add(&self.bias.value).expect("bias broadcast");
        self.cached_x = Some(x.clone());
        match self.mode {
            BackpropMode::Default => {
                self.cached_za = za;
                self.cached_zb = zb;
            }
            BackpropMode::Hybrid => {
                // Symbolic gradients recompute the branches from the cached input.
                self.cached_za = None;
                self.cached_zb = None;
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_x.take().expect("backward called before forward");
        // Bias gradient is shared by every design.
        self.bias.accumulate_grad(&grad_out.sum_axis(0).expect("axis 0"));

        // Recompute branches if running in hybrid mode.
        let need_branches = matches!(
            self.neuron_type,
            NeuronType::T3 | NeuronType::T4 | NeuronType::T4Identity | NeuronType::T2And4 | NeuronType::Ours
        );
        let (za, zb) = if need_branches {
            let za = match self.cached_za.take() {
                Some(z) => Some(z),
                None => self.wa.as_ref().map(|_| self.branch(&x, &self.wa)),
            };
            let zb = match self.cached_zb.take() {
                Some(z) => Some(z),
                None => self.wb.as_ref().map(|_| self.branch(&x, &self.wb)),
            };
            (za, zb)
        } else {
            self.cached_za = None;
            self.cached_zb = None;
            (None, None)
        };

        let mut grad_in = Tensor::zeros(x.shape());

        // Helper to apply the contribution of a plain linear branch y = x·W.
        let linear_branch =
            |w: &mut Option<Param>, branch_grad: &Tensor, grad_in: &mut Tensor, x_used: &Tensor| {
                let w = w.as_mut().expect("branch weight");
                let gw = x_used.matmul_tn(branch_grad).expect("shape");
                w.accumulate_grad(&gw);
                let gx = branch_grad.matmul_nt(&w.value).expect("shape");
                grad_in.add_assign(&gx).expect("shape");
            };

        match self.neuron_type {
            NeuronType::T1 | NeuronType::T1And2 => {
                // Bilinear part.
                let d = self.in_features;
                let o = self.out_features;
                let n = x.shape()[0];
                let xs = x.as_slice();
                let gs = grad_out.as_slice();
                {
                    let wfull = self.w_full.as_mut().expect("T1 weight");
                    let mut gw = Tensor::zeros(wfull.value.shape());
                    let gwm = gw.as_mut_slice();
                    let ws = wfull.value.as_slice();
                    let gi = grad_in.as_mut_slice();
                    for ni in 0..n {
                        let xrow = &xs[ni * d..(ni + 1) * d];
                        for j in 0..o {
                            let g = gs[ni * o + j];
                            if g == 0.0 {
                                continue;
                            }
                            let wj = &ws[j * d * d..(j + 1) * d * d];
                            for p in 0..d {
                                let xp = xrow[p];
                                let grow = &mut gwm[j * d * d + p * d..j * d * d + (p + 1) * d];
                                for q in 0..d {
                                    grow[q] += g * xp * xrow[q];
                                }
                                // dx[p] += g * sum_q (W[p,q] + W[q,p]) x[q]
                                let mut acc = 0.0f32;
                                for q in 0..d {
                                    acc += (wj[p * d + q] + wj[q * d + p]) * xrow[q];
                                }
                                gi[ni * d + p] += g * acc;
                            }
                        }
                    }
                    wfull.accumulate_grad(&gw);
                }
                if self.neuron_type == NeuronType::T1 {
                    // + Wa·X linear term.
                    linear_branch(&mut self.wa, grad_out, &mut grad_in, &x);
                } else {
                    // + Wb·X² term.
                    let xsq = x.square();
                    let gw = xsq.matmul_tn(grad_out).expect("shape");
                    let wb = self.wb.as_mut().expect("wb");
                    wb.accumulate_grad(&gw);
                    let gx =
                        grad_out.matmul_nt(&wb.value).expect("shape").mul(&x.mul_scalar(2.0)).expect("shape");
                    grad_in.add_assign(&gx).expect("shape");
                }
            }
            NeuronType::T2 => {
                let xsq = x.square();
                let gw = xsq.matmul_tn(grad_out).expect("shape");
                let wa = self.wa.as_mut().expect("wa");
                wa.accumulate_grad(&gw);
                let gx =
                    grad_out.matmul_nt(&wa.value).expect("shape").mul(&x.mul_scalar(2.0)).expect("shape");
                grad_in.add_assign(&gx).expect("shape");
            }
            NeuronType::T3 => {
                let za = za.expect("za");
                let gz = grad_out.mul(&za.mul_scalar(2.0)).expect("shape");
                linear_branch(&mut self.wa, &gz, &mut grad_in, &x);
            }
            NeuronType::T4 | NeuronType::T4Identity | NeuronType::T2And4 | NeuronType::Ours => {
                let za = za.expect("za");
                let zb = zb.expect("zb");
                let ga = grad_out.mul(&zb).expect("shape");
                let gb = grad_out.mul(&za).expect("shape");
                linear_branch(&mut self.wa, &ga, &mut grad_in, &x);
                linear_branch(&mut self.wb, &gb, &mut grad_in, &x);
                match self.neuron_type {
                    NeuronType::T4Identity => {
                        grad_in.add_assign(grad_out).expect("shape");
                    }
                    NeuronType::T2And4 => {
                        let xsq = x.square();
                        let gw = xsq.matmul_tn(grad_out).expect("shape");
                        let wc = self.wc.as_mut().expect("wc");
                        wc.accumulate_grad(&gw);
                        let gx = grad_out
                            .matmul_nt(&wc.value)
                            .expect("shape")
                            .mul(&x.mul_scalar(2.0))
                            .expect("shape");
                        grad_in.add_assign(&gx).expect("shape");
                    }
                    NeuronType::Ours => {
                        linear_branch(&mut self.wc, grad_out, &mut grad_in, &x);
                    }
                    _ => {}
                }
            }
        }
        grad_in
    }

    fn params(&self) -> Vec<&Param> {
        let mut p = Vec::new();
        if let Some(w) = &self.w_full {
            p.push(w);
        }
        for w in [&self.wa, &self.wb, &self.wc].into_iter().flatten() {
            p.push(w);
        }
        p.push(&self.bias);
        p
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = Vec::new();
        if let Some(w) = &mut self.w_full {
            p.push(w);
        }
        for w in [&mut self.wa, &mut self.wb, &mut self.wc].into_iter().flatten() {
            p.push(w);
        }
        p.push(&mut self.bias);
        p
    }

    fn cached_bytes(&self) -> usize {
        self.cached_x.as_ref().map(|t| t.nbytes()).unwrap_or(0)
            + self.cached_za.as_ref().map(|t| t.nbytes()).unwrap_or(0)
            + self.cached_zb.as_ref().map(|t| t.nbytes()).unwrap_or(0)
    }

    fn clear_cache(&mut self) {
        self.cached_x = None;
        self.cached_za = None;
        self.cached_zb = None;
    }

    fn flops_last_forward(&self) -> usize {
        self.flops
    }

    fn set_memory_saving(&mut self, enabled: bool) {
        self.mode = if enabled { BackpropMode::Hybrid } else { BackpropMode::Default };
    }

    fn memory_saving(&self) -> bool {
        self.mode == BackpropMode::Hybrid
    }

    fn layer_type(&self) -> &'static str {
        "quadratic_linear"
    }

    fn describe(&self) -> String {
        format!(
            "quadratic_linear[{}] {}→{} ({} params, {})",
            self.neuron_type.name(),
            self.in_features,
            self.out_features,
            self.param_count(),
            self.mode
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadra_autograd::{check_close, numeric_gradient};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(33)
    }

    /// Reference forward pass used for finite-difference checks.
    fn reference_forward(layer: &QuadraticLinear, x: &Tensor) -> Tensor {
        let get = |p: &Option<Param>| p.as_ref().unwrap().value.clone();
        let bias = layer.bias.value.clone();
        let out = match layer.neuron_type {
            NeuronType::T2 => x.square().matmul(&get(&layer.wa)).unwrap(),
            NeuronType::T3 => x.matmul(&get(&layer.wa)).unwrap().square(),
            NeuronType::T4 => {
                let za = x.matmul(&get(&layer.wa)).unwrap();
                let zb = x.matmul(&get(&layer.wb)).unwrap();
                za.mul(&zb).unwrap()
            }
            NeuronType::T4Identity => {
                let za = x.matmul(&get(&layer.wa)).unwrap();
                let zb = x.matmul(&get(&layer.wb)).unwrap();
                za.mul(&zb).unwrap().add(x).unwrap()
            }
            NeuronType::T2And4 => {
                let za = x.matmul(&get(&layer.wa)).unwrap();
                let zb = x.matmul(&get(&layer.wb)).unwrap();
                za.mul(&zb).unwrap().add(&x.square().matmul(&get(&layer.wc)).unwrap()).unwrap()
            }
            NeuronType::Ours => {
                let za = x.matmul(&get(&layer.wa)).unwrap();
                let zb = x.matmul(&get(&layer.wb)).unwrap();
                za.mul(&zb).unwrap().add(&x.matmul(&get(&layer.wc)).unwrap()).unwrap()
            }
            NeuronType::T1 | NeuronType::T1And2 => layer_forward_bilinear(layer, x),
        };
        out.add(&bias).unwrap()
    }

    fn layer_forward_bilinear(layer: &QuadraticLinear, x: &Tensor) -> Tensor {
        let w = &layer.w_full.as_ref().unwrap().value;
        let n = x.shape()[0];
        let d = layer.in_features;
        let o = layer.out_features;
        let mut out = Tensor::zeros(&[n, o]);
        for ni in 0..n {
            for j in 0..o {
                let mut acc = 0.0;
                for p in 0..d {
                    for q in 0..d {
                        acc += x.at(&[ni, p]) * w.at(&[j, p, q]) * x.at(&[ni, q]);
                    }
                }
                out.set(&[ni, j], acc);
            }
        }
        match layer.neuron_type {
            NeuronType::T1 => out.add(&x.matmul(&layer.wa.as_ref().unwrap().value).unwrap()).unwrap(),
            NeuronType::T1And2 => {
                out.add(&x.square().matmul(&layer.wb.as_ref().unwrap().value).unwrap()).unwrap()
            }
            _ => out,
        }
    }

    #[test]
    fn forward_matches_reference_for_all_types() {
        let mut r = rng();
        for t in NeuronType::ALL {
            let (fin, fout) = if t == NeuronType::T4Identity { (5, 5) } else { (5, 4) };
            let mut layer = QuadraticLinear::new(t, fin, fout, &mut r);
            let x = Tensor::randn(&[3, fin], 0.0, 1.0, &mut r);
            let y = layer.forward(&x, true);
            let y_ref = reference_forward(&layer, &x);
            assert!(y.allclose(&y_ref, 1e-4), "type {} mismatch", t);
            assert_eq!(y.shape(), &[3, fout]);
            assert!(layer.flops_last_forward() > 0);
        }
    }

    #[test]
    fn ours_layer_param_count_is_three_linear_layers() {
        let mut r = rng();
        let layer = QuadraticLinear::new(NeuronType::Ours, 8, 6, &mut r);
        // three weight matrices + bias
        assert_eq!(layer.param_count(), 3 * 8 * 6 + 6);
        assert_eq!(layer.neuron_type(), NeuronType::Ours);
        assert_eq!(layer.in_features(), 8);
        assert_eq!(layer.out_features(), 6);
        assert_eq!(layer.layer_type(), "quadratic_linear");
        assert!(layer.describe().contains("Ours"));
    }

    #[test]
    fn backward_gradcheck_input_all_types() {
        let mut r = rng();
        for t in NeuronType::ALL {
            let (fin, fout) = if t == NeuronType::T4Identity { (4, 4) } else { (4, 3) };
            let mut layer = QuadraticLinear::new(t, fin, fout, &mut r);
            let x = Tensor::randn(&[2, fin], 0.0, 1.0, &mut r);
            let y = layer.forward(&x, true);
            let gin = layer.backward(&Tensor::ones_like(&y));
            let lref = &layer;
            let numeric = numeric_gradient(|xv| reference_forward(lref, xv).sum(), &x, 1e-3);
            let rep = check_close(&gin, &numeric);
            assert!(rep.passes(5e-2), "type {}: {:?}", t, rep);
        }
    }

    #[test]
    fn backward_gradcheck_weights_ours() {
        let mut r = rng();
        let mut layer = QuadraticLinear::new(NeuronType::Ours, 4, 3, &mut r);
        let x = Tensor::randn(&[3, 4], 0.0, 1.0, &mut r);
        let y = layer.forward(&x, true);
        layer.backward(&Tensor::ones_like(&y));
        // Check each weight's gradient numerically.
        for idx in 0..3 {
            let analytic = layer.params()[idx].grad.clone();
            let x2 = x.clone();
            let wa = layer.wa.as_ref().unwrap().value.clone();
            let wb = layer.wb.as_ref().unwrap().value.clone();
            let wc = layer.wc.as_ref().unwrap().value.clone();
            let f = move |w: &Tensor| {
                let (wa, wb, wc) = match idx {
                    0 => (w.clone(), wb.clone(), wc.clone()),
                    1 => (wa.clone(), w.clone(), wc.clone()),
                    _ => (wa.clone(), wb.clone(), w.clone()),
                };
                let za = x2.matmul(&wa).unwrap();
                let zb = x2.matmul(&wb).unwrap();
                za.mul(&zb).unwrap().add(&x2.matmul(&wc).unwrap()).unwrap().sum()
            };
            let numeric = numeric_gradient(f, &layer.params()[idx].value, 1e-3);
            let rep = check_close(&analytic, &numeric);
            assert!(rep.passes(5e-2), "weight {}: {:?}", idx, rep);
        }
        // Bias gradient: sum of ones over the batch.
        let gb = layer.params().last().unwrap().grad.clone();
        assert_eq!(gb.as_slice(), &[3.0, 3.0, 3.0]);
    }

    #[test]
    fn hybrid_mode_produces_identical_gradients_with_smaller_cache() {
        let mut r = rng();
        let mut default_layer = QuadraticLinear::new(NeuronType::Ours, 6, 6, &mut r);
        let mut hybrid_layer = QuadraticLinear::new(NeuronType::Ours, 6, 6, &mut r);
        // Copy weights so both layers are identical.
        for (d, h) in default_layer.params().iter().zip(hybrid_layer.params_mut()) {
            h.value.copy_from(&d.value).unwrap();
        }
        hybrid_layer.set_mode(BackpropMode::Hybrid);
        assert_eq!(hybrid_layer.mode(), BackpropMode::Hybrid);
        assert_eq!(default_layer.mode(), BackpropMode::Default);

        let x = Tensor::randn(&[8, 6], 0.0, 1.0, &mut r);
        let yd = default_layer.forward(&x, true);
        let yh = hybrid_layer.forward(&x, true);
        assert!(yd.allclose(&yh, 1e-5));
        // The default mode caches x + za + zb; hybrid caches only x.
        assert!(default_layer.cached_bytes() > hybrid_layer.cached_bytes());
        assert_eq!(hybrid_layer.cached_bytes(), x.nbytes());

        let g = Tensor::randn(yd.shape(), 0.0, 1.0, &mut r);
        let gd = default_layer.backward(&g);
        let gh = hybrid_layer.backward(&g);
        assert!(gd.allclose(&gh, 1e-4));
        for (pd, ph) in default_layer.params().iter().zip(hybrid_layer.params()) {
            assert!(pd.grad.allclose(&ph.grad, 1e-4));
        }
    }

    #[test]
    fn cache_cleared_after_clear_cache() {
        let mut r = rng();
        let mut layer = QuadraticLinear::new(NeuronType::T4, 3, 3, &mut r);
        let x = Tensor::randn(&[2, 3], 0.0, 1.0, &mut r);
        let _ = layer.forward(&x, true);
        assert!(layer.cached_bytes() > 0);
        layer.clear_cache();
        assert_eq!(layer.cached_bytes(), 0);
    }

    #[test]
    #[should_panic]
    fn t4_identity_requires_square_layer() {
        let mut r = rng();
        let _ = QuadraticLinear::new(NeuronType::T4Identity, 3, 4, &mut r);
    }

    #[test]
    fn t1_param_count_is_quadratic_in_input() {
        let mut r = rng();
        let layer = QuadraticLinear::new(NeuronType::T1, 10, 2, &mut r);
        // full tensor 2*10*10 + wa 10*2 + bias 2
        assert_eq!(layer.param_count(), 200 + 20 + 2);
    }
}
