//! Blocked vs naive GEMM at MobileNet-relevant shapes.
//!
//! Shapes are the (m, k, n) of the im2col GEMMs in a MobileNetV1-style
//! network — `m = out_channels`, `k = in_channels·kh·kw`, `n = oh·ow` — plus
//! the square 256³ reference point used for the speedup acceptance check.
//!
//! Set `QUADRA_BENCH_JSON=/path/to/BENCH_gemm.json` to additionally write the
//! timings as machine-readable `[name, ns_per_iter, iters]` records (the
//! vendored criterion harness handles this), so CI can archive the GEMM perf
//! trajectory across PRs. Note the bench process runs with the package
//! directory as its CWD — pass an absolute path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quadra_tensor::gemm::{gemm_blocked, gemm_naive, gemm_nt_blocked, gemm_tn_blocked};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn randvec(len: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_blocked");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(0);

    // (label, m, k, n)
    let shapes: &[(&str, usize, usize, usize)] = &[
        ("square_256", 256, 256, 256),
        ("mbnet_stem_32x27x1024", 32, 27, 1024),
        ("mbnet_pw_64x576x196", 64, 576, 196),
        ("mbnet_pw_128x1152x49", 128, 1152, 49),
        ("linear_head_64x256x4", 64, 256, 4),
    ];
    for &(label, m, k, n) in shapes {
        let a = randvec(m * k, &mut rng);
        let b = randvec(k * n, &mut rng);
        group.bench_with_input(BenchmarkId::new("naive", label), &(), |bch, _| {
            bch.iter(|| criterion::black_box(gemm_naive(&a, &b, m, k, n)))
        });
        group.bench_with_input(BenchmarkId::new("blocked", label), &(), |bch, _| {
            bch.iter(|| criterion::black_box(gemm_blocked(&a, &b, m, k, n)))
        });
    }

    // Transpose-free variants at the square reference shape (operands are the
    // stored-transposed layouts the conv backward passes feed in).
    let m = 256;
    let a = randvec(m * m, &mut rng);
    let b = randvec(m * m, &mut rng);
    group.bench_function("nt_blocked/square_256", |bch| {
        bch.iter(|| criterion::black_box(gemm_nt_blocked(&a, &b, m, m, m)))
    });
    group.bench_function("tn_blocked/square_256", |bch| {
        bch.iter(|| criterion::black_box(gemm_tn_blocked(&a, &b, m, m, m)))
    });
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
