//! The binary wire protocol: compact length-prefixed frames.
//!
//! Every frame is `u32 body_len (LE) | u8 kind | fields…`; all integers are
//! little-endian and tensor payloads are raw `f32` little-endian bit
//! patterns, so a served output round-trips the wire **bitwise** (NaN
//! payloads included) — the loopback test pins gateway responses equal to
//! direct [`RouterClient`](quadra_serve::RouterClient) results.
//!
//! | kind | frame        | body |
//! |------|--------------|------|
//! | 1    | Request      | `u64 corr · u8 priority · u32 deadline_ms · u16 model_len+bytes · u8 has_tag (+ u16 tag_len+bytes) · u8 ndim · ndim×u32 dims · numel×f32` |
//! | 2    | Response     | `u64 corr · u64 batch_id · u64 model_version · u32 batch_samples · u32 queue_wait_us · u32 latency_us · u8 has_tag (+ u16 tag_len+bytes) · u8 ndim · ndim×u32 dims · numel×f32` |
//! | 3    | Error        | `u64 corr · u16 code · u32 retry_after_ms · u16 msg_len+bytes` |
//! | 4    | Backpressure | `u64 corr · u32 retry_after_ms` |
//! | 5    | GoAway       | *(empty)* |
//!
//! Error frames carry the stable numeric [`ServeError`] discriminant
//! ([`ServeError::code`]), so the mapping cannot drift as variants are
//! added. [`ServeError::Overloaded`] is **not** sent as an error frame: the
//! gateway maps it to a Backpressure frame — same correlation id, plus the
//! live `retry_after` — so clients can implement flow control without
//! parsing error bodies. A decode failure is a protocol violation: the
//! gateway answers with one error frame (code [`PROTOCOL_ERROR_CODE`]) and
//! closes the connection; there is no way to resynchronise a corrupt
//! length-prefixed stream.

use quadra_serve::{Priority, ServeError};
use quadra_tensor::Tensor;

/// Bytes of the `u32` length prefix in front of every frame body.
pub const FRAME_HEADER_BYTES: usize = 4;

/// Maximum tensor rank the wire format carries.
pub const MAX_WIRE_NDIM: usize = 8;

/// The `code` of an error frame reporting a malformed frame (a protocol
/// violation, not a [`ServeError`]); the connection closes after sending it.
pub const PROTOCOL_ERROR_CODE: u16 = 0;

const KIND_REQUEST: u8 = 1;
const KIND_RESPONSE: u8 = 2;
const KIND_ERROR: u8 = 3;
const KIND_BACKPRESSURE: u8 = 4;
const KIND_GOAWAY: u8 = 5;

/// An inference request travelling client → gateway.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFrame {
    /// Client-chosen id echoed in the matching response/error/backpressure
    /// frame. The gateway treats it as opaque; reuse while a previous request
    /// with the same id is in flight makes the two responses ambiguous.
    pub correlation_id: u64,
    /// Scheduling class, mapped onto [`quadra_serve::Priority`].
    pub priority: Priority,
    /// Deadline budget in milliseconds from gateway admission; 0 = none.
    pub deadline_ms: u32,
    /// Target endpoint name.
    pub model: String,
    /// Optional caller tag, echoed back in the response frame.
    pub tag: Option<String>,
    /// Input tensor; axis 0 is the sample axis, as everywhere in the serving
    /// API.
    pub input: Tensor,
}

/// A completed inference travelling gateway → client.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseFrame {
    /// The request's correlation id, echoed.
    pub correlation_id: u64,
    /// Fleet-unique id of the coalesced batch the request rode in.
    pub batch_id: u64,
    /// Version of the model state that produced the output.
    pub model_version: u64,
    /// Total samples in the coalesced batch.
    pub batch_samples: u32,
    /// Queue wait in microseconds (saturated).
    pub queue_wait_us: u32,
    /// Submission-to-completion latency in microseconds (saturated),
    /// measured inside the serving engine.
    pub latency_us: u32,
    /// The request tag, echoed verbatim.
    pub tag: Option<String>,
    /// Output rows for the request's samples.
    pub output: Tensor,
}

/// A per-request failure travelling gateway → client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorFrame {
    /// The request's correlation id (0 for connection-level protocol errors,
    /// which are followed by a close).
    pub correlation_id: u64,
    /// Stable numeric code: [`ServeError::code`], or
    /// [`PROTOCOL_ERROR_CODE`] for malformed frames.
    pub code: u16,
    /// Retry hint in milliseconds; 0 when the error carries none.
    pub retry_after_ms: u32,
    /// Human-readable description.
    pub message: String,
}

/// Connection-level backpressure travelling gateway → client: the request
/// was shed with [`ServeError::Overloaded`] and the client should slow down
/// for roughly `retry_after_ms`. The gateway additionally stops reading from
/// a connection whose outbound buffer crosses the high-water mark, so a
/// client that ignores both signals eventually blocks in its own `write`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackpressureFrame {
    /// The shed request's correlation id.
    pub correlation_id: u64,
    /// Estimated backlog drain time in milliseconds.
    pub retry_after_ms: u32,
}

/// One decoded wire frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → gateway inference request.
    Request(RequestFrame),
    /// Gateway → client completed inference.
    Response(ResponseFrame),
    /// Gateway → client typed failure.
    Error(ErrorFrame),
    /// Gateway → client overload shed + slow-down advisory.
    Backpressure(BackpressureFrame),
    /// Gateway → client: draining; no further requests will be admitted on
    /// this connection.
    GoAway,
}

/// Why a byte stream failed to decode (or a frame failed to encode). Any
/// decode-side variant is fatal for the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The declared body length exceeds the configured maximum.
    Oversized {
        /// Declared body length.
        len: usize,
        /// Configured cap.
        max: usize,
    },
    /// The body was shorter than its fields require (or empty).
    Truncated,
    /// The body was longer than its fields consume.
    TrailingBytes,
    /// The kind byte names no known frame.
    UnknownKind(u8),
    /// The priority byte names no known class.
    BadPriority(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// The tensor rank is 0 or exceeds [`MAX_WIRE_NDIM`].
    BadRank(u8),
    /// The dimension product overflows, or dims do not match the payload.
    BadShape,
    /// A field to encode does not fit its wire width (tag/model/message over
    /// `u16::MAX` bytes, dim over `u32::MAX`, rank over [`MAX_WIRE_NDIM`]).
    Unencodable,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Truncated => write!(f, "frame body truncated"),
            FrameError::TrailingBytes => write!(f, "frame body has trailing bytes"),
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::BadPriority(p) => write!(f, "unknown priority {p}"),
            FrameError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            FrameError::BadRank(n) => write!(f, "tensor rank {n} outside 1..={MAX_WIRE_NDIM}"),
            FrameError::BadShape => write!(f, "tensor dims inconsistent with payload"),
            FrameError::Unencodable => write!(f, "field does not fit its wire width"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental decode cursor over a frame body.
struct Cursor<'a> {
    rest: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(body: &'a [u8]) -> Cursor<'a> {
        Cursor { rest: body }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        match (self.rest.get(..n), self.rest.get(n..)) {
            (Some(head), Some(tail)) => {
                self.rest = tail;
                Ok(head)
            }
            _ => Err(FrameError::Truncated),
        }
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        self.take(1)?.first().copied().ok_or(FrameError::Truncated)
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        let bytes: [u8; 2] = self.take(2)?.try_into().map_err(|_| FrameError::Truncated)?;
        Ok(u16::from_le_bytes(bytes))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let bytes: [u8; 4] = self.take(4)?.try_into().map_err(|_| FrameError::Truncated)?;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let bytes: [u8; 8] = self.take(8)?.try_into().map_err(|_| FrameError::Truncated)?;
        Ok(u64::from_le_bytes(bytes))
    }

    fn string(&mut self, len: usize) -> Result<String, FrameError> {
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::BadUtf8)
    }

    fn optional_tag(&mut self) -> Result<Option<String>, FrameError> {
        match self.u8()? {
            0 => Ok(None),
            1 => {
                let len = self.u16()? as usize;
                Ok(Some(self.string(len)?))
            }
            _ => Err(FrameError::Truncated),
        }
    }

    fn tensor(&mut self) -> Result<Tensor, FrameError> {
        let ndim = self.u8()?;
        if ndim == 0 || ndim as usize > MAX_WIRE_NDIM {
            return Err(FrameError::BadRank(ndim));
        }
        let mut dims = Vec::with_capacity(ndim as usize);
        let mut numel = 1usize;
        for _ in 0..ndim {
            let d = self.u32()? as usize;
            numel = numel.checked_mul(d).ok_or(FrameError::BadShape)?;
            dims.push(d);
        }
        let payload_len = numel.checked_mul(4).ok_or(FrameError::BadShape)?;
        let bytes = self.take(payload_len)?;
        let mut data = Vec::with_capacity(numel);
        for chunk in bytes.chunks_exact(4) {
            let arr: [u8; 4] = chunk.try_into().map_err(|_| FrameError::Truncated)?;
            data.push(f32::from_le_bytes(arr));
        }
        Tensor::from_vec(data, &dims).map_err(|_| FrameError::BadShape)
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(FrameError::TrailingBytes)
        }
    }
}

/// Decode one frame off the front of `buf`.
///
/// Returns `Ok(None)` when `buf` does not yet hold a complete frame (read
/// more and retry — partial-read reassembly is the caller's loop), or
/// `Ok(Some((frame, consumed)))` with the number of bytes to drop from the
/// front. Any `Err` is a protocol violation that ends the connection.
pub fn decode_frame(buf: &[u8], max_frame: usize) -> Result<Option<(Frame, usize)>, FrameError> {
    let Some(header) = buf.get(..FRAME_HEADER_BYTES) else {
        return Ok(None);
    };
    let header: [u8; 4] = header.try_into().map_err(|_| FrameError::Truncated)?;
    let body_len = u32::from_le_bytes(header) as usize;
    if body_len > max_frame {
        return Err(FrameError::Oversized { len: body_len, max: max_frame });
    }
    if body_len == 0 {
        return Err(FrameError::Truncated);
    }
    let total = FRAME_HEADER_BYTES + body_len;
    let Some(body) = buf.get(FRAME_HEADER_BYTES..total) else {
        return Ok(None);
    };
    let mut c = Cursor::new(body);
    let kind = c.u8()?;
    let frame = match kind {
        KIND_REQUEST => {
            let correlation_id = c.u64()?;
            let priority = match c.u8()? {
                0 => Priority::Interactive,
                1 => Priority::Batch,
                other => return Err(FrameError::BadPriority(other)),
            };
            let deadline_ms = c.u32()?;
            let model_len = c.u16()? as usize;
            let model = c.string(model_len)?;
            let tag = c.optional_tag()?;
            let input = c.tensor()?;
            Frame::Request(RequestFrame { correlation_id, priority, deadline_ms, model, tag, input })
        }
        KIND_RESPONSE => {
            let correlation_id = c.u64()?;
            let batch_id = c.u64()?;
            let model_version = c.u64()?;
            let batch_samples = c.u32()?;
            let queue_wait_us = c.u32()?;
            let latency_us = c.u32()?;
            let tag = c.optional_tag()?;
            let output = c.tensor()?;
            Frame::Response(ResponseFrame {
                correlation_id,
                batch_id,
                model_version,
                batch_samples,
                queue_wait_us,
                latency_us,
                tag,
                output,
            })
        }
        KIND_ERROR => {
            let correlation_id = c.u64()?;
            let code = c.u16()?;
            let retry_after_ms = c.u32()?;
            let msg_len = c.u16()? as usize;
            let message = c.string(msg_len)?;
            Frame::Error(ErrorFrame { correlation_id, code, retry_after_ms, message })
        }
        KIND_BACKPRESSURE => {
            let correlation_id = c.u64()?;
            let retry_after_ms = c.u32()?;
            Frame::Backpressure(BackpressureFrame { correlation_id, retry_after_ms })
        }
        KIND_GOAWAY => Frame::GoAway,
        other => return Err(FrameError::UnknownKind(other)),
    };
    c.finish()?;
    Ok(Some((frame, total)))
}

fn tag_wire_len(tag: &Option<String>) -> Result<usize, FrameError> {
    match tag {
        None => Ok(1),
        Some(t) => {
            if t.len() > u16::MAX as usize {
                return Err(FrameError::Unencodable);
            }
            Ok(1 + 2 + t.len())
        }
    }
}

fn tensor_wire_len(t: &Tensor) -> Result<usize, FrameError> {
    let ndim = t.ndim();
    if ndim == 0 || ndim > MAX_WIRE_NDIM {
        return Err(FrameError::Unencodable);
    }
    if t.shape().iter().any(|&d| d > u32::MAX as usize) {
        return Err(FrameError::Unencodable);
    }
    Ok(1 + 4 * ndim + 4 * t.numel())
}

fn body_len(frame: &Frame) -> Result<usize, FrameError> {
    let len = match frame {
        Frame::Request(rf) => {
            if rf.model.len() > u16::MAX as usize {
                return Err(FrameError::Unencodable);
            }
            1 + 8 + 1 + 4 + 2 + rf.model.len() + tag_wire_len(&rf.tag)? + tensor_wire_len(&rf.input)?
        }
        Frame::Response(rf) => {
            1 + 8 + 8 + 8 + 4 + 4 + 4 + tag_wire_len(&rf.tag)? + tensor_wire_len(&rf.output)?
        }
        Frame::Error(ef) => {
            if ef.message.len() > u16::MAX as usize {
                return Err(FrameError::Unencodable);
            }
            1 + 8 + 2 + 4 + 2 + ef.message.len()
        }
        Frame::Backpressure(_) => 1 + 8 + 4,
        Frame::GoAway => 1,
    };
    Ok(len)
}

fn put_tag(out: &mut Vec<u8>, tag: &Option<String>) {
    match tag {
        None => out.push(0),
        Some(t) => {
            out.push(1);
            out.extend_from_slice(&(t.len() as u16).to_le_bytes());
            out.extend_from_slice(t.as_bytes());
        }
    }
}

fn put_tensor(out: &mut Vec<u8>, t: &Tensor) {
    out.push(t.ndim() as u8);
    for &d in t.shape() {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
    for &v in t.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Append the wire encoding of `frame` (length prefix included) to `out`.
///
/// Fails only when a field does not fit its wire width
/// ([`FrameError::Unencodable`]); nothing is written in that case.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) -> Result<(), FrameError> {
    let body = body_len(frame)?;
    if body > u32::MAX as usize {
        return Err(FrameError::Unencodable);
    }
    out.reserve(FRAME_HEADER_BYTES + body);
    out.extend_from_slice(&(body as u32).to_le_bytes());
    match frame {
        Frame::Request(rf) => {
            out.push(KIND_REQUEST);
            out.extend_from_slice(&rf.correlation_id.to_le_bytes());
            out.push(match rf.priority {
                Priority::Interactive => 0,
                Priority::Batch => 1,
            });
            out.extend_from_slice(&rf.deadline_ms.to_le_bytes());
            out.extend_from_slice(&(rf.model.len() as u16).to_le_bytes());
            out.extend_from_slice(rf.model.as_bytes());
            put_tag(out, &rf.tag);
            put_tensor(out, &rf.input);
        }
        Frame::Response(rf) => {
            out.push(KIND_RESPONSE);
            out.extend_from_slice(&rf.correlation_id.to_le_bytes());
            out.extend_from_slice(&rf.batch_id.to_le_bytes());
            out.extend_from_slice(&rf.model_version.to_le_bytes());
            out.extend_from_slice(&rf.batch_samples.to_le_bytes());
            out.extend_from_slice(&rf.queue_wait_us.to_le_bytes());
            out.extend_from_slice(&rf.latency_us.to_le_bytes());
            put_tag(out, &rf.tag);
            put_tensor(out, &rf.output);
        }
        Frame::Error(ef) => {
            out.push(KIND_ERROR);
            out.extend_from_slice(&ef.correlation_id.to_le_bytes());
            out.extend_from_slice(&ef.code.to_le_bytes());
            out.extend_from_slice(&ef.retry_after_ms.to_le_bytes());
            out.extend_from_slice(&(ef.message.len() as u16).to_le_bytes());
            out.extend_from_slice(ef.message.as_bytes());
        }
        Frame::Backpressure(bf) => {
            out.push(KIND_BACKPRESSURE);
            out.extend_from_slice(&bf.correlation_id.to_le_bytes());
            out.extend_from_slice(&bf.retry_after_ms.to_le_bytes());
        }
        Frame::GoAway => out.push(KIND_GOAWAY),
    }
    Ok(())
}

impl ErrorFrame {
    /// Reconstruct the [`ServeError`] this frame encodes, if its code is one
    /// this build knows ([`PROTOCOL_ERROR_CODE`] and future codes map to
    /// `None`).
    pub fn to_serve_error(&self) -> Option<ServeError> {
        ServeError::from_code(
            self.code,
            &self.message,
            std::time::Duration::from_millis(u64::from(self.retry_after_ms)),
        )
    }
}

/// Build the error frame for a [`ServeError`], carrying its stable numeric
/// code, the live `retry_after` when the variant has one, and the rendered
/// message. ([`ServeError::Overloaded`] is normally mapped to a
/// [`BackpressureFrame`] instead — see the module docs — but encodes fine.)
// quadra-analyze: allow(hot_alloc:to-string, error reply path: runs once per failed request, never on served traffic)
pub fn error_frame(correlation_id: u64, err: &ServeError) -> ErrorFrame {
    let retry_after_ms = match err {
        ServeError::Overloaded { retry_after } => retry_after.as_millis().min(u32::MAX as u128) as u32,
        _ => 0,
    };
    ErrorFrame { correlation_id, code: err.code(), retry_after_ms, message: err.to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const MAX: usize = 1 << 20;

    fn roundtrip(frame: Frame) -> Frame {
        let mut wire = Vec::new();
        encode_frame(&frame, &mut wire).expect("encodes");
        let (decoded, consumed) = decode_frame(&wire, MAX).expect("decodes").expect("complete");
        assert_eq!(consumed, wire.len(), "whole buffer consumed");
        decoded
    }

    fn request() -> RequestFrame {
        RequestFrame {
            correlation_id: 42,
            priority: Priority::Batch,
            deadline_ms: 1500,
            model: "resnet".to_string(),
            tag: Some("session-9".to_string()),
            input: Tensor::from_vec(vec![1.0, -2.5, f32::NAN, 0.0, 3.25, -0.0], &[2, 3]).unwrap(),
        }
    }

    #[test]
    fn request_roundtrips_bitwise() {
        let rf = request();
        let Frame::Request(out) = roundtrip(Frame::Request(rf.clone())) else {
            panic!("wrong kind");
        };
        assert_eq!(out.correlation_id, rf.correlation_id);
        assert_eq!(out.priority, rf.priority);
        assert_eq!(out.deadline_ms, rf.deadline_ms);
        assert_eq!(out.model, rf.model);
        assert_eq!(out.tag, rf.tag);
        assert_eq!(out.input.shape(), rf.input.shape());
        let bits_in: Vec<u32> = rf.input.as_slice().iter().map(|v| v.to_bits()).collect();
        let bits_out: Vec<u32> = out.input.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_in, bits_out, "NaN payloads and signed zeros survive the wire");
    }

    #[test]
    fn response_error_backpressure_goaway_roundtrip() {
        let resp = ResponseFrame {
            correlation_id: 7,
            batch_id: 99,
            model_version: 3,
            batch_samples: 8,
            queue_wait_us: 1234,
            latency_us: 56789,
            tag: None,
            output: Tensor::from_vec(vec![0.25; 10], &[1, 10]).unwrap(),
        };
        assert_eq!(roundtrip(Frame::Response(resp.clone())), Frame::Response(resp));

        let err = ErrorFrame {
            correlation_id: 8,
            code: ServeError::UnknownModel("x".into()).code(),
            retry_after_ms: 0,
            message: "no endpoint serves model `x`".to_string(),
        };
        assert_eq!(roundtrip(Frame::Error(err.clone())), Frame::Error(err));

        let bp = BackpressureFrame { correlation_id: 9, retry_after_ms: 12 };
        assert_eq!(roundtrip(Frame::Backpressure(bp)), Frame::Backpressure(bp));
        assert_eq!(roundtrip(Frame::GoAway), Frame::GoAway);
    }

    #[test]
    fn empty_tag_is_distinct_from_no_tag() {
        let mut rf = request();
        rf.tag = Some(String::new());
        let Frame::Request(out) = roundtrip(Frame::Request(rf)) else { panic!("wrong kind") };
        assert_eq!(out.tag, Some(String::new()));
    }

    #[test]
    fn incomplete_prefix_and_body_ask_for_more_bytes() {
        let mut wire = Vec::new();
        encode_frame(&Frame::Request(request()), &mut wire).unwrap();
        for cut in [0, 1, 3, 4, 5, wire.len() - 1] {
            assert_eq!(decode_frame(&wire[..cut], MAX).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn truncated_body_is_malformed_not_incomplete() {
        // A complete frame whose *declared* length cuts a field in half: the
        // bytes are all there, so this is a protocol violation.
        let mut wire = Vec::new();
        encode_frame(
            &Frame::Backpressure(BackpressureFrame { correlation_id: 1, retry_after_ms: 2 }),
            &mut wire,
        )
        .unwrap();
        // Shrink the declared body length by 2: the cursor runs dry.
        let declared = u32::from_le_bytes([wire[0], wire[1], wire[2], wire[3]]) - 2;
        wire[..4].copy_from_slice(&declared.to_le_bytes());
        wire.truncate(FRAME_HEADER_BYTES + declared as usize);
        assert_eq!(decode_frame(&wire, MAX), Err(FrameError::Truncated));
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut wire = Vec::new();
        encode_frame(&Frame::GoAway, &mut wire).unwrap();
        // Grow the declared length and append a stray byte inside the body.
        let declared = u32::from_le_bytes([wire[0], wire[1], wire[2], wire[3]]) + 1;
        wire[..4].copy_from_slice(&declared.to_le_bytes());
        wire.push(0xAB);
        assert_eq!(decode_frame(&wire, MAX), Err(FrameError::TrailingBytes));
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_buffering() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX as u32 + 1).to_le_bytes());
        assert_eq!(decode_frame(&wire, MAX), Err(FrameError::Oversized { len: MAX + 1, max: MAX }));
    }

    #[test]
    fn zero_length_body_unknown_kind_and_bad_priority_are_rejected() {
        assert_eq!(decode_frame(&0u32.to_le_bytes(), MAX), Err(FrameError::Truncated));

        let mut wire = Vec::new();
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.push(200);
        assert_eq!(decode_frame(&wire, MAX), Err(FrameError::UnknownKind(200)));

        let mut wire = Vec::new();
        encode_frame(&Frame::Request(request()), &mut wire).unwrap();
        // Byte 4 is the kind, 5..13 the corr id, 13 the priority.
        wire[13] = 9;
        assert_eq!(decode_frame(&wire, MAX), Err(FrameError::BadPriority(9)));
    }

    #[test]
    fn garbage_streams_error_rather_than_panic() {
        // Deterministic pseudo-random garbage: every prefix either wants more
        // bytes or reports a typed error — never a panic.
        let mut state = 0x9E3779B97F4A7C15u64;
        let garbage: Vec<u8> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect();
        for len in 0..garbage.len() {
            let _ = decode_frame(&garbage[..len], MAX);
        }
    }

    #[test]
    fn bad_rank_and_utf8_are_rejected() {
        let mut wire = Vec::new();
        encode_frame(&Frame::Request(request()), &mut wire).unwrap();
        // Corrupt the model-name bytes (offset: 4 hdr + 1 kind + 8 corr +
        // 1 prio + 4 deadline + 2 len = 20).
        wire[20] = 0xFF;
        wire[21] = 0xFE;
        assert_eq!(decode_frame(&wire, MAX), Err(FrameError::BadUtf8));

        let too_deep = Tensor::ones(&[1, 1, 1, 1, 1, 1, 1, 1, 1]);
        let rf = RequestFrame { input: too_deep, ..request() };
        let mut out = Vec::new();
        assert_eq!(encode_frame(&Frame::Request(rf), &mut out), Err(FrameError::Unencodable));
        assert!(out.is_empty(), "failed encode writes nothing");
    }

    #[test]
    fn dim_overflow_is_rejected() {
        // Hand-build a request whose dims multiply past usize::MAX.
        let mut wire = Vec::new();
        let mut body = Vec::new();
        body.push(super::KIND_REQUEST);
        body.extend_from_slice(&1u64.to_le_bytes());
        body.push(0); // interactive
        body.extend_from_slice(&0u32.to_le_bytes());
        body.extend_from_slice(&1u16.to_le_bytes());
        body.push(b'm');
        body.push(0); // no tag
        body.push(4); // ndim
        for _ in 0..4 {
            body.extend_from_slice(&u32::MAX.to_le_bytes());
        }
        wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
        wire.extend_from_slice(&body);
        assert_eq!(decode_frame(&wire, MAX), Err(FrameError::BadShape));
    }

    #[test]
    fn error_frame_carries_stable_code_and_retry_hint() {
        let ef = error_frame(5, &ServeError::Overloaded { retry_after: Duration::from_millis(7) });
        assert_eq!(ef.code, ServeError::Overloaded { retry_after: Duration::ZERO }.code());
        assert_eq!(ef.retry_after_ms, 7);
        let ef = error_frame(6, &ServeError::DeadlineExceeded);
        assert_eq!(ef.retry_after_ms, 0);
        assert!(ef.message.contains("deadline"));
    }

    #[test]
    fn two_frames_in_one_buffer_decode_sequentially() {
        let mut wire = Vec::new();
        encode_frame(&Frame::GoAway, &mut wire).unwrap();
        let first_len = wire.len();
        encode_frame(
            &Frame::Backpressure(BackpressureFrame { correlation_id: 3, retry_after_ms: 4 }),
            &mut wire,
        )
        .unwrap();
        let (f1, c1) = decode_frame(&wire, MAX).unwrap().unwrap();
        assert_eq!(f1, Frame::GoAway);
        assert_eq!(c1, first_len);
        let (f2, _) = decode_frame(&wire[c1..], MAX).unwrap().unwrap();
        assert!(matches!(f2, Frame::Backpressure(_)));
    }
}
