//! The dynamic batcher: drains an endpoint's admission queue into padded NCHW
//! batches under the endpoint's [`BatchPolicy`](crate::BatchPolicy), and
//! splits batch outputs back per request.

use crate::admission::{PopResult, TakeResult};
use crate::endpoint::EndpointShared;
use crate::request::PendingInfer;
use quadra_tensor::Tensor;
use std::sync::mpsc::SyncSender;
use std::sync::Arc;
use std::time::Instant;

/// A closed batch on its way to a worker.
pub(crate) struct Batch {
    pub requests: Vec<PendingInfer>,
    pub formed_at: Instant,
}

impl Batch {
    /// Total samples across the batch's requests.
    pub fn samples(&self) -> usize {
        self.requests.iter().map(|r| r.samples).sum()
    }
}

/// Which requests may share a batch: the batch axis is always axis 0 and the
/// trailing axes must match exactly — unless the policy opts into
/// `pad_mixed_spatial`, in which case NCHW inputs only need matching channel
/// counts (H/W are zero-padded to the batch maximum).
pub(crate) fn compat_key(shape: &[usize], pad_mixed_spatial: bool) -> Vec<usize> {
    if shape.len() == 4 && pad_mixed_spatial {
        vec![4, shape[1]]
    } else {
        let mut key = vec![shape.len()];
        key.extend_from_slice(&shape[1..]);
        key
    }
}

/// Concatenate the requests' inputs along axis 0, zero-padding NCHW samples
/// at the bottom/right to the largest H and W in the batch. Returns the batch
/// tensor and the per-request sample counts (in request order).
pub(crate) fn assemble(requests: &[PendingInfer]) -> (Tensor, Vec<usize>) {
    assert!(!requests.is_empty(), "cannot assemble an empty batch");
    let counts: Vec<usize> = requests.iter().map(|r| r.samples).collect();
    let total: usize = counts.iter().sum();
    let first = requests[0].input.shape();
    let needs_padding = first.len() == 4
        && requests.iter().any(|r| r.input.shape()[2] != first[2] || r.input.shape()[3] != first[3]);
    if !needs_padding {
        let refs: Vec<&Tensor> = requests.iter().map(|r| &r.input).collect();
        let batch = Tensor::concat(&refs, 0).expect("batcher only coalesces compatible shapes");
        return (batch, counts);
    }

    let c = first[1];
    let h_max = requests.iter().map(|r| r.input.shape()[2]).max().unwrap();
    let w_max = requests.iter().map(|r| r.input.shape()[3]).max().unwrap();
    let mut batch = Tensor::zeros(&[total, c, h_max, w_max]);
    let dst = batch.as_mut_slice();
    let mut row = 0;
    for r in requests {
        let (n, h, w) = (r.input.shape()[0], r.input.shape()[2], r.input.shape()[3]);
        let src = r.input.as_slice();
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..h {
                    let s = ((ni * c + ci) * h + hi) * w;
                    let d = (((row + ni) * c + ci) * h_max + hi) * w_max;
                    dst[d..d + w].copy_from_slice(&src[s..s + w]);
                }
            }
        }
        row += n;
    }
    (batch, counts)
}

/// The batcher thread body of one endpoint.
///
/// Blocks on an empty admission queue (no polling). The first popped request
/// opens a batch and a wait-budget window ([`EndpointShared::wait_budget`]:
/// `max_wait` under the static policy, arrival/service-rate driven under the
/// adaptive one); the batch closes when it reaches `max_batch_size` samples or
/// the window expires. Shape-incompatible requests are left in the queue —
/// they seed later batches instead of closing this one. The batch channel is
/// a rendezvous (`sync_channel(0)`), so the batcher never runs more than one
/// batch ahead of the workers — priority order decided at the queue is
/// preserved at execution within one batch of slack. On shutdown the queue is
/// drained so every admitted request still gets its response.
pub(crate) fn run(shared: Arc<EndpointShared>, batch_tx: SyncSender<Batch>) {
    let policy = shared.config.policy;
    loop {
        let first = match shared.queue.pop_blocking() {
            PopResult::Request(r) => r,
            PopResult::Closed => break,
        };
        let key = compat_key(first.input.shape(), policy.pad_mixed_spatial);
        let mut samples = first.samples;
        let mut requests = vec![first];
        if samples < policy.max_batch_size {
            let deadline = Instant::now() + shared.wait_budget(samples);
            while samples < policy.max_batch_size {
                match shared.queue.take_compatible(
                    &key,
                    policy.pad_mixed_spatial,
                    policy.max_batch_size - samples,
                    deadline,
                ) {
                    TakeResult::Taken(reqs) => {
                        for r in reqs {
                            samples += r.samples;
                            requests.push(r);
                        }
                    }
                    TakeResult::TimedOut | TakeResult::Closed => break,
                }
            }
        }
        // A send error means every worker is gone; dropping the batch here
        // disconnects the reply channels, which clients observe as shutdown.
        if batch_tx.send(Batch { requests, formed_at: Instant::now() }).is_err() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Priority, ServeError};
    use std::sync::mpsc;

    fn pend(input: Tensor) -> (PendingInfer, mpsc::Receiver<Result<crate::InferResponse, ServeError>>) {
        let (tx, rx) = mpsc::channel();
        let samples = input.shape()[0];
        (
            PendingInfer {
                id: 0,
                input,
                samples,
                priority: Priority::Interactive,
                submitted_at: Instant::now(),
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn compat_key_requires_exact_shapes_by_default() {
        // Without the padding opt-in, mixed spatial sizes must not share a
        // batch — padding would change the served predictions.
        assert_ne!(compat_key(&[1, 3, 8, 8], false), compat_key(&[2, 3, 16, 4], false));
        assert_eq!(compat_key(&[1, 3, 8, 8], false), compat_key(&[2, 3, 8, 8], false));
        assert_eq!(compat_key(&[5, 10], false), compat_key(&[1, 10], false));
        assert_ne!(compat_key(&[5, 10], false), compat_key(&[5, 11], false));
        // A 2-d [n, 12] input must not pool with a 3-d [n, 3, 4] one.
        assert_ne!(compat_key(&[1, 12], false), compat_key(&[1, 3, 4], false));
    }

    #[test]
    fn compat_key_pools_nchw_by_channel_when_padding_enabled() {
        assert_eq!(compat_key(&[1, 3, 8, 8], true), compat_key(&[2, 3, 16, 4], true));
        assert_ne!(compat_key(&[1, 3, 8, 8], true), compat_key(&[1, 4, 8, 8], true));
        // The opt-in only affects 4-d inputs.
        assert_ne!(compat_key(&[5, 10], true), compat_key(&[5, 11], true));
    }

    #[test]
    fn assemble_concatenates_same_size_inputs() {
        let (a, _ra) = pend(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap());
        let (b, _rb) = pend(Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]).unwrap());
        let (batch, counts) = assemble(&[a, b]);
        assert_eq!(batch.shape(), &[3, 2]);
        assert_eq!(counts, vec![1, 2]);
        assert_eq!(batch.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn assemble_zero_pads_mixed_spatial_sizes() {
        // 1×1×1×2 and 1×1×2×1 coalesce into a 2×1×2×2 zero-padded batch.
        let (a, _ra) = pend(Tensor::from_vec(vec![1.0, 2.0], &[1, 1, 1, 2]).unwrap());
        let (b, _rb) = pend(Tensor::from_vec(vec![3.0, 4.0], &[1, 1, 2, 1]).unwrap());
        let (batch, counts) = assemble(&[a, b]);
        assert_eq!(batch.shape(), &[2, 1, 2, 2]);
        assert_eq!(counts, vec![1, 1]);
        assert_eq!(batch.as_slice(), &[1.0, 2.0, 0.0, 0.0, 3.0, 0.0, 4.0, 0.0]);
    }
}
