//! Integration tests of the training-level components: hybrid back-propagation
//! equivalence, memory profiling and the quadratic optimizer's decision.

use quadralib::core::{build_model, LayerSpec, MemoryProfiler, ModelConfig, NeuronType, QuadraticOptimizer};
use quadralib::nn::{CrossEntropyLoss, Layer, Loss, Optimizer, Sgd, SgdConfig};
use quadralib::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn qdnn_config() -> ModelConfig {
    ModelConfig::new(
        "hybrid-test",
        3,
        12,
        4,
        vec![
            LayerSpec::qconv3x3(NeuronType::Ours, 8),
            LayerSpec::MaxPool { kernel: 2 },
            LayerSpec::qconv3x3(NeuronType::T2And4, 8),
            LayerSpec::GlobalAvgPool,
            LayerSpec::Linear { out_features: 4, relu: false },
        ],
    )
}

/// Hybrid BP must produce *identical* training trajectories to default BP — it
/// only changes what is cached, not the math.
#[test]
fn hybrid_backprop_matches_default_training_trajectory() {
    let cfg = qdnn_config();
    let mut rng = StdRng::seed_from_u64(1);
    let x = Tensor::randn(&[8, 3, 12, 12], 0.0, 1.0, &mut rng);
    let y = Tensor::from_vec((0..8).map(|i| (i % 4) as f32).collect(), &[8]).unwrap();

    let run = |hybrid: bool| {
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = build_model(&cfg, &mut rng);
        model.set_memory_saving(hybrid);
        let mut opt = Sgd::new(SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 0.0, nesterov: false });
        let loss_fn = CrossEntropyLoss::new();
        let mut losses = Vec::new();
        for _ in 0..5 {
            let logits = model.forward(&x, true);
            let (l, grad) = loss_fn.compute(&logits, &y);
            model.backward(&grad);
            let mut params = model.params_mut();
            opt.step(&mut params);
            opt.zero_grad(&mut params);
            losses.push(l);
        }
        (losses, model.forward(&x, false))
    };
    let (losses_default, out_default) = run(false);
    let (losses_hybrid, out_hybrid) = run(true);
    for (a, b) in losses_default.iter().zip(&losses_hybrid) {
        assert!((a - b).abs() < 1e-4, "loss diverged: {} vs {}", a, b);
    }
    assert!(out_default.allclose(&out_hybrid, 1e-3));
}

/// The profiler's measured peak must drop in hybrid mode, and the quadratic
/// optimizer must pick hybrid mode exactly when the budget requires it.
#[test]
fn profiler_and_quadratic_optimizer_interact_consistently() {
    let cfg = qdnn_config();
    let mut rng = StdRng::seed_from_u64(3);
    let mut model = build_model(&cfg, &mut rng);
    let input = Tensor::randn(&[8, 3, 12, 12], 0.0, 1.0, &mut rng);
    let profiler = MemoryProfiler::new();

    let (default_report, _) = profiler.profile_step(&mut model, &input, 0);
    model.set_memory_saving(true);
    let (hybrid_report, _) = profiler.profile_step(&mut model, &input, 0);
    model.set_memory_saving(false);
    assert!(hybrid_report.peak_activation_bytes < default_report.peak_activation_bytes);

    // Budget above the default requirement -> stays in default mode.
    let generous = QuadraticOptimizer::new(Sgd::new(SgdConfig::default()), default_report.total_bytes() * 2);
    let d1 = generous.configure_memory(&mut model, &input);
    assert_eq!(d1.chosen_mode, quadralib::core::BackpropMode::Default);
    // Budget below the default requirement -> hybrid mode.
    let tight = QuadraticOptimizer::new(Sgd::new(SgdConfig::default()), hybrid_report.total_bytes());
    let d2 = tight.configure_memory(&mut model, &input);
    assert_eq!(d2.chosen_mode, quadralib::core::BackpropMode::Hybrid);
    assert!(model.memory_saving());
}

/// The analytic config-based estimate must rank models the same way as actual
/// measurement (first-order < quadratic), which is what Fig. 5 relies on.
#[test]
fn analytic_estimate_ranks_models_like_measurement() {
    let quadratic = qdnn_config();
    let first_order = ModelConfig::new(
        "first",
        3,
        12,
        4,
        vec![
            LayerSpec::conv3x3(8),
            LayerSpec::MaxPool { kernel: 2 },
            LayerSpec::conv3x3(8),
            LayerSpec::GlobalAvgPool,
            LayerSpec::Linear { out_features: 4, relu: false },
        ],
    );
    let profiler = MemoryProfiler::new();
    let est_first = profiler.estimate_from_config(&first_order, 16, true);
    let est_quad = profiler.estimate_from_config(&quadratic, 16, true);
    assert!(est_quad.total_bytes() > est_first.total_bytes());

    let mut rng = StdRng::seed_from_u64(4);
    let input = Tensor::randn(&[16, 3, 12, 12], 0.0, 1.0, &mut rng);
    let mut m_first = build_model(&first_order, &mut rng);
    let mut m_quad = build_model(&quadratic, &mut rng);
    let (r_first, _) = profiler.profile_step(&mut m_first, &input, 0);
    let (r_quad, _) = profiler.profile_step(&mut m_quad, &input, 0);
    assert!(r_quad.total_bytes() > r_first.total_bytes());
}
