//! Gateway tuning knobs.

use std::time::Duration;

/// Configuration of the socket front-end.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Address to bind, e.g. `"127.0.0.1:0"` for an ephemeral port.
    pub listen: String,
    /// Maximum frame *body* length accepted or produced, in bytes. A peer
    /// declaring a larger frame is disconnected before any payload is
    /// buffered. 16 MiB fits a `[256, 3, 64, 64]` f32 batch with room to
    /// spare.
    pub max_frame_bytes: usize,
    /// Pause reading from a connection once its outbound buffer holds at
    /// least this many bytes (the high-water mark): a client that stops
    /// draining responses stops being able to submit, instead of growing the
    /// gateway's memory without bound.
    pub write_high_water: usize,
    /// Resume reading once the outbound buffer falls back below this many
    /// bytes. Must be below [`GatewayConfig::write_high_water`]; the gap is
    /// hysteresis so a connection hovering at the mark doesn't flap its
    /// readiness registration on every frame.
    pub write_low_water: usize,
    /// Maximum simultaneous connections; further accepts are closed
    /// immediately.
    pub max_connections: usize,
    /// Bound on the graceful-drain phase of shutdown: how long to wait for
    /// in-flight responses to settle and outbound buffers to flush before
    /// closing connections anyway.
    pub drain_timeout: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            listen: "127.0.0.1:0".to_string(),
            max_frame_bytes: 16 << 20,
            write_high_water: 4 << 20,
            write_low_water: 1 << 20,
            max_connections: 4096,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

impl GatewayConfig {
    /// Validate watermark ordering and non-degenerate limits.
    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.max_frame_bytes == 0 {
            return Err("max_frame_bytes must be positive".to_string());
        }
        if self.write_low_water >= self.write_high_water {
            return Err(format!(
                "write_low_water ({}) must be below write_high_water ({})",
                self.write_low_water, self.write_high_water
            ));
        }
        if self.max_connections == 0 {
            return Err("max_connections must be positive".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert_eq!(GatewayConfig::default().validate(), Ok(()));
    }

    #[test]
    fn inverted_watermarks_are_rejected() {
        let cfg = GatewayConfig { write_high_water: 100, write_low_water: 100, ..GatewayConfig::default() };
        assert!(cfg.validate().is_err());
        assert!(GatewayConfig { max_frame_bytes: 0, ..GatewayConfig::default() }.validate().is_err());
        assert!(GatewayConfig { max_connections: 0, ..GatewayConfig::default() }.validate().is_err());
    }
}
