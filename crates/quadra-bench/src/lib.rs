//! Shared harness code for the QuadraLib-rs benchmark binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (`table1`–`table6`, `fig5`, `fig7`, `fig8`, `fig10`); this library holds the
//! classification-training harness and the table-printing helpers they share.
//!
//! All harnesses run at a CPU-friendly scale by default; set the environment
//! variable `QUADRA_SCALE=full` for larger (slower) runs that are closer to the
//! paper's settings.

use quadra_core::{build_model, ModelConfig};
use quadra_data::ShapeImageDataset;
use quadra_nn::{CosineAnnealingLr, CrossEntropyLoss, Layer, Sgd, SgdConfig, Trainer, TrainerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Experiment scale selected through the `QUADRA_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small, fast settings (default) — minutes on a laptop CPU.
    Quick,
    /// Larger settings closer to the paper's configuration.
    Full,
}

/// Read the experiment scale from the environment.
pub fn scale() -> Scale {
    match std::env::var("QUADRA_SCALE").as_deref() {
        Ok("full") | Ok("FULL") => Scale::Full,
        _ => Scale::Quick,
    }
}

/// Result row of one classification training run.
#[derive(Debug, Clone)]
pub struct ClassificationResult {
    /// Variant name (e.g. "First-order", "QuadraNN").
    pub name: String,
    /// Number of convolution layers of the configuration.
    pub conv_layers: usize,
    /// Trainable parameter count.
    pub params: usize,
    /// Mean training time per batch in milliseconds.
    pub train_ms_per_batch: f32,
    /// Modelled training memory in MiB (params + grads + optimizer + peak activations).
    pub train_memory_mib: f64,
    /// Mean inference time per batch in milliseconds.
    pub test_ms_per_batch: f32,
    /// Final training accuracy.
    pub train_acc: f32,
    /// Held-out test accuracy.
    pub test_acc: f32,
}

/// Hyper-parameters of a harness training run.
#[derive(Debug, Clone, Copy)]
pub struct RunSettings {
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate (annealed with cosine schedule, as in the paper).
    pub lr: f32,
    /// Seed for model init and shuffling.
    pub seed: u64,
}

impl Default for RunSettings {
    fn default() -> Self {
        RunSettings { epochs: 6, batch_size: 32, lr: 0.05, seed: 0 }
    }
}

/// Train a model described by `config` on a shape-image dataset and evaluate it
/// on a held-out set, reporting the Table 3 metrics.
pub fn run_classification(
    name: &str,
    config: &ModelConfig,
    train: &ShapeImageDataset,
    test: &ShapeImageDataset,
    settings: RunSettings,
) -> ClassificationResult {
    let mut rng = StdRng::seed_from_u64(settings.seed);
    let mut model = build_model(config, &mut rng);
    let params = model.param_count();
    let mut trainer = Trainer::new(TrainerConfig {
        epochs: settings.epochs,
        batch_size: settings.batch_size,
        shuffle: true,
        seed: settings.seed,
        verbose: false,
    });
    let mut opt = Sgd::new(SgdConfig { lr: settings.lr, momentum: 0.9, weight_decay: 5e-4, nesterov: false });
    let scheduler = CosineAnnealingLr::new(settings.lr, settings.epochs.max(1), 1e-4);
    let report = trainer.fit(
        &mut model,
        &CrossEntropyLoss::new(),
        &mut opt,
        &scheduler,
        &train.images,
        &train.labels,
        None,
    );
    let (test_acc, _) = trainer.evaluate(&mut model, &test.images, &test.labels);
    ClassificationResult {
        name: name.to_string(),
        conv_layers: config.conv_layer_count(),
        params,
        train_ms_per_batch: report.train_time_per_batch_ms,
        train_memory_mib: report.total_train_memory_bytes() as f64 / (1024.0 * 1024.0),
        test_ms_per_batch: report.test_time_per_batch_ms,
        train_acc: report.final_train_acc(),
        test_acc,
    }
}

/// Print a fixed-width text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {} ===", title);
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter().map(|r| r.get(i).map(|c| c.len()).unwrap_or(0)).chain([h.len()]).max().unwrap_or(0)
        })
        .collect();
    let line = |cells: Vec<String>| {
        let mut s = String::from("| ");
        for (c, w) in cells.iter().zip(&widths) {
            s.push_str(&format!("{:<width$} | ", c, width = w));
        }
        s
    };
    println!("{}", line(headers.iter().map(|s| s.to_string()).collect()));
    println!("|{}|", widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|"));
    for r in rows {
        println!("{}", line(r.clone()));
    }
}

/// Format a [`ClassificationResult`] as a Table 3-style row.
pub fn classification_row(r: &ClassificationResult) -> Vec<String> {
    vec![
        r.name.clone(),
        r.conv_layers.to_string(),
        format!("{:.2e}", r.params as f64),
        format!("{:.1}ms", r.train_ms_per_batch),
        format!("{:.1}MiB", r.train_memory_mib),
        format!("{:.1}ms", r.test_ms_per_batch),
        format!("{:.2}%", r.train_acc * 100.0),
        format!("{:.2}%", r.test_acc * 100.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadra_core::{LayerSpec, NeuronType};

    #[test]
    fn scale_defaults_to_quick() {
        std::env::remove_var("QUADRA_SCALE");
        assert_eq!(scale(), Scale::Quick);
    }

    #[test]
    fn classification_harness_learns_a_tiny_problem() {
        let cfg = ModelConfig::new(
            "tiny",
            3,
            12,
            3,
            vec![
                LayerSpec::qconv3x3(NeuronType::Ours, 6),
                LayerSpec::MaxPool { kernel: 2 },
                LayerSpec::GlobalAvgPool,
                LayerSpec::Linear { out_features: 3, relu: false },
            ],
        );
        let train = ShapeImageDataset::generate(90, 3, 12, 3, 0.05, 1);
        let test = ShapeImageDataset::generate(30, 3, 12, 3, 0.05, 2);
        let result = run_classification(
            "tiny-q",
            &cfg,
            &train,
            &test,
            RunSettings { epochs: 8, batch_size: 16, lr: 0.05, seed: 0 },
        );
        assert_eq!(result.conv_layers, 1);
        assert!(result.params > 0);
        assert!(result.train_acc > 0.4, "train acc {}", result.train_acc);
        assert!(result.train_memory_mib > 0.0);
        let row = classification_row(&result);
        assert_eq!(row.len(), 8);
        print_table("test", &["a", "b", "c", "d", "e", "f", "g", "h"], &[row]);
    }
}
