//! Element-wise activation layers: ReLU, LeakyReLU, Sigmoid, Tanh.

use crate::layer::Layer;
use quadra_tensor::Tensor;

/// Rectified linear unit, `y = max(x, 0)`.
#[derive(Default)]
pub struct Relu {
    mask: Option<Tensor>,
}

impl Relu {
    /// Create a ReLU activation layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        self.mask = Some(x.map(|v| if v > 0.0 { 1.0 } else { 0.0 }));
        x.relu()
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.take().expect("backward called before forward");
        grad_out.mul(&mask).expect("mask shape")
    }

    fn cached_bytes(&self) -> usize {
        self.mask.as_ref().map(|m| m.nbytes()).unwrap_or(0)
    }

    fn clear_cache(&mut self) {
        self.mask = None;
    }

    fn layer_type(&self) -> &'static str {
        "relu"
    }
}

/// Leaky rectified linear unit, `y = x` for `x >= 0` else `slope * x`.
pub struct LeakyRelu {
    slope: f32,
    mask: Option<Tensor>,
}

impl LeakyRelu {
    /// Create a leaky-ReLU with the given negative slope (0.2 is common for GANs).
    pub fn new(slope: f32) -> Self {
        LeakyRelu { slope, mask: None }
    }
}

impl Layer for LeakyRelu {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let slope = self.slope;
        self.mask = Some(x.map(|v| if v >= 0.0 { 1.0 } else { slope }));
        x.leaky_relu(slope)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.take().expect("backward called before forward");
        grad_out.mul(&mask).expect("mask shape")
    }

    fn cached_bytes(&self) -> usize {
        self.mask.as_ref().map(|m| m.nbytes()).unwrap_or(0)
    }

    fn clear_cache(&mut self) {
        self.mask = None;
    }

    fn layer_type(&self) -> &'static str {
        "leaky_relu"
    }
}

/// Logistic sigmoid activation.
#[derive(Default)]
pub struct Sigmoid {
    output: Option<Tensor>,
}

impl Sigmoid {
    /// Create a sigmoid activation layer.
    pub fn new() -> Self {
        Sigmoid { output: None }
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let y = x.sigmoid();
        self.output = Some(y.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self.output.take().expect("backward called before forward");
        let dy = y.mul(&y.map(|v| 1.0 - v)).expect("shape");
        grad_out.mul(&dy).expect("shape")
    }

    fn cached_bytes(&self) -> usize {
        self.output.as_ref().map(|m| m.nbytes()).unwrap_or(0)
    }

    fn clear_cache(&mut self) {
        self.output = None;
    }

    fn layer_type(&self) -> &'static str {
        "sigmoid"
    }
}

/// Hyperbolic-tangent activation (used by the GAN generator output).
#[derive(Default)]
pub struct Tanh {
    output: Option<Tensor>,
}

impl Tanh {
    /// Create a tanh activation layer.
    pub fn new() -> Self {
        Tanh { output: None }
    }
}

impl Layer for Tanh {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let y = x.tanh();
        self.output = Some(y.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self.output.take().expect("backward called before forward");
        let dy = y.map(|v| 1.0 - v * v);
        grad_out.mul(&dy).expect("shape")
    }

    fn cached_bytes(&self) -> usize {
        self.output.as_ref().map(|m| m.nbytes()).unwrap_or(0)
    }

    fn clear_cache(&mut self) {
        self.output = None;
    }

    fn layer_type(&self) -> &'static str {
        "tanh"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadra_autograd::{check_close, numeric_gradient};

    #[test]
    fn relu_forward_backward() {
        let mut relu = Relu::new();
        let x = Tensor::from_slice(&[-2.0, 0.0, 3.0]);
        let y = relu.forward(&x, true);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 3.0]);
        let g = relu.backward(&Tensor::from_slice(&[1.0, 1.0, 1.0]));
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0]);
        assert_eq!(relu.layer_type(), "relu");
        assert_eq!(relu.cached_bytes(), 0); // mask consumed by backward
        let _ = relu.forward(&x, true);
        assert!(relu.cached_bytes() > 0);
        relu.clear_cache();
        assert_eq!(relu.cached_bytes(), 0);
    }

    #[test]
    fn leaky_relu_forward_backward() {
        let mut lr = LeakyRelu::new(0.1);
        let x = Tensor::from_slice(&[-2.0, 3.0]);
        let y = lr.forward(&x, true);
        assert_eq!(y.as_slice(), &[-0.2, 3.0]);
        let g = lr.backward(&Tensor::from_slice(&[1.0, 1.0]));
        assert_eq!(g.as_slice(), &[0.1, 1.0]);
        assert_eq!(lr.layer_type(), "leaky_relu");
    }

    #[test]
    fn sigmoid_gradcheck() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        let y = s.forward(&x, true);
        let gin = s.backward(&Tensor::ones_like(&y));
        let numeric = numeric_gradient(|t| t.sigmoid().sum(), &x, 1e-3);
        assert!(check_close(&gin, &numeric).passes(1e-3));
        assert_eq!(s.layer_type(), "sigmoid");
        let _ = s.forward(&x, true);
        assert!(s.cached_bytes() > 0);
        s.clear_cache();
        assert_eq!(s.cached_bytes(), 0);
    }

    #[test]
    fn tanh_gradcheck() {
        let mut t = Tanh::new();
        let x = Tensor::from_slice(&[-0.5, 0.25, 1.5]);
        let y = t.forward(&x, true);
        let gin = t.backward(&Tensor::ones_like(&y));
        let numeric = numeric_gradient(|v| v.tanh().sum(), &x, 1e-3);
        assert!(check_close(&gin, &numeric).passes(1e-3));
        assert_eq!(t.layer_type(), "tanh");
        let _ = t.forward(&x, true);
        assert!(t.cached_bytes() > 0);
        t.clear_cache();
        assert_eq!(t.cached_bytes(), 0);
    }

    #[test]
    fn activations_have_no_parameters() {
        assert_eq!(Relu::new().params().len(), 0);
        assert_eq!(LeakyRelu::new(0.2).params().len(), 0);
        assert_eq!(Sigmoid::new().params().len(), 0);
        assert_eq!(Tanh::new().params().len(), 0);
    }
}
