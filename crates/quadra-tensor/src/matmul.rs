//! Matrix multiplication: 2-D GEMM (blocked, see [`crate::gemm`]) and batched
//! matmul, plus the transpose-free `matmul_nt` / `matmul_tn` entry points the
//! layer backward passes use.

use crate::error::{Result, TensorError};
use crate::gemm::{gemm, gemm_into, gemm_nt, gemm_tn};
use crate::tensor::Tensor;
use rayon::prelude::*;

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] · [k, n] -> [m, n]`.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.ndim() != 2 || other.ndim() != 2 {
            return Err(TensorError::IncompatibleShapes {
                op: "matmul",
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        if k != k2 {
            return Err(TensorError::IncompatibleShapes {
                op: "matmul",
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        let c = gemm(self.as_slice(), other.as_slice(), m, k, n);
        Tensor::from_vec(c, &[m, n])
    }

    /// Matrix product with a transposed right operand: `[m, k] · [n, k]ᵀ -> [m, n]`.
    ///
    /// Equivalent to `self.matmul(&other.transpose()?)` but without
    /// materialising the transposed copy — the kernel reads `other` with
    /// swapped strides while packing.
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor> {
        if self.ndim() != 2 || other.ndim() != 2 || self.shape()[1] != other.shape()[1] {
            return Err(TensorError::IncompatibleShapes {
                op: "matmul_nt",
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let n = other.shape()[0];
        let c = gemm_nt(self.as_slice(), other.as_slice(), m, k, n);
        Tensor::from_vec(c, &[m, n])
    }

    /// Matrix product with a transposed left operand: `[k, m]ᵀ · [k, n] -> [m, n]`.
    ///
    /// Equivalent to `self.transpose()?.matmul(other)` but transpose-free.
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor> {
        if self.ndim() != 2 || other.ndim() != 2 || self.shape()[0] != other.shape()[0] {
            return Err(TensorError::IncompatibleShapes {
                op: "matmul_tn",
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        let (k, m) = (self.shape()[0], self.shape()[1]);
        let n = other.shape()[1];
        let c = gemm_tn(self.as_slice(), other.as_slice(), m, k, n);
        Tensor::from_vec(c, &[m, n])
    }

    /// Batched matrix product of two rank-3 tensors: `[b, m, k] · [b, k, n] -> [b, m, n]`.
    pub fn bmm(&self, other: &Tensor) -> Result<Tensor> {
        if self.ndim() != 3 || other.ndim() != 3 {
            return Err(TensorError::IncompatibleShapes {
                op: "bmm",
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        let (b, m, k) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        let (b2, k2, n) = (other.shape()[0], other.shape()[1], other.shape()[2]);
        if b != b2 || k != k2 {
            return Err(TensorError::IncompatibleShapes {
                op: "bmm",
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        let a = self.as_slice();
        let bb = other.as_slice();
        let mut out = vec![0.0f32; b * m * n];
        if b > 0 && m * n > 0 {
            // Each batch writes its slice of `out` in place; the inner kernel
            // stays serial except for single-batch calls, where row-block
            // parallelism is the only available layer.
            out.par_chunks_mut(m * n).enumerate().for_each(|(i, chunk)| {
                gemm_into(
                    chunk,
                    &a[i * m * k..(i + 1) * m * k],
                    &bb[i * k * n..(i + 1) * k * n],
                    m,
                    k,
                    n,
                    b == 1,
                );
            });
        }
        Tensor::from_vec(out, &[b, m, n])
    }

    /// Matrix–vector product: `[m, k] · [k] -> [m]`.
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor> {
        if self.ndim() != 2 || v.ndim() != 1 || self.shape()[1] != v.shape()[0] {
            return Err(TensorError::IncompatibleShapes {
                op: "matvec",
                lhs: self.shape().to_vec(),
                rhs: v.shape().to_vec(),
            });
        }
        let m = self.shape()[0];
        let k = self.shape()[1];
        let a = self.as_slice();
        let x = v.as_slice();
        let data: Vec<f32> =
            (0..m).map(|i| a[i * k..(i + 1) * k].iter().zip(x.iter()).map(|(p, q)| p * q).sum()).collect();
        Tensor::from_vec(data, &[m])
    }

    /// Dot product of two rank-1 tensors.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        if self.ndim() != 1 || other.ndim() != 1 || self.numel() != other.numel() {
            return Err(TensorError::IncompatibleShapes {
                op: "dot",
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        Ok(self.as_slice().iter().zip(other.as_slice()).map(|(a, b)| a * b).sum())
    }

    /// Outer product of two rank-1 tensors: `[m] ⊗ [n] -> [m, n]`.
    pub fn outer(&self, other: &Tensor) -> Result<Tensor> {
        if self.ndim() != 1 || other.ndim() != 1 {
            return Err(TensorError::IncompatibleShapes {
                op: "outer",
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        let m = self.numel();
        let n = other.numel();
        let a = self.as_slice();
        let b = other.as_slice();
        let mut data = Vec::with_capacity(m * n);
        for &ai in a {
            for &bj in b {
                data.push(ai * bj);
            }
        }
        Tensor::from_vec(data, &[m, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    /// Naive reference matmul for cross-checking the optimised kernel.
    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.at(&[i, p]) * b.at(&[p, j]);
                }
                out.set(&[i, j], s);
            }
        }
        out
    }

    #[test]
    fn small_matmul_exact() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.matmul(&Tensor::eye(2)).unwrap().as_slice(), a.as_slice());
        assert_eq!(Tensor::eye(2).matmul(&a).unwrap().as_slice(), a.as_slice());
    }

    #[test]
    fn matches_naive_on_random_large() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::randn(&[33, 17], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[17, 29], 0.0, 1.0, &mut rng);
        let fast = a.matmul(&b).unwrap();
        let slow = naive_matmul(&a, &b);
        assert!(fast.allclose(&slow, 1e-4));
    }

    #[test]
    fn shape_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
        assert!(a.matmul(&Tensor::zeros(&[3])).is_err());
        assert!(Tensor::zeros(&[2, 2, 2]).matmul(&a).is_err());
    }

    #[test]
    fn bmm_batches_independently() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::randn(&[4, 5, 6], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[4, 6, 3], 0.0, 1.0, &mut rng);
        let c = a.bmm(&b).unwrap();
        assert_eq!(c.shape(), &[4, 5, 3]);
        // check batch 2 against 2-D matmul of the slices
        let a2 = Tensor::from_vec(a.as_slice()[2 * 30..3 * 30].to_vec(), &[5, 6]).unwrap();
        let b2 = Tensor::from_vec(b.as_slice()[2 * 18..3 * 18].to_vec(), &[6, 3]).unwrap();
        let c2 = Tensor::from_vec(c.as_slice()[2 * 15..3 * 15].to_vec(), &[5, 3]).unwrap();
        assert!(c2.allclose(&a2.matmul(&b2).unwrap(), 1e-5));
        assert!(a.bmm(&Tensor::zeros(&[3, 6, 3])).is_err());
        assert!(a.bmm(&Tensor::zeros(&[4, 7, 3])).is_err());
        assert!(a.bmm(&Tensor::zeros(&[4, 6])).is_err());
    }

    #[test]
    fn matvec_dot_outer() {
        let m = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let v = t(&[1.0, -1.0], &[2]);
        assert_eq!(m.matvec(&v).unwrap().as_slice(), &[-1.0, -1.0]);
        assert!(m.matvec(&Tensor::zeros(&[3])).is_err());
        assert_eq!(v.dot(&v).unwrap(), 2.0);
        assert!(v.dot(&Tensor::zeros(&[3])).is_err());
        let o = v.outer(&t(&[2.0, 3.0], &[2])).unwrap();
        assert_eq!(o.as_slice(), &[2.0, 3.0, -2.0, -3.0]);
        assert!(m.outer(&v).is_err());
    }

    #[test]
    fn matmul_nt_tn_match_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(21);
        let a = Tensor::randn(&[9, 13], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[11, 13], 0.0, 1.0, &mut rng);
        let nt = a.matmul_nt(&b).unwrap();
        assert_eq!(nt.shape(), &[9, 11]);
        assert!(nt.allclose(&a.matmul(&b.transpose().unwrap()).unwrap(), 1e-4));
        assert!(a.matmul_nt(&Tensor::zeros(&[11, 12])).is_err());
        assert!(a.matmul_nt(&Tensor::zeros(&[13])).is_err());

        let at = Tensor::randn(&[13, 9], 0.0, 1.0, &mut rng);
        let c = Tensor::randn(&[13, 7], 0.0, 1.0, &mut rng);
        let tn = at.matmul_tn(&c).unwrap();
        assert_eq!(tn.shape(), &[9, 7]);
        assert!(tn.allclose(&at.transpose().unwrap().matmul(&c).unwrap(), 1e-4));
        assert!(at.matmul_tn(&Tensor::zeros(&[12, 7])).is_err());
        assert!(at.matmul_tn(&Tensor::zeros(&[13])).is_err());
    }

    #[test]
    fn matmul_propagates_non_finite_values() {
        // Regression: the old kernel skipped `a == 0.0` rows, silently turning
        // 0·inf and 0·NaN into 0.0 instead of NaN as IEEE-754 requires.
        let a = t(&[0.0, 0.0], &[1, 2]);
        let b = t(&[f32::INFINITY, f32::NAN, 1.0, 2.0], &[2, 2]);
        let c = a.matmul(&b).unwrap();
        assert!(c.as_slice()[0].is_nan(), "0·inf must yield NaN, got {}", c.as_slice()[0]);
        assert!(c.as_slice()[1].is_nan(), "0·NaN must yield NaN, got {}", c.as_slice()[1]);
        // And through bmm as well.
        let ab = a.reshape(&[1, 1, 2]).unwrap();
        let bb = b.reshape(&[1, 2, 2]).unwrap();
        assert!(ab.bmm(&bb).unwrap().has_non_finite());
    }

    #[test]
    fn gemm_zero_dimensions() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[0, 2]);
        assert_eq!(c.numel(), 0);
        // bmm with an empty row dimension must not panic either.
        let e = Tensor::zeros(&[2, 0, 3]).bmm(&Tensor::zeros(&[2, 3, 4])).unwrap();
        assert_eq!(e.shape(), &[2, 0, 4]);
    }
}
