//! VGG-style plain convolutional backbones (Simonyan & Zisserman 2014), the
//! main "plain structure" the paper experiments with (VGG-8 / VGG-16).

use quadra_core::{LayerSpec, ModelConfig};

/// The VGG depths used in the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VggVariant {
    /// 5 convolution layers + classifier (the paper's "VGG-8").
    Vgg8,
    /// 8 convolution layers + classifier.
    Vgg11,
    /// 13 convolution layers + classifier (the paper's "VGG-16").
    Vgg16,
}

impl VggVariant {
    /// The per-stage convolution counts of the variant.
    fn stage_convs(&self) -> [usize; 5] {
        match self {
            VggVariant::Vgg8 => [1, 1, 1, 1, 1],
            VggVariant::Vgg11 => [1, 1, 2, 2, 2],
            VggVariant::Vgg16 => [2, 2, 3, 3, 3],
        }
    }

    /// Number of convolution layers in the backbone.
    pub fn conv_layers(&self) -> usize {
        self.stage_convs().iter().sum()
    }
}

/// Build a VGG configuration.
///
/// `width_mult` scales the channel widths (1.0 reproduces the standard
/// 64-128-256-512-512 progression; the CPU benchmarks use smaller values).
pub fn vgg_config(
    variant: VggVariant,
    width_mult: f32,
    input_channels: usize,
    image_size: usize,
    num_classes: usize,
) -> ModelConfig {
    assert!(width_mult > 0.0, "width multiplier must be positive");
    let widths = [64.0, 128.0, 256.0, 512.0, 512.0].map(|w| ((w * width_mult).round() as usize).max(4));
    let stage_convs = variant.stage_convs();
    let mut layers = Vec::new();
    for (stage, (&convs, &width)) in stage_convs.iter().zip(widths.iter()).enumerate() {
        for _ in 0..convs {
            layers.push(LayerSpec::conv3x3(width));
        }
        // Stop down-sampling once the feature map would get too small.
        let downsamples_so_far = stage + 1;
        if image_size >> downsamples_so_far >= 2 {
            layers.push(LayerSpec::MaxPool { kernel: 2 });
        }
    }
    layers.push(LayerSpec::GlobalAvgPool);
    layers.push(LayerSpec::Linear { out_features: num_classes, relu: false });
    let name = match variant {
        VggVariant::Vgg8 => "vgg8",
        VggVariant::Vgg11 => "vgg11",
        VggVariant::Vgg16 => "vgg16",
    };
    ModelConfig::new(format!("{}-w{:.2}", name, width_mult), input_channels, image_size, num_classes, layers)
}

/// The paper's VGG-8 at the given width.
pub fn vgg8_config(width_mult: f32, num_classes: usize, image_size: usize) -> ModelConfig {
    vgg_config(VggVariant::Vgg8, width_mult, 3, image_size, num_classes)
}

/// VGG-11 at the given width.
pub fn vgg11_config(width_mult: f32, num_classes: usize, image_size: usize) -> ModelConfig {
    vgg_config(VggVariant::Vgg11, width_mult, 3, image_size, num_classes)
}

/// The paper's VGG-16 (13 convolution layers) at the given width.
pub fn vgg16_config(width_mult: f32, num_classes: usize, image_size: usize) -> ModelConfig {
    vgg_config(VggVariant::Vgg16, width_mult, 3, image_size, num_classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadra_core::{build_model, estimate_param_count, AutoBuilder, NeuronType};
    use quadra_nn::Layer;
    use quadra_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn variant_depths_match_paper_nomenclature() {
        assert_eq!(VggVariant::Vgg8.conv_layers(), 5);
        assert_eq!(VggVariant::Vgg11.conv_layers(), 8);
        assert_eq!(VggVariant::Vgg16.conv_layers(), 13);
        assert_eq!(vgg16_config(0.25, 10, 32).conv_layer_count(), 13);
        assert_eq!(vgg8_config(0.25, 10, 32).conv_layer_count(), 5);
        assert_eq!(vgg11_config(0.25, 10, 32).conv_layer_count(), 8);
    }

    #[test]
    fn width_multiplier_scales_parameters() {
        let small = estimate_param_count(&vgg16_config(0.125, 10, 32));
        let large = estimate_param_count(&vgg16_config(0.25, 10, 32));
        assert!(large > 3 * small, "{} vs {}", large, small);
        // Full-width VGG-16 should be in the ~15M range like the paper's 1.47E+7.
        let full = estimate_param_count(&vgg16_config(1.0, 10, 32));
        assert!(full > 10_000_000 && full < 20_000_000, "full-width params {}", full);
    }

    #[test]
    fn tiny_vgg8_builds_and_runs() {
        let cfg = vgg8_config(0.0625, 10, 16);
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = build_model(&cfg, &mut rng);
        let x = Tensor::randn(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
        let y = model.forward(&x, true);
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    fn quadratic_conversion_preserves_depth_and_runs() {
        let cfg = vgg8_config(0.0625, 4, 16);
        let q = AutoBuilder::new(NeuronType::Ours).convert(&cfg);
        assert_eq!(q.conv_layer_count(), 5);
        assert!(q.is_quadratic());
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = build_model(&q, &mut rng);
        let y = model.forward(&Tensor::randn(&[1, 3, 16, 16], 0.0, 1.0, &mut rng), true);
        assert_eq!(y.shape(), &[1, 4]);
    }

    #[test]
    fn small_images_skip_late_pooling() {
        // With 16x16 inputs only 3 pools fit (down to 2x2); the config must not
        // produce a zero-sized feature map.
        let cfg = vgg16_config(0.0625, 10, 16);
        let pools = cfg.layers.iter().filter(|l| matches!(l, LayerSpec::MaxPool { .. })).count();
        assert!(pools <= 3);
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = build_model(&cfg, &mut rng);
        let y = model.forward(&Tensor::randn(&[1, 3, 16, 16], 0.0, 1.0, &mut rng), true);
        assert_eq!(y.shape(), &[1, 10]);
    }

    #[test]
    #[should_panic]
    fn zero_width_rejected() {
        let _ = vgg8_config(0.0, 10, 32);
    }
}
