//! The admission layer: one bounded queue per priority class per model.
//!
//! Clients admit requests synchronously — a full class queue rejects the
//! request immediately (the caller surfaces
//! [`ServeError::Overloaded`](crate::ServeError::Overloaded)) instead of
//! queueing forever — and idle workers drain the queues through the
//! scheduler, seeding batches interactive-first (tempered by the batch-class
//! aging credit) and picking shape-compatible requests without head-of-line
//! blocking across shapes.

use crate::request::{PendingInfer, Priority};
use crate::scheduler::compat_key;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Why a request could not be admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitRejection {
    /// The queue for the request's priority class is at capacity.
    Full,
    /// The endpoint is shutting down.
    Closed,
}

/// Outcome of a blocking pop.
pub(crate) enum PopResult {
    /// The queued request chosen to seed the next batch.
    Request(PendingInfer),
    /// The queue is closed and fully drained.
    Closed,
}

/// Outcome of a compatible-take while a batch is open.
pub(crate) enum TakeResult {
    /// One or more shape-compatible requests, in class-then-FIFO order.
    Taken(Vec<PendingInfer>),
    /// Nothing compatible arrived before the deadline.
    TimedOut,
    /// The queue closed; flush the open batch and start draining.
    Closed,
}

struct QueueState {
    /// One FIFO per priority class, indexed by [`Priority::index`].
    classes: [VecDeque<PendingInfer>; Priority::COUNT],
    /// Queued samples per class (capacity is counted in samples).
    queued_samples: [usize; Priority::COUNT],
    /// Consecutive interactive-seeded pops while batch-class work waited;
    /// drives the aging credit.
    interactive_streak: u32,
    closed: bool,
}

/// A model endpoint's bounded two-class admission queue.
pub(crate) struct AdmissionQueue {
    /// Per-class capacity in samples; `None` = unbounded (overload baseline).
    capacity: Option<usize>,
    /// Aging credit: seed from the batch class after this many consecutive
    /// interactive seeds while batch work waited (0 = strict priority).
    batch_aging: u32,
    /// Mirror of the total queued samples, refreshed under the state lock on
    /// every mutation — shared with the fleet scheduler so depth reads never
    /// take the queue lock.
    depth_cell: Arc<AtomicUsize>,
    state: Mutex<QueueState>,
    arrived: Condvar,
}

impl AdmissionQueue {
    pub fn new(capacity: Option<usize>, batch_aging: u32, depth_cell: Arc<AtomicUsize>) -> Self {
        AdmissionQueue {
            capacity,
            batch_aging,
            depth_cell,
            state: Mutex::new(QueueState {
                classes: [VecDeque::new(), VecDeque::new()],
                queued_samples: [0; Priority::COUNT],
                interactive_streak: 0,
                closed: false,
            }),
            arrived: Condvar::new(),
        }
    }

    /// Refresh the lock-free depth mirror; call after every mutation, while
    /// still holding the state lock.
    fn sync_depth(&self, st: &QueueState) {
        self.depth_cell.store(st.queued_samples.iter().sum(), Ordering::Relaxed);
    }

    /// Total samples currently queued across both classes (lock-free).
    pub fn depth(&self) -> usize {
        self.depth_cell.load(Ordering::Relaxed)
    }

    /// Queued samples ahead of a newly admitted request of `priority`: the
    /// interactive class only waits behind its own backlog, the batch class
    /// waits behind everything (interactive drains first).
    pub fn class_backlog(&self, priority: Priority) -> usize {
        let st = self.state.lock().unwrap();
        match priority {
            Priority::Interactive => st.queued_samples[Priority::Interactive.index()],
            Priority::Batch => st.queued_samples.iter().sum(),
        }
    }

    /// Admit `req`, or reject it without queueing. A request larger than the
    /// whole capacity is still admitted when its class queue is empty —
    /// otherwise it could never be served at all (it then occupies the queue
    /// alone, exactly like an oversized batch occupies a worker alone).
    ///
    /// The `Err` variant hands the (tensor-carrying) request back by value on
    /// purpose: the caller destructures it on the spot, nothing propagates.
    #[allow(clippy::result_large_err)]
    pub fn try_admit(&self, req: PendingInfer) -> Result<(), (PendingInfer, AdmitRejection)> {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err((req, AdmitRejection::Closed));
        }
        let class = req.priority.index();
        if let Some(cap) = self.capacity {
            let queued = st.queued_samples[class];
            if queued > 0 && queued + req.samples > cap {
                return Err((req, AdmitRejection::Full));
            }
        }
        st.queued_samples[class] += req.samples;
        st.classes[class].push_back(req);
        self.sync_depth(&st);
        drop(st);
        self.arrived.notify_one();
        Ok(())
    }

    /// Mark the queue closed and wake every waiter. Already-queued requests
    /// remain poppable so workers can drain them into final batches.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.arrived.notify_all();
    }

    /// The class order for the next seed pop: interactive first, unless the
    /// aging credit fires (batch-class work waited through `batch_aging`
    /// consecutive interactive seeds).
    fn seed_order(&self, st: &QueueState) -> [usize; Priority::COUNT] {
        let batch = Priority::Batch.index();
        if self.batch_aging > 0 && st.interactive_streak >= self.batch_aging && !st.classes[batch].is_empty()
        {
            [batch, Priority::Interactive.index()]
        } else {
            [Priority::Interactive.index(), batch]
        }
    }

    /// Block until a request is available or the queue is closed *and* empty.
    /// Interactive seeds first, except when the batch class's aging credit
    /// fires; the streak bookkeeping lives here, under the queue lock.
    pub fn pop_blocking(&self) -> PopResult {
        let mut st = self.state.lock().unwrap();
        loop {
            let order = self.seed_order(&st);
            for class in order {
                if let Some(req) = st.classes[class].pop_front() {
                    st.queued_samples[class] -= req.samples;
                    self.sync_depth(&st);
                    if class == Priority::Interactive.index() {
                        if st.classes[Priority::Batch.index()].is_empty() {
                            // No batch-class work waited: nothing is aging.
                            st.interactive_streak = 0;
                        } else {
                            st.interactive_streak = st.interactive_streak.saturating_add(1);
                        }
                    } else {
                        st.interactive_streak = 0;
                    }
                    return PopResult::Request(req);
                }
            }
            if st.closed {
                return PopResult::Closed;
            }
            st = self.arrived.wait(st).unwrap();
        }
    }

    /// Remove queued requests compatible with `key` (interactive class first,
    /// FIFO within a class) totalling at most `max_samples`. Blocks until at
    /// least one is found, the `deadline` passes, or the queue closes.
    ///
    /// Incompatible requests are left in place — they seed the *next* batch —
    /// and compatible requests too large for the remaining sample budget are
    /// skipped (they stay queued in order).
    pub fn take_compatible(
        &self,
        key: &[usize],
        pad_mixed_spatial: bool,
        max_samples: usize,
        deadline: Instant,
    ) -> TakeResult {
        let mut st = self.state.lock().unwrap();
        loop {
            let mut taken = Vec::new();
            let mut budget = max_samples;
            for class in 0..Priority::COUNT {
                let queue = &mut st.classes[class];
                let mut removed_samples = 0;
                let mut i = 0;
                while i < queue.len() {
                    let candidate = &queue[i];
                    if candidate.samples <= budget
                        && compat_key(candidate.input.shape(), pad_mixed_spatial) == key
                    {
                        let req = queue.remove(i).expect("index in range");
                        removed_samples += req.samples;
                        budget -= req.samples;
                        taken.push(req);
                        if budget == 0 {
                            break;
                        }
                    } else {
                        i += 1;
                    }
                }
                st.queued_samples[class] -= removed_samples;
                if budget == 0 {
                    break;
                }
            }
            if !taken.is_empty() {
                self.sync_depth(&st);
                return TakeResult::Taken(taken);
            }
            if st.closed {
                return TakeResult::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return TakeResult::TimedOut;
            }
            let (guard, timeout) = self.arrived.wait_timeout(st, deadline - now).unwrap();
            st = guard;
            if timeout.timed_out() && st.classes.iter().all(|q| q.is_empty()) {
                return TakeResult::TimedOut;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ServeError;
    use quadra_tensor::Tensor;
    use std::sync::atomic::AtomicBool;
    use std::sync::{mpsc, Arc};
    use std::time::Duration;

    fn req(samples: usize, priority: Priority) -> PendingInfer {
        let (reply, rx) = mpsc::channel::<Result<crate::InferResponse, ServeError>>();
        std::mem::forget(rx); // keep the reply channel alive for the test's lifetime
        PendingInfer {
            id: 0,
            input: Tensor::zeros(&[samples, 2]),
            samples,
            priority,
            tag: None,
            submitted_at: Instant::now(),
            deadline: None,
            cancelled: Arc::new(AtomicBool::new(false)),
            reply,
        }
    }

    fn pop_priority(q: &AdmissionQueue) -> Priority {
        match q.pop_blocking() {
            PopResult::Request(r) => r.priority,
            PopResult::Closed => panic!("queue not closed"),
        }
    }

    #[test]
    fn bounded_class_queue_rejects_when_full() {
        let q = AdmissionQueue::new(Some(3), 0, Arc::new(AtomicUsize::new(0)));
        q.try_admit(req(2, Priority::Interactive)).unwrap();
        q.try_admit(req(1, Priority::Interactive)).unwrap();
        let err = q.try_admit(req(1, Priority::Interactive)).unwrap_err();
        assert_eq!(err.1, AdmitRejection::Full);
        // The other class has its own budget.
        q.try_admit(req(3, Priority::Batch)).unwrap();
        assert_eq!(q.depth(), 6);
    }

    #[test]
    fn oversized_request_admitted_only_into_empty_class() {
        let q = AdmissionQueue::new(Some(2), 0, Arc::new(AtomicUsize::new(0)));
        q.try_admit(req(5, Priority::Interactive)).unwrap();
        let err = q.try_admit(req(5, Priority::Interactive)).unwrap_err();
        assert_eq!(err.1, AdmitRejection::Full);
    }

    #[test]
    fn pop_prefers_interactive() {
        let q = AdmissionQueue::new(None, 0, Arc::new(AtomicUsize::new(0)));
        q.try_admit(req(1, Priority::Batch)).unwrap();
        q.try_admit(req(1, Priority::Interactive)).unwrap();
        assert_eq!(pop_priority(&q), Priority::Interactive);
        assert_eq!(pop_priority(&q), Priority::Batch);
    }

    #[test]
    fn class_backlog_is_interactive_only_for_interactive() {
        let q = AdmissionQueue::new(None, 0, Arc::new(AtomicUsize::new(0)));
        q.try_admit(req(2, Priority::Interactive)).unwrap();
        q.try_admit(req(3, Priority::Batch)).unwrap();
        assert_eq!(q.class_backlog(Priority::Interactive), 2, "interactive only waits behind its class");
        assert_eq!(q.class_backlog(Priority::Batch), 5, "batch class waits behind everything");
    }

    #[test]
    fn aging_credit_seeds_batch_class_after_streak() {
        // Aging every 2 interactive seeds: I, I, then the batch class's turn.
        let q = AdmissionQueue::new(None, 2, Arc::new(AtomicUsize::new(0)));
        q.try_admit(req(1, Priority::Batch)).unwrap();
        for _ in 0..4 {
            q.try_admit(req(1, Priority::Interactive)).unwrap();
        }
        assert_eq!(pop_priority(&q), Priority::Interactive);
        assert_eq!(pop_priority(&q), Priority::Interactive);
        assert_eq!(pop_priority(&q), Priority::Batch, "aging credit fires after the streak");
        assert_eq!(pop_priority(&q), Priority::Interactive, "strict priority resumes after the aged seed");
        assert_eq!(pop_priority(&q), Priority::Interactive);
    }

    #[test]
    fn interactive_streak_resets_when_no_batch_work_waits() {
        let q = AdmissionQueue::new(None, 2, Arc::new(AtomicUsize::new(0)));
        // Interactive pops with an empty batch queue never age anything.
        for _ in 0..5 {
            q.try_admit(req(1, Priority::Interactive)).unwrap();
            assert_eq!(pop_priority(&q), Priority::Interactive);
        }
        // Batch work arrives now: the streak starts from zero.
        q.try_admit(req(1, Priority::Batch)).unwrap();
        q.try_admit(req(1, Priority::Interactive)).unwrap();
        q.try_admit(req(1, Priority::Interactive)).unwrap();
        q.try_admit(req(1, Priority::Interactive)).unwrap();
        assert_eq!(pop_priority(&q), Priority::Interactive);
        assert_eq!(pop_priority(&q), Priority::Interactive);
        assert_eq!(pop_priority(&q), Priority::Batch);
    }

    #[test]
    fn zero_aging_restores_strict_priority() {
        let q = AdmissionQueue::new(None, 0, Arc::new(AtomicUsize::new(0)));
        q.try_admit(req(1, Priority::Batch)).unwrap();
        for _ in 0..16 {
            q.try_admit(req(1, Priority::Interactive)).unwrap();
        }
        for _ in 0..16 {
            assert_eq!(pop_priority(&q), Priority::Interactive, "strict priority never ages");
        }
        assert_eq!(pop_priority(&q), Priority::Batch);
    }

    #[test]
    fn take_compatible_skips_other_shapes_and_respects_budget() {
        let q = AdmissionQueue::new(None, 0, Arc::new(AtomicUsize::new(0)));
        q.try_admit(req(2, Priority::Batch)).unwrap(); // [2, 2] — compatible
        let (reply, _rx) = mpsc::channel();
        q.try_admit(PendingInfer {
            id: 1,
            input: Tensor::zeros(&[1, 3]),
            samples: 1,
            priority: Priority::Interactive,
            tag: None,
            submitted_at: Instant::now(),
            deadline: None,
            cancelled: Arc::new(AtomicBool::new(false)),
            reply,
        })
        .unwrap(); // [1, 3] — different trailing shape, must stay queued
        q.try_admit(req(4, Priority::Interactive)).unwrap(); // too big for budget 3

        let key = compat_key(&[1, 2], false);
        match q.take_compatible(&key, false, 3, Instant::now()) {
            TakeResult::Taken(reqs) => {
                assert_eq!(reqs.len(), 1);
                assert_eq!(reqs[0].samples, 2);
            }
            _ => panic!("expected a take"),
        }
        assert_eq!(q.depth(), 5, "incompatible and over-budget requests stay queued");
    }

    #[test]
    fn close_rejects_admission_but_drains_queued() {
        let q = AdmissionQueue::new(None, 0, Arc::new(AtomicUsize::new(0)));
        q.try_admit(req(1, Priority::Interactive)).unwrap();
        q.close();
        let err = q.try_admit(req(1, Priority::Interactive)).unwrap_err();
        assert_eq!(err.1, AdmitRejection::Closed);
        assert!(matches!(q.pop_blocking(), PopResult::Request(_)));
        assert!(matches!(q.pop_blocking(), PopResult::Closed));
        let key = compat_key(&[1, 2], false);
        assert!(matches!(
            q.take_compatible(&key, false, 8, Instant::now() + Duration::from_secs(5)),
            TakeResult::Closed
        ));
    }
}
