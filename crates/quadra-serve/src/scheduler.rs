//! The worker-pull scheduler: batch formation at the moment a worker goes
//! idle, deficit-round-robin fair sharing across endpoints, and dispatch-time
//! shedding of cancelled and deadline-expired requests.
//!
//! This replaces the PR-3/PR-4 standalone batcher thread. The batcher formed
//! a batch *ahead* of the workers and handed it over a rendezvous channel, so
//! under overload an admitted request's floor sojourn was ~2 batch service
//! times (one batch executing, one already formed and waiting). Here an idle
//! worker pulls straight from its endpoint's admission queue and the batch
//! only exists once a worker is ready to run it — the pipeline holds exactly
//! the executing batch, and priority/cancellation/deadline decisions are made
//! at the last possible moment.

use crate::admission::{PopResult, TakeResult};
use crate::clock::{self, ChargeSession};
use crate::endpoint::EndpointShared;
use crate::request::{PendingInfer, ServeError};
use crate::sync::{lock_or_recover, wait_timeout_or_recover};
use quadra_tensor::Tensor;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Service-time quantum one fair-share round grants per unit of endpoint
/// weight. Small enough that a throttled endpoint resumes within a few
/// milliseconds; large enough to cover several batches of a light model per
/// round.
const QUANTUM_US: i64 = 5_000;
/// Credit cap in rounds: an endpoint that was briefly uncontended cannot
/// hoard more than this many rounds of credit.
const DEFICIT_CAP_ROUNDS: i64 = 4;
/// Debt floor in rounds: one pathological batch (an oversized request) may
/// overdraw at most this far, bounding how long the endpoint is throttled.
const DEBT_FLOOR_ROUNDS: i64 = 8;
/// How often a waiting endpoint re-evaluates the fleet state (covers depth
/// changes that do not go through `settle`).
const ARBITRATION_TICK: Duration = Duration::from_millis(2);

/// A batch formed by an idle worker, on its way into the forward pass.
pub(crate) struct Batch {
    /// Fleet-unique batch id, echoed in every response's provenance.
    pub id: u64,
    pub requests: Vec<PendingInfer>,
    pub formed_at: Instant,
}

impl Batch {
    /// Total samples across the batch's requests.
    pub fn samples(&self) -> usize {
        self.requests.iter().map(|r| r.samples).sum()
    }
}

/// Which requests may share a batch: the batch axis is always axis 0 and the
/// trailing axes must match exactly — unless the policy opts into
/// `pad_mixed_spatial`, in which case NCHW inputs only need matching channel
/// counts (H/W are zero-padded to the batch maximum).
// quadra-analyze: allow(panic_path:indexing, the 4-length check guards shape[1] and shape[1..] never exceeds len)
pub(crate) fn compat_key(shape: &[usize], pad_mixed_spatial: bool) -> Vec<usize> {
    if shape.len() == 4 && pad_mixed_spatial {
        vec![4, shape[1]]
    } else {
        let mut key = vec![shape.len()];
        key.extend_from_slice(&shape[1..]);
        key
    }
}

/// Concatenate the requests' inputs along axis 0, zero-padding NCHW samples
/// at the bottom/right to the largest H and W in the batch. Returns the batch
/// tensor and the per-request sample counts (in request order), or an error
/// when the batch is malformed (empty, or shapes that slipped past
/// `compat_key`) — the worker answers every rider with it instead of
/// panicking mid-batch.
// quadra-analyze: allow(panic_path:indexing, all indices are bounded by the compat_key-validated 4-d shapes and the zeros-allocated batch extent)
pub(crate) fn assemble(requests: &[PendingInfer]) -> Result<(Tensor, Vec<usize>), ServeError> {
    let Some(head) = requests.first() else {
        // quadra-analyze: allow(hot_alloc:to-string, error path: an empty batch is a dispatch bug, not steady-state traffic)
        return Err(ServeError::WorkerFailed("cannot assemble an empty batch".to_string()));
    };
    let counts: Vec<usize> = requests.iter().map(|r| r.samples).collect();
    let total: usize = counts.iter().sum();
    let first = head.input.shape();
    let needs_padding = first.len() == 4
        && requests.iter().any(|r| r.input.shape()[2] != first[2] || r.input.shape()[3] != first[3]);
    if !needs_padding {
        let refs: Vec<&Tensor> = requests.iter().map(|r| &r.input).collect();
        let batch = Tensor::concat(&refs, 0)
            // quadra-analyze: allow(hot_alloc:format, error path: compat_key guarantees concat succeeds for admitted batches)
            .map_err(|e| ServeError::WorkerFailed(format!("batch assembly failed: {e}")))?;
        return Ok((batch, counts));
    }

    let c = first[1];
    let h_max = requests.iter().map(|r| r.input.shape()[2]).fold(first[2], usize::max);
    let w_max = requests.iter().map(|r| r.input.shape()[3]).fold(first[3], usize::max);
    let mut batch = Tensor::zeros(&[total, c, h_max, w_max]);
    let dst = batch.as_mut_slice();
    let mut row = 0;
    for r in requests {
        let (n, h, w) = (r.input.shape()[0], r.input.shape()[2], r.input.shape()[3]);
        let src = r.input.as_slice();
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..h {
                    let s = ((ni * c + ci) * h + hi) * w;
                    let d = (((row + ni) * c + ci) * h_max + hi) * w_max;
                    dst[d..d + w].copy_from_slice(&src[s..s + w]);
                }
            }
        }
        row += n;
    }
    Ok((batch, counts))
}

/// What `FleetScheduler::acquire` decided, threaded through to `settle` so
/// the books balance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Grant {
    member: usize,
    /// Microseconds debited from the member's deficit (0 for an uncontended
    /// free ride — idle CPU is never charged).
    debited_us: u64,
}

/// RAII wrapper around a [`Grant`]: guarantees `settle` runs exactly once,
/// even if the holding worker thread unwinds. A leaked grant would pin the
/// member's `in_service` marker forever, keeping a drained endpoint visible
/// as a contender and throttling its neighbours. With the guard, a panicking
/// worker only shrinks its own endpoint's pool (the pre-scheduler failure
/// mode).
pub(crate) struct GrantGuard {
    fleet: Arc<FleetScheduler>,
    grant: Option<Grant>,
    /// Opened just before the batch's forward pass; `None` at drop means the
    /// batch never executed and the whole debit is refunded. The session
    /// attributes CPU across every thread that executes the batch's tasks —
    /// including pool workers running stolen GEMM row-blocks — and excludes
    /// intervals this worker spends helping another endpoint's jobs while it
    /// waits. Both the open and the settle happen on the owning worker
    /// thread, which the session requires.
    charge: Option<ChargeSession>,
}

impl GrantGuard {
    fn new(fleet: Arc<FleetScheduler>, grant: Grant) -> Self {
        GrantGuard { fleet, grant: Some(grant), charge: None }
    }

    /// Mark the start of the granted batch's execution; service time is
    /// billed from here until settle.
    pub fn start_execution(&mut self) {
        self.charge = Some(clock::start_charge());
    }

    fn settle_now(&mut self) -> u64 {
        let Some(grant) = self.grant.take() else { return 0 };
        let actual_us = self.charge.take().map(ChargeSession::finish_us).unwrap_or(0);
        self.fleet.settle(grant, actual_us);
        actual_us
    }

    /// Settle the books and return the measured service time in µs.
    pub fn finish(mut self) -> u64 {
        self.settle_now()
    }
}

impl Drop for GrantGuard {
    fn drop(&mut self) {
        self.settle_now();
    }
}

struct MemberState {
    weight: i64,
    /// Remaining service credit in µs; negative = debt carried into the next
    /// round.
    deficit_us: i64,
    /// The member's own most recent cost estimate; used by *other* members to
    /// judge whether this member could still spend its credit ("solvent").
    last_est_us: i64,
    /// Workers of this member currently between `acquire` entry and `settle`
    /// (waiting for a grant or executing a granted batch). Keeps the member
    /// visible as a contender while its queue is momentarily drained into an
    /// in-flight batch.
    in_service: u32,
    /// Live queue depth, stored by the endpoint on every admit/pop without
    /// taking the fleet lock — the admission hot path must not serialize all
    /// endpoints on one mutex. Waiters observe changes at the latest on the
    /// next arbitration tick.
    queued_samples: Arc<AtomicUsize>,
    closed: bool,
}

impl MemberState {
    fn demands_service(&self) -> bool {
        !self.closed && (self.queued_samples.load(Ordering::Relaxed) > 0 || self.in_service > 0)
    }
}

struct FleetState {
    members: Vec<MemberState>,
}

/// Fleet-level deficit-round-robin arbiter: under contention, endpoints are
/// granted batch service time proportional to their configured weight.
///
/// The CPU the worker pools share is modelled as a single resource. Each
/// endpoint holds a deficit counter in microseconds of service time; a worker
/// about to execute a batch debits the endpoint's estimated batch cost, and
/// when every contending endpoint is out of credit a new round replenishes
/// each by `QUANTUM_US × weight`. The true cost is settled after execution.
/// Uncontended endpoints are never throttled or charged (work conservation):
/// fairness only constrains who runs *next* when more than one endpoint has
/// work waiting.
///
/// Grants may overlap without bound: the ledger bills **task-attributed CPU
/// time** (see `clock.rs`), so two batches timesharing a core each get
/// charged only for the cycles they actually computed — including cycles
/// pool workers burn on their stolen GEMM row-blocks, and excluding time the
/// grant-holding worker spends helping another endpoint's tasks. The earlier
/// wall-clock ledger needed an `available_parallelism` cap on concurrently
/// executing grants to stop descheduled time from inflating the books; that
/// cap (and its extra wait state) is gone.
pub(crate) struct FleetScheduler {
    state: Mutex<FleetState>,
    settled: Condvar,
    next_batch_id: AtomicU64,
}

impl FleetScheduler {
    pub fn new() -> Self {
        FleetScheduler {
            // Pre-size for a typical router: registration is cold, but the
            // members vec is cloned into every arbitration snapshot.
            state: Mutex::new(FleetState { members: Vec::with_capacity(8) }),
            settled: Condvar::new(),
            next_batch_id: AtomicU64::new(0),
        }
    }

    /// Register an endpoint; returns its member index. Called once per
    /// endpoint before any worker starts. `queued_samples` is the endpoint's
    /// live depth cell, updated lock-free on every admit/pop.
    pub fn register(&self, weight: u32, queued_samples: Arc<AtomicUsize>) -> usize {
        let mut st = lock_or_recover(&self.state);
        st.members.push(MemberState {
            weight: i64::from(weight.max(1)),
            deficit_us: 0,
            last_est_us: 1_000,
            in_service: 0,
            queued_samples,
            closed: false,
        });
        st.members.len() - 1
    }

    /// Fleet-unique id for the next batch.
    // quadra-analyze: allow(atomics:relaxed-fetch, batch ids are a monotonic counter; no memory is published through them)
    pub fn next_batch_id(&self) -> u64 {
        self.next_batch_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Nudge waiters in `acquire` to re-evaluate the fleet state (demand or
    /// depth changed). Lock-free on the caller's side: a waiter that misses
    /// the nudge re-checks on its next arbitration tick anyway, so this only
    /// tightens reaction latency — it carries no correctness weight.
    pub fn nudge(&self) {
        self.settled.notify_all();
    }

    /// Stop throttling `member`: shutdown drains must never wait for credit.
    // quadra-analyze: allow(panic_path:indexing, member indices come from register() and the members vec only grows)
    pub fn close_member(&self, member: usize) {
        let mut st = lock_or_recover(&self.state);
        st.members[member].closed = true;
        drop(st);
        self.settled.notify_all();
    }

    /// Block until `member` may execute a batch estimated at `est_us` µs of
    /// service time. Returns the grant to pass to [`FleetScheduler::settle`]
    /// after execution (always call it — it also releases the in-service
    /// marker).
    // quadra-analyze: allow(panic_path:indexing, member indices come from register() and the members vec only grows)
    pub fn acquire(&self, member: usize, est_us: u64) -> Grant {
        let est = (est_us.max(1)).min(i64::MAX as u64) as i64;
        let mut st = lock_or_recover(&self.state);
        st.members[member].last_est_us = est;
        st.members[member].in_service += 1;
        loop {
            if st.members[member].closed {
                return Grant { member, debited_us: 0 };
            }
            let contended = st.members.iter().enumerate().any(|(i, m)| i != member && m.demands_service());
            if !contended {
                // Alone on the fleet: run free. The idle CPU an uncontended
                // endpoint uses is not charged, so fairness starts from a
                // clean slate when contention appears.
                return Grant { member, debited_us: 0 };
            }
            if st.members[member].deficit_us >= est {
                // Solvent: spend and go. Overlap with other grants is fine —
                // the CPU-time ledger charges each only for its own cycles.
                st.members[member].deficit_us -= est;
                return Grant { member, debited_us: est as u64 };
            }
            // Out of credit. If every other contender is broke too, start a
            // new round; otherwise wait for a solvent contender to spend (or
            // for the fleet to change shape).
            let someone_solvent = st
                .members
                .iter()
                .enumerate()
                .any(|(i, m)| i != member && m.demands_service() && m.deficit_us >= m.last_est_us);
            if someone_solvent {
                let (guard, _timeout) = wait_timeout_or_recover(&self.settled, st, ARBITRATION_TICK);
                st = guard;
                continue;
            }
            for m in st.members.iter_mut() {
                if m.demands_service() {
                    // The cap must stay reachable even when one batch costs
                    // more than the nominal cap (a heavy model's forward):
                    // otherwise that endpoint could never afford a grant.
                    let cap = (DEFICIT_CAP_ROUNDS * QUANTUM_US * m.weight).max(2 * m.last_est_us);
                    m.deficit_us = (m.deficit_us + QUANTUM_US * m.weight).min(cap);
                } else {
                    // Idle members keep their debt but never hoard credit.
                    m.deficit_us = m.deficit_us.min(0);
                }
            }
        }
    }

    /// Balance the books after the granted batch ran for `actual_us` µs of
    /// CPU time (or was abandoned: `actual_us == 0` refunds the whole debit)
    /// and release the in-service marker.
    // quadra-analyze: allow(panic_path:indexing, grant.member came from register() and the members vec only grows)
    pub fn settle(&self, grant: Grant, actual_us: u64) {
        let mut st = lock_or_recover(&self.state);
        let m = &mut st.members[grant.member];
        m.in_service = m.in_service.saturating_sub(1);
        if grant.debited_us > 0 {
            let actual = actual_us.min(i64::MAX as u64) as i64;
            let adjusted = m.deficit_us + grant.debited_us as i64 - actual;
            m.deficit_us = adjusted.max(-DEBT_FLOOR_ROUNDS * QUANTUM_US * m.weight);
        }
        drop(st);
        self.settled.notify_all();
    }

    #[cfg(test)]
    fn deficit_us(&self, member: usize) -> i64 {
        self.state.lock().unwrap().members[member].deficit_us
    }
}

/// Reply to every request the dispatch decided to shed, keeping only the live
/// ones. Records the shed reason in the endpoint's metrics.
fn retain_live(requests: Vec<PendingInfer>, shared: &EndpointShared) -> Vec<PendingInfer> {
    let now = Instant::now();
    let mut live = Vec::with_capacity(requests.len());
    for request in requests {
        match request.dead_reason(now) {
            None => live.push(request),
            Some(reason) => {
                shared.metrics.record_dispatch_shed(request.priority, &reason);
                // quadra-analyze: allow(must_use, a dropped receiver means the client stopped waiting)
                let _ = request.reply.send(Err(reason));
            }
        }
    }
    live
}

/// Pull the next batch for an idle worker of `shared`'s endpoint: block for a
/// seed request, fill the batch under the wait budget, pass the fair-share
/// gate, top the batch off with anything that arrived while throttled, and
/// shed cancelled/deadline-expired requests at this final moment. Returns
/// `None` once the queue is closed and fully drained.
///
/// The fill wait deliberately happens *before* the fair-share grant: waiting
/// for company idles the CPU, and holding an execution grant through it would
/// block contending endpoints from using the core in the meantime.
///
/// Formation is serialized per endpoint via the admission queue's formation
/// token: one worker at a time seeds and fills, so extra idle workers can
/// never split a single arrival stream into fragment batches (the cause of
/// the old *negative* worker scaling). The token is released before
/// `acquire`, so the next worker forms the next batch while this one waits
/// for its grant and executes — worker parallelism overlaps execution, not
/// formation.
pub(crate) fn next_batch(shared: &EndpointShared) -> Option<(Batch, GrantGuard)> {
    let policy = shared.config.policy;
    loop {
        let forming = shared.queue.begin_formation();
        let first = match shared.queue.pop_blocking() {
            PopResult::Request(r) => r,
            PopResult::Closed => return None,
        };
        shared.fleet.nudge();
        // Shed dead seeds before spending any fair-share credit on them.
        let Some(first) = retain_live(vec![first], shared).pop() else { continue };

        let key = compat_key(first.input.shape(), policy.pad_mixed_spatial);
        let mut samples = first.samples;
        // Batch assembly runs per batch on the hot path; size for the cap so
        // pushes below never reallocate.
        let mut requests = Vec::with_capacity(policy.max_batch_size);
        requests.push(first);
        if samples < policy.max_batch_size {
            let deadline = Instant::now() + shared.wait_budget(samples);
            while samples < policy.max_batch_size {
                match shared.queue.take_compatible(
                    &key,
                    policy.pad_mixed_spatial,
                    policy.max_batch_size - samples,
                    deadline,
                ) {
                    TakeResult::Taken(reqs) => {
                        for r in reqs {
                            samples += r.samples;
                            requests.push(r);
                        }
                    }
                    TakeResult::TimedOut | TakeResult::Closed => break,
                }
            }
            shared.fleet.nudge();
        }
        // Formation is done; let the next worker start forming while we wait
        // at the fair-share gate and execute.
        drop(forming);

        let grant = shared.fleet.acquire(shared.member, shared.estimated_batch_us());
        let guard = GrantGuard::new(Arc::clone(&shared.fleet), grant);
        // The gate may have throttled us for a while: top the batch off with
        // whatever compatible work arrived in the meantime (without waiting).
        if samples < policy.max_batch_size {
            if let TakeResult::Taken(reqs) = shared.queue.take_compatible(
                &key,
                policy.pad_mixed_spatial,
                policy.max_batch_size - samples,
                Instant::now(),
            ) {
                requests.extend(reqs);
            }
            shared.fleet.nudge();
        }

        // Requests may have been cancelled or expired while the batch filled.
        let live = retain_live(requests, shared);
        if live.is_empty() {
            // The whole batch died before dispatch: dropping the unexecuted
            // guard refunds the grant.
            drop(guard);
            continue;
        }
        let batch = Batch { id: shared.fleet.next_batch_id(), requests: live, formed_at: Instant::now() };
        return Some((batch, guard));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Priority, ServeError};
    use std::sync::atomic::AtomicBool;
    use std::sync::{mpsc, Arc};

    fn pend(input: Tensor) -> (PendingInfer, mpsc::Receiver<Result<crate::InferResponse, ServeError>>) {
        let (tx, rx) = mpsc::channel();
        let samples = input.shape()[0];
        (
            PendingInfer {
                id: 0,
                input,
                samples,
                priority: Priority::Interactive,
                tag: None,
                submitted_at: Instant::now(),
                deadline: None,
                cancelled: Arc::new(AtomicBool::new(false)),
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn compat_key_requires_exact_shapes_by_default() {
        // Without the padding opt-in, mixed spatial sizes must not share a
        // batch — padding would change the served predictions.
        assert_ne!(compat_key(&[1, 3, 8, 8], false), compat_key(&[2, 3, 16, 4], false));
        assert_eq!(compat_key(&[1, 3, 8, 8], false), compat_key(&[2, 3, 8, 8], false));
        assert_eq!(compat_key(&[5, 10], false), compat_key(&[1, 10], false));
        assert_ne!(compat_key(&[5, 10], false), compat_key(&[5, 11], false));
        // A 2-d [n, 12] input must not pool with a 3-d [n, 3, 4] one.
        assert_ne!(compat_key(&[1, 12], false), compat_key(&[1, 3, 4], false));
    }

    #[test]
    fn compat_key_pools_nchw_by_channel_when_padding_enabled() {
        assert_eq!(compat_key(&[1, 3, 8, 8], true), compat_key(&[2, 3, 16, 4], true));
        assert_ne!(compat_key(&[1, 3, 8, 8], true), compat_key(&[1, 4, 8, 8], true));
        // The opt-in only affects 4-d inputs.
        assert_ne!(compat_key(&[5, 10], true), compat_key(&[5, 11], true));
    }

    #[test]
    fn assemble_concatenates_same_size_inputs() {
        let (a, _ra) = pend(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap());
        let (b, _rb) = pend(Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]).unwrap());
        let (batch, counts) = assemble(&[a, b]).unwrap();
        assert_eq!(batch.shape(), &[3, 2]);
        assert_eq!(counts, vec![1, 2]);
        assert_eq!(batch.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn assemble_zero_pads_mixed_spatial_sizes() {
        // 1×1×1×2 and 1×1×2×1 coalesce into a 2×1×2×2 zero-padded batch.
        let (a, _ra) = pend(Tensor::from_vec(vec![1.0, 2.0], &[1, 1, 1, 2]).unwrap());
        let (b, _rb) = pend(Tensor::from_vec(vec![3.0, 4.0], &[1, 1, 2, 1]).unwrap());
        let (batch, counts) = assemble(&[a, b]).unwrap();
        assert_eq!(batch.shape(), &[2, 1, 2, 2]);
        assert_eq!(counts, vec![1, 1]);
        assert_eq!(batch.as_slice(), &[1.0, 2.0, 0.0, 0.0, 3.0, 0.0, 4.0, 0.0]);
    }

    /// Register a test member and return its index plus its depth cell (the
    /// handle an endpoint would update lock-free on admit/pop).
    fn member(fleet: &FleetScheduler, weight: u32) -> (usize, Arc<AtomicUsize>) {
        let depth = Arc::new(AtomicUsize::new(0));
        (fleet.register(weight, Arc::clone(&depth)), depth)
    }

    #[test]
    fn uncontended_member_rides_free() {
        let fleet = FleetScheduler::new();
        let (a, _da) = member(&fleet, 1);
        let (_b, _db) = member(&fleet, 1);
        // No other member has queued work: grant immediately, charge nothing.
        let grant = fleet.acquire(a, 2_000);
        assert_eq!(grant.debited_us, 0);
        assert_eq!(fleet.deficit_us(a), 0);
        fleet.settle(grant, 2_000);
        assert_eq!(fleet.deficit_us(a), 0, "free rides are never charged");
    }

    #[test]
    fn contended_rounds_grant_credit_proportional_to_weight() {
        let fleet = FleetScheduler::new();
        let (light, d_light) = member(&fleet, 1);
        let (heavy, d_heavy) = member(&fleet, 3);
        d_light.store(4, Ordering::Relaxed);
        d_heavy.store(4, Ordering::Relaxed);

        // Both broke → the acquire triggers a round: quantum × weight each.
        let grant = fleet.acquire(light, 1_000);
        assert_eq!(grant.debited_us, 1_000);
        assert_eq!(fleet.deficit_us(light), QUANTUM_US - 1_000);
        assert_eq!(fleet.deficit_us(heavy), 3 * QUANTUM_US);
        fleet.settle(grant, 1_000);

        // The heavy member spends from its larger share without a new round.
        let grant = fleet.acquire(heavy, 4_000);
        assert_eq!(grant.debited_us, 4_000);
        assert_eq!(fleet.deficit_us(heavy), 3 * QUANTUM_US - 4_000);
        fleet.settle(grant, 4_000);
    }

    #[test]
    fn settle_reconciles_estimate_with_actual_cost() {
        let fleet = FleetScheduler::new();
        let (a, d_a) = member(&fleet, 1);
        let (_b, d_b) = member(&fleet, 1);
        d_a.store(1, Ordering::Relaxed);
        d_b.store(1, Ordering::Relaxed);
        let grant = fleet.acquire(a, 1_000);
        let before = fleet.deficit_us(a);
        // The batch actually took 3 ms, not 1 ms: the extra 2 ms are charged.
        fleet.settle(grant, 3_000);
        assert_eq!(fleet.deficit_us(a), before + 1_000 - 3_000);

        // A refunded grant (batch died before dispatch) restores the balance.
        let grant = fleet.acquire(a, 1_000);
        let before = fleet.deficit_us(a);
        fleet.settle(grant, 0);
        assert_eq!(fleet.deficit_us(a), before + 1_000);
    }

    #[test]
    fn debt_is_floored_and_credit_capped() {
        let fleet = Arc::new(FleetScheduler::new());
        let (a, d_a) = member(&fleet, 1);
        let (b, d_b) = member(&fleet, 1);
        d_a.store(4, Ordering::Relaxed);
        d_b.store(4, Ordering::Relaxed);
        let grant = fleet.acquire(a, 1_000);
        // One pathological 10-second batch cannot bury the endpoint forever.
        fleet.settle(grant, 10_000_000);
        assert_eq!(fleet.deficit_us(a), -DEBT_FLOOR_ROUNDS * QUANTUM_US);

        // Both members spend under contention for a while (each drops its
        // demand when done, as a drained queue would): credit never exceeds
        // the cap, and the indebted member works its way back up.
        let spenders: Vec<_> = [(a, d_a), (b, d_b)]
            .into_iter()
            .map(|(idx, depth)| {
                let fleet = Arc::clone(&fleet);
                std::thread::spawn(move || {
                    for _ in 0..40 {
                        let grant = fleet.acquire(idx, 1_000);
                        fleet.settle(grant, 1_000);
                    }
                    depth.store(0, Ordering::Relaxed);
                })
            })
            .collect();
        for s in spenders {
            s.join().unwrap();
        }
        let cap = DEFICIT_CAP_ROUNDS * QUANTUM_US;
        assert!(fleet.deficit_us(a) <= cap, "deficit {} above cap", fleet.deficit_us(a));
        assert!(fleet.deficit_us(b) <= cap, "deficit {} above cap", fleet.deficit_us(b));
        assert!(fleet.deficit_us(a) > -DEBT_FLOOR_ROUNDS * QUANTUM_US, "debt recovered through rounds");
    }

    #[test]
    fn closed_member_is_never_throttled() {
        let fleet = FleetScheduler::new();
        let (a, _da) = member(&fleet, 1);
        let (_b, d_b) = member(&fleet, 1);
        d_b.store(8, Ordering::Relaxed);
        fleet.close_member(a);
        // Even with zero credit and a contending neighbour, a draining member
        // proceeds immediately.
        let grant = fleet.acquire(a, 1_000_000);
        assert_eq!(grant.debited_us, 0);
        fleet.settle(grant, 5);
    }

    #[test]
    fn waiting_member_proceeds_once_solvent_contender_spends() {
        let fleet = Arc::new(FleetScheduler::new());
        let (a, d_a) = member(&fleet, 1);
        let (b, d_b) = member(&fleet, 1);
        d_a.store(4, Ordering::Relaxed);
        d_b.store(4, Ordering::Relaxed);
        // `b` holds a round of credit, `a` holds none: `a` must block until
        // `b` has spent down to broke, then win the round that follows.
        fleet.state.lock().unwrap().members[b].deficit_us = 2 * QUANTUM_US;
        let spender = {
            let fleet = Arc::clone(&fleet);
            std::thread::spawn(move || {
                let mut spent = 0u64;
                while fleet.deficit_us(b) >= 2_000 {
                    let grant = fleet.acquire(b, 2_000);
                    std::thread::sleep(Duration::from_micros(200));
                    fleet.settle(grant, 2_000);
                    spent += grant.debited_us;
                }
                spent
            })
        };
        let grant = fleet.acquire(a, 1_000);
        assert_eq!(grant.debited_us, 1_000, "the blocked member is granted from a fresh round");
        fleet.settle(grant, 1_000);
        let spent = spender.join().unwrap();
        assert!(spent >= 2 * QUANTUM_US as u64 - 2_000, "the solvent member spent its credit first");
    }
}
