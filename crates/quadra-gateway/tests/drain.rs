//! Graceful-drain and shutdown-ordering regression tests.
//!
//! The ordering contract under test (documented on [`Gateway`]): the
//! gateway drains **before** the router shuts down, so every response the
//! engine produced for a gateway-admitted request reaches its socket. If
//! the order were inverted, the router would settle in-flight handles with
//! `ShuttingDown` and the client would see spurious failures — which the
//! accounting equality below would catch.

use quadra_gateway::{Gateway, GatewayClient, GatewayConfig, Reply};
use quadra_nn::{Layer, Linear, Sequential};
use quadra_serve::{Priority, Router, ServeConfig, ServeError};
use quadra_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const IN: usize = 4;
const MAX_FRAME: usize = 16 << 20;

fn start_gateway() -> Gateway {
    let router = Router::builder()
        .endpoint("m", ServeConfig { workers: 1, ..ServeConfig::default() }, || {
            let mut rng = StdRng::seed_from_u64(3);
            Box::new(Sequential::new(vec![Box::new(Linear::new(IN, 2, true, &mut rng)) as Box<dyn Layer>]))
        })
        .start()
        .expect("router starts");
    Gateway::start(GatewayConfig::default(), router).expect("gateway starts")
}

/// Drain flushes responses that were already served: a request answered
/// before shutdown stays answered, the connection ends with GoAway + EOF,
/// and the router's final metrics agree with what the socket delivered.
#[test]
fn drain_flushes_served_responses_and_says_goaway() {
    let gateway = start_gateway();
    let mut tcp = GatewayClient::connect(gateway.local_addr(), MAX_FRAME).expect("client connects");
    tcp.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    let reply = tcp
        .call("m", Tensor::ones(&[1, IN]), Priority::Interactive, None, None)
        .expect("call before shutdown");
    assert!(matches!(reply, Reply::Response(_)), "got {reply:?}");

    let metrics = gateway.shutdown();
    assert_eq!(metrics.total_completed_requests(), 1, "the served request is in the final metrics");

    // After the drain the connection delivers GoAway and then EOF.
    let mut saw_goaway = false;
    loop {
        match tcp.recv() {
            Ok(Reply::GoAway) => saw_goaway = true,
            Ok(other) => panic!("unexpected frame during teardown: {other:?}"),
            Err(_) => break, // EOF / reset once the gateway is gone
        }
    }
    assert!(saw_goaway, "draining gateway must announce GoAway before closing");
}

/// The ordering regression: fire a burst, shut down immediately, and check
/// the books balance. Every correlation id settles exactly once; the number
/// of *real responses* the socket delivered equals the number of requests
/// the router reports as completed. If the router shut down before the
/// gateway drained, admitted requests would surface client-side as
/// `ShuttingDown` errors while still (or never) being counted server-side,
/// and the equality would break.
#[test]
fn inflight_requests_settle_exactly_once_and_metrics_match_the_socket() {
    let gateway = start_gateway();
    let mut tcp = GatewayClient::connect(gateway.local_addr(), MAX_FRAME).expect("client connects");
    tcp.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    // One request is fully served first so the admitted set is non-empty no
    // matter how the burst below races the stop signal.
    let reply =
        tcp.call("m", Tensor::ones(&[1, IN]), Priority::Interactive, None, None).expect("warm-up call");
    assert!(matches!(reply, Reply::Response(_)));

    let mut waiting = std::collections::HashSet::new();
    for _ in 0..16 {
        let corr = tcp.send("m", Tensor::ones(&[1, IN]), Priority::Interactive, None, None).expect("send");
        waiting.insert(corr);
    }

    // Shut down from another thread while the burst is in flight; keep
    // reading this side until the gateway closes the socket.
    let handle = std::thread::spawn(move || gateway.shutdown());

    let shutting_down_code = ServeError::ShuttingDown.code();
    let mut responses = 1u64; // the warm-up call above
    let mut refused = 0u64;
    loop {
        match tcp.recv() {
            Ok(Reply::Response(frame)) => {
                assert!(
                    waiting.remove(&frame.correlation_id),
                    "duplicate or unknown response id {}",
                    frame.correlation_id
                );
                responses += 1;
            }
            Ok(Reply::Error(frame)) => {
                assert_eq!(
                    frame.code, shutting_down_code,
                    "mid-drain failures must be ShuttingDown, got {frame:?}"
                );
                assert!(waiting.remove(&frame.correlation_id), "duplicate error id");
                refused += 1;
            }
            Ok(Reply::Backpressure(frame)) => {
                assert!(waiting.remove(&frame.correlation_id), "duplicate backpressure id");
                refused += 1;
            }
            Ok(Reply::GoAway) => {}
            Err(_) => break, // connection closed: drain complete
        }
    }
    assert!(waiting.is_empty(), "unsettled correlation ids after drain: {waiting:?}");

    let metrics = handle.join().expect("shutdown thread");
    assert_eq!(
        metrics.total_completed_requests(),
        responses,
        "router-completed requests must equal responses the socket delivered \
         (refused mid-drain: {refused}); a mismatch means the router shut down \
         before the gateway finished draining"
    );
}

/// Requests that arrive after the drain began are refused with a typed
/// `ShuttingDown` error (or the connection is already gone) — never served,
/// never silently dropped while the connection stays open.
#[test]
fn requests_after_goaway_are_refused_not_served() {
    let gateway = start_gateway();
    let mut tcp = GatewayClient::connect(gateway.local_addr(), MAX_FRAME).expect("client connects");
    tcp.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    let handle = std::thread::spawn(move || gateway.shutdown());

    // Race the drain: some sends may land before the GoAway broadcast, some
    // after, and late ones may hit a closed socket. All acceptable — what
    // must never happen is a reply that is neither a response, a typed
    // refusal, nor GoAway.
    let shutting_down_code = ServeError::ShuttingDown.code();
    for _ in 0..8 {
        if tcp.send("m", Tensor::ones(&[1, IN]), Priority::Batch, None, None).is_err() {
            break;
        }
    }
    loop {
        match tcp.recv() {
            Ok(Reply::Error(frame)) => assert_eq!(frame.code, shutting_down_code),
            Ok(Reply::Response(_) | Reply::Backpressure(_) | Reply::GoAway) => {}
            Err(_) => break,
        }
    }
    let _ = handle.join().expect("shutdown thread");
}
