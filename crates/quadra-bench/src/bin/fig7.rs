//! Figure 7 — gradient L2 norms of shallow / middle / deep quadratic conv
//! layers over training epochs, without (T4) and with (Ours) the linear term,
//! in a VGG-16-style plain structure.
//!
//! Regenerate with `cargo run -p quadra-bench --release --bin fig7`.

use quadra_bench::{scale, Scale};
use quadra_core::{build_model, AutoBuilder, GradientRecorder, NeuronType};
use quadra_data::ShapeImageDataset;
use quadra_models::{vgg_config, VggVariant};
use quadra_nn::{CrossEntropyLoss, Layer, Loss, Optimizer, Sgd, SgdConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let (n_train, epochs, width, img) = match scale() {
        Scale::Full => (1000usize, 40usize, 0.25f32, 32usize),
        Scale::Quick => (200, 10, 0.0625, 16),
    };
    let data = ShapeImageDataset::generate(n_train, 10, img, 3, 0.1, 51);
    let base = vgg_config(VggVariant::Vgg16, width, 3, img, 10);

    for (label, neuron) in
        [("without linear term (T4)", NeuronType::T4), ("with linear term (Ours)", NeuronType::Ours)]
    {
        let cfg = AutoBuilder::new(neuron).convert(&base);
        let mut rng = StdRng::seed_from_u64(52);
        let mut model = build_model(&cfg, &mut rng);
        let mut opt = Sgd::new(SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 0.0, nesterov: false });
        let loss_fn = CrossEntropyLoss::new();
        let mut recorder = GradientRecorder::new();
        for epoch in 0..epochs {
            // One representative batch per epoch keeps the harness fast while
            // still showing how the gradient magnitude evolves.
            let idx: Vec<usize> = (0..32).map(|i| (epoch * 32 + i) % n_train).collect();
            let xb = data.images.select_rows(&idx).unwrap();
            let yb = data.labels.select_rows(&idx).unwrap();
            let logits = model.forward(&xb, true);
            let (_l, grad) = loss_fn.compute(&logits, &yb);
            model.backward(&grad);
            recorder.record(&model);
            let mut params = model.params_mut();
            opt.step(&mut params);
            opt.zero_grad(&mut params);
        }
        // Identify shallow / middle / deep quadratic conv weights by parameter order.
        let names = recorder.param_names();
        let conv_indices: Vec<usize> =
            names.iter().enumerate().filter(|(_, n)| n.contains("qconv.wa")).map(|(i, _)| i).collect();
        let picks = [
            ("Conv1 (shallow)", conv_indices.first().copied()),
            ("Conv-mid", conv_indices.get(conv_indices.len() / 2).copied()),
            ("Conv-deep", conv_indices.last().copied()),
        ];
        println!("\n=== Figure 7: gradient L2 norm per epoch — {} ===", label);
        print!("{:>12}", "epoch");
        for (name, _) in &picks {
            print!("{:>16}", name);
        }
        println!();
        for epoch in 0..recorder.epochs() {
            print!("{:>12}", epoch);
            for (_, idx) in &picks {
                let v = idx.map(|i| recorder.series(i)[epoch]).unwrap_or(0.0);
                print!("{:>16.5}", v);
            }
            println!();
        }
        if let Some(first) = conv_indices.first() {
            println!(
                "shallow-layer gradient vanished (last < 10% of first): {}",
                recorder.has_vanished(*first, 0.1)
            );
        }
    }
    println!("\nShape to reproduce: without the linear term the shallow layer's gradients collapse");
    println!("towards zero within a few epochs; with the linear term they stay at a useful scale.");
}
