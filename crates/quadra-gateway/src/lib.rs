//! Event-driven TCP front-end for the `quadra-serve` inference engine.
//!
//! `quadra-serve` batches, fair-shares, and sheds load — in process. This
//! crate puts it on the network: a dependency-free epoll event loop (with a
//! portable `poll(2)` fallback) multiplexes thousands of non-blocking
//! connections over a compact length-prefixed binary protocol, mapping each
//! request frame 1:1 onto [`quadra_serve::Request`] /
//! [`quadra_serve::RouterClient::send`] and streaming
//! [`quadra_serve::InferResponse`]s (or typed errors) back.
//!
//! Architecture, one thread each:
//!
//! * **`gateway-loop`** ([`event_loop`](crate::Gateway)) — readiness
//!   dispatch, codec, connection lifecycle, backpressure. Never blocks on
//!   inference.
//! * **`gateway-pump`** — polls in-flight [`quadra_serve::ResponseHandle`]s
//!   and wakes the loop through an eventfd/self-pipe when results settle.
//! * The engine's own worker threads, owned by the [`quadra_serve::Router`]
//!   the gateway serves.
//!
//! Overload surfaces as *backpressure frames* (the engine's
//! [`quadra_serve::ServeError::Overloaded`] retry hint, per shed request)
//! plus *read pausing* at the per-connection write-buffer high-water mark,
//! so a slow or flooding client throttles itself instead of growing gateway
//! memory. Shutdown is a graceful drain with a deadline; see
//! [`Gateway::shutdown`] for the ordering contract with
//! [`quadra_serve::Router::shutdown`].
//!
//! ```no_run
//! use quadra_gateway::{Gateway, GatewayClient, GatewayConfig, Reply};
//! use quadra_serve::{Priority, Router, ServeConfig};
//! use quadra_tensor::Tensor;
//!
//! # fn model() -> Box<dyn quadra_nn::Layer> { unimplemented!() }
//! let router = Router::builder().endpoint("mlp", ServeConfig::default(), model).start()?;
//! let gateway = Gateway::start(GatewayConfig::default(), router)?;
//!
//! let mut client = GatewayClient::connect(gateway.local_addr(), 16 << 20)?;
//! let reply = client.call("mlp", Tensor::ones(&[1, 64]), Priority::Interactive, None, None)?;
//! if let Reply::Response(frame) = reply {
//!     println!("served by batch {}", frame.batch_id);
//! }
//! gateway.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod client;
mod config;
mod conn;
mod event_loop;
pub mod frame;
mod gateway;
mod pump;
mod sys;

pub use client::{GatewayClient, GatewayError, Reply};
pub use config::GatewayConfig;
pub use conn::{ConnError, Connection, ReadOutcome};
pub use frame::{
    decode_frame, encode_frame, error_frame, BackpressureFrame, ErrorFrame, Frame, FrameError, RequestFrame,
    ResponseFrame, FRAME_HEADER_BYTES, MAX_WIRE_NDIM, PROTOCOL_ERROR_CODE,
};
pub use gateway::Gateway;
