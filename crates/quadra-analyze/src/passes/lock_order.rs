//! Lock-order analysis.
//!
//! Extracts every mutex acquisition (`.lock()` and the workspace's
//! `lock_or_recover(&...)` helper), tracks which guards are still live at
//! each point via lexical scope approximation, and builds a **workspace-wide**
//! acquisition-order graph. Findings:
//!
//! - **cycle** — two code paths acquire the same pair of locks in opposite
//!   orders (potential deadlock), including orders reached transitively
//!   through the cross-crate call-graph approximation;
//! - **reentrant** — a lock acquired while a guard for the same lock is
//!   still live (self-deadlock with `std::sync::Mutex`);
//! - **held-across-blocking** — any lock still held at a `Condvar` wait
//!   (other than the guard being waited on), a channel `send`/`recv`, a
//!   thread `join`, or a call into a function that may block — including a
//!   callee in another crate.
//!
//! Lock identity is crate-qualified: `{crate}::ImplType.field` for
//! `self.field.lock()` receivers, `{crate}::NAME` for UPPERCASE statics, and
//! the crate-qualified dotted receiver path otherwise — so identically named
//! statics in different crates never alias, while a lock reached through a
//! cross-crate call keeps one identity.
//!
//! Calls are resolved across crates: a path-qualified call
//! (`quadra_core::profiler::report(..)`) maps its first segment onto the
//! analyzed crate set (`quadra_core` → `quadra-core`; `crate`/`self`/`super`
//! → the calling crate), and a bare call is resolved through the file's
//! `use`-alias map. Unresolvable names conservatively stay intra-crate.

use crate::config::AnalyzeConfig;
use crate::report::Finding;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Channel / thread / condvar operations a lock must never be held across.
const BLOCKING_OPS: [&str; 6] = ["send", "recv", "recv_timeout", "join", "wait", "wait_timeout"];

/// A function key in the workspace call graph: `(crate, fn name)`.
type FnKey = (String, String);

#[derive(Debug, Clone, Default)]
struct FnSummary {
    locks: BTreeSet<String>,
    blocks: bool,
    calls: BTreeSet<FnKey>,
}

#[derive(Debug, Clone)]
struct Guard {
    lock: String,
    var: Option<String>,
    depth: usize,
}

/// An acquisition-order edge: `from` was held when `to` was acquired.
#[derive(Debug, Clone)]
struct Edge {
    file: String,
    line: u32,
    fn_name: String,
}

/// Crate names reachable from path segments: maps the underscore-normalized
/// form Rust paths use (`quadra_core`) back to the crate name the analyzer
/// keys files by (`quadra-core`).
fn known_crates(files: &[&SourceFile]) -> BTreeMap<String, String> {
    files.iter().map(|f| (f.crate_name.replace('-', "_"), f.crate_name.clone())).collect()
}

/// Resolve a `use`-path first segment (or call-path head) to a crate name:
/// `crate`/`self`/`super` stay in `current`, a segment naming an analyzed
/// crate crosses into it, anything else (std, a module path) stays local.
fn crate_of_segment(segment: &str, current: &str, known: &BTreeMap<String, String>) -> String {
    match segment {
        "crate" | "self" | "super" => current.to_string(),
        seg => known.get(seg).cloned().unwrap_or_else(|| current.to_string()),
    }
}

/// Resolve the callee crate for the call whose name token sits at `idx`:
/// walk a `::`-qualified path back to its head, or fall back to the file's
/// `use`-alias map for bare names. Method calls and unresolved names resolve
/// to the calling crate.
fn resolve_callee_crate(file: &SourceFile, idx: usize, known: &BTreeMap<String, String>) -> String {
    let toks = &file.toks;
    let current = file.crate_name.as_str();
    // Path-qualified: `a::b::name(` — hop back over `ident::` pairs.
    if idx >= 2 && toks[idx - 1].is_punct(':') && toks[idx - 2].is_punct(':') {
        let mut head: Option<&str> = None;
        let mut i = idx;
        while i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].kind == crate::lexer::TokKind::Ident
        {
            head = Some(toks[i - 3].text.as_str());
            i -= 3;
        }
        if let Some(head) = head {
            // The path head itself may be a `use`-alias for another crate's
            // module (`use quadra_core::profiler; profiler::report(..)`).
            let seg = file.use_aliases.get(head).map(String::as_str).unwrap_or(head);
            return crate_of_segment(seg, current, known);
        }
        return current.to_string();
    }
    // Method call: always intra-crate (by-name merge, as before).
    if idx > 0 && toks[idx - 1].is_punct('.') {
        return current.to_string();
    }
    // Bare name: the file's imports decide.
    match file.use_aliases.get(toks[idx].text.as_str()) {
        Some(seg) => crate_of_segment(seg, current, known),
        None => current.to_string(),
    }
}

/// Run the pass over every file of the workspace.
pub fn run(files: &[&SourceFile], cfg: &AnalyzeConfig, findings: &mut Vec<Finding>) {
    let known = known_crates(files);
    // Phase 1: per-function direct summaries, merged by (crate, name).
    let mut summaries: BTreeMap<FnKey, FnSummary> = BTreeMap::new();
    for file in files {
        for f in &file.fns {
            if f.is_test || cfg.is_lock_helper(&f.name) || cfg.is_wait_helper(&f.name) {
                continue;
            }
            let Some((open, close)) = f.body else { continue };
            let direct = direct_summary(file, open, close, cfg, &known);
            let entry = summaries.entry((file.crate_name.clone(), f.name.clone())).or_default();
            entry.locks.extend(direct.locks);
            entry.blocks |= direct.blocks;
            entry.calls.extend(direct.calls);
        }
    }
    // Phase 2: transitive closure over the workspace call graph.
    loop {
        let mut changed = false;
        let keys: Vec<FnKey> = summaries.keys().cloned().collect();
        for key in &keys {
            let calls: Vec<FnKey> = summaries[key]
                .calls
                .iter()
                .filter(|c| summaries.contains_key(*c) && *c != key)
                .cloned()
                .collect();
            for callee in calls {
                let (locks, blocks) = (summaries[&callee].locks.clone(), summaries[&callee].blocks);
                let entry = summaries.get_mut(key).expect("key from keys");
                let before = (entry.locks.len(), entry.blocks);
                entry.locks.extend(locks);
                entry.blocks |= blocks;
                changed |= (entry.locks.len(), entry.blocks) != before;
            }
        }
        if !changed {
            break;
        }
    }
    // Phase 3: guard-tracked scan producing edges and blocking findings.
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    for file in files {
        for f in &file.fns {
            if f.is_test || cfg.is_lock_helper(&f.name) || cfg.is_wait_helper(&f.name) {
                continue;
            }
            let Some((open, close)) = f.body else { continue };
            scan_fn(file, f.name.as_str(), open, close, cfg, &known, &summaries, &mut edges, findings);
        }
    }
    // Phase 4: cycle detection on the acquisition-order graph.
    report_cycles(&edges, findings);
}

/// Direct (non-transitive) lock/blocking/call facts for one fn body.
fn direct_summary(
    file: &SourceFile,
    open: usize,
    close: usize,
    cfg: &AnalyzeConfig,
    known: &BTreeMap<String, String>,
) -> FnSummary {
    let mut out = FnSummary::default();
    let toks = &file.toks;
    let mut i = open;
    while i <= close {
        let t = &toks[i];
        if t.kind == crate::lexer::TokKind::Ident && i < close && toks[i + 1].is_punct('(') {
            let name = t.text.as_str();
            if name == "lock" && i > 0 && toks[i - 1].is_punct('.') {
                if let Some(id) = receiver_lock_id(file, i - 1, file.enclosing_fn(i), known) {
                    out.locks.insert(id);
                }
            } else if cfg.is_lock_helper(name) {
                if let Some(id) = arg_lock_id(file, i + 1, close, file.enclosing_fn(i), known) {
                    out.locks.insert(id);
                }
            } else if cfg.is_wait_helper(name)
                || (i > 0 && toks[i - 1].is_punct('.') && BLOCKING_OPS.contains(&name))
            {
                out.blocks = true;
            } else {
                let callee_crate = resolve_callee_crate(file, i, known);
                out.calls.insert((callee_crate, name.to_string()));
            }
        }
        i += 1;
    }
    out
}

/// Scope-tracked scan of one fn body: emits acquisition-order edges, and
/// findings for re-entrant locks and locks held across blocking operations.
#[allow(clippy::too_many_arguments)]
fn scan_fn(
    file: &SourceFile,
    fn_name: &str,
    open: usize,
    close: usize,
    cfg: &AnalyzeConfig,
    known: &BTreeMap<String, String>,
    summaries: &BTreeMap<FnKey, FnSummary>,
    edges: &mut BTreeMap<(String, String), Edge>,
    findings: &mut Vec<Finding>,
) {
    let toks = &file.toks;
    let mut held: Vec<Guard> = Vec::new();
    let mut depth = 1usize; // inside the body's opening brace
    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            held.retain(|g| g.depth <= depth);
            i += 1;
            continue;
        }
        if t.is_punct(';') {
            // Statement temporaries (un-bound guards) die with the statement.
            held.retain(|g| g.var.is_some());
            i += 1;
            continue;
        }
        if t.kind == crate::lexer::TokKind::Ident && i + 1 < close && toks[i + 1].is_punct('(') {
            let name = t.text.as_str();
            // `drop(var)` releases a named guard.
            if name == "drop" && i + 2 < close && toks[i + 2].kind == crate::lexer::TokKind::Ident {
                let var = toks[i + 2].text.clone();
                held.retain(|g| g.var.as_deref() != Some(var.as_str()));
                i += 3;
                continue;
            }
            let is_method = i > 0 && toks[i - 1].is_punct('.');
            // Acquisition: `.lock()` or `lock_or_recover(&...)`.
            let acquired = if name == "lock" && is_method {
                receiver_lock_id(file, i - 1, file.enclosing_fn(i), known)
            } else if cfg.is_lock_helper(name) && !is_method {
                arg_lock_id(file, i + 1, close, file.enclosing_fn(i), known)
            } else {
                None
            };
            if let Some(id) = acquired {
                if held.iter().any(|g| g.lock == id) {
                    findings.push(finding(
                        file,
                        "reentrant",
                        t.line,
                        format!("lock `{id}` re-acquired in `{fn_name}` while already held (self-deadlock)"),
                    ));
                } else {
                    for g in &held {
                        edges.entry((g.lock.clone(), id.clone())).or_insert(Edge {
                            file: file.path.clone(),
                            line: t.line,
                            fn_name: fn_name.to_string(),
                        });
                    }
                }
                let var = let_binding_var(toks, open, i);
                held.push(Guard { lock: id, var, depth });
                i += 2;
                continue;
            }
            // Condvar waits: the guard being waited on is exempt, any other
            // held lock is a deadlock-in-waiting.
            let wait_guard = if cfg.is_wait_helper(name) && !is_method {
                Some(helper_wait_guard(toks, i + 1, close))
            } else if (name == "wait" || name == "wait_timeout") && is_method {
                Some(first_arg_ident(toks, i + 1, close))
            } else {
                None
            };
            if let Some(exempt) = wait_guard {
                let exempt_is_guard =
                    exempt.as_deref().is_some_and(|v| held.iter().any(|g| g.var.as_deref() == Some(v)));
                for g in &held {
                    if exempt_is_guard && g.var.as_deref() == exempt.as_deref() {
                        continue;
                    }
                    findings.push(finding(
                        file,
                        "held-across-blocking",
                        t.line,
                        format!("lock `{}` held across condvar wait in `{fn_name}`", g.lock),
                    ));
                }
                i += 2;
                continue;
            }
            // Other blocking operations.
            if is_method && BLOCKING_OPS.contains(&name) {
                for g in &held {
                    findings.push(finding(
                        file,
                        "held-across-blocking",
                        t.line,
                        format!("lock `{}` held across `.{name}(...)` in `{fn_name}`", g.lock),
                    ));
                }
                i += 2;
                continue;
            }
            // Resolved call (possibly cross-crate): propagate transitive
            // locks and blocking.
            if name != fn_name {
                let callee = (resolve_callee_crate(file, i, known), name.to_string());
                if let Some(summary) = summaries.get(&callee) {
                    if !held.is_empty() {
                        for g in &held {
                            for lock in &summary.locks {
                                if *lock == g.lock {
                                    continue;
                                }
                                edges.entry((g.lock.clone(), lock.clone())).or_insert(Edge {
                                    file: file.path.clone(),
                                    line: t.line,
                                    fn_name: fn_name.to_string(),
                                });
                            }
                        }
                        if summary.blocks {
                            let locks: Vec<&str> = held.iter().map(|g| g.lock.as_str()).collect();
                            findings.push(finding(
                                file,
                                "held-across-blocking",
                                t.line,
                                format!(
                                    "lock(s) {} held across call to `{name}` which may block",
                                    locks.join(", ")
                                ),
                            ));
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

fn finding(file: &SourceFile, check: &str, line: u32, message: String) -> Finding {
    Finding {
        pass: "lock_order".to_string(),
        check: check.to_string(),
        file: file.path.clone(),
        line,
        message,
        snippet: file.line_text(line).to_string(),
        suppressed_reason: None,
    }
}

/// The crate a lock path belongs to. An explicit `::` path head
/// (`quadra_core::CORE_LOCK.lock()`) pins it; otherwise a bare head that the
/// file imported from another crate (`use quadra_core::CORE_LOCK`) resolves
/// through the use-alias map; anything else is local.
fn lock_crate(
    file: &SourceFile,
    path_head: Option<&str>,
    chain_head: &str,
    known: &BTreeMap<String, String>,
) -> String {
    let seg = match path_head {
        Some(h) => file.use_aliases.get(h).map(String::as_str).unwrap_or(h),
        None => match file.use_aliases.get(chain_head) {
            Some(s) => s.as_str(),
            None => return file.crate_name.clone(),
        },
    };
    crate_of_segment(seg, &file.crate_name, known)
}

/// Canonical lock id for the receiver chain ending at the `.` before `lock`.
/// Returns `None` when the receiver is not a simple path (e.g. a call result).
fn receiver_lock_id(
    file: &SourceFile,
    dot_idx: usize,
    enclosing: Option<&crate::source::FnInfo>,
    known: &BTreeMap<String, String>,
) -> Option<String> {
    let toks = &file.toks;
    let mut chain: Vec<String> = Vec::new();
    let mut head_idx = dot_idx;
    let mut i = dot_idx; // points at the `.`
    loop {
        if i == 0 {
            break;
        }
        let prev = &toks[i - 1];
        if prev.kind == crate::lexer::TokKind::Ident {
            chain.push(prev.text.clone());
            head_idx = i - 1;
            if i >= 2 && toks[i - 2].is_punct('.') {
                i -= 2;
                continue;
            }
        }
        break;
    }
    if chain.is_empty() {
        return None;
    }
    chain.reverse();
    // A `::`-qualified head (`quadra_core::CORE_LOCK.lock()`) pins the crate.
    let mut path_head: Option<&str> = None;
    let mut h = head_idx;
    while h >= 3
        && toks[h - 1].is_punct(':')
        && toks[h - 2].is_punct(':')
        && toks[h - 3].kind == crate::lexer::TokKind::Ident
    {
        h -= 3;
        path_head = Some(toks[h].text.as_str());
    }
    let krate = lock_crate(file, path_head, &chain[0], known);
    Some(canonical_id(&chain, enclosing, &krate))
}

/// Lock id for the first argument of a `lock_or_recover(&path)` call.
/// `open_paren` indexes the `(`.
fn arg_lock_id(
    file: &SourceFile,
    open_paren: usize,
    close: usize,
    enclosing: Option<&crate::source::FnInfo>,
    known: &BTreeMap<String, String>,
) -> Option<String> {
    let toks = &file.toks;
    let mut chain: Vec<String> = Vec::new();
    let mut path_head: Option<String> = None;
    let mut i = open_paren + 1;
    while i <= close && !toks[i].is_punct(',') && !toks[i].is_punct(')') {
        let t = &toks[i];
        if t.is_punct('&') || t.is_ident("mut") || t.is_punct('.') {
            i += 1;
            continue;
        }
        if t.is_punct(':') {
            // `::` path separator: what came before is a module path prefix,
            // not part of the dotted lock chain. Remember its head.
            if path_head.is_none() {
                path_head = chain.first().cloned();
            }
            chain.clear();
            i += 1;
            continue;
        }
        if t.kind == crate::lexer::TokKind::Ident {
            chain.push(t.text.clone());
            i += 1;
            continue;
        }
        return None;
    }
    if chain.is_empty() {
        return None;
    }
    let krate = lock_crate(file, path_head.as_deref(), &chain[0], known);
    Some(canonical_id(&chain, enclosing, &krate))
}

/// Crate-qualified canonical lock identity: `{crate}::ImplType.field` for
/// `self.` receivers, `{crate}::NAME` for UPPERCASE statics, and the
/// crate-qualified dotted chain otherwise. Qualification keeps identically
/// named locks in different crates distinct while letting every edge of the
/// workspace-wide graph share one namespace.
fn canonical_id(chain: &[String], enclosing: Option<&crate::source::FnInfo>, krate: &str) -> String {
    if chain[0] == "self" {
        let base = enclosing
            .and_then(|f| f.impl_type.clone())
            .or_else(|| enclosing.map(|f| f.name.clone()))
            .unwrap_or_else(|| "self".to_string());
        let field = chain.last().filter(|_| chain.len() > 1).cloned().unwrap_or_else(|| "self".to_string());
        return format!("{krate}::{base}.{field}");
    }
    if chain.len() == 1 && chain[0].chars().all(|c| c.is_ascii_uppercase() || c == '_') {
        return format!("{krate}::{}", chain[0]);
    }
    format!("{krate}::{}", chain.join("."))
}

/// The guard argument (index 1) of a `wait_or_recover(&cv, guard, ...)` call.
fn helper_wait_guard(toks: &[crate::lexer::Tok], open_paren: usize, close: usize) -> Option<String> {
    let mut depth = 1usize;
    let mut i = open_paren + 1;
    while i <= close && depth > 0 {
        let t = &toks[i];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 1 {
            // First token of the second argument.
            let mut j = i + 1;
            while j <= close && (toks[j].is_punct('&') || toks[j].is_ident("mut")) {
                j += 1;
            }
            if j <= close && toks[j].kind == crate::lexer::TokKind::Ident {
                return Some(toks[j].text.clone());
            }
            return None;
        }
        i += 1;
    }
    None
}

/// The first argument of a `.wait(guard)` call when it is a bare identifier.
fn first_arg_ident(toks: &[crate::lexer::Tok], open_paren: usize, close: usize) -> Option<String> {
    let mut i = open_paren + 1;
    while i <= close && (toks[i].is_punct('&') || toks[i].is_ident("mut")) {
        i += 1;
    }
    if i <= close && toks[i].kind == crate::lexer::TokKind::Ident {
        return Some(toks[i].text.clone());
    }
    None
}

/// The variable a guard is let-bound to within the current statement, if any.
/// Handles `let mut st = ...`, `let (guard, t) = ...`, `if let Ok(g) = ...`.
fn let_binding_var(toks: &[crate::lexer::Tok], body_open: usize, acq_idx: usize) -> Option<String> {
    // Scan back to the start of the statement.
    let mut start = acq_idx;
    while start > body_open + 1 {
        let p = &toks[start - 1];
        if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') {
            break;
        }
        start -= 1;
    }
    let mut i = start;
    while i < acq_idx && !toks[i].is_ident("let") {
        i += 1;
    }
    if i >= acq_idx {
        return None;
    }
    // First plain binder after `let`: skip `mut`, punctuation, and
    // constructor idents (an ident immediately followed by `(`).
    let mut j = i + 1;
    while j < acq_idx && !toks[j].is_punct('=') {
        let t = &toks[j];
        if t.kind == crate::lexer::TokKind::Ident && !t.is_ident("mut") {
            let is_ctor = j + 1 < acq_idx && toks[j + 1].is_punct('(');
            if !is_ctor {
                return Some(t.text.clone());
            }
        }
        j += 1;
    }
    None
}

/// Detect cycles in the acquisition-order graph and report each once.
fn report_cycles(edges: &BTreeMap<(String, String), Edge>, findings: &mut Vec<Finding>) {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for &start in &nodes {
        // DFS from `start` looking for a path back to `start`.
        let mut stack: Vec<(&str, Vec<&str>)> = vec![(start, vec![start])];
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            for &next in adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]) {
                if next == start {
                    // Canonical form: rotate so the smallest node leads, so
                    // each cycle is reported exactly once.
                    let mut cycle = path.clone();
                    let min_pos =
                        cycle.iter().enumerate().min_by_key(|(_, s)| **s).map(|(i, _)| i).unwrap_or(0);
                    cycle.rotate_left(min_pos);
                    let key = cycle.join(" -> ");
                    if reported.insert(key.clone()) {
                        let first = (path[0].to_string(), path.get(1).copied().unwrap_or(start).to_string());
                        let fallback = Edge { file: String::new(), line: 0, fn_name: String::from("?") };
                        let edge = edges.get(&first).unwrap_or(&fallback);
                        findings.push(Finding {
                            pass: "lock_order".to_string(),
                            check: "cycle".to_string(),
                            file: edge.file.clone(),
                            line: edge.line,
                            message: format!(
                                "lock acquisition cycle {key} -> {} (first edge in `{}`)",
                                cycle[0], edge.fn_name
                            ),
                            snippet: String::new(),
                            suppressed_reason: None,
                        });
                    }
                } else if visited.insert(next) {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((next, p));
                }
            }
        }
    }
}
