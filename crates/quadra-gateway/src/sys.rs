//! Readiness notification and wakeup primitives behind the event loop.
//!
//! On 64-bit Linux this is a thin `epoll_create1`/`epoll_ctl`/`epoll_wait`
//! FFI shim plus an `eventfd` waker, declared in the same minimal style as
//! the `clock_gettime` shim in `vendor/rayon/src/cpu_time.rs` (the build
//! environment has no `libc` crate). Other Unix targets fall back to a
//! portable `poll(2)` loop over the registered set and a self-pipe waker —
//! `struct pollfd` is `{int, short, short}` on every Unix ABI, so a single
//! declaration is sound there. Non-Unix targets report
//! [`std::io::ErrorKind::Unsupported`] from [`Poller::new`]; nothing else in
//! the crate is reached.
//!
//! Both backends are **level-triggered**: an event keeps firing while the
//! condition holds, so the event loop never needs to drain a socket to
//! "re-arm" it — it reads/writes until `WouldBlock` because that is cheaper,
//! not because correctness demands it.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// One readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// The token the file descriptor was registered under.
    pub token: u64,
    /// The descriptor is readable (or has pending data).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
    /// The peer hung up or the descriptor errored; the connection should be
    /// read to EOF and closed.
    pub closed: bool,
}

/// Raw file descriptors of the sockets the event loop multiplexes.
#[cfg(unix)]
pub(crate) fn listener_fd(listener: &std::net::TcpListener) -> i32 {
    use std::os::fd::AsRawFd;
    listener.as_raw_fd()
}

/// Raw file descriptor of a connection socket.
#[cfg(unix)]
pub(crate) fn stream_fd(stream: &std::net::TcpStream) -> i32 {
    use std::os::fd::AsRawFd;
    stream.as_raw_fd()
}

#[cfg(not(unix))]
pub(crate) fn listener_fd(_listener: &std::net::TcpListener) -> i32 {
    -1
}

#[cfg(not(unix))]
pub(crate) fn stream_fd(_stream: &std::net::TcpStream) -> i32 {
    -1
}

// ---------------------------------------------------------------------------
// epoll backend (64-bit Linux)
// ---------------------------------------------------------------------------

#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
mod imp {
    use super::Event;
    use std::io;
    use std::time::Duration;

    const EPOLL_CLOEXEC: i32 = 0x8_0000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// `struct epoll_event`. The kernel ABI packs it on x86-64 only; other
    /// 64-bit architectures use natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// The epoll instance.
    pub(crate) struct Poller {
        epfd: i32,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // Safety: epoll_create1 takes a flag word and returns an fd or -1.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd, buf: vec![EpollEvent { events: 0, data: 0 }; 256] })
        }

        fn ctl(&mut self, op: i32, fd: i32, token: u64, readable: bool, writable: bool) -> io::Result<()> {
            let mut mask = EPOLLRDHUP;
            if readable {
                mask |= EPOLLIN;
            }
            if writable {
                mask |= EPOLLOUT;
            }
            let mut ev = EpollEvent { events: mask, data: token };
            // Safety: `ev` outlives the call; the kernel copies it out.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&mut self, fd: i32, token: u64, readable: bool, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, readable, writable)
        }

        pub fn modify(&mut self, fd: i32, token: u64, readable: bool, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, readable, writable)
        }

        pub fn deregister(&mut self, fd: i32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, false, false)
        }

        pub fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<Event>) -> io::Result<()> {
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
            };
            let capacity = self.buf.len() as i32;
            // Safety: `buf` is a live, writable array of `capacity` events for
            // the duration of the call.
            let n = unsafe { epoll_wait(self.epfd, self.buf.as_mut_ptr(), capacity, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(()); // EINTR: caller simply loops again
                }
                return Err(err);
            }
            for raw in self.buf.iter().take(n as usize) {
                let mask = raw.events;
                out.push(Event {
                    token: raw.data,
                    readable: mask & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: mask & EPOLLOUT != 0,
                    closed: mask & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // Safety: the fd was returned by epoll_create1 and is closed once.
            unsafe { close(self.epfd) };
        }
    }
}

// ---------------------------------------------------------------------------
// poll(2) backend (other Unix)
// ---------------------------------------------------------------------------

#[cfg(all(unix, not(all(target_os = "linux", target_pointer_width = "64"))))]
mod imp {
    use super::Event;
    use std::io;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    /// `struct pollfd`: `{int, short, short}` on every Unix ABI.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        /// `nfds_t` is `unsigned int` on the BSDs/macOS and `unsigned long`
        /// (= 32 bits here: this module only compiles on non-64-bit-pointer
        /// Unix) on Linux, so `u32` matches both.
        fn poll(fds: *mut PollFd, nfds: u32, timeout: i32) -> i32;
    }

    struct Registration {
        fd: i32,
        token: u64,
        readable: bool,
        writable: bool,
    }

    /// Portable fallback: re-builds the pollfd array from the registered set
    /// on every wait. O(n) per call, which is fine for the fleet sizes the
    /// fallback targets (development machines, not production Linux).
    pub(crate) struct Poller {
        registered: Vec<Registration>,
        buf: Vec<PollFd>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller { registered: Vec::with_capacity(64), buf: Vec::with_capacity(64) })
        }

        pub fn register(&mut self, fd: i32, token: u64, readable: bool, writable: bool) -> io::Result<()> {
            if self.registered.iter().any(|r| r.fd == fd) {
                return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd already registered"));
            }
            self.registered.push(Registration { fd, token, readable, writable });
            Ok(())
        }

        pub fn modify(&mut self, fd: i32, token: u64, readable: bool, writable: bool) -> io::Result<()> {
            match self.registered.iter_mut().find(|r| r.fd == fd) {
                Some(r) => {
                    r.token = token;
                    r.readable = readable;
                    r.writable = writable;
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn deregister(&mut self, fd: i32) -> io::Result<()> {
            let before = self.registered.len();
            self.registered.retain(|r| r.fd != fd);
            if self.registered.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        pub fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<Event>) -> io::Result<()> {
            self.buf.clear();
            for r in &self.registered {
                let mut mask = 0i16;
                if r.readable {
                    mask |= POLLIN;
                }
                if r.writable {
                    mask |= POLLOUT;
                }
                self.buf.push(PollFd { fd: r.fd, events: mask, revents: 0 });
            }
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
            };
            let nfds = self.buf.len() as u32;
            // Safety: `buf` holds `nfds` live pollfd entries for the call.
            let n = unsafe { poll(self.buf.as_mut_ptr(), nfds, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (slot, r) in self.buf.iter().zip(self.registered.iter()) {
                let re = slot.revents;
                if re == 0 {
                    continue;
                }
                out.push(Event {
                    token: r.token,
                    readable: re & POLLIN != 0,
                    writable: re & POLLOUT != 0,
                    closed: re & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Stub backend (non-Unix)
// ---------------------------------------------------------------------------

#[cfg(not(unix))]
mod imp {
    use super::Event;
    use std::io;
    use std::time::Duration;

    /// Readiness multiplexing needs OS support this target does not expose
    /// without external crates; [`Poller::new`] reports `Unsupported` and the
    /// gateway refuses to start.
    pub(crate) struct Poller;

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(io::ErrorKind::Unsupported, "quadra-gateway requires a Unix target"))
        }

        pub fn register(&mut self, _fd: i32, _token: u64, _r: bool, _w: bool) -> io::Result<()> {
            Err(io::Error::from(io::ErrorKind::Unsupported))
        }

        pub fn modify(&mut self, _fd: i32, _token: u64, _r: bool, _w: bool) -> io::Result<()> {
            Err(io::Error::from(io::ErrorKind::Unsupported))
        }

        pub fn deregister(&mut self, _fd: i32) -> io::Result<()> {
            Err(io::Error::from(io::ErrorKind::Unsupported))
        }

        pub fn wait(&mut self, _timeout: Option<Duration>, _out: &mut Vec<Event>) -> io::Result<()> {
            Err(io::Error::from(io::ErrorKind::Unsupported))
        }
    }
}

/// Readiness multiplexer over raw fds: epoll on 64-bit Linux, `poll(2)`
/// elsewhere on Unix.
pub(crate) struct Poller {
    imp: imp::Poller,
}

impl Poller {
    /// Create the OS readiness instance.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller { imp: imp::Poller::new()? })
    }

    /// Start watching `fd` under `token` for the given interests.
    pub fn register(&mut self, fd: i32, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.imp.register(fd, token, readable, writable)
    }

    /// Replace the interests of an already-registered `fd`.
    pub fn modify(&mut self, fd: i32, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.imp.modify(fd, token, readable, writable)
    }

    /// Stop watching `fd`.
    pub fn deregister(&mut self, fd: i32) -> io::Result<()> {
        self.imp.deregister(fd)
    }

    /// Block for up to `timeout` (forever when `None`) and append ready
    /// events to `out`. Returns normally on `EINTR` with no events.
    pub fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<Event>) -> io::Result<()> {
        self.imp.wait(timeout, out)
    }
}

// ---------------------------------------------------------------------------
// Waker
// ---------------------------------------------------------------------------

#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
mod waker_imp {
    use std::io;

    const EFD_CLOEXEC: i32 = 0x8_0000;
    const EFD_NONBLOCK: i32 = 0x800;

    extern "C" {
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    /// An eventfd: one fd, written by the pump thread, read by the loop.
    pub(crate) struct Fds {
        fd: i32,
    }

    impl Fds {
        pub fn new() -> io::Result<Fds> {
            // Safety: eventfd takes two scalars and returns an fd or -1.
            let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Fds { fd })
        }

        pub fn read_fd(&self) -> i32 {
            self.fd
        }

        pub fn signal(&self) {
            let one: u64 = 1;
            // Safety: writes 8 bytes from a live stack value. A full counter
            // (EAGAIN) already guarantees a pending wakeup, so the result is
            // intentionally ignored.
            unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
        }

        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            // Safety: reads at most 8 bytes into a live stack buffer. The fd
            // is non-blocking; an empty counter returns EAGAIN, which is the
            // desired no-op.
            unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
        }
    }

    impl Drop for Fds {
        fn drop(&mut self) {
            // Safety: the fd came from eventfd and is closed exactly once.
            unsafe { close(self.fd) };
        }
    }
}

#[cfg(all(unix, not(all(target_os = "linux", target_pointer_width = "64"))))]
mod waker_imp {
    use std::io;

    extern "C" {
        fn pipe(fds: *mut i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    /// A self-pipe. The fds stay blocking: the loop only reads after `poll`
    /// reported readability, and the writer sends at most one byte per
    /// outstanding wakeup (the [`super::Waker`] `pending` flag coalesces), so
    /// neither side can stall.
    pub(crate) struct Fds {
        read_end: i32,
        write_end: i32,
    }

    impl Fds {
        pub fn new() -> io::Result<Fds> {
            let mut fds = [0i32; 2];
            // Safety: pipe writes two fds into a live 2-element array.
            let rc = unsafe { pipe(fds.as_mut_ptr()) };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            let [read_end, write_end] = fds;
            Ok(Fds { read_end, write_end })
        }

        pub fn read_fd(&self) -> i32 {
            self.read_end
        }

        pub fn signal(&self) {
            let one = [1u8];
            // Safety: writes one byte from a live buffer.
            unsafe { write(self.write_end, one.as_ptr(), 1) };
        }

        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            // Safety: reads into a live buffer; at most one byte is ever
            // outstanding, so a post-readiness read cannot block.
            unsafe { read(self.read_end, buf.as_mut_ptr(), buf.len()) };
        }
    }

    impl Drop for Fds {
        fn drop(&mut self) {
            // Safety: both fds came from pipe() and are closed exactly once.
            unsafe {
                close(self.read_end);
                close(self.write_end);
            }
        }
    }
}

#[cfg(not(unix))]
mod waker_imp {
    use std::io;

    pub(crate) struct Fds;

    impl Fds {
        pub fn new() -> io::Result<Fds> {
            Err(io::Error::new(io::ErrorKind::Unsupported, "quadra-gateway requires a Unix target"))
        }

        pub fn read_fd(&self) -> i32 {
            -1
        }

        pub fn signal(&self) {}

        pub fn drain(&self) {}
    }
}

/// Cross-thread wakeup for the event loop: the completion pump (or a
/// shutdown request) signals, the loop's poller observes the waker fd as
/// readable and drains it. Signals coalesce through `pending`, so a stalled
/// loop accumulates exactly one outstanding byte/count no matter how many
/// notifications raced in.
pub(crate) struct Waker {
    fds: waker_imp::Fds,
    pending: AtomicBool,
}

impl Waker {
    /// Create the wakeup channel (eventfd on 64-bit Linux, self-pipe on
    /// other Unix).
    pub fn new() -> io::Result<Waker> {
        Ok(Waker { fds: waker_imp::Fds::new()?, pending: AtomicBool::new(false) })
    }

    /// The fd the event loop registers for readability.
    pub fn read_fd(&self) -> i32 {
        self.fds.read_fd()
    }

    /// Wake the event loop (idempotent while a wakeup is pending).
    pub fn notify(&self) {
        if !self.pending.swap(true, Ordering::AcqRel) {
            self.fds.signal();
        }
    }

    /// Consume a pending wakeup; called by the loop when the fd fires.
    pub fn drain(&self) {
        self.pending.store(false, Ordering::Release);
        self.fds.drain();
    }
}

// Safety: the fds are plain integers used through syscalls that are safe to
// invoke from any thread; `pending` is atomic.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

#[cfg(all(unix, test))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poller_reports_readability_on_a_socket_pair() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();

        let mut poller = Poller::new().unwrap();
        poller.register(stream_fd(&server), 7, true, false).unwrap();

        let mut events = Vec::new();
        poller.wait(Some(Duration::from_millis(50)), &mut events).unwrap();
        assert!(events.is_empty(), "nothing written yet: {events:?}");

        client.write_all(b"hi").unwrap();
        let mut events = Vec::new();
        poller.wait(Some(Duration::from_millis(1000)), &mut events).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        let mut buf = [0u8; 2];
        server.read_exact(&mut buf).unwrap();
        poller.deregister(stream_fd(&server)).unwrap();
    }

    #[test]
    fn poller_modify_switches_interest_to_writable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let _ = client;

        let mut poller = Poller::new().unwrap();
        poller.register(stream_fd(&server), 3, true, false).unwrap();
        poller.modify(stream_fd(&server), 3, false, true).unwrap();
        let mut events = Vec::new();
        poller.wait(Some(Duration::from_millis(1000)), &mut events).unwrap();
        // An idle socket with room in its send buffer is writable.
        assert_eq!(events.len(), 1);
        assert!(events[0].writable);
        assert!(!events[0].readable);
    }

    #[test]
    fn waker_wakes_the_poller_and_coalesces() {
        let waker = Waker::new().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(waker.read_fd(), 1, true, false).unwrap();

        waker.notify();
        waker.notify(); // coalesced: pending flag already set
        let mut events = Vec::new();
        poller.wait(Some(Duration::from_millis(1000)), &mut events).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 1);
        waker.drain();

        // Drained: the next wait times out quietly.
        let mut events = Vec::new();
        poller.wait(Some(Duration::from_millis(20)), &mut events).unwrap();
        assert!(events.is_empty());

        // And a fresh notify after the drain fires again.
        waker.notify();
        let mut events = Vec::new();
        poller.wait(Some(Duration::from_millis(1000)), &mut events).unwrap();
        assert_eq!(events.len(), 1);
    }
}
