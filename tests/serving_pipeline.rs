//! End-to-end serving pipeline: train a toy BatchNorm CNN, checkpoint it to
//! disk, hot-reload it into a running inference server, and prove the served
//! predictions are bitwise-identical to direct `forward` calls.
//!
//! This is the regression surface for the two eval-path bugs the serving
//! subsystem exposed: checkpoints dropping BatchNorm running statistics, and
//! batch coalescing changing predictions.
//!
//! Follows the repo convention: a shrunk default test plus the full-length
//! variant behind `#[ignore]` for the non-blocking CI job.

use quadralib::core::{build_model, LayerSpec, ModelConfig};
use quadralib::data::ShapeImageDataset;
use quadralib::nn::{ConstantLr, CrossEntropyLoss, Layer, Sgd, StateDict, Trainer, TrainerConfig};
use quadralib::serve::{BatchPolicy, InferenceServer, ServeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn toy_config() -> ModelConfig {
    ModelConfig::new(
        "serving-toy",
        3,
        8,
        4,
        vec![
            LayerSpec::Conv {
                out_channels: 6,
                kernel: 3,
                stride: 1,
                padding: 1,
                groups: 1,
                batch_norm: true,
                relu: true,
            },
            LayerSpec::Conv {
                out_channels: 8,
                kernel: 3,
                stride: 2,
                padding: 1,
                groups: 1,
                batch_norm: true,
                relu: true,
            },
            LayerSpec::GlobalAvgPool,
            LayerSpec::Linear { out_features: 4, relu: false },
        ],
    )
}

fn serving_pipeline(n_train: usize, epochs: usize, n_serve: usize) {
    // 1. Train a toy model whose eval path depends on BatchNorm running stats.
    let config = toy_config();
    let mut trained = build_model(&config, &mut StdRng::seed_from_u64(1));
    let data = ShapeImageDataset::generate(n_train, 4, 8, 3, 0.05, 2);
    let report =
        Trainer::new(TrainerConfig { epochs, batch_size: 16, verbose: false, ..TrainerConfig::default() })
            .fit(
                &mut trained,
                &CrossEntropyLoss::new(),
                &mut Sgd::plain(0.05),
                &ConstantLr::new(0.05),
                &data.images,
                &data.labels,
                None,
            );
    assert!(report.final_loss().is_finite());
    trained.clear_cache();

    // 2. Checkpoint to disk — running statistics must survive the round trip.
    let state = StateDict::from_layer(&trained);
    assert!(!state.buffers.is_empty(), "BatchNorm running stats must be captured");
    let path = std::env::temp_dir().join(format!("quadra_serving_pipeline_{}.json", n_train));
    state.save(&path).unwrap();
    let restored = StateDict::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // 3. Direct per-sample eval forwards are the ground truth.
    let eval = ShapeImageDataset::generate(n_serve, 4, 8, 3, 0.05, 3);
    let mut expected = Vec::with_capacity(n_serve);
    for i in 0..n_serve {
        let xi = eval.images.narrow(0, i, 1).unwrap();
        expected.push(trained.forward(&xi, false));
    }

    // 4. Serve from a *differently initialised* replica pool, hot-reloading
    //    the trained checkpoint into it.
    let server = InferenceServer::start(
        ServeConfig {
            workers: 2,
            policy: BatchPolicy {
                max_batch_size: 4,
                max_wait: Duration::from_millis(2),
                ..BatchPolicy::default()
            },
            ..ServeConfig::default()
        },
        move || Box::new(build_model(&toy_config(), &mut StdRng::seed_from_u64(99))),
    )
    .unwrap();
    let client = server.client();

    // Fresh factory weights (version 0) must NOT match the trained model —
    // otherwise the reload below would prove nothing.
    let fresh = client.infer(eval.images.narrow(0, 0, 1).unwrap()).unwrap();
    assert_eq!(fresh.model_version, 0);
    assert_ne!(fresh.output.as_slice(), expected[0].as_slice());

    let version = server.reload(restored).unwrap();
    assert_eq!(version, 1);

    // 5a. Concurrent single-sample clients: batched serving must reproduce
    //     the direct forwards bit for bit.
    let pending: Vec<_> =
        (0..n_serve).map(|i| client.submit(eval.images.narrow(0, i, 1).unwrap()).unwrap()).collect();
    for (i, p) in pending.into_iter().enumerate() {
        let response = p.wait().unwrap();
        assert_eq!(response.model_version, 1);
        assert_eq!(response.output.shape(), expected[i].shape());
        assert_eq!(
            response.output.as_slice(),
            expected[i].as_slice(),
            "served prediction for sample {} diverged from direct forward",
            i
        );
    }

    // 5b. A single multi-sample request (an oversized batch) must match the
    //     direct batch forward exactly as well.
    let direct_batch = trained.forward(&eval.images, false);
    let batched = client.infer(eval.images.clone()).unwrap();
    assert_eq!(batched.batch_samples, n_serve);
    assert_eq!(batched.output.as_slice(), direct_batch.as_slice());

    let metrics = server.shutdown();
    assert_eq!(metrics.completed_requests as usize, n_serve + 2);
    assert_eq!(metrics.errored_requests, 0);
    assert_eq!(metrics.reloads, 1);
    assert!(metrics.peak_batch_activation_bytes > 0, "per-batch memory must be accounted");
    assert!(metrics.p95_latency_ms >= metrics.p50_latency_ms);
}

#[test]
fn served_predictions_match_direct_forward() {
    serving_pipeline(48, 2, 12);
}

#[test]
#[ignore = "full-length variant of served_predictions_match_direct_forward"]
fn served_predictions_match_direct_forward_full() {
    serving_pipeline(192, 5, 48);
}
