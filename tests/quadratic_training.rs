//! Integration tests spanning the whole stack: quadratic layers + datasets +
//! trainer + auto-builder, exercised through the public `quadralib` API.
//!
//! Each scenario comes in two sizes: a shrunk default that keeps every
//! assertion but trains smaller models for fewer epochs, and the original
//! full-length version behind `#[ignore]` (run with `cargo test -- --ignored`,
//! exercised by the non-blocking CI job).

use quadralib::core::{build_model, AutoBuilder, LayerSpec, ModelConfig, NeuronType, QuadraticLinear};
use quadralib::data::{two_spirals, xor_dataset, ShapeImageDataset};
use quadralib::nn::{
    accuracy, ConstantLr, CrossEntropyLoss, Layer, Loss, Optimizer, Relu, Sequential, Sgd, SgdConfig,
    Trainer, TrainerConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A single quadratic layer of every practical type solves XOR, while a single
/// first-order linear layer cannot — the motivating claim of the QDNN line of
/// work that QuadraLib's Table 1 designs all share.
fn xor_every_type(train_n: usize, test_n: usize, epochs: usize) {
    let (train_x, train_y) = xor_dataset(train_n, 0.1, 1);
    let (test_x, test_y) = xor_dataset(test_n, 0.1, 2);
    for neuron in [NeuronType::T1, NeuronType::T2And4, NeuronType::T4, NeuronType::Ours] {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = Sequential::new(vec![Box::new(QuadraticLinear::new(neuron, 2, 2, &mut rng))]);
        let mut opt = Sgd::new(SgdConfig { lr: 0.1, momentum: 0.9, weight_decay: 0.0, nesterov: false });
        let loss_fn = CrossEntropyLoss::new();
        for _ in 0..epochs {
            let logits = model.forward(&train_x, true);
            let (_l, grad) = loss_fn.compute(&logits, &train_y);
            model.backward(&grad);
            let mut params = model.params_mut();
            opt.step(&mut params);
            opt.zero_grad(&mut params);
        }
        let acc = accuracy(&model.forward(&test_x, false), &test_y);
        assert!(acc > 0.9, "{} failed XOR: acc {}", neuron, acc);
    }
}

#[test]
fn single_quadratic_layer_solves_xor_for_every_type() {
    xor_every_type(150, 60, 60);
}

#[test]
#[ignore = "full-length variant of single_quadratic_layer_solves_xor_for_every_type"]
fn single_quadratic_layer_solves_xor_for_every_type_full() {
    xor_every_type(300, 100, 80);
}

/// A first-order linear classifier cannot solve XOR (sanity check of the
/// comparison axis).
#[test]
fn single_linear_layer_fails_xor() {
    let (train_x, train_y) = xor_dataset(300, 0.1, 4);
    let mut rng = StdRng::seed_from_u64(5);
    let mut model = Sequential::new(vec![Box::new(quadralib::nn::Linear::new(2, 2, true, &mut rng))]);
    let mut opt = Sgd::new(SgdConfig { lr: 0.1, momentum: 0.9, weight_decay: 0.0, nesterov: false });
    let loss_fn = CrossEntropyLoss::new();
    for _ in 0..80 {
        let logits = model.forward(&train_x, true);
        let (_l, grad) = loss_fn.compute(&logits, &train_y);
        model.backward(&grad);
        let mut params = model.params_mut();
        opt.step(&mut params);
        opt.zero_grad(&mut params);
    }
    let acc = accuracy(&model.forward(&train_x, false), &train_y);
    assert!(acc < 0.8, "a linear layer should not solve XOR, got {}", acc);
}

/// The quadratic model reaches a decent accuracy on the spirals problem with a
/// shallow network — the "higher capability per layer" claim.
fn spirals_shallow_mlp(train_n: usize, hidden: usize, epochs: usize) {
    let (train_x, train_y) = two_spirals(train_n, 0.02, 6);
    let mut rng = StdRng::seed_from_u64(7);
    let mut model = Sequential::new(vec![
        Box::new(QuadraticLinear::new(NeuronType::Ours, 2, hidden, &mut rng)),
        Box::new(Relu::new()),
        Box::new(QuadraticLinear::new(NeuronType::Ours, hidden, 2, &mut rng)),
    ]);
    let mut trainer =
        Trainer::new(TrainerConfig { epochs, batch_size: 64, shuffle: true, seed: 8, verbose: false });
    let mut opt = Sgd::new(SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 0.0, nesterov: false });
    let report = trainer.fit(
        &mut model,
        &CrossEntropyLoss::new(),
        &mut opt,
        &ConstantLr::new(0.05),
        &train_x,
        &train_y,
        None,
    );
    assert!(report.final_train_acc() > 0.85, "spirals train acc {}", report.final_train_acc());
}

#[test]
fn shallow_quadratic_mlp_learns_two_spirals() {
    spirals_shallow_mlp(240, 16, 40);
}

#[test]
#[ignore = "full-length variant of shallow_quadratic_mlp_learns_two_spirals"]
fn shallow_quadratic_mlp_learns_two_spirals_full() {
    spirals_shallow_mlp(400, 24, 60);
}

/// End-to-end auto-builder pipeline: first-order config -> JSON round trip ->
/// quadratic conversion -> RI reduction -> trainable model with fewer layers
/// and better-or-equal accuracy on a small shape-classification task.
fn auto_builder_end_to_end(train_n: usize, test_n: usize, epochs: usize) {
    let first = ModelConfig::new(
        "it-vgg",
        3,
        12,
        4,
        vec![
            LayerSpec::conv3x3(8),
            LayerSpec::conv3x3(8),
            LayerSpec::conv3x3(8),
            LayerSpec::MaxPool { kernel: 2 },
            LayerSpec::GlobalAvgPool,
            LayerSpec::Linear { out_features: 4, relu: false },
        ],
    );
    // Configuration file round trip.
    let json = first.to_json();
    let restored = ModelConfig::from_json(&json).unwrap();
    assert_eq!(restored, first);

    let quadra = AutoBuilder::new(NeuronType::Ours).build(&restored, 2, &[]);
    assert_eq!(quadra.conv_layer_count(), 2);
    assert!(quadra.is_quadratic());

    let train = ShapeImageDataset::generate(train_n, 4, 12, 3, 0.08, 9);
    let test = ShapeImageDataset::generate(test_n, 4, 12, 3, 0.08, 10);
    let mut accs = Vec::new();
    for cfg in [&restored, &quadra] {
        let mut rng = StdRng::seed_from_u64(11);
        let mut model = build_model(cfg, &mut rng);
        let mut trainer =
            Trainer::new(TrainerConfig { epochs, batch_size: 32, shuffle: true, seed: 12, verbose: false });
        let mut opt = Sgd::new(SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 5e-4, nesterov: false });
        trainer.fit(
            &mut model,
            &CrossEntropyLoss::new(),
            &mut opt,
            &ConstantLr::new(0.05),
            &train.images,
            &train.labels,
            None,
        );
        let (acc, _) = trainer.evaluate(&mut model, &test.images, &test.labels);
        accs.push(acc);
    }
    // The reduced quadratic model should be in the same accuracy ballpark (or
    // better) despite having fewer conv layers.
    assert!(accs[1] > accs[0] - 0.15, "first-order {:.3} vs QuadraNN {:.3}", accs[0], accs[1]);
}

#[test]
fn auto_builder_end_to_end_produces_a_competitive_smaller_model() {
    auto_builder_end_to_end(144, 48, 5);
}

#[test]
#[ignore = "full-length variant of auto_builder_end_to_end_produces_a_competitive_smaller_model"]
fn auto_builder_end_to_end_produces_a_competitive_smaller_model_full() {
    auto_builder_end_to_end(240, 80, 8);
}
