//! Table 4 — VGG on the Tiny-ImageNet stand-in: first-order vs QuadraNN vs
//! QuadraNN without ReLU (the ablation showing activations still matter at depth).
//!
//! Regenerate with `cargo run -p quadra-bench --release --bin table4`.

use quadra_bench::{print_table, run_classification, scale, RunSettings, Scale};
use quadra_core::{AutoBuilder, LayerSpec, NeuronType};
use quadra_data::ShapeImageDataset;
use quadra_models::vgg16_config;

fn main() {
    let (n_train, n_test, epochs, width, img, classes) = match scale() {
        Scale::Full => (2000usize, 500usize, 20usize, 0.25f32, 64usize, 20usize),
        Scale::Quick => (300, 100, 5, 0.0625, 32, 10),
    };
    let train = ShapeImageDataset::generate(n_train, classes, img, 3, 0.12, 21);
    let test = ShapeImageDataset::generate(n_test, classes, img, 3, 0.12, 22);

    let first = vgg16_config(width, classes, img);
    let builder = AutoBuilder::new(NeuronType::Ours);
    let quadra = builder.build(&first, 7, &[]);
    let mut quadra_no_relu = quadra.clone();
    quadra_no_relu.name = format!("{}-norelu", quadra_no_relu.name);
    for spec in quadra_no_relu.layers.iter_mut() {
        if let LayerSpec::QuadraticConv { relu, .. } = spec {
            *relu = false;
        }
    }

    let settings = RunSettings { epochs, batch_size: 32, lr: 0.05, seed: 7 };
    let rows: Vec<Vec<String>> =
        [("First-order", &first), ("QuadraNN", &quadra), ("QuadraNN (no ReLU)", &quadra_no_relu)]
            .iter()
            .map(|(name, cfg)| {
                let r = run_classification(name, cfg, &train, &test, settings);
                vec![name.to_string(), r.conv_layers.to_string(), format!("{:.2}%", r.test_acc * 100.0)]
            })
            .collect();
    print_table(
        "Table 4: VGG structures on the Tiny-ImageNet stand-in",
        &["Model", "#ConvLayers", "Test accuracy"],
        &rows,
    );
    println!("\nShape to reproduce: QuadraNN matches or beats the deeper first-order VGG with");
    println!("roughly half the conv layers; removing ReLU from the (still deep) QuadraNN hurts.");
}
