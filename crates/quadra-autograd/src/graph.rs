//! The tape (computation graph) and its reverse-mode backward pass.

use quadra_tensor::Tensor;

/// Handle to a value recorded on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

/// The operation that produced a tape node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// A leaf value supplied by the user (inputs and parameters).
    Input,
    /// Element-wise addition (with broadcasting of the right operand).
    Add(VarId, VarId),
    /// Element-wise subtraction.
    Sub(VarId, VarId),
    /// Element-wise (Hadamard) product.
    Mul(VarId, VarId),
    /// Matrix product of rank-2 tensors.
    MatMul(VarId, VarId),
    /// Multiplication by a scalar constant.
    Scale(VarId),
    /// Element-wise square.
    Square(VarId),
    /// Rectified linear unit.
    Relu(VarId),
    /// Logistic sigmoid.
    Sigmoid(VarId),
    /// Hyperbolic tangent.
    Tanh(VarId),
    /// Sum of all elements (scalar output).
    Sum(VarId),
    /// Mean of all elements (scalar output).
    Mean(VarId),
}

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
    /// Scalar attribute used by `Scale`.
    scalar: f32,
}

/// A dynamically built computation graph (tape) for reverse-mode AD.
///
/// Every operation appends a node holding its *full output value*; `backward`
/// walks the tape in reverse and accumulates gradients into every node. The
/// total number of bytes held by the tape is available via
/// [`Graph::tape_bytes`], which is what makes the AD-vs-symbolic memory
/// comparison of the paper measurable.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Create an empty tape.
    pub fn new() -> Self {
        Graph { nodes: Vec::new() }
    }

    /// Number of nodes currently recorded.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total bytes of tensor values kept alive by the tape (the AD memory cost).
    pub fn tape_bytes(&self) -> usize {
        self.nodes.iter().map(|n| n.value.nbytes()).sum()
    }

    fn push(&mut self, value: Tensor, op: Op, scalar: f32) -> VarId {
        self.nodes.push(Node { value, grad: None, op, scalar });
        VarId(self.nodes.len() - 1)
    }

    /// Record a leaf value (input or parameter).
    pub fn input(&mut self, value: Tensor) -> VarId {
        self.push(value, Op::Input, 0.0)
    }

    /// Read the value of a node.
    pub fn value(&self, id: VarId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// Read the gradient accumulated for a node (available after `backward`).
    pub fn grad(&self, id: VarId) -> Option<&Tensor> {
        self.nodes[id.0].grad.as_ref()
    }

    /// Element-wise addition. Shapes must match or the right operand must broadcast.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a.0].value.add(&self.nodes[b.0].value).expect("add shapes");
        self.push(v, Op::Add(a, b), 0.0)
    }

    /// Element-wise subtraction.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a.0].value.sub(&self.nodes[b.0].value).expect("sub shapes");
        self.push(v, Op::Sub(a, b), 0.0)
    }

    /// Element-wise (Hadamard) product — the second-order building block of QDNNs.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a.0].value.mul(&self.nodes[b.0].value).expect("mul shapes");
        self.push(v, Op::Mul(a, b), 0.0)
    }

    /// Matrix product of two rank-2 nodes.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value).expect("matmul shapes");
        self.push(v, Op::MatMul(a, b), 0.0)
    }

    /// Multiply a node by a scalar constant.
    pub fn scale(&mut self, a: VarId, s: f32) -> VarId {
        let v = self.nodes[a.0].value.mul_scalar(s);
        self.push(v, Op::Scale(a), s)
    }

    /// Element-wise square.
    pub fn square(&mut self, a: VarId) -> VarId {
        let v = self.nodes[a.0].value.square();
        self.push(v, Op::Square(a), 0.0)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let v = self.nodes[a.0].value.relu();
        self.push(v, Op::Relu(a), 0.0)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        let v = self.nodes[a.0].value.sigmoid();
        self.push(v, Op::Sigmoid(a), 0.0)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let v = self.nodes[a.0].value.tanh();
        self.push(v, Op::Tanh(a), 0.0)
    }

    /// Sum of all elements, producing a scalar node.
    pub fn sum(&mut self, a: VarId) -> VarId {
        let v = Tensor::scalar(self.nodes[a.0].value.sum());
        self.push(v, Op::Sum(a), 0.0)
    }

    /// Mean of all elements, producing a scalar node.
    pub fn mean(&mut self, a: VarId) -> VarId {
        let v = Tensor::scalar(self.nodes[a.0].value.mean());
        self.push(v, Op::Mean(a), 0.0)
    }

    fn accumulate(&mut self, id: VarId, grad: Tensor) {
        // Reduce broadcasted gradients back to the original shape by summing
        // over broadcast axes (sufficient for the bias-style broadcasting we use).
        let target_shape = self.nodes[id.0].value.shape().to_vec();
        let grad = reduce_to_shape(grad, &target_shape);
        match &mut self.nodes[id.0].grad {
            Some(g) => {
                g.add_assign(&grad).expect("gradient shapes match");
            }
            None => self.nodes[id.0].grad = Some(grad),
        }
    }

    /// Run reverse-mode differentiation starting from the scalar node `output`.
    ///
    /// # Panics
    /// Panics if `output` is not a single-element tensor.
    pub fn backward(&mut self, output: VarId) {
        assert_eq!(self.nodes[output.0].value.numel(), 1, "backward must start from a scalar node");
        for n in self.nodes.iter_mut() {
            n.grad = None;
        }
        self.nodes[output.0].grad = Some(Tensor::ones(self.nodes[output.0].value.shape()));

        for i in (0..self.nodes.len()).rev() {
            let grad = match &self.nodes[i].grad {
                Some(g) => g.clone(),
                None => continue,
            };
            let op = self.nodes[i].op;
            let scalar = self.nodes[i].scalar;
            match op {
                Op::Input => {}
                Op::Add(a, b) => {
                    self.accumulate(a, grad.clone());
                    self.accumulate(b, grad);
                }
                Op::Sub(a, b) => {
                    self.accumulate(a, grad.clone());
                    self.accumulate(b, grad.neg());
                }
                Op::Mul(a, b) => {
                    let ga = grad.mul(&self.nodes[b.0].value).expect("mul grad");
                    let gb = grad.mul(&self.nodes[a.0].value).expect("mul grad");
                    self.accumulate(a, ga);
                    self.accumulate(b, gb);
                }
                Op::MatMul(a, b) => {
                    // dA = dC · Bᵀ, dB = Aᵀ · dC — transpose-free kernels.
                    let ga = grad.matmul_nt(&self.nodes[b.0].value).expect("matmul grad");
                    let gb = self.nodes[a.0].value.matmul_tn(&grad).expect("matmul grad");
                    self.accumulate(a, ga);
                    self.accumulate(b, gb);
                }
                Op::Scale(a) => self.accumulate(a, grad.mul_scalar(scalar)),
                Op::Square(a) => {
                    let ga = grad.mul(&self.nodes[a.0].value.mul_scalar(2.0)).expect("square grad");
                    self.accumulate(a, ga);
                }
                Op::Relu(a) => {
                    let mask = self.nodes[a.0].value.map(|x| if x > 0.0 { 1.0 } else { 0.0 });
                    self.accumulate(a, grad.mul(&mask).expect("relu grad"));
                }
                Op::Sigmoid(a) => {
                    let y = &self.nodes[i].value;
                    let dy = y.mul(&y.map(|v| 1.0 - v)).expect("sigmoid grad");
                    self.accumulate(a, grad.mul(&dy).expect("sigmoid grad"));
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[i].value;
                    let dy = y.map(|v| 1.0 - v * v);
                    self.accumulate(a, grad.mul(&dy).expect("tanh grad"));
                }
                Op::Sum(a) => {
                    let ones = Tensor::ones(self.nodes[a.0].value.shape());
                    self.accumulate(a, ones.mul_scalar(grad.item()));
                }
                Op::Mean(a) => {
                    let n = self.nodes[a.0].value.numel().max(1) as f32;
                    let ones = Tensor::ones(self.nodes[a.0].value.shape());
                    self.accumulate(a, ones.mul_scalar(grad.item() / n));
                }
            }
        }
    }
}

/// Sum a (possibly broadcast) gradient back down to `shape`.
fn reduce_to_shape(grad: Tensor, shape: &[usize]) -> Tensor {
    if grad.shape() == shape {
        return grad;
    }
    let mut g = grad;
    // Remove leading broadcast axes.
    while g.ndim() > shape.len() {
        g = g.sum_axis(0).expect("axis exists");
    }
    // Sum axes where the target extent is 1.
    for (ax, &extent) in shape.iter().enumerate() {
        if extent == 1 && g.shape()[ax] != 1 {
            g = g.sum_axis(ax).expect("axis exists").unsqueeze(ax).expect("unsqueeze");
        }
    }
    g.reshape(shape).expect("gradient reducible to target shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sum_gradients() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_slice(&[1.0, 2.0]));
        let b = g.input(Tensor::from_slice(&[3.0, 4.0]));
        let c = g.add(a, b);
        let loss = g.sum(c);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().as_slice(), &[1.0, 1.0]);
        assert_eq!(g.grad(b).unwrap().as_slice(), &[1.0, 1.0]);
        assert_eq!(g.value(loss).item(), 10.0);
        assert_eq!(g.len(), 4);
        assert!(!g.is_empty());
    }

    #[test]
    fn product_rule() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_slice(&[2.0, 3.0]));
        let b = g.input(Tensor::from_slice(&[5.0, 7.0]));
        let c = g.mul(a, b);
        let loss = g.sum(c);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().as_slice(), &[5.0, 7.0]);
        assert_eq!(g.grad(b).unwrap().as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn sub_scale_square_mean() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_slice(&[1.0, -2.0]));
        let b = g.input(Tensor::from_slice(&[0.5, 0.5]));
        let d = g.sub(a, b);
        let s = g.scale(d, 3.0);
        let q = g.square(s);
        let loss = g.mean(q);
        g.backward(loss);
        // loss = mean((3(a-b))^2) => dl/da = 9(a-b) ; components /1 since mean over 2 => *1/2*2*9(a-b)
        let expect: Vec<f32> = [0.5f32, -2.5].iter().map(|&x| 9.0 * x).collect();
        let got = g.grad(a).unwrap().as_slice().to_vec();
        assert!((got[0] - expect[0]).abs() < 1e-5);
        assert!((got[1] - expect[1]).abs() < 1e-5);
        let gb = g.grad(b).unwrap().as_slice().to_vec();
        assert!((gb[0] + expect[0]).abs() < 1e-5);
    }

    #[test]
    fn matmul_gradients_match_formula() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
        let b = g.input(Tensor::from_vec(vec![0.5, -1.0, 2.0, 1.5], &[2, 2]).unwrap());
        let c = g.matmul(a, b);
        let loss = g.sum(c);
        g.backward(loss);
        // dL/dA = ones . B^T, dL/dB = A^T . ones
        let ones = Tensor::ones(&[2, 2]);
        let expect_a = ones.matmul(&g.value(b).transpose().unwrap()).unwrap();
        let expect_b = g.value(a).transpose().unwrap().matmul(&ones).unwrap();
        assert!(g.grad(a).unwrap().allclose(&expect_a, 1e-6));
        assert!(g.grad(b).unwrap().allclose(&expect_b, 1e-6));
    }

    #[test]
    fn activations_gradients() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_slice(&[-1.0, 2.0]));
        let r = g.relu(a);
        let loss = g.sum(r);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().as_slice(), &[0.0, 1.0]);

        let mut g = Graph::new();
        let a = g.input(Tensor::from_slice(&[0.0]));
        let s = g.sigmoid(a);
        let loss = g.sum(s);
        g.backward(loss);
        assert!((g.grad(a).unwrap().as_slice()[0] - 0.25).abs() < 1e-6);

        let mut g = Graph::new();
        let a = g.input(Tensor::from_slice(&[0.0]));
        let t = g.tanh(a);
        let loss = g.sum(t);
        g.backward(loss);
        assert!((g.grad(a).unwrap().as_slice()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn quadratic_neuron_gradient_via_tape() {
        // f(x) = (wa*x) hadamard (wb*x) + wc*x, reduced to a scalar with sum.
        let mut g = Graph::new();
        let x = g.input(Tensor::from_slice(&[1.0, -2.0, 0.5]));
        let wa = g.input(Tensor::from_slice(&[0.3, 0.1, -0.4]));
        let wb = g.input(Tensor::from_slice(&[-0.2, 0.6, 0.9]));
        let wc = g.input(Tensor::from_slice(&[1.0, 1.0, 1.0]));
        let ax = g.mul(wa, x);
        let bx = g.mul(wb, x);
        let second = g.mul(ax, bx);
        let linear = g.mul(wc, x);
        let y = g.add(second, linear);
        let loss = g.sum(y);
        g.backward(loss);
        // d loss / d x_i = 2*wa_i*wb_i*x_i + wc_i
        let x_v = [1.0f32, -2.0, 0.5];
        let wa_v = [0.3f32, 0.1, -0.4];
        let wb_v = [-0.2f32, 0.6, 0.9];
        for i in 0..3 {
            let expect = 2.0 * wa_v[i] * wb_v[i] * x_v[i] + 1.0;
            assert!((g.grad(x).unwrap().as_slice()[i] - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn gradient_accumulates_when_value_reused() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_slice(&[3.0]));
        let sq = g.mul(a, a); // a reused twice
        let loss = g.sum(sq);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().as_slice(), &[6.0]);
    }

    #[test]
    fn broadcast_bias_gradient_reduces() {
        // y = x + b with b broadcast over rows: grad b should sum over rows.
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[4, 3]));
        let b = g.input(Tensor::zeros(&[1, 3]));
        let y = g.add(x, b);
        let loss = g.sum(y);
        g.backward(loss);
        assert_eq!(g.grad(b).unwrap().shape(), &[1, 3]);
        assert_eq!(g.grad(b).unwrap().as_slice(), &[4.0, 4.0, 4.0]);
    }

    #[test]
    fn tape_bytes_counts_all_intermediates() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[10, 10])); // 400 B
        let y = g.square(x); // +400 B
        let _loss = g.sum(y); // +4 B
        assert_eq!(g.tape_bytes(), 400 + 400 + 4);
    }

    #[test]
    #[should_panic]
    fn backward_from_non_scalar_panics() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[2, 2]));
        let y = g.relu(x);
        g.backward(y);
    }

    #[test]
    fn backward_twice_resets_grads() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_slice(&[2.0]));
        let s = g.square(a);
        let loss = g.sum(s);
        g.backward(loss);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().as_slice(), &[4.0]);
    }
}
