//! Offline stand-in for the subset of `rayon` that QuadraLib-rs uses:
//! `slice.par_chunks_mut(n).enumerate().for_each(f)`, parallel index ranges,
//! and `join`.
//!
//! Unlike the earlier scoped-thread stub — which spawned
//! `available_parallelism` fresh OS threads on every call, so four serve
//! replicas times N threads fought for N cores — execution now runs on one
//! persistent work-stealing [`pool::ThreadPool`]: per-worker deques with
//! steal-half, a shared injector for external submitters, parked idle
//! workers, and a `join` primitive the iterator facade recursively splits
//! through (see `pool.rs` for the full design). Work is sized via
//! [`current_num_threads`], which honors the `QUADRA_NUM_THREADS` override,
//! and every facade short-circuits to inline sequential execution when the
//! effective pool size is 1.
//!
//! Beyond the rayon API surface, the pool exposes **CPU charge sessions**
//! ([`start_cpu_charge`]): task-granular attribution of thread CPU time
//! ([`thread_cpu_ns`]) that follows work wherever it is stolen, which
//! `quadra-serve`'s fair-share ledger uses to bill endpoints for the cycles
//! their batches actually burned across the shared pool.

pub mod cpu_time;
pub mod pool;

pub use cpu_time::thread_cpu_ns;
pub use pool::{current_num_threads, join, start_cpu_charge, CpuChargeSession, ThreadPool};

/// Import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::IntoParallelIterator;
    pub use crate::slice::ParallelSliceMut;
}

/// Run `f(i)` for every `i` in `start..start + len`, recursively splitting
/// halves through [`join`] until subranges reach `grain` indices. Result-free:
/// nothing is allocated or materialized per index.
pub(crate) fn parallel_for_range<F>(start: usize, len: usize, grain: usize, f: &F)
where
    F: Fn(usize) + Sync,
{
    if len == 0 {
        return;
    }
    if len <= grain.max(1) || current_num_threads() <= 1 {
        for i in start..start + len {
            f(i);
        }
        return;
    }
    let half = len / 2;
    join(
        || parallel_for_range(start, half, grain, f),
        || parallel_for_range(start + half, len - half, grain, f),
    );
}

/// Run `f(chunk_index, chunk)` over `size`-element chunks of `data` (last
/// chunk may be shorter), splitting the chunk range through [`join`] so each
/// chunk is an independently stealable task.
pub(crate) fn parallel_chunks<T, F>(data: &mut [T], size: usize, base: usize, f: &F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunks = data.len().div_ceil(size);
    if chunks <= 1 || current_num_threads() <= 1 {
        for (i, chunk) in data.chunks_mut(size).enumerate() {
            f(base + i, chunk);
        }
        return;
    }
    let mid_chunks = chunks / 2;
    let (lo, hi) = data.split_at_mut(mid_chunks * size);
    join(|| parallel_chunks(lo, size, base, f), || parallel_chunks(hi, size, base + mid_chunks, f));
}

/// Parallel iteration over index ranges.
pub mod iter {
    use std::ops::Range;

    /// Conversion into a parallel iterator.
    pub trait IntoParallelIterator {
        /// Item type produced.
        type Item;
        /// Parallel iterator type.
        type Iter;

        /// Convert into the parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl IntoParallelIterator for Range<usize> {
        type Item = usize;
        type Iter = ParRange;

        fn into_par_iter(self) -> ParRange {
            ParRange { range: self }
        }
    }

    /// Parallel iterator over a `usize` range.
    pub struct ParRange {
        range: Range<usize>,
    }

    impl ParRange {
        /// Map every index through `f` (evaluated in parallel on `collect`).
        pub fn map<O, F: Fn(usize) -> O>(self, f: F) -> ParRangeMap<F> {
            ParRangeMap { range: self.range, f }
        }

        /// Run `f` for every index in parallel. Unlike `map().run()`, this
        /// never materializes per-index results: each subrange executes
        /// directly on the pool.
        pub fn for_each<F: Fn(usize) + Send + Sync>(self, f: F) {
            let start = self.range.start;
            let len = self.range.len();
            let threads = crate::current_num_threads();
            if threads <= 1 || len <= 1 {
                for i in self.range {
                    f(i);
                }
                return;
            }
            // ~4 tasks per worker leaves slack for stealing under skew.
            let grain = len.div_ceil(4 * threads);
            crate::parallel_for_range(start, len, grain, &f);
        }
    }

    /// Mapped parallel range iterator.
    pub struct ParRangeMap<F> {
        range: Range<usize>,
        f: F,
    }

    impl<O: Send, F: Fn(usize) -> O + Send + Sync> ParRangeMap<F> {
        // quadra-analyze: allow(panic_path:expect, parallel_chunks visits every slot exactly once before returning, so the expect is unreachable unless a task panicked — which already unwound through join)
        fn run(self) -> Vec<O> {
            let start = self.range.start;
            let n = self.range.len();
            let threads = crate::current_num_threads();
            if threads <= 1 || n <= 1 {
                // Sequential fallback collects directly — no slot vector.
                return (start..start + n).map(&self.f).collect();
            }
            let grain = n.div_ceil(4 * threads).max(1);
            let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
            let f = &self.f;
            crate::parallel_chunks(&mut slots, grain, 0, &|chunk_index, chunk| {
                let base = start + chunk_index * grain;
                for (offset, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(f(base + offset));
                }
            });
            slots.into_iter().map(|slot| slot.expect("worker filled every slot")).collect()
        }

        /// Evaluate in parallel and collect the results in index order.
        pub fn collect<C: FromIterator<O>>(self) -> C {
            self.run().into_iter().collect()
        }

        /// Evaluate in parallel and sum the results.
        pub fn sum<S: std::iter::Sum<O>>(self) -> S {
            self.run().into_iter().sum()
        }
    }
}

/// Parallel slice operations.
pub mod slice {
    /// Mutable parallel chunk iteration over slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Split the slice into mutable chunks of `size` elements (the last
        /// chunk may be shorter), to be consumed in parallel.
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
            assert!(size > 0, "chunk size must be non-zero");
            ParChunksMut { data: self, size }
        }
    }

    /// Parallel mutable chunk iterator (consumed by [`ParChunksMut::enumerate`]
    /// or [`ParChunksMut::for_each`]).
    pub struct ParChunksMut<'a, T> {
        data: &'a mut [T],
        size: usize,
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        /// Pair every chunk with its index.
        pub fn enumerate(self) -> EnumeratedChunksMut<'a, T> {
            EnumeratedChunksMut { inner: self }
        }

        /// Run `f` over every chunk in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut [T]) + Send + Sync,
        {
            crate::parallel_chunks(self.data, self.size, 0, &|_, chunk| f(chunk));
        }
    }

    /// Enumerated parallel chunk iterator.
    pub struct EnumeratedChunksMut<'a, T> {
        inner: ParChunksMut<'a, T>,
    }

    impl<T: Send> EnumeratedChunksMut<'_, T> {
        /// Run `f` over every `(index, chunk)` pair in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &mut [T])) + Send + Sync,
        {
            crate::parallel_chunks(self.inner.data, self.inner.size, 0, &|i, chunk| f((i, chunk)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPool;

    #[test]
    fn enumerated_chunks_cover_whole_slice() {
        let mut v = vec![0usize; 103];
        v.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i + 1;
            }
        });
        assert!(v.iter().all(|&x| x > 0));
        assert_eq!(v[0], 1);
        assert_eq!(v[102], 11);
    }

    #[test]
    fn plain_for_each_runs_every_chunk() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let mut v = vec![1.0f32; 64];
        v.par_chunks_mut(8).for_each(|chunk| {
            counter.fetch_add(chunk.len(), Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn enumerated_chunks_on_multithread_pool() {
        let pool = ThreadPool::new(3);
        let mut v = vec![0usize; 103];
        pool.install(|| {
            v.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
                for x in chunk.iter_mut() {
                    *x = i + 1;
                }
            });
        });
        let expect: Vec<usize> = (0..103).map(|i| i / 10 + 1).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn par_range_map_collect_preserves_order() {
        let pool = ThreadPool::new(3);
        let out: Vec<usize> = pool.install(|| (0..1000).into_par_iter().map(|i| i * 2).collect());
        let expect: Vec<usize> = (0..1000).map(|i| i * 2).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_range_map_sum_matches_sequential() {
        let pool = ThreadPool::new(2);
        let total: usize = pool.install(|| (0..500).into_par_iter().map(|i| i * i).sum());
        let expect: usize = (0..500).map(|i| i * i).sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn par_range_for_each_visits_each_index_once() {
        use std::sync::Mutex;
        let pool = ThreadPool::new(4);
        let seen = Mutex::new(vec![0u8; 257]);
        pool.install(|| {
            (0..257).into_par_iter().for_each(|i| {
                let mut guard = seen.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                guard[i] += 1;
            });
        });
        let seen = seen.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
        assert!(seen.iter().all(|&count| count == 1));
    }
}
