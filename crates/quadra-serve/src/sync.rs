//! Poison-tolerant lock helpers.
//!
//! A worker that panics mid-batch poisons every `Mutex` it held. The serving
//! engine already treats a panicking replica as recoverable (the worker is
//! rebuilt and the batch's requests get error replies), so propagating that
//! panic into *other* threads via `.lock().unwrap()` would turn one bad
//! request into a fleet-wide outage: metrics, admission, and the scheduler
//! all share state with worker threads.
//!
//! These helpers recover the guard from a poisoned lock instead. That is
//! sound here because every critical section in this crate leaves the
//! protected state structurally valid at each write (counters, queues and
//! ledgers are updated in place, never left half-initialized).
//!
//! The static-analysis gate (`cargo run -p quadra-analyze`) pins the
//! pattern: a bare `.lock().unwrap()` anywhere in this crate is a
//! `panic_path:lock-unwrap` finding.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Lock `mutex`, recovering the guard if a panicking thread poisoned it.
pub(crate) fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Block on `condvar`, recovering the reacquired guard from poison.
// quadra-analyze: allow(condvar:wait-not-in-loop, wrapper seam: the predicate loop is enforced at every call site, which the pass checks crate-wide)
pub(crate) fn wait_or_recover<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Block on `condvar` with a timeout, recovering the guard from poison.
/// Returns the guard and whether the wait timed out.
// quadra-analyze: allow(condvar:wait-not-in-loop, wrapper seam: the predicate loop is enforced at every call site, which the pass checks crate-wide)
pub(crate) fn wait_timeout_or_recover<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, bool) {
    match condvar.wait_timeout(guard, timeout) {
        Ok((guard, timed_out)) => (guard, timed_out.timed_out()),
        Err(poisoned) => {
            let (guard, timed_out) = poisoned.into_inner();
            (guard, timed_out.timed_out())
        }
    }
}

/// Block on `condvar` until `deadline`, recovering the guard from poison.
/// Returns the guard and whether the deadline passed before a notify.
// quadra-analyze: allow(condvar:wait-not-in-loop, wrapper seam: tail-calls the timeout wrapper; the predicate loop lives at the call sites)
pub(crate) fn wait_deadline_or_recover<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    deadline: Instant,
) -> (MutexGuard<'a, T>, bool) {
    let now = Instant::now();
    if now >= deadline {
        return (guard, true);
    }
    wait_timeout_or_recover(condvar, guard, deadline - now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn lock_or_recover_survives_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_or_recover(&m), 7);
    }

    #[test]
    fn wait_timeout_or_recover_reports_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let guard = lock_or_recover(&m);
        let (_guard, timed_out) = wait_timeout_or_recover(&cv, guard, Duration::from_millis(1));
        assert!(timed_out);
    }
}
