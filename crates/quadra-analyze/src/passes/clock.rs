//! Clock-discipline check.
//!
//! The DRR fair-share ledger charges endpoints for *service time*; the
//! ROADMAP's planned migration to per-thread CPU clocks
//! (`CLOCK_THREAD_CPUTIME_ID`) only works if every ledger read goes through
//! the sanctioned `quadra-serve::clock` abstraction — a stray
//! `Instant::now()` silently reverts that path to wall time. This pass flags
//! raw clock reads (`Instant::now`, `SystemTime`, `.elapsed(`,
//! `.duration_since(`) inside the configured ledger/accounting functions,
//! and any use of `SystemTime` (non-monotonic) anywhere in the configured
//! crates.

use crate::config::AnalyzeConfig;
use crate::report::Finding;
use crate::source::SourceFile;

/// Run the pass over one file.
pub fn run(file: &SourceFile, cfg: &AnalyzeConfig, findings: &mut Vec<Finding>) {
    let region_fns = cfg.clock_region_fns(&file.path);
    let forbid_system_time = cfg.clock_forbid_system_time_crates.iter().any(|c| c == &file.crate_name);
    if region_fns.is_empty() && !forbid_system_time {
        return;
    }
    let toks = &file.toks;
    let mut emit = |check: &str, line: u32, message: String| {
        findings.push(Finding {
            pass: "clock".to_string(),
            check: check.to_string(),
            file: file.path.clone(),
            line,
            message,
            snippet: file.line_text(line).to_string(),
            suppressed_reason: None,
        });
    };
    for i in 0..toks.len() {
        if file.is_test_tok(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind != crate::lexer::TokKind::Ident && !t.is_punct('.') {
            continue;
        }
        // SystemTime anywhere in the crate: serving deadlines and ledgers
        // must be monotonic.
        if forbid_system_time && t.is_ident("SystemTime") {
            emit(
                "system-time",
                t.line,
                "`SystemTime` is non-monotonic; serving clocks must use `Instant` via `clock`".to_string(),
            );
            continue;
        }
        // Inside ledger regions: raw monotonic reads must go through the
        // sanctioned abstraction.
        let in_region = !region_fns.is_empty()
            && file.enclosing_fn(i).is_some_and(|f| !f.is_test && region_fns.iter().any(|r| r == &f.name));
        if !in_region {
            continue;
        }
        if t.is_ident("Instant")
            && i + 2 < toks.len()
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks.get(i + 3).is_some_and(|n| n.is_ident("now"))
        {
            emit(
                "raw-instant",
                t.line,
                "raw `Instant::now()` in a service-time ledger path; bill through `clock::start_charge()`"
                    .to_string(),
            );
            continue;
        }
        if t.is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_ident("elapsed") || n.is_ident("duration_since"))
            && toks.get(i + 2).is_some_and(|n| n.is_punct('('))
        {
            emit(
                "raw-elapsed",
                toks[i + 1].line,
                format!(
                    "raw `.{}()` in a service-time ledger path; bill through `clock::ChargeSession`",
                    toks[i + 1].text
                ),
            );
            continue;
        }
    }
}
