//! 2-D convolution (NCHW) via im2col / col2im, with stride, zero-padding and
//! grouped convolution (which covers depth-wise convolution for MobileNetV1).
//!
//! The forward pass and both backward passes (w.r.t. input and weight) are
//! implemented so the layer crates can use closed-form ("symbolic") gradients —
//! the ingredient the paper's hybrid back-propagation scheme relies on.

use crate::error::{Result, TensorError};
use crate::gemm::{gemm_into, gemm_nt_into, gemm_tn_into};
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Configuration of a 2-D convolution: square kernel, stride, padding, groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Stride along both spatial axes.
    pub stride: usize,
    /// Zero padding added on every side of both spatial axes.
    pub padding: usize,
    /// Number of groups; `groups == in_channels` gives depth-wise convolution.
    pub groups: usize,
}

impl Default for Conv2dParams {
    fn default() -> Self {
        Conv2dParams { stride: 1, padding: 0, groups: 1 }
    }
}

impl Conv2dParams {
    /// Convenience constructor.
    pub fn new(stride: usize, padding: usize, groups: usize) -> Self {
        Conv2dParams { stride, padding, groups }
    }

    /// Output spatial extent for an input extent `in_size` and kernel extent `k`.
    ///
    /// Returns 0 when the kernel exceeds the padded input (no valid output
    /// position exists); the `+ 1` only applies once the kernel fits.
    pub fn out_size(&self, in_size: usize, k: usize) -> usize {
        let padded = in_size + 2 * self.padding;
        if padded < k {
            return 0;
        }
        (padded - k) / self.stride + 1
    }

    fn validate(&self, in_c: usize, h: usize, w: usize, kh: usize, kw: usize) -> Result<()> {
        if self.stride == 0 {
            return Err(TensorError::InvalidConvConfig { msg: "stride must be >= 1".into() });
        }
        if self.groups == 0 || in_c % self.groups != 0 {
            return Err(TensorError::InvalidConvConfig {
                msg: format!("groups {} must divide input channels {}", self.groups, in_c),
            });
        }
        if h + 2 * self.padding < kh || w + 2 * self.padding < kw {
            return Err(TensorError::InvalidConvConfig {
                msg: format!(
                    "kernel {}x{} larger than padded input {}x{}",
                    kh,
                    kw,
                    h + 2 * self.padding,
                    w + 2 * self.padding
                ),
            });
        }
        Ok(())
    }
}

/// Lower one NCHW image batch into column form.
///
/// Returns a `[n, c*kh*kw, oh*ow]` tensor where each column holds the receptive
/// field of one output location.
pub fn im2col(input: &Tensor, kh: usize, kw: usize, params: Conv2dParams) -> Result<Tensor> {
    if input.ndim() != 4 {
        return Err(TensorError::RankMismatch { op: "im2col", expected: 4, actual: input.ndim() });
    }
    let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
    params.validate(c, h, w, kh, kw)?;
    let oh = params.out_size(h, kh);
    let ow = params.out_size(w, kw);
    let col_rows = c * kh * kw;
    let col_cols = oh * ow;
    let src = input.as_slice();
    let mut out = vec![0.0f32; n * col_rows * col_cols];
    let stride = params.stride;
    let pad = params.padding as isize;

    if col_rows * col_cols == 0 {
        // Zero channels: nothing to lower (par_chunks_mut rejects size 0).
        return Tensor::from_vec(out, &[n, col_rows, col_cols]);
    }
    out.par_chunks_mut(col_rows * col_cols).enumerate().for_each(|(ni, chunk)| {
        let img = &src[ni * c * h * w..(ni + 1) * c * h * w];
        for ci in 0..c {
            for ki in 0..kh {
                for kj in 0..kw {
                    let row = (ci * kh + ki) * kw + kj;
                    let dst_row = &mut chunk[row * col_cols..(row + 1) * col_cols];
                    for ohi in 0..oh {
                        let ih = (ohi * stride) as isize + ki as isize - pad;
                        if ih < 0 || ih >= h as isize {
                            continue;
                        }
                        for owi in 0..ow {
                            let iw = (owi * stride) as isize + kj as isize - pad;
                            if iw < 0 || iw >= w as isize {
                                continue;
                            }
                            dst_row[ohi * ow + owi] = img[(ci * h + ih as usize) * w + iw as usize];
                        }
                    }
                }
            }
        }
    });
    Tensor::from_vec(out, &[n, col_rows, col_cols])
}

/// Inverse of [`im2col`]: scatter-add column form back into an NCHW image batch.
///
/// `cols` must have shape `[n, c*kh*kw, oh*ow]`; the result has shape
/// `[n, c, h, w]`. Overlapping receptive fields accumulate, which is exactly
/// the gradient of im2col.
pub fn col2im(
    cols: &Tensor,
    out_shape: &[usize],
    kh: usize,
    kw: usize,
    params: Conv2dParams,
) -> Result<Tensor> {
    if cols.ndim() != 3 {
        return Err(TensorError::RankMismatch { op: "col2im", expected: 3, actual: cols.ndim() });
    }
    if out_shape.len() != 4 {
        return Err(TensorError::InvalidArgument { msg: "col2im output shape must be NCHW".into() });
    }
    let (n, c, h, w) = (out_shape[0], out_shape[1], out_shape[2], out_shape[3]);
    params.validate(c, h, w, kh, kw)?;
    let oh = params.out_size(h, kh);
    let ow = params.out_size(w, kw);
    let col_rows = c * kh * kw;
    let col_cols = oh * ow;
    if cols.shape() != [n, col_rows, col_cols] {
        return Err(TensorError::IncompatibleShapes {
            op: "col2im",
            lhs: cols.shape().to_vec(),
            rhs: vec![n, col_rows, col_cols],
        });
    }
    let src = cols.as_slice();
    let mut out = vec![0.0f32; n * c * h * w];
    let stride = params.stride;
    let pad = params.padding as isize;

    if c * h * w == 0 {
        // Zero channels / extent: nothing to scatter back.
        return Tensor::from_vec(out, out_shape);
    }
    out.par_chunks_mut(c * h * w).enumerate().for_each(|(ni, img)| {
        let chunk = &src[ni * col_rows * col_cols..(ni + 1) * col_rows * col_cols];
        for ci in 0..c {
            for ki in 0..kh {
                for kj in 0..kw {
                    let row = (ci * kh + ki) * kw + kj;
                    let src_row = &chunk[row * col_cols..(row + 1) * col_cols];
                    for ohi in 0..oh {
                        let ih = (ohi * stride) as isize + ki as isize - pad;
                        if ih < 0 || ih >= h as isize {
                            continue;
                        }
                        for owi in 0..ow {
                            let iw = (owi * stride) as isize + kj as isize - pad;
                            if iw < 0 || iw >= w as isize {
                                continue;
                            }
                            img[(ci * h + ih as usize) * w + iw as usize] += src_row[ohi * ow + owi];
                        }
                    }
                }
            }
        }
    });
    Tensor::from_vec(out, out_shape)
}

impl Tensor {
    /// 2-D convolution of an NCHW input with an `[out_c, in_c/groups, kh, kw]`
    /// weight tensor and optional `[out_c]` bias.
    pub fn conv2d(&self, weight: &Tensor, bias: Option<&Tensor>, params: Conv2dParams) -> Result<Tensor> {
        if self.ndim() != 4 {
            return Err(TensorError::RankMismatch { op: "conv2d", expected: 4, actual: self.ndim() });
        }
        if weight.ndim() != 4 {
            return Err(TensorError::RankMismatch {
                op: "conv2d weight",
                expected: 4,
                actual: weight.ndim(),
            });
        }
        let (n, c, h, w) = (self.shape()[0], self.shape()[1], self.shape()[2], self.shape()[3]);
        let (oc, wc, kh, kw) = (weight.shape()[0], weight.shape()[1], weight.shape()[2], weight.shape()[3]);
        params.validate(c, h, w, kh, kw)?;
        let g = params.groups;
        if wc != c / g || oc % g != 0 {
            return Err(TensorError::IncompatibleShapes {
                op: "conv2d",
                lhs: self.shape().to_vec(),
                rhs: weight.shape().to_vec(),
            });
        }
        if let Some(b) = bias {
            if b.shape() != [oc] {
                return Err(TensorError::IncompatibleShapes {
                    op: "conv2d bias",
                    lhs: vec![oc],
                    rhs: b.shape().to_vec(),
                });
            }
        }
        let oh = params.out_size(h, kh);
        let ow = params.out_size(w, kw);
        let cols = im2col(self, kh, kw, params)?;
        let col_rows = c * kh * kw;
        let col_cols = oh * ow;
        let group_rows = col_rows / g; // (c/g)*kh*kw
        let oc_g = oc / g;
        let wsrc = weight.as_slice();
        let csrc = cols.as_slice();
        let mut out = vec![0.0f32; n * oc * col_cols];

        if oc * col_cols == 0 {
            // Zero output channels: the result is an empty [n, 0, oh, ow].
            return Tensor::from_vec(out, &[n, oc, oh, ow]);
        }
        out.par_chunks_mut(oc * col_cols).enumerate().for_each(|(ni, ochunk)| {
            let col_n = &csrc[ni * col_rows * col_cols..(ni + 1) * col_rows * col_cols];
            for gi in 0..g {
                // weight slice for this group: [oc_g, group_rows]
                let wg = &wsrc[gi * oc_g * group_rows..(gi + 1) * oc_g * group_rows];
                let cg = &col_n[gi * group_rows * col_cols..(gi + 1) * group_rows * col_cols];
                // Row-parallel GEMM only for batch-size-1 calls, where the
                // sample-level loop above has a single chunk to hand out.
                gemm_into(
                    &mut ochunk[gi * oc_g * col_cols..(gi + 1) * oc_g * col_cols],
                    wg,
                    cg,
                    oc_g,
                    group_rows,
                    col_cols,
                    n == 1,
                );
            }
            if let Some(b) = bias {
                let bsrc = b.as_slice();
                for oci in 0..oc {
                    let bval = bsrc[oci];
                    for v in ochunk[oci * col_cols..(oci + 1) * col_cols].iter_mut() {
                        *v += bval;
                    }
                }
            }
        });
        Tensor::from_vec(out, &[n, oc, oh, ow])
    }

    /// Gradient of a conv2d output with respect to its input.
    ///
    /// `grad_out` has shape `[n, oc, oh, ow]`; the result has `input_shape`.
    pub fn conv2d_backward_input(
        grad_out: &Tensor,
        weight: &Tensor,
        input_shape: &[usize],
        params: Conv2dParams,
    ) -> Result<Tensor> {
        if grad_out.ndim() != 4 || weight.ndim() != 4 || input_shape.len() != 4 {
            return Err(TensorError::InvalidArgument {
                msg: "conv2d_backward_input expects NCHW tensors".into(),
            });
        }
        let (n, c, h, w) = (input_shape[0], input_shape[1], input_shape[2], input_shape[3]);
        let (oc, _, kh, kw) = (weight.shape()[0], weight.shape()[1], weight.shape()[2], weight.shape()[3]);
        params.validate(c, h, w, kh, kw)?;
        let g = params.groups;
        let oh = params.out_size(h, kh);
        let ow = params.out_size(w, kw);
        if grad_out.shape() != [n, oc, oh, ow] {
            return Err(TensorError::IncompatibleShapes {
                op: "conv2d_backward_input",
                lhs: grad_out.shape().to_vec(),
                rhs: vec![n, oc, oh, ow],
            });
        }
        let col_rows = c * kh * kw;
        let col_cols = oh * ow;
        let group_rows = col_rows / g;
        let oc_g = oc / g;
        let wsrc = weight.as_slice();
        let gsrc = grad_out.as_slice();

        // grad_cols[n] = Wᵀ · grad_out[n] (per group) — the tn kernel reads the
        // weight with swapped strides, so no transposed copy is materialised.
        let mut grad_cols = vec![0.0f32; n * col_rows * col_cols];
        if col_rows * col_cols == 0 {
            // Zero channels: the input gradient is an empty tensor.
            let grad_cols = Tensor::from_vec(grad_cols, &[n, col_rows, col_cols])?;
            return col2im(&grad_cols, input_shape, kh, kw, params);
        }
        grad_cols.par_chunks_mut(col_rows * col_cols).enumerate().for_each(|(ni, chunk)| {
            let go_n = &gsrc[ni * oc * col_cols..(ni + 1) * oc * col_cols];
            for gi in 0..g {
                let wg = &wsrc[gi * oc_g * group_rows..(gi + 1) * oc_g * group_rows];
                let go_g = &go_n[gi * oc_g * col_cols..(gi + 1) * oc_g * col_cols];
                gemm_tn_into(
                    &mut chunk[gi * group_rows * col_cols..(gi + 1) * group_rows * col_cols],
                    wg,
                    go_g,
                    group_rows,
                    oc_g,
                    col_cols,
                    n == 1,
                );
            }
        });
        let grad_cols = Tensor::from_vec(grad_cols, &[n, col_rows, col_cols])?;
        col2im(&grad_cols, input_shape, kh, kw, params)
    }

    /// Gradient of a conv2d output with respect to its weight.
    ///
    /// Returns a tensor with the same shape as `weight`.
    pub fn conv2d_backward_weight(
        grad_out: &Tensor,
        input: &Tensor,
        weight_shape: &[usize],
        params: Conv2dParams,
    ) -> Result<Tensor> {
        if grad_out.ndim() != 4 || input.ndim() != 4 || weight_shape.len() != 4 {
            return Err(TensorError::InvalidArgument {
                msg: "conv2d_backward_weight expects NCHW tensors".into(),
            });
        }
        let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let (oc, _wc, kh, kw) = (weight_shape[0], weight_shape[1], weight_shape[2], weight_shape[3]);
        params.validate(c, h, w, kh, kw)?;
        let g = params.groups;
        let oh = params.out_size(h, kh);
        let ow = params.out_size(w, kw);
        if grad_out.shape() != [n, oc, oh, ow] {
            return Err(TensorError::IncompatibleShapes {
                op: "conv2d_backward_weight",
                lhs: grad_out.shape().to_vec(),
                rhs: vec![n, oc, oh, ow],
            });
        }
        let cols = im2col(input, kh, kw, params)?;
        let col_rows = c * kh * kw;
        let col_cols = oh * ow;
        let group_rows = col_rows / g;
        let oc_g = oc / g;
        let csrc = cols.as_slice();
        let gsrc = grad_out.as_slice();

        // Parallel reduce over a fixed number of sample batches: each batch
        // folds its samples into one gradient buffer via the accumulating nt
        // kernel (gw_g += grad_out_g · cols_gᵀ, transpose-free), bounding peak
        // extra memory at `batches × oc × group_rows` instead of
        // `n × oc × group_rows`. The batch count is a constant — not the host
        // core count — so the float summation order (and therefore seeded
        // training) is reproducible across machines.
        const WEIGHT_REDUCE_BATCHES: usize = 8;
        let batches = WEIGHT_REDUCE_BATCHES.min(n.max(1));
        let per = n.div_ceil(batches);
        let partials: Vec<Vec<f32>> = (0..batches)
            .into_par_iter()
            .map(|wi| {
                let mut gw = vec![0.0f32; oc * group_rows];
                for ni in wi * per..((wi + 1) * per).min(n) {
                    let col_n = &csrc[ni * col_rows * col_cols..(ni + 1) * col_rows * col_cols];
                    let go_n = &gsrc[ni * oc * col_cols..(ni + 1) * oc * col_cols];
                    for gi in 0..g {
                        let go_g = &go_n[gi * oc_g * col_cols..(gi + 1) * oc_g * col_cols];
                        let col_g = &col_n[gi * group_rows * col_cols..(gi + 1) * group_rows * col_cols];
                        gemm_nt_into(
                            &mut gw[gi * oc_g * group_rows..(gi + 1) * oc_g * group_rows],
                            go_g,
                            col_g,
                            oc_g,
                            col_cols,
                            group_rows,
                            batches == 1,
                        );
                    }
                }
                gw
            })
            .collect();
        let mut acc = vec![0.0f32; oc * group_rows];
        for p in partials {
            for (a, v) in acc.iter_mut().zip(p) {
                *a += v;
            }
        }
        Tensor::from_vec(acc, weight_shape)
    }

    /// Gradient of a conv2d output with respect to its bias: sum over batch and
    /// spatial locations, shape `[oc]`.
    pub fn conv2d_backward_bias(grad_out: &Tensor) -> Result<Tensor> {
        if grad_out.ndim() != 4 {
            return Err(TensorError::RankMismatch {
                op: "conv2d_backward_bias",
                expected: 4,
                actual: grad_out.ndim(),
            });
        }
        let (n, oc, oh, ow) =
            (grad_out.shape()[0], grad_out.shape()[1], grad_out.shape()[2], grad_out.shape()[3]);
        let src = grad_out.as_slice();
        let mut out = vec![0.0f32; oc];
        for ni in 0..n {
            for (oci, acc) in out.iter_mut().enumerate() {
                let base = (ni * oc + oci) * oh * ow;
                *acc += src[base..base + oh * ow].iter().sum::<f32>();
            }
        }
        Tensor::from_vec(out, &[oc])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Direct (nested-loop) convolution used as a reference implementation.
    fn naive_conv2d(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>, p: Conv2dParams) -> Tensor {
        let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let (oc, _, kh, kw) = (weight.shape()[0], weight.shape()[1], weight.shape()[2], weight.shape()[3]);
        let oh = p.out_size(h, kh);
        let ow = p.out_size(w, kw);
        let g = p.groups;
        let cg = c / g;
        let ocg = oc / g;
        let mut out = Tensor::zeros(&[n, oc, oh, ow]);
        for ni in 0..n {
            for oci in 0..oc {
                let gi = oci / ocg;
                for ohi in 0..oh {
                    for owi in 0..ow {
                        let mut s = bias.map(|b| b.at(&[oci])).unwrap_or(0.0);
                        for ci in 0..cg {
                            for ki in 0..kh {
                                for kj in 0..kw {
                                    let ih = (ohi * p.stride + ki) as isize - p.padding as isize;
                                    let iw = (owi * p.stride + kj) as isize - p.padding as isize;
                                    if ih < 0 || iw < 0 || ih >= h as isize || iw >= w as isize {
                                        continue;
                                    }
                                    s += input.at(&[ni, gi * cg + ci, ih as usize, iw as usize])
                                        * weight.at(&[oci, ci, ki, kj]);
                                }
                            }
                        }
                        out.set(&[ni, oci, ohi, owi], s);
                    }
                }
            }
        }
        out
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn im2col_known_values() {
        // 1x1x3x3 input, 2x2 kernel, stride 1, no padding.
        let input = Tensor::arange(0.0, 1.0, 9).reshape(&[1, 1, 3, 3]).unwrap();
        let cols = im2col(&input, 2, 2, Conv2dParams::default()).unwrap();
        assert_eq!(cols.shape(), &[1, 4, 4]);
        // First column is the top-left 2x2 patch [0,1,3,4].
        assert_eq!(cols.at(&[0, 0, 0]), 0.0);
        assert_eq!(cols.at(&[0, 1, 0]), 1.0);
        assert_eq!(cols.at(&[0, 2, 0]), 3.0);
        assert_eq!(cols.at(&[0, 3, 0]), 4.0);
        // Last column is the bottom-right patch [4,5,7,8].
        assert_eq!(cols.at(&[0, 0, 3]), 4.0);
        assert_eq!(cols.at(&[0, 3, 3]), 8.0);
    }

    #[test]
    fn conv2d_matches_naive_basic() {
        let mut r = rng();
        let input = Tensor::randn(&[2, 3, 8, 8], 0.0, 1.0, &mut r);
        let weight = Tensor::randn(&[4, 3, 3, 3], 0.0, 0.5, &mut r);
        let bias = Tensor::randn(&[4], 0.0, 0.5, &mut r);
        let p = Conv2dParams::new(1, 1, 1);
        let fast = input.conv2d(&weight, Some(&bias), p).unwrap();
        let slow = naive_conv2d(&input, &weight, Some(&bias), p);
        assert_eq!(fast.shape(), &[2, 4, 8, 8]);
        assert!(fast.allclose(&slow, 1e-4));
    }

    #[test]
    fn conv2d_matches_naive_stride_and_padding() {
        let mut r = rng();
        let input = Tensor::randn(&[1, 2, 9, 7], 0.0, 1.0, &mut r);
        let weight = Tensor::randn(&[3, 2, 3, 3], 0.0, 0.5, &mut r);
        let p = Conv2dParams::new(2, 1, 1);
        let fast = input.conv2d(&weight, None, p).unwrap();
        let slow = naive_conv2d(&input, &weight, None, p);
        assert_eq!(fast.shape(), slow.shape());
        assert!(fast.allclose(&slow, 1e-4));
    }

    #[test]
    fn depthwise_conv_matches_naive() {
        let mut r = rng();
        let input = Tensor::randn(&[2, 4, 6, 6], 0.0, 1.0, &mut r);
        let weight = Tensor::randn(&[4, 1, 3, 3], 0.0, 0.5, &mut r);
        let p = Conv2dParams::new(1, 1, 4);
        let fast = input.conv2d(&weight, None, p).unwrap();
        let slow = naive_conv2d(&input, &weight, None, p);
        assert!(fast.allclose(&slow, 1e-4));
    }

    #[test]
    fn grouped_conv_multiple_out_per_group() {
        let mut r = rng();
        let input = Tensor::randn(&[1, 4, 5, 5], 0.0, 1.0, &mut r);
        let weight = Tensor::randn(&[6, 2, 3, 3], 0.0, 0.5, &mut r);
        let p = Conv2dParams::new(1, 0, 2);
        let fast = input.conv2d(&weight, None, p).unwrap();
        let slow = naive_conv2d(&input, &weight, None, p);
        assert!(fast.allclose(&slow, 1e-4));
    }

    #[test]
    fn conv_1x1_equals_channel_matmul() {
        let mut r = rng();
        let input = Tensor::randn(&[1, 3, 4, 4], 0.0, 1.0, &mut r);
        let weight = Tensor::randn(&[5, 3, 1, 1], 0.0, 1.0, &mut r);
        let out = input.conv2d(&weight, None, Conv2dParams::default()).unwrap();
        assert_eq!(out.shape(), &[1, 5, 4, 4]);
        // pixel (2,3): out[., oc] = W[oc, :] . input[., :, 2, 3]
        let px: Vec<f32> = (0..3).map(|c| input.at(&[0, c, 2, 3])).collect();
        for oc in 0..5 {
            let wrow: Vec<f32> = (0..3).map(|c| weight.at(&[oc, c, 0, 0])).collect();
            let expect: f32 = px.iter().zip(&wrow).map(|(a, b)| a * b).sum();
            assert!((out.at(&[0, oc, 2, 3]) - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn conv_config_errors() {
        let input = Tensor::zeros(&[1, 3, 4, 4]);
        let weight = Tensor::zeros(&[2, 3, 3, 3]);
        assert!(input.conv2d(&weight, None, Conv2dParams::new(0, 0, 1)).is_err());
        assert!(input.conv2d(&weight, None, Conv2dParams::new(1, 0, 2)).is_err());
        assert!(input.conv2d(&weight, None, Conv2dParams::new(1, 0, 0)).is_err());
        assert!(input.conv2d(&Tensor::zeros(&[2, 3, 9, 9]), None, Conv2dParams::default()).is_err());
        assert!(input.conv2d(&Tensor::zeros(&[2, 2, 3, 3]), None, Conv2dParams::default()).is_err());
        assert!(input.conv2d(&weight, Some(&Tensor::zeros(&[3])), Conv2dParams::new(1, 1, 1)).is_err());
        assert!(Tensor::zeros(&[3, 4, 4]).conv2d(&weight, None, Conv2dParams::default()).is_err());
        assert!(input.conv2d(&Tensor::zeros(&[2, 3, 3]), None, Conv2dParams::default()).is_err());
    }

    #[test]
    fn backward_input_matches_finite_difference() {
        let mut r = rng();
        let input = Tensor::randn(&[1, 2, 5, 5], 0.0, 1.0, &mut r);
        let weight = Tensor::randn(&[3, 2, 3, 3], 0.0, 0.5, &mut r);
        let p = Conv2dParams::new(1, 1, 1);
        let out = input.conv2d(&weight, None, p).unwrap();
        // loss = sum(out); d loss / d out = ones
        let grad_out = Tensor::ones_like(&out);
        let grad_in = Tensor::conv2d_backward_input(&grad_out, &weight, input.shape(), p).unwrap();
        assert_eq!(grad_in.shape(), input.shape());
        let eps = 1e-2;
        for &flat in &[0usize, 7, 24, 33, 49] {
            let mut plus = input.clone();
            plus.as_mut_slice()[flat] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[flat] -= eps;
            let fd = (plus.conv2d(&weight, None, p).unwrap().sum()
                - minus.conv2d(&weight, None, p).unwrap().sum())
                / (2.0 * eps);
            assert!(
                (grad_in.as_slice()[flat] - fd).abs() < 1e-2,
                "analytic {} vs fd {}",
                grad_in.as_slice()[flat],
                fd
            );
        }
    }

    #[test]
    fn backward_weight_matches_finite_difference() {
        let mut r = rng();
        let input = Tensor::randn(&[2, 2, 4, 4], 0.0, 1.0, &mut r);
        let weight = Tensor::randn(&[2, 2, 3, 3], 0.0, 0.5, &mut r);
        let p = Conv2dParams::new(1, 1, 1);
        let out = input.conv2d(&weight, None, p).unwrap();
        let grad_out = Tensor::ones_like(&out);
        let grad_w = Tensor::conv2d_backward_weight(&grad_out, &input, weight.shape(), p).unwrap();
        assert_eq!(grad_w.shape(), weight.shape());
        let eps = 1e-2;
        for &flat in &[0usize, 5, 17, 35] {
            let mut plus = weight.clone();
            plus.as_mut_slice()[flat] += eps;
            let mut minus = weight.clone();
            minus.as_mut_slice()[flat] -= eps;
            let fd = (input.conv2d(&plus, None, p).unwrap().sum()
                - input.conv2d(&minus, None, p).unwrap().sum())
                / (2.0 * eps);
            assert!(
                (grad_w.as_slice()[flat] - fd).abs() < 2e-2,
                "analytic {} vs fd {}",
                grad_w.as_slice()[flat],
                fd
            );
        }
    }

    #[test]
    fn backward_bias_sums_spatial_and_batch() {
        let grad_out = Tensor::ones(&[3, 2, 4, 4]);
        let gb = Tensor::conv2d_backward_bias(&grad_out).unwrap();
        assert_eq!(gb.shape(), &[2]);
        assert_eq!(gb.as_slice(), &[48.0, 48.0]);
        assert!(Tensor::conv2d_backward_bias(&Tensor::zeros(&[2, 2])).is_err());
    }

    #[test]
    fn backward_depthwise_gradients_finite_difference() {
        let mut r = rng();
        let input = Tensor::randn(&[1, 3, 4, 4], 0.0, 1.0, &mut r);
        let weight = Tensor::randn(&[3, 1, 3, 3], 0.0, 0.5, &mut r);
        let p = Conv2dParams::new(1, 1, 3);
        let out = input.conv2d(&weight, None, p).unwrap();
        let grad_out = Tensor::ones_like(&out);
        let grad_w = Tensor::conv2d_backward_weight(&grad_out, &input, weight.shape(), p).unwrap();
        let grad_in = Tensor::conv2d_backward_input(&grad_out, &weight, input.shape(), p).unwrap();
        let eps = 1e-2;
        let flat = 10usize;
        let mut plus = weight.clone();
        plus.as_mut_slice()[flat] += eps;
        let mut minus = weight.clone();
        minus.as_mut_slice()[flat] -= eps;
        let fd = (input.conv2d(&plus, None, p).unwrap().sum() - input.conv2d(&minus, None, p).unwrap().sum())
            / (2.0 * eps);
        assert!((grad_w.as_slice()[flat] - fd).abs() < 2e-2);
        let mut iplus = input.clone();
        iplus.as_mut_slice()[flat] += eps;
        let mut iminus = input.clone();
        iminus.as_mut_slice()[flat] -= eps;
        let fd = (iplus.conv2d(&weight, None, p).unwrap().sum()
            - iminus.conv2d(&weight, None, p).unwrap().sum())
            / (2.0 * eps);
        assert!((grad_in.as_slice()[flat] - fd).abs() < 1e-2);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y (adjoint test).
        let mut r = rng();
        let x = Tensor::randn(&[1, 2, 5, 5], 0.0, 1.0, &mut r);
        let p = Conv2dParams::new(2, 1, 1);
        let cols = im2col(&x, 3, 3, p).unwrap();
        let y = Tensor::randn(cols.shape(), 0.0, 1.0, &mut r);
        let lhs: f32 = cols.as_slice().iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, x.shape(), 3, 3, p).unwrap();
        let rhs: f32 = x.as_slice().iter().zip(back.as_slice()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{} vs {}", lhs, rhs);
    }

    #[test]
    fn col2im_shape_errors() {
        let cols = Tensor::zeros(&[1, 8, 4]);
        assert!(col2im(&cols, &[1, 2, 3, 3], 2, 2, Conv2dParams::default()).is_ok());
        assert!(col2im(&cols, &[1, 2, 3], 2, 2, Conv2dParams::default()).is_err());
        assert!(col2im(&Tensor::zeros(&[8, 4]), &[1, 2, 3, 3], 2, 2, Conv2dParams::default()).is_err());
        assert!(col2im(&cols, &[1, 3, 3, 3], 2, 2, Conv2dParams::default()).is_err());
    }

    #[test]
    fn out_size_formula() {
        let p = Conv2dParams::new(2, 1, 1);
        assert_eq!(p.out_size(32, 3), 16);
        let p = Conv2dParams::new(1, 1, 1);
        assert_eq!(p.out_size(32, 3), 32);
        let p = Conv2dParams::new(1, 0, 1);
        assert_eq!(p.out_size(32, 3), 30);
    }

    #[test]
    fn zero_channel_tensors_do_not_panic() {
        // Regression: zero output/input channels pass shape validation but
        // used to hit par_chunks_mut(0), which asserts.
        let p = Conv2dParams::new(1, 1, 1);
        let x = Tensor::zeros(&[1, 2, 4, 4]);
        let w0 = Tensor::zeros(&[0, 2, 3, 3]);
        let out = x.conv2d(&w0, None, p).unwrap();
        assert_eq!(out.shape(), &[1, 0, 4, 4]);

        let xe = Tensor::zeros(&[1, 0, 4, 4]);
        let we = Tensor::zeros(&[0, 0, 3, 3]);
        let oute = xe.conv2d(&we, None, p).unwrap();
        assert_eq!(oute.shape(), &[1, 0, 4, 4]);

        let go = Tensor::zeros(&[1, 0, 4, 4]);
        let gi = Tensor::conv2d_backward_input(&go, &we, &[1, 0, 4, 4], p).unwrap();
        assert_eq!(gi.shape(), &[1, 0, 4, 4]);
        let gw = Tensor::conv2d_backward_weight(&go, &xe, &[0, 0, 3, 3], p).unwrap();
        assert_eq!(gw.shape(), &[0, 0, 3, 3]);
    }

    #[test]
    fn out_size_is_zero_when_kernel_exceeds_padded_input() {
        // Regression: `saturating_sub` used to collapse to 0 and the `+ 1`
        // then reported one phantom output pixel for impossible configs.
        let p = Conv2dParams::new(1, 0, 1);
        assert_eq!(p.out_size(2, 5), 0);
        assert_eq!(p.out_size(0, 1), 0);
        let p = Conv2dParams::new(2, 1, 1);
        assert_eq!(p.out_size(2, 5), 0); // padded 4 < kernel 5
        assert_eq!(p.out_size(3, 5), 1); // padded 5 == kernel 5
                                         // Exact fit still yields one output position.
        let p = Conv2dParams::new(3, 0, 1);
        assert_eq!(p.out_size(4, 4), 1);
    }
}
