//! Closed-loop serving load test: drive `quadra-serve` with concurrent
//! clients over the MobileNetV1 and ResNet-20 backbones from `quadra-models`
//! and report throughput, latency percentiles and batch occupancy for a sweep
//! of worker-pool / batch-policy settings.
//!
//! Regenerate with `cargo run -p quadra-bench --release --bin serve_load`
//! (set `QUADRA_SCALE=full` for the larger settings).

use quadra_bench::{print_table, scale, Scale};
use quadra_core::{build_model, ModelConfig};
use quadra_models::{mobilenet_v1_config, resnet20_config};
use quadra_serve::{BatchPolicy, InferenceServer, ServeConfig};
use quadra_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// One closed-loop run: `clients` threads each serve `requests_per_client`
/// single-sample requests back to back, then the server reports its metrics.
fn load_test(
    config: &ModelConfig,
    workers: usize,
    max_batch: usize,
    clients: usize,
    requests_per_client: usize,
) -> quadra_serve::ServeMetrics {
    let (channels, image) = (config.input_channels, config.image_size);
    let model_config = config.clone();
    let server = InferenceServer::start(
        ServeConfig {
            workers,
            policy: BatchPolicy {
                max_batch_size: max_batch,
                max_wait: Duration::from_millis(1),
                ..BatchPolicy::default()
            },
        },
        move || Box::new(build_model(&model_config, &mut StdRng::seed_from_u64(11))),
    )
    .expect("server starts");

    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let client = server.client();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + c as u64);
                let x = Tensor::randn(&[1, channels, image, image], 0.0, 1.0, &mut rng);
                for _ in 0..requests_per_client {
                    let response = client.infer(x.clone()).expect("request served");
                    assert_eq!(response.output.shape()[0], 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    server.shutdown()
}

fn main() {
    let (requests_per_client, clients, image) = match scale() {
        Scale::Full => (256usize, 8usize, 32usize),
        Scale::Quick => (48, 8, 16),
    };
    let models: Vec<(&str, ModelConfig)> = vec![
        ("MobileNetV1 (0.25x, 5 DW pairs)", mobilenet_v1_config(5, 0.25, 3, image, 10)),
        ("ResNet-20 (width 8)", resnet20_config(8, 10, image)),
    ];
    // (workers, max_batch): no batching baseline, batching on one worker,
    // then scaling the replica pool.
    let sweep = [(1usize, 1usize), (1, 8), (2, 8), (4, 16)];

    for (name, config) in &models {
        let mut rows = Vec::new();
        let mut occupancies = Vec::new();
        for &(workers, max_batch) in &sweep {
            let metrics = load_test(config, workers, max_batch, clients, requests_per_client);
            rows.push(vec![
                format!("{}", workers),
                format!("{}", max_batch),
                format!("{}", metrics.completed_requests),
                format!("{:.0}", metrics.throughput_rps),
                format!("{:.2}", metrics.p50_latency_ms),
                format!("{:.2}", metrics.p95_latency_ms),
                format!("{:.2}", metrics.mean_batch_size),
                format!("{:.0}", metrics.peak_batch_activation_bytes as f64 / 1024.0),
            ]);
            occupancies.push((workers, max_batch, metrics));
        }
        print_table(
            &format!("Serving load test — {} ({} closed-loop clients)", name, clients),
            &["workers", "max batch", "requests", "req/s", "p50 ms", "p95 ms", "mean batch", "peak act KiB"],
            &rows,
        );
        if let Some((workers, max_batch, metrics)) =
            occupancies.iter().max_by(|a, b| a.2.throughput_rps.total_cmp(&b.2.throughput_rps))
        {
            println!(
                "best: {} workers × max batch {} — batch occupancy:\n{}",
                workers,
                max_batch,
                metrics.occupancy_ascii(32)
            );
        }
    }
}
