//! Serving telemetry: a lock-guarded per-endpoint recorder the workers and
//! the admission layer write into, the per-model [`ServeMetrics`] snapshot,
//! and the fleet-wide [`RouterMetrics`] roll-up.
//!
//! Every endpoint owns its own hub, so latency percentiles are always
//! **per-model** — a blended p95 across a heterogeneous fleet (a 1 ms
//! MobileNet next to a 15 ms ResNet) would describe neither model.

use crate::request::{Priority, ServeError};
use crate::sync::lock_or_recover;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Cap on retained latency samples; percentiles are over the most recent
/// window once the cap is reached (a ring buffer, so long-running servers
/// don't grow without bound).
const LATENCY_WINDOW: usize = 1 << 16;

#[derive(Default)]
struct MetricsInner {
    completed_requests: u64,
    completed_samples: u64,
    completed_by_class: [u64; Priority::COUNT],
    shed_by_class: [u64; Priority::COUNT],
    cancelled_by_class: [u64; Priority::COUNT],
    deadline_missed_by_class: [u64; Priority::COUNT],
    errored_requests: u64,
    batches: u64,
    reloads: u64,
    /// Total worker service time in µs — the endpoint's fair-share ledger.
    service_us: u64,
    /// `occupancy[k-1]` counts batches that held exactly `k` samples;
    /// oversized batches land in the last bucket.
    occupancy: Vec<u64>,
    latencies_us: Vec<u64>,
    latency_write: usize,
    peak_batch_activation_bytes: usize,
}

/// Shared recorder; one per model endpoint, written by that endpoint's
/// workers and admission layer.
pub(crate) struct MetricsHub {
    started: Instant,
    inner: Mutex<MetricsInner>,
}

impl MetricsHub {
    pub fn new(max_batch_size: usize) -> Self {
        let inner = MetricsInner { occupancy: vec![0; max_batch_size.max(1)], ..Default::default() };
        MetricsHub { started: Instant::now(), inner: Mutex::new(inner) }
    }

    /// Record one completed batch: its sample count, each request's latency
    /// and priority class, and the activation bytes the model cached while
    /// running it.
    pub fn record_batch(&self, samples: usize, requests: &[(Duration, Priority)], activation_bytes: usize) {
        let mut m = lock_or_recover(&self.inner);
        m.batches += 1;
        m.completed_requests += requests.len() as u64;
        m.completed_samples += samples as u64;
        let bucket = samples.clamp(1, m.occupancy.len()) - 1;
        m.occupancy[bucket] += 1;
        m.peak_batch_activation_bytes = m.peak_batch_activation_bytes.max(activation_bytes);
        for (latency, priority) in requests {
            m.completed_by_class[priority.index()] += 1;
            let us = latency.as_micros().min(u64::MAX as u128) as u64;
            if m.latencies_us.len() < LATENCY_WINDOW {
                m.latencies_us.push(us);
            } else {
                let idx = m.latency_write % LATENCY_WINDOW;
                m.latencies_us[idx] = us;
            }
            m.latency_write += 1;
        }
    }

    /// Record one request shed at admission (queue full).
    pub fn record_shed(&self, priority: Priority) {
        lock_or_recover(&self.inner).shed_by_class[priority.index()] += 1;
    }

    /// Record one request shed at dispatch time (cancelled by its handle or
    /// its deadline expired while queued).
    pub fn record_dispatch_shed(&self, priority: Priority, reason: &ServeError) {
        let mut m = lock_or_recover(&self.inner);
        match reason {
            ServeError::Cancelled => m.cancelled_by_class[priority.index()] += 1,
            ServeError::DeadlineExceeded => m.deadline_missed_by_class[priority.index()] += 1,
            _ => {}
        }
    }

    /// Accumulate worker service time (the fair-share ledger); recorded for
    /// successful and panicked batches alike — both occupied the CPU.
    pub fn record_service(&self, service_us: u64) {
        lock_or_recover(&self.inner).service_us += service_us;
    }

    pub fn record_errors(&self, count: usize) {
        lock_or_recover(&self.inner).errored_requests += count as u64;
    }

    pub fn record_reload(&self) {
        lock_or_recover(&self.inner).reloads += 1;
    }

    pub fn snapshot(
        &self,
        model: &str,
        model_version: u64,
        queued_samples: usize,
        wait_budget: Duration,
    ) -> ServeMetrics {
        let m = lock_or_recover(&self.inner);
        let elapsed = self.started.elapsed();
        let secs = elapsed.as_secs_f64().max(1e-9);
        let mut sorted = m.latencies_us.clone();
        sorted.sort_unstable();
        let pct = |q: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
            sorted[idx] as f64 / 1000.0
        };
        let mean_ms = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<u64>() as f64 / sorted.len() as f64 / 1000.0
        };
        ServeMetrics {
            model: model.to_string(),
            elapsed,
            completed_requests: m.completed_requests,
            completed_samples: m.completed_samples,
            completed_interactive: m.completed_by_class[Priority::Interactive.index()],
            completed_batch_class: m.completed_by_class[Priority::Batch.index()],
            shed_requests: m.shed_by_class.iter().sum(),
            shed_interactive: m.shed_by_class[Priority::Interactive.index()],
            shed_batch_class: m.shed_by_class[Priority::Batch.index()],
            cancelled_requests: m.cancelled_by_class.iter().sum(),
            deadline_missed_requests: m.deadline_missed_by_class.iter().sum(),
            errored_requests: m.errored_requests,
            batches: m.batches,
            reloads: m.reloads,
            model_version,
            queued_samples,
            wait_budget_ms: wait_budget.as_secs_f64() * 1e3,
            service_time_ms: m.service_us as f64 / 1e3,
            throughput_rps: m.completed_requests as f64 / secs,
            throughput_sps: m.completed_samples as f64 / secs,
            mean_latency_ms: mean_ms,
            p50_latency_ms: pct(0.50),
            p95_latency_ms: pct(0.95),
            max_latency_ms: sorted.last().map(|&v| v as f64 / 1000.0).unwrap_or(0.0),
            mean_batch_size: if m.batches == 0 { 0.0 } else { m.completed_samples as f64 / m.batches as f64 },
            batch_occupancy: m.occupancy.clone(),
            peak_batch_activation_bytes: m.peak_batch_activation_bytes,
        }
    }
}

/// A point-in-time snapshot of one model endpoint's serving statistics.
///
/// Latency percentiles are computed from this endpoint's own latency window —
/// never blended across models.
#[derive(Debug, Clone, PartialEq)]
#[must_use = "a metrics snapshot is only useful if it is read"]
pub struct ServeMetrics {
    /// Name of the model endpoint this snapshot describes.
    pub model: String,
    /// Wall time since the endpoint started.
    pub elapsed: Duration,
    /// Requests answered successfully.
    pub completed_requests: u64,
    /// Samples answered successfully (≥ requests; requests can be multi-sample).
    pub completed_samples: u64,
    /// Requests of class [`Priority::Interactive`] answered successfully.
    pub completed_interactive: u64,
    /// Requests of class [`Priority::Batch`] answered successfully.
    pub completed_batch_class: u64,
    /// Requests shed at admission with [`ServeError::Overloaded`](crate::ServeError::Overloaded).
    pub shed_requests: u64,
    /// Interactive-class requests shed at admission.
    pub shed_interactive: u64,
    /// Batch-class requests shed at admission.
    pub shed_batch_class: u64,
    /// Requests shed at dispatch time because their handle was
    /// [cancelled](crate::ResponseHandle::cancel) while they queued.
    pub cancelled_requests: u64,
    /// Requests shed at dispatch time because their
    /// [deadline](crate::Request::deadline) expired while they queued.
    pub deadline_missed_requests: u64,
    /// Requests answered with a [`ServeError`](crate::ServeError) by a worker.
    pub errored_requests: u64,
    /// Batches executed.
    pub batches: u64,
    /// Successful hot-reloads since start.
    pub reloads: u64,
    /// Current model state version (0 = initial weights).
    pub model_version: u64,
    /// Samples sitting in the admission queue at snapshot time.
    pub queued_samples: usize,
    /// The scheduler's current wait budget in milliseconds (`max_wait` under
    /// the static policy; the adaptively chosen value otherwise).
    pub wait_budget_ms: f64,
    /// Total worker service time this endpoint consumed, in milliseconds —
    /// the ledger behind the fleet scheduler's weighted fair sharing (compare
    /// across endpoints with [`RouterMetrics::service_share`]).
    pub service_time_ms: f64,
    /// Completed requests per second since start.
    pub throughput_rps: f64,
    /// Completed samples per second since start.
    pub throughput_sps: f64,
    /// Mean request latency (submission → response) in milliseconds.
    pub mean_latency_ms: f64,
    /// Median request latency in milliseconds.
    pub p50_latency_ms: f64,
    /// 95th-percentile request latency in milliseconds.
    pub p95_latency_ms: f64,
    /// Worst request latency in milliseconds (within the retained window).
    pub max_latency_ms: f64,
    /// Mean samples per executed batch.
    pub mean_batch_size: f64,
    /// Batch-occupancy histogram: entry `k` counts batches holding `k+1`
    /// samples (the last bucket also absorbs oversized batches).
    pub batch_occupancy: Vec<u64>,
    /// Largest per-batch activation footprint observed (bytes), as attributed
    /// to this model by `quadra_core::MemoryProfiler::inference_report_for`.
    pub peak_batch_activation_bytes: usize,
}

impl ServeMetrics {
    /// One-line summary for logs and bench output.
    pub fn describe(&self) -> String {
        format!(
            "[{}] {} req ({} samples) in {:.2}s | {:.0} req/s {:.0} samples/s | latency ms p50 {:.2} p95 {:.2} max {:.2} | mean batch {:.2} | wait budget {:.2} ms | service {:.0} ms | queue {} | shed {} ({} int / {} batch) | cancelled {} | deadline-missed {} | peak batch activations {:.1} KiB | v{} ({} reloads) | {} errors",
            self.model,
            self.completed_requests,
            self.completed_samples,
            self.elapsed.as_secs_f64(),
            self.throughput_rps,
            self.throughput_sps,
            self.p50_latency_ms,
            self.p95_latency_ms,
            self.max_latency_ms,
            self.mean_batch_size,
            self.wait_budget_ms,
            self.service_time_ms,
            self.queued_samples,
            self.shed_requests,
            self.shed_interactive,
            self.shed_batch_class,
            self.cancelled_requests,
            self.deadline_missed_requests,
            self.peak_batch_activation_bytes as f64 / 1024.0,
            self.model_version,
            self.reloads,
            self.errored_requests,
        )
    }

    /// Render the batch-occupancy histogram as an ASCII bar chart.
    pub fn occupancy_ascii(&self, width: usize) -> String {
        let peak = self.batch_occupancy.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &count) in self.batch_occupancy.iter().enumerate() {
            let bar = (count as usize * width) / peak as usize;
            out.push_str(&format!(
                "{:>4} sample{} |{}{}| {}\n",
                i + 1,
                if i == 0 { " " } else { "s" },
                "#".repeat(bar),
                " ".repeat(width - bar),
                count
            ));
        }
        out
    }
}

/// Per-model snapshots of every endpoint behind a [`Router`](crate::Router).
#[derive(Debug, Clone, PartialEq)]
#[must_use = "a metrics snapshot is only useful if it is read"]
pub struct RouterMetrics {
    /// One [`ServeMetrics`] per endpoint, sorted by model name.
    pub models: Vec<ServeMetrics>,
}

impl RouterMetrics {
    /// The snapshot of one model endpoint, if it exists.
    #[must_use]
    pub fn get(&self, model: &str) -> Option<&ServeMetrics> {
        self.models.iter().find(|m| m.model == model)
    }

    /// Requests completed across the whole fleet.
    #[must_use]
    pub fn total_completed_requests(&self) -> u64 {
        self.models.iter().map(|m| m.completed_requests).sum()
    }

    /// Requests shed across the whole fleet.
    #[must_use]
    pub fn total_shed_requests(&self) -> u64 {
        self.models.iter().map(|m| m.shed_requests).sum()
    }

    /// `model`'s fraction of the fleet's total worker service time — the
    /// fair-share observable: under contention the scheduler drives each
    /// endpoint's share towards `weight / Σ weights`. `None` if the model is
    /// unknown or the fleet has served nothing yet.
    #[must_use]
    pub fn service_share(&self, model: &str) -> Option<f64> {
        let total: f64 = self.models.iter().map(|m| m.service_time_ms).sum();
        let own = self.get(model)?.service_time_ms;
        if total <= 0.0 {
            return None;
        }
        Some(own / total)
    }

    /// One line per endpoint.
    pub fn describe(&self) -> String {
        self.models.iter().map(ServeMetrics::describe).collect::<Vec<_>>().join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const I: Priority = Priority::Interactive;
    const B: Priority = Priority::Batch;

    #[test]
    fn snapshot_aggregates_batches() {
        let hub = MetricsHub::new(4);
        hub.record_batch(3, &[(Duration::from_millis(2), I), (Duration::from_millis(4), B)], 1024);
        hub.record_batch(1, &[(Duration::from_millis(6), I)], 512);
        hub.record_batch(9, &[(Duration::from_millis(1), B)], 2048); // oversized → last bucket
        hub.record_errors(2);
        hub.record_reload();
        hub.record_shed(I);
        hub.record_shed(B);
        hub.record_shed(B);
        hub.record_dispatch_shed(I, &ServeError::Cancelled);
        hub.record_dispatch_shed(B, &ServeError::DeadlineExceeded);
        hub.record_dispatch_shed(B, &ServeError::DeadlineExceeded);
        hub.record_service(2_500);
        hub.record_service(1_500);
        let snap = hub.snapshot("resnet", 1, 5, Duration::from_micros(1500));
        assert_eq!(snap.model, "resnet");
        assert_eq!(snap.completed_requests, 4);
        assert_eq!(snap.completed_samples, 13);
        assert_eq!(snap.completed_interactive, 2);
        assert_eq!(snap.completed_batch_class, 2);
        assert_eq!(snap.shed_requests, 3);
        assert_eq!(snap.shed_interactive, 1);
        assert_eq!(snap.shed_batch_class, 2);
        assert_eq!(snap.cancelled_requests, 1);
        assert_eq!(snap.deadline_missed_requests, 2);
        assert_eq!(snap.errored_requests, 2);
        assert_eq!(snap.batches, 3);
        assert_eq!(snap.reloads, 1);
        assert_eq!(snap.model_version, 1);
        assert_eq!(snap.queued_samples, 5);
        assert!((snap.wait_budget_ms - 1.5).abs() < 1e-9);
        assert!((snap.service_time_ms - 4.0).abs() < 1e-9);
        assert_eq!(snap.batch_occupancy, vec![1, 0, 1, 1]);
        assert_eq!(snap.peak_batch_activation_bytes, 2048);
        assert!(snap.p50_latency_ms >= 1.0 && snap.p50_latency_ms <= 6.0);
        assert!(snap.p95_latency_ms >= snap.p50_latency_ms);
        assert!(snap.max_latency_ms >= snap.p95_latency_ms);
        assert!(snap.mean_latency_ms > 0.0);
        assert!((snap.mean_batch_size - 13.0 / 3.0).abs() < 1e-9);
        assert!(snap.throughput_rps > 0.0);
        assert!(snap.describe().contains("4 req"));
        assert!(snap.describe().contains("cancelled 1"));
        assert!(snap.describe().contains("deadline-missed 2"));
        assert!(snap.describe().starts_with("[resnet]"));
        let ascii = snap.occupancy_ascii(20);
        assert_eq!(ascii.lines().count(), 4);
        assert!(ascii.contains('#'));
    }

    #[test]
    fn dispatch_shed_only_counts_lifecycle_reasons() {
        let hub = MetricsHub::new(1);
        hub.record_dispatch_shed(I, &ServeError::Timeout); // not a dispatch-shed reason
        let snap = hub.snapshot("m", 0, 0, Duration::ZERO);
        assert_eq!(snap.cancelled_requests, 0);
        assert_eq!(snap.deadline_missed_requests, 0);
    }

    #[test]
    fn latency_window_is_bounded() {
        let hub = MetricsHub::new(1);
        let lat: Vec<(Duration, Priority)> = vec![(Duration::from_micros(10), I); 100];
        for _ in 0..700 {
            hub.record_batch(1, &lat, 0);
        }
        let snap = hub.snapshot("m", 0, 0, Duration::ZERO);
        assert_eq!(snap.completed_requests, 70_000);
        // The retained sample buffer stays capped at the window size.
        assert!(snap.p50_latency_ms > 0.0);
    }

    #[test]
    fn router_metrics_roll_up_per_model() {
        let hub_a = MetricsHub::new(2);
        hub_a.record_batch(1, &[(Duration::from_millis(1), I)], 0);
        hub_a.record_service(1_000);
        let hub_b = MetricsHub::new(2);
        hub_b.record_batch(2, &[(Duration::from_millis(30), B), (Duration::from_millis(40), B)], 0);
        hub_b.record_shed(I);
        hub_b.record_service(3_000);
        let fleet = RouterMetrics {
            models: vec![
                hub_a.snapshot("fast", 0, 0, Duration::ZERO),
                hub_b.snapshot("slow", 2, 1, Duration::ZERO),
            ],
        };
        assert_eq!(fleet.total_completed_requests(), 3);
        assert_eq!(fleet.total_shed_requests(), 1);
        assert_eq!(fleet.get("slow").unwrap().model_version, 2);
        assert!(fleet.get("none").is_none());
        // The whole point: each model keeps its own latency distribution.
        assert!(fleet.get("fast").unwrap().p95_latency_ms < 5.0);
        assert!(fleet.get("slow").unwrap().p95_latency_ms > 25.0);
        // Fair-share ledger: slow consumed 3 of the 4 ms of service time.
        assert!((fleet.service_share("slow").unwrap() - 0.75).abs() < 1e-9);
        assert!((fleet.service_share("fast").unwrap() - 0.25).abs() < 1e-9);
        assert!(fleet.service_share("none").is_none());
        assert_eq!(fleet.describe().lines().count(), 2);
    }
}
