//! # quadra-serve
//!
//! Batched inference serving for QuadraLib-rs: the subsystem that turns the
//! training library into a serving *system* — the throughput/latency side of
//! the MLSys story.
//!
//! ## Architecture
//!
//! Everything is plain threads (compatible with the vendored rayon; no async
//! runtime). The engine is a **[`Router`]** fronting N named model endpoints
//! behind one admission layer:
//!
//! * **Admission** is bounded and priority-aware: each endpoint keeps one
//!   bounded queue per [`Priority`] class (`Interactive` drains before
//!   `Batch`). A full class queue sheds the request synchronously with
//!   [`ServeError::Overloaded`] — carrying a `retry_after` estimate — instead
//!   of queueing forever, so offered load beyond capacity degrades into
//!   explicit backpressure rather than unbounded latency.
//! * A per-endpoint **dynamic batcher** thread coalesces admitted requests
//!   into batches under the endpoint's [`BatchPolicy`]. The wait budget is
//!   adaptive by default: the batcher tracks the EWMA request inter-arrival
//!   time and EWMA batch service time and waits just long enough to fill a
//!   batch, capped at `max_wait`. Only same-shape requests coalesce by
//!   default — predictions never depend on concurrent traffic;
//!   `BatchPolicy::pad_mixed_spatial` opts NCHW inputs into zero-padded
//!   mixed-size batches. Outputs are split back into per-request rows.
//! * A per-endpoint **worker pool** of N model replicas, each owned by a
//!   dedicated worker thread, executes batches in eval mode. Replicas are
//!   built *on* their worker thread by a `Fn() -> Box<dyn Layer>` factory, so
//!   the [`Layer`](quadra_nn::Layer) trait needs no `Send` bound.
//! * **Checkpoint hot-reload** is per endpoint: a
//!   [`StateDict`](quadra_nn::StateDict) is validated, published, and
//!   atomically picked up by that endpoint's workers between batches —
//!   without disturbing any other endpoint. Responses carry the model version
//!   that produced them.
//! * **[`ServeMetrics`]** are per model (and shed counts per priority class):
//!   throughput, p50/p95/max latency over the endpoint's own window — never
//!   blended across a heterogeneous fleet — batch-occupancy histogram, queue
//!   depth, current wait budget, and per-batch activation memory attributed
//!   through `quadra_core::MemoryProfiler::inference_report_for`.
//!   [`Router::metrics`] rolls the fleet up into [`RouterMetrics`].
//!
//! Single-architecture callers keep the one-line path: [`InferenceServer`] is
//! a router with exactly one endpoint.
//!
//! ## Example
//!
//! ```
//! use quadra_nn::{Layer, Linear, Relu, Sequential, StateDict};
//! use quadra_serve::{InferenceServer, ServeConfig};
//! use quadra_tensor::Tensor;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let model = |seed: u64| -> Box<dyn Layer> {
//!     let mut rng = StdRng::seed_from_u64(seed);
//!     Box::new(Sequential::new(vec![
//!         Box::new(Linear::new(4, 16, true, &mut rng)),
//!         Box::new(Relu::new()),
//!         Box::new(Linear::new(16, 3, true, &mut rng)),
//!     ]))
//! };
//! let server = InferenceServer::start(ServeConfig::default(), move || model(0)).unwrap();
//! let client = server.client();
//!
//! // Serve a batch of two 4-feature rows.
//! let response = client.infer(Tensor::ones(&[2, 4])).unwrap();
//! assert_eq!(response.output.shape(), &[2, 3]);
//! assert_eq!(response.model_version, 0);
//!
//! // Hot-reload different weights; later responses report the new version.
//! let mut rng = StdRng::seed_from_u64(1);
//! let retrained = Sequential::new(vec![
//!     Box::new(Linear::new(4, 16, true, &mut rng)),
//!     Box::new(Relu::new()),
//!     Box::new(Linear::new(16, 3, true, &mut rng)),
//! ]);
//! let version = server.reload(StateDict::from_layer(&retrained)).unwrap();
//! assert_eq!(version, 1);
//!
//! let metrics = server.shutdown();
//! assert_eq!(metrics.completed_requests, 1);
//! ```
//!
//! For the multi-model form — several architectures, per-model policies,
//! priority classes and load shedding — see [`Router`].

#![warn(missing_docs)]

mod admission;
mod batcher;
mod endpoint;
mod metrics;
mod request;
mod server;
mod worker;

pub use metrics::{RouterMetrics, ServeMetrics};
pub use request::{
    AdmissionPolicy, BatchPolicy, InferResponse, PendingResponse, Priority, ServeConfig, ServeError,
};
pub use server::{InferenceServer, Router, RouterBuilder, RouterClient, ServeClient, DEFAULT_ENDPOINT};

/// Alias emphasising the paper-facing name of the subsystem: the pool of
/// model replicas behind the batcher.
pub type ModelWorkerPool = InferenceServer;
