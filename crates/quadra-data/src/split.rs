//! Train/test splitting and batch-index iteration helpers.

use quadra_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Split `(x, y)` into train and test partitions, shuffling with `seed`.
///
/// `test_fraction` is clamped to `[0, 1]`. Returns
/// `((x_train, y_train), (x_test, y_test))`.
pub fn train_test_split(
    x: &Tensor,
    y: &Tensor,
    test_fraction: f32,
    seed: u64,
) -> ((Tensor, Tensor), (Tensor, Tensor)) {
    let n = x.shape()[0];
    assert_eq!(y.shape()[0], n, "x and y must have the same number of rows");
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(&mut StdRng::seed_from_u64(seed));
    let test_n = ((n as f32) * test_fraction.clamp(0.0, 1.0)).round() as usize;
    let (test_idx, train_idx) = indices.split_at(test_n.min(n));
    (
        (x.select_rows(train_idx).expect("rows"), y.select_rows(train_idx).expect("rows")),
        (x.select_rows(test_idx).expect("rows"), y.select_rows(test_idx).expect("rows")),
    )
}

/// An iterator over mini-batch index chunks, optionally shuffled per epoch.
#[derive(Debug, Clone)]
pub struct Batches {
    indices: Vec<usize>,
    batch_size: usize,
}

impl Batches {
    /// Create a batch iterator over `n` samples.
    pub fn new(n: usize, batch_size: usize, shuffle: bool, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        let mut indices: Vec<usize> = (0..n).collect();
        if shuffle {
            indices.shuffle(&mut StdRng::seed_from_u64(seed));
        }
        Batches { indices, batch_size }
    }

    /// Number of batches.
    pub fn len(&self) -> usize {
        self.indices.len().div_ceil(self.batch_size)
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Iterate over the index chunks.
    pub fn iter(&self) -> impl Iterator<Item = &[usize]> {
        self.indices.chunks(self.batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_preserves_all_samples() {
        let x = Tensor::arange(0.0, 1.0, 20).reshape(&[10, 2]).unwrap();
        let y = Tensor::arange(0.0, 1.0, 10);
        let ((xtr, ytr), (xte, yte)) = train_test_split(&x, &y, 0.3, 0);
        assert_eq!(xtr.shape()[0], 7);
        assert_eq!(xte.shape()[0], 3);
        assert_eq!(ytr.shape()[0], 7);
        assert_eq!(yte.shape()[0], 3);
        // Together they cover all labels exactly once.
        let mut all: Vec<f32> = ytr.as_slice().iter().chain(yte.as_slice()).copied().collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, y.as_slice());
    }

    #[test]
    fn split_extremes() {
        let x = Tensor::zeros(&[4, 1]);
        let y = Tensor::zeros(&[4]);
        let ((xtr, _), (xte, _)) = train_test_split(&x, &y, 0.0, 0);
        assert_eq!(xtr.shape()[0], 4);
        assert_eq!(xte.shape()[0], 0);
        let ((xtr, _), (xte, _)) = train_test_split(&x, &y, 1.5, 0);
        assert_eq!(xtr.shape()[0], 0);
        assert_eq!(xte.shape()[0], 4);
    }

    #[test]
    fn batches_cover_every_index_once() {
        let b = Batches::new(10, 3, true, 7);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        let mut seen: Vec<usize> = b.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        // Last chunk is the remainder.
        assert_eq!(b.iter().last().unwrap().len(), 1);
    }

    #[test]
    fn unshuffled_batches_are_in_order() {
        let b = Batches::new(6, 2, false, 0);
        let chunks: Vec<Vec<usize>> = b.iter().map(|c| c.to_vec()).collect();
        assert_eq!(chunks, vec![vec![0, 1], vec![2, 3], vec![4, 5]]);
    }

    #[test]
    #[should_panic]
    fn zero_batch_size_rejected() {
        let _ = Batches::new(4, 0, false, 0);
    }
}
