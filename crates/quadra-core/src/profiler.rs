//! The memory profiler: deterministic accounting of training-time memory.
//!
//! The paper uses PyTorch's memory profiler / `torch.cuda.memory_allocated()`
//! to (a) warn when a QDNN is at risk of exhausting GPU memory (Fig. 5) and
//! (b) show the saving of hybrid back-propagation over one training iteration
//! (Fig. 8). Since this reproduction runs on CPU, the profiler instead models
//! memory *exactly* from the computation graph: parameters + gradients,
//! optimizer state, and the intermediate activations each layer reports caching
//! via [`Layer::cached_bytes`]. That quantity is hardware-independent and is
//! what determines whether a given GPU capacity would be exceeded.

use quadra_nn::{Layer, Sequential};
use quadra_tensor::Tensor;

/// Break-down of the memory required for one training step.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemoryReport {
    /// Bytes of parameters and their gradient buffers.
    pub param_bytes: usize,
    /// Bytes of optimizer state (momentum / Adam moments), if supplied.
    pub optimizer_bytes: usize,
    /// Peak bytes of cached intermediate activations during forward+backward.
    pub peak_activation_bytes: usize,
    /// Bytes of the batch input tensor.
    pub input_bytes: usize,
    /// Bytes of the output tensor.
    pub output_bytes: usize,
}

impl MemoryReport {
    /// Total modelled memory requirement.
    pub fn total_bytes(&self) -> usize {
        self.param_bytes
            + self.optimizer_bytes
            + self.peak_activation_bytes
            + self.input_bytes
            + self.output_bytes
    }

    /// Total in mebibytes.
    pub fn total_mib(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// True if the requirement exceeds a device budget in bytes (the
    /// out-of-memory risk check the quadratic optimizer performs).
    pub fn exceeds(&self, budget_bytes: usize) -> bool {
        self.total_bytes() > budget_bytes
    }
}

/// A [`MemoryReport`] attributed to a named model (per-endpoint accounting in
/// a serving fleet: each worker pool reports under its endpoint's name).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelMemoryReport {
    /// Name of the model (serving-endpoint name) the report belongs to.
    pub model: String,
    /// The memory break-down itself.
    pub report: MemoryReport,
}

impl ModelMemoryReport {
    /// One-line summary, e.g. for per-model serving logs.
    pub fn describe(&self) -> String {
        format!(
            "{}: {:.2} MiB total ({:.1} KiB activations)",
            self.model,
            self.report.total_mib(),
            self.report.peak_activation_bytes as f64 / 1024.0
        )
    }
}

/// One sample of the memory timeline of a single training iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelinePoint {
    /// Phase and layer description, e.g. `"forward conv2d#3"`.
    pub event: String,
    /// Live cached-activation bytes after the event.
    pub live_activation_bytes: usize,
}

/// The memory timeline of one forward+backward pass (Fig. 8 of the paper).
#[derive(Debug, Clone, Default)]
pub struct MemoryTimeline {
    /// Timeline samples in execution order.
    pub points: Vec<TimelinePoint>,
}

impl MemoryTimeline {
    /// Peak live activation bytes over the iteration.
    pub fn peak(&self) -> usize {
        self.points.iter().map(|p| p.live_activation_bytes).max().unwrap_or(0)
    }

    /// Render the timeline as a simple ASCII chart (one row per event).
    pub fn render_ascii(&self, width: usize) -> String {
        let peak = self.peak().max(1);
        let mut out = String::new();
        for p in &self.points {
            let bar = (p.live_activation_bytes * width) / peak;
            out.push_str(&format!(
                "{:>10.2} MiB |{}{}| {}\n",
                p.live_activation_bytes as f64 / (1024.0 * 1024.0),
                "█".repeat(bar),
                " ".repeat(width - bar),
                p.event
            ));
        }
        out
    }
}

/// The memory profiler.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemoryProfiler;

impl MemoryProfiler {
    /// Create a profiler.
    pub fn new() -> Self {
        MemoryProfiler
    }

    /// Run one forward+backward pass of `model` on `input`, recording the live
    /// activation memory after every layer event, and return the report plus
    /// the full timeline.
    ///
    /// `optimizer_bytes` lets the caller add the optimizer-state footprint
    /// (pass 0 when profiling inference).
    pub fn profile_step(
        &self,
        model: &mut Sequential,
        input: &Tensor,
        optimizer_bytes: usize,
    ) -> (MemoryReport, MemoryTimeline) {
        let mut timeline = MemoryTimeline::default();
        let live = |model: &Sequential| model.cached_bytes();

        // Forward, layer by layer.
        let mut activations: Vec<Tensor> = Vec::new();
        let mut cur = input.clone();
        let n_layers = model.len();
        for i in 0..n_layers {
            let Some(layer) = model.layers_mut().get_mut(i) else { break };
            cur = layer.forward(&cur, true);
            let layer_type = model.layers().get(i).map_or("?", |l| l.layer_type());
            activations.push(cur.clone());
            timeline.points.push(TimelinePoint {
                event: format!("forward {}#{}", layer_type, i),
                live_activation_bytes: live(model),
            });
        }
        let output = activations.last().cloned().unwrap_or_else(|| input.clone());

        // Backward, layer by layer (a "sum" loss: gradient of ones).
        let mut grad = Tensor::ones(output.shape());
        for i in (0..n_layers).rev() {
            let Some(layer) = model.layers_mut().get_mut(i) else { continue };
            grad = layer.backward(&grad);
            let layer_type = model.layers().get(i).map_or("?", |l| l.layer_type());
            timeline.points.push(TimelinePoint {
                event: format!("backward {}#{}", layer_type, i),
                live_activation_bytes: live(model),
            });
        }

        let report = MemoryReport {
            param_bytes: model.params().iter().map(|p| p.nbytes()).sum(),
            optimizer_bytes,
            peak_activation_bytes: timeline.peak(),
            input_bytes: input.nbytes(),
            output_bytes: output.nbytes(),
        };
        // Zero out the parameter gradients the probe produced.
        for p in model.params_mut() {
            p.zero_grad();
        }
        model.clear_cache();
        (report, timeline)
    }

    /// Account the memory footprint of one **inference** batch whose forward
    /// pass has just completed: parameter tensors (values plus the gradient
    /// buffers every [`Param`](quadra_nn::Param) allocates), the activations
    /// the layers are currently caching, and the batch input/output tensors.
    ///
    /// Unlike [`MemoryProfiler::profile_step`] this runs nothing — it reads
    /// the live [`Layer::cached_bytes`] state, which is what the serving
    /// worker pool samples between `forward` and `clear_cache` to report
    /// per-batch memory.
    pub fn inference_report(&self, model: &dyn Layer, input: &Tensor, output: &Tensor) -> MemoryReport {
        MemoryReport {
            param_bytes: model.params().iter().map(|p| p.nbytes()).sum(),
            optimizer_bytes: 0,
            peak_activation_bytes: model.cached_bytes(),
            input_bytes: input.nbytes(),
            output_bytes: output.nbytes(),
        }
    }

    /// [`MemoryProfiler::inference_report`] attributed to a named model —
    /// what a multi-model serving fleet needs to tell which endpoint's
    /// replicas account for which share of the activation memory.
    pub fn inference_report_for(
        &self,
        model_name: &str,
        model: &dyn Layer,
        input: &Tensor,
        output: &Tensor,
    ) -> ModelMemoryReport {
        ModelMemoryReport {
            model: model_name.to_string(),
            report: self.inference_report(model, input, output),
        }
    }

    /// Analytic estimate of the training memory of a model built from
    /// `config`, for an arbitrary batch size, **without** materialising the
    /// activations (needed for the batch-512 GPU-scale comparison of Fig. 5).
    ///
    /// The estimate scales the single-sample activation footprint linearly with
    /// the batch size and adds parameters, gradients and optional optimizer
    /// state (one momentum slot per parameter when `sgd_momentum` is true).
    pub fn estimate_from_config(
        &self,
        config: &crate::config::ModelConfig,
        batch_size: usize,
        sgd_momentum: bool,
    ) -> MemoryReport {
        use crate::config::{advance_geometry, Geometry, LayerSpec};
        let bytes_of = |geom: Geometry| {
            if geom.flat || geom.spatial == 0 {
                geom.channels * 4
            } else {
                geom.channels * geom.spatial * geom.spatial * 4
            }
        };
        // Activation cache per layer: what the layer implementations cache for
        // backward, per sample.
        fn cached_per_sample(spec: &LayerSpec, geom: Geometry) -> usize {
            use crate::config::advance_geometry;
            let in_bytes = if geom.flat || geom.spatial == 0 {
                geom.channels * 4
            } else {
                geom.channels * geom.spatial * geom.spatial * 4
            };
            let out_geom = advance_geometry(spec, geom);
            let out_bytes = if out_geom.flat || out_geom.spatial == 0 {
                out_geom.channels * 4
            } else {
                out_geom.channels * out_geom.spatial * out_geom.spatial * 4
            };
            match spec {
                // First-order conv / linear cache their input; BN caches x̂; ReLU a mask.
                LayerSpec::Conv { batch_norm, relu, .. } => {
                    in_bytes + if *batch_norm { out_bytes } else { 0 } + if *relu { out_bytes } else { 0 }
                }
                // Quadratic conv (default BP) caches input + both branch outputs.
                LayerSpec::QuadraticConv { batch_norm, relu, neuron, .. } => {
                    let branches = match neuron {
                        crate::neuron::NeuronType::T2 => 0,
                        crate::neuron::NeuronType::T3 => 1,
                        _ => 2,
                    };
                    in_bytes
                        + branches * out_bytes
                        + if *batch_norm { out_bytes } else { 0 }
                        + if *relu { out_bytes } else { 0 }
                }
                LayerSpec::Linear { relu, .. } => in_bytes + if *relu { out_bytes } else { 0 },
                LayerSpec::QuadraticLinear { .. } => in_bytes + 2 * out_bytes,
                LayerSpec::MaxPool { .. } => out_bytes * 2, // usize indices ≈ 8 bytes per output
                LayerSpec::Dropout { .. } => in_bytes,
                LayerSpec::Residual { body, .. } => {
                    let mut g = geom;
                    let mut total = 0;
                    for s in body {
                        total += cached_per_sample(s, g);
                        g = advance_geometry(s, g);
                    }
                    total + out_bytes // final ReLU mask
                }
                _ => 0,
            }
        }

        let mut geom = Geometry { channels: config.input_channels, spatial: config.image_size, flat: false };
        let mut activation_per_sample = 0usize;
        for spec in &config.layers {
            activation_per_sample += cached_per_sample(spec, geom);
            geom = advance_geometry(spec, geom);
        }
        let params = crate::builder::estimate_param_count(config);
        let param_bytes = params * 4 * 2; // value + gradient
        let optimizer_bytes = if sgd_momentum { params * 4 } else { 0 };
        let input_geom =
            Geometry { channels: config.input_channels, spatial: config.image_size, flat: false };
        MemoryReport {
            param_bytes,
            optimizer_bytes,
            peak_activation_bytes: activation_per_sample * batch_size,
            input_bytes: bytes_of(input_geom) * batch_size,
            output_bytes: config.num_classes * 4 * batch_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{build_model, LayerSpec, ModelConfig};
    use crate::neuron::NeuronType;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config(quadratic: bool) -> ModelConfig {
        let conv: Vec<LayerSpec> = if quadratic {
            vec![LayerSpec::qconv3x3(NeuronType::Ours, 8), LayerSpec::qconv3x3(NeuronType::Ours, 8)]
        } else {
            vec![LayerSpec::conv3x3(8), LayerSpec::conv3x3(8)]
        };
        let mut layers = conv;
        layers.push(LayerSpec::GlobalAvgPool);
        layers.push(LayerSpec::Linear { out_features: 4, relu: false });
        ModelConfig::new(if quadratic { "small-q" } else { "small" }, 3, 8, 4, layers)
    }

    #[test]
    fn inference_report_reads_live_cache_state() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut model = build_model(&small_config(false), &mut rng);
        let input = Tensor::randn(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let output = model.forward(&input, false);
        let report = MemoryProfiler::new().inference_report(&model, &input, &output);
        assert!(report.param_bytes > 0);
        assert_eq!(report.optimizer_bytes, 0);
        assert_eq!(report.peak_activation_bytes, model.cached_bytes());
        assert!(report.peak_activation_bytes > 0);
        assert_eq!(report.input_bytes, input.nbytes());
        assert_eq!(report.output_bytes, output.nbytes());
        model.clear_cache();
        let after = MemoryProfiler::new().inference_report(&model, &input, &output);
        assert_eq!(after.peak_activation_bytes, 0);
    }

    #[test]
    fn inference_report_for_attributes_to_model_name() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut model = build_model(&small_config(false), &mut rng);
        let input = Tensor::randn(&[1, 3, 8, 8], 0.0, 1.0, &mut rng);
        let output = model.forward(&input, false);
        let attributed = MemoryProfiler::new().inference_report_for("mobilenet", &model, &input, &output);
        assert_eq!(attributed.model, "mobilenet");
        assert_eq!(attributed.report, MemoryProfiler::new().inference_report(&model, &input, &output));
        assert!(attributed.describe().starts_with("mobilenet:"));
    }

    #[test]
    fn profile_step_reports_nonzero_components() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut model = build_model(&small_config(true), &mut rng);
        let input = Tensor::randn(&[4, 3, 8, 8], 0.0, 1.0, &mut rng);
        let (report, timeline) = MemoryProfiler::new().profile_step(&mut model, &input, 128);
        assert!(report.param_bytes > 0);
        assert_eq!(report.optimizer_bytes, 128);
        assert!(report.peak_activation_bytes > 0);
        assert_eq!(report.input_bytes, input.nbytes());
        assert!(report.total_bytes() > report.param_bytes);
        assert!(report.total_mib() > 0.0);
        assert!(!timeline.points.is_empty());
        assert_eq!(timeline.peak(), report.peak_activation_bytes);
        // Memory rises during forward and falls during backward.
        let forward_end = timeline.points.len() / 2 - 1;
        assert!(
            timeline.points[forward_end].live_activation_bytes >= timeline.points[0].live_activation_bytes
        );
        assert!(timeline.points.last().unwrap().live_activation_bytes <= timeline.peak());
        // The probe cleans up after itself.
        assert_eq!(model.cached_bytes(), 0);
        assert!(model.params().iter().all(|p| p.grad.l2_norm() == 0.0));
        // ASCII rendering mentions at least one layer type.
        let chart = timeline.render_ascii(30);
        assert!(chart.contains("forward"));
        assert!(chart.contains("backward"));
    }

    #[test]
    fn quadratic_model_uses_more_activation_memory_than_first_order() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut fo = build_model(&small_config(false), &mut rng);
        let mut qd = build_model(&small_config(true), &mut rng);
        let input = Tensor::randn(&[4, 3, 8, 8], 0.0, 1.0, &mut rng);
        let (r_fo, _) = MemoryProfiler::new().profile_step(&mut fo, &input, 0);
        let (r_qd, _) = MemoryProfiler::new().profile_step(&mut qd, &input, 0);
        assert!(r_qd.peak_activation_bytes > r_fo.peak_activation_bytes);
        assert!(r_qd.total_bytes() > r_fo.total_bytes());
    }

    #[test]
    fn hybrid_mode_lowers_measured_peak() {
        let mut rng = StdRng::seed_from_u64(10);
        let cfg = small_config(true);
        let mut default_model = build_model(&cfg, &mut rng);
        let mut hybrid_model = build_model(&cfg, &mut rng);
        hybrid_model.set_memory_saving(true);
        assert!(hybrid_model.memory_saving());
        assert!(!default_model.memory_saving());
        let input = Tensor::randn(&[4, 3, 8, 8], 0.0, 1.0, &mut rng);
        let (r_def, _) = MemoryProfiler::new().profile_step(&mut default_model, &input, 0);
        let (r_hyb, _) = MemoryProfiler::new().profile_step(&mut hybrid_model, &input, 0);
        assert!(r_hyb.peak_activation_bytes < r_def.peak_activation_bytes);
    }

    #[test]
    fn exceeds_budget_check() {
        let r = MemoryReport {
            param_bytes: 1000,
            optimizer_bytes: 0,
            peak_activation_bytes: 1000,
            input_bytes: 0,
            output_bytes: 0,
        };
        assert!(r.exceeds(1999));
        assert!(!r.exceeds(2000));
    }

    #[test]
    fn config_estimate_scales_with_batch_and_tracks_real_measurement() {
        let cfg = small_config(true);
        let profiler = MemoryProfiler::new();
        let est8 = profiler.estimate_from_config(&cfg, 8, true);
        let est64 = profiler.estimate_from_config(&cfg, 64, true);
        assert!(est64.peak_activation_bytes == 8 * est8.peak_activation_bytes);
        assert_eq!(est8.param_bytes, est64.param_bytes);
        assert!(est8.optimizer_bytes > 0);
        let est_no_mom = profiler.estimate_from_config(&cfg, 8, false);
        assert_eq!(est_no_mom.optimizer_bytes, 0);

        // The analytic estimate should agree with an actual measured step at the
        // same batch size to within 2x (it intentionally over-approximates since
        // the real peak frees some caches during backward).
        let mut rng = StdRng::seed_from_u64(11);
        let mut model = build_model(&cfg, &mut rng);
        let input = Tensor::randn(&[8, 3, 8, 8], 0.0, 1.0, &mut rng);
        let (measured, _) = profiler.profile_step(&mut model, &input, 0);
        let ratio = est8.peak_activation_bytes as f64 / measured.peak_activation_bytes as f64;
        assert!(ratio > 0.5 && ratio < 2.0, "ratio {}", ratio);
    }

    #[test]
    fn first_order_estimate_is_smaller_than_quadratic_estimate() {
        let profiler = MemoryProfiler::new();
        let fo = profiler.estimate_from_config(&small_config(false), 32, true);
        let qd = profiler.estimate_from_config(&small_config(true), 32, true);
        assert!(qd.total_bytes() > fo.total_bytes());
        assert!(qd.peak_activation_bytes > fo.peak_activation_bytes);
    }
}
