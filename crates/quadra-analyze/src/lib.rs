//! `quadra-analyze`: the workspace's offline static-analysis gate.
//!
//! Seven passes over a hand-rolled Rust token stream (no `syn`, no network):
//!
//! 1. **lock_order** — workspace-wide mutex acquisition-order graph with a
//!    cross-crate call-graph approximation (paths and `use`-aliases resolve
//!    callees across crates): deadlock cycles, re-entrant locks, locks held
//!    across condvar waits / channel ops — including through a callee in
//!    another crate;
//! 2. **panic_path** — no `unwrap`/`expect`/`panic!`/indexing in designated
//!    hot paths, and no poison-propagating `.lock().unwrap()` in serve;
//! 3. **clock** — service-time ledger reads must use the sanctioned
//!    `clock` abstraction (the seam for per-thread CPU clock migration);
//! 4. **must_use** — serve public API handles must be `#[must_use]`, and
//!    every `let _ =` discard must be justified;
//! 5. **atomics** — load-then-store on one atomic cell in one fn (lost
//!    updates) and `Relaxed` fetch ops outside allowlisted counters;
//! 6. **condvar** — every condvar wait must sit inside a `while`/`loop`
//!    that re-checks its predicate;
//! 7. **hot_alloc** — no `Vec::new`/`format!`/payload `.clone()`, and no
//!    `HashMap::new`/`String::new`/`.to_string()` growth, in designated
//!    per-request hot-path files.
//!
//! Suppression grammar: `// quadra-analyze: allow(<pass>[:<check>], <reason>)`
//! on the offending line, the line above, or above a `fn` item (covering the
//! whole function). The reason is mandatory; a directive without one is
//! itself a finding, so the gate can never be silenced silently.

#![warn(missing_docs)]

pub mod baseline;
pub mod cache;
pub mod config;
pub mod json;
pub mod lexer;
pub mod passes;
pub mod report;
pub mod source;

pub use config::{AnalyzeConfig, ClockRegion, HotPath, PanicCheck};
pub use report::{Finding, Report, UnusedSuppression};
use source::SourceFile;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Analyze in-memory sources: `(workspace-relative path, content)` pairs.
/// Crate names are derived from the path (`crates/<name>/...`,
/// `vendor/<name>/...`, anything else → `quadralib`).
pub fn analyze_sources(files: &[(String, String)], cfg: &AnalyzeConfig) -> Report {
    let parsed: Vec<SourceFile> =
        files.iter().map(|(path, content)| SourceFile::parse(path, &crate_of(path), content)).collect();
    analyze_parsed(parsed, cfg)
}

/// Analyze the workspace rooted at `root`: every `.rs` file under
/// `crates/*/src`, `vendor/*/src`, and the root `src/`.
pub fn analyze_root(root: &Path, cfg: &AnalyzeConfig) -> std::io::Result<Report> {
    let files = collect_workspace_sources(root)?;
    Ok(analyze_sources(&files, cfg))
}

/// Collect every workspace `.rs` file as `(workspace-relative path, content)`
/// pairs, in a deterministic order. Exposed so the CLI can hash the file set
/// for the incremental cache before deciding whether to analyze at all.
pub fn collect_workspace_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files: Vec<(String, String)> = Vec::new();
    let mut src_dirs: Vec<PathBuf> = vec![root.join("src")];
    for group in ["crates", "vendor"] {
        let dir = root.join(group);
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for entry in entries.flatten() {
                let src = entry.path().join("src");
                if src.is_dir() {
                    src_dirs.push(src);
                }
            }
        }
    }
    src_dirs.sort();
    for dir in src_dirs {
        collect_rs(&dir, root, &mut files)?;
    }
    Ok(files)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) -> std::io::Result<()> {
    let Ok(entries) = std::fs::read_dir(dir) else { return Ok(()) };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            out.push((rel, std::fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

fn crate_of(path: &str) -> String {
    for group in ["crates/", "vendor/"] {
        if let Some(rest) = path.strip_prefix(group) {
            if let Some((name, _)) = rest.split_once('/') {
                return name.to_string();
            }
        }
    }
    "quadralib".to_string()
}

/// Run every pass and apply suppressions.
fn analyze_parsed(parsed: Vec<SourceFile>, cfg: &AnalyzeConfig) -> Report {
    let mut findings: Vec<Finding> = Vec::new();

    // lock_order runs workspace-wide: its call graph resolves callees across
    // crates, so one invocation sees every edge.
    let all: Vec<&SourceFile> = parsed.iter().collect();
    passes::lock_order::run(&all, cfg, &mut findings);
    // must_use stays crate-scoped (its API-surface rules are per-crate).
    let mut by_crate: BTreeMap<&str, Vec<&SourceFile>> = BTreeMap::new();
    for f in &parsed {
        by_crate.entry(f.crate_name.as_str()).or_default().push(f);
    }
    for files in by_crate.values() {
        passes::must_use::run(files, cfg, &mut findings);
    }
    // File-scoped passes.
    for f in &parsed {
        passes::panic_path::run(f, cfg, &mut findings);
        passes::clock::run(f, cfg, &mut findings);
        passes::atomics::run(f, cfg, &mut findings);
        passes::condvar::run(f, cfg, &mut findings);
        passes::hot_alloc::run(f, cfg, &mut findings);
    }
    // Malformed suppressions are findings of the `suppression` pass and can
    // never themselves be suppressed.
    let mut bad: Vec<Finding> = Vec::new();
    for f in &parsed {
        for b in &f.bad_suppressions {
            bad.push(Finding {
                pass: "suppression".to_string(),
                check: "malformed".to_string(),
                file: f.path.clone(),
                line: b.line,
                message: format!("malformed suppression: {}", b.problem),
                snippet: f.line_text(b.line).to_string(),
                suppressed_reason: None,
            });
        }
    }

    // Apply suppressions.
    let mut used: BTreeMap<(String, u32), bool> = BTreeMap::new();
    for f in &parsed {
        for s in &f.suppressions {
            used.insert((f.path.clone(), s.line), false);
        }
    }
    for finding in &mut findings {
        let Some(file) = parsed.iter().find(|f| f.path == finding.file) else { continue };
        for s in &file.suppressions {
            if s.pass != finding.pass {
                continue;
            }
            if let Some(check) = &s.check {
                if check != &finding.check {
                    continue;
                }
            }
            if finding.line < s.covers.0 || finding.line > s.covers.1 {
                continue;
            }
            finding.suppressed_reason = Some(s.reason.clone());
            used.insert((file.path.clone(), s.line), true);
            break;
        }
    }
    findings.extend(bad);
    findings.sort_by(|a, b| (&a.file, a.line, &a.pass, &a.check).cmp(&(&b.file, b.line, &b.pass, &b.check)));

    let mut unused_suppressions = Vec::new();
    for f in &parsed {
        for s in &f.suppressions {
            if used.get(&(f.path.clone(), s.line)) == Some(&false) {
                let target = match &s.check {
                    Some(c) => format!("{}:{}", s.pass, c),
                    None => s.pass.clone(),
                };
                unused_suppressions.push(UnusedSuppression { file: f.path.clone(), line: s.line, target });
            }
        }
    }

    Report { findings, unused_suppressions, files_analyzed: parsed.len() }
}
