//! Learning-rate schedulers.
//!
//! The paper's classification experiments use SGD with a cosine-annealing
//! schedule (Loshchilov & Hutter 2016) starting at learning rate 0.1; the
//! detection experiments use a multi-step decay.

/// A learning-rate schedule queried once per epoch (or iteration).
pub trait LrScheduler {
    /// The learning rate to use at step `step` (0-based).
    fn lr_at(&self, step: usize) -> f32;

    /// The initial learning rate.
    fn base_lr(&self) -> f32;
}

/// A constant learning rate.
#[derive(Debug, Clone, Copy)]
pub struct ConstantLr {
    lr: f32,
}

impl ConstantLr {
    /// Create a constant schedule.
    pub fn new(lr: f32) -> Self {
        ConstantLr { lr }
    }
}

impl LrScheduler for ConstantLr {
    fn lr_at(&self, _step: usize) -> f32 {
        self.lr
    }

    fn base_lr(&self) -> f32 {
        self.lr
    }
}

/// Cosine annealing from `base_lr` down to `eta_min` over `t_max` steps.
#[derive(Debug, Clone, Copy)]
pub struct CosineAnnealingLr {
    base: f32,
    eta_min: f32,
    t_max: usize,
}

impl CosineAnnealingLr {
    /// Create a cosine-annealing schedule.
    pub fn new(base_lr: f32, t_max: usize, eta_min: f32) -> Self {
        assert!(t_max > 0, "t_max must be positive");
        CosineAnnealingLr { base: base_lr, eta_min, t_max }
    }
}

impl LrScheduler for CosineAnnealingLr {
    fn lr_at(&self, step: usize) -> f32 {
        let t = step.min(self.t_max) as f32;
        let cos = (std::f32::consts::PI * t / self.t_max as f32).cos();
        self.eta_min + 0.5 * (self.base - self.eta_min) * (1.0 + cos)
    }

    fn base_lr(&self) -> f32 {
        self.base
    }
}

/// Decay the learning rate by `gamma` every `step_size` steps.
#[derive(Debug, Clone, Copy)]
pub struct StepLr {
    base: f32,
    step_size: usize,
    gamma: f32,
}

impl StepLr {
    /// Create a step-decay schedule.
    pub fn new(base_lr: f32, step_size: usize, gamma: f32) -> Self {
        assert!(step_size > 0, "step_size must be positive");
        StepLr { base: base_lr, step_size, gamma }
    }
}

impl LrScheduler for StepLr {
    fn lr_at(&self, step: usize) -> f32 {
        self.base * self.gamma.powi((step / self.step_size) as i32)
    }

    fn base_lr(&self) -> f32 {
        self.base
    }
}

/// Decay the learning rate by `gamma` at each of the given milestones — the
/// schedule the paper uses for SSD training (decay ×0.1 at iterations 80 000
/// and 100 000).
#[derive(Debug, Clone)]
pub struct MultiStepLr {
    base: f32,
    milestones: Vec<usize>,
    gamma: f32,
}

impl MultiStepLr {
    /// Create a multi-step schedule. Milestones need not be sorted.
    pub fn new(base_lr: f32, mut milestones: Vec<usize>, gamma: f32) -> Self {
        milestones.sort_unstable();
        MultiStepLr { base: base_lr, milestones, gamma }
    }
}

impl LrScheduler for MultiStepLr {
    fn lr_at(&self, step: usize) -> f32 {
        let passed = self.milestones.iter().filter(|&&m| step >= m).count();
        self.base * self.gamma.powi(passed as i32)
    }

    fn base_lr(&self) -> f32 {
        self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule() {
        let s = ConstantLr::new(0.01);
        assert_eq!(s.lr_at(0), 0.01);
        assert_eq!(s.lr_at(1000), 0.01);
        assert_eq!(s.base_lr(), 0.01);
    }

    #[test]
    fn cosine_annealing_endpoints_and_midpoint() {
        let s = CosineAnnealingLr::new(0.1, 200, 0.0);
        assert!((s.lr_at(0) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(100) - 0.05).abs() < 1e-6);
        assert!(s.lr_at(200) < 1e-7);
        // clamps past t_max
        assert!(s.lr_at(500) < 1e-7);
        assert_eq!(s.base_lr(), 0.1);
    }

    #[test]
    fn cosine_is_monotone_decreasing() {
        let s = CosineAnnealingLr::new(0.1, 50, 0.001);
        let mut prev = f32::INFINITY;
        for e in 0..=50 {
            let lr = s.lr_at(e);
            assert!(lr <= prev + 1e-7);
            prev = lr;
        }
        assert!((s.lr_at(50) - 0.001).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn cosine_zero_tmax_panics() {
        let _ = CosineAnnealingLr::new(0.1, 0, 0.0);
    }

    #[test]
    fn step_decay() {
        let s = StepLr::new(1.0, 10, 0.1);
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(9), 1.0);
        assert!((s.lr_at(10) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(25) - 0.01).abs() < 1e-7);
        assert_eq!(s.base_lr(), 1.0);
    }

    #[test]
    fn multi_step_decay_matches_paper_ssd_schedule() {
        let s = MultiStepLr::new(1e-3, vec![100_000, 80_000], 0.1);
        assert!((s.lr_at(0) - 1e-3).abs() < 1e-9);
        assert!((s.lr_at(79_999) - 1e-3).abs() < 1e-9);
        assert!((s.lr_at(80_000) - 1e-4).abs() < 1e-9);
        assert!((s.lr_at(100_000) - 1e-5).abs() < 1e-9);
        assert_eq!(s.base_lr(), 1e-3);
    }
}
