//! Trainable parameters: a value tensor paired with its gradient accumulator.

use quadra_tensor::Tensor;

/// A trainable parameter of a layer.
///
/// Holds the parameter value and the gradient accumulated by the most recent
/// backward pass. Optimizers mutate `value` in place and reset `grad`.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient accumulated by backward passes since the last `zero_grad`.
    pub grad: Tensor,
    /// Human-readable name (e.g. `"conv1.weight"`), useful for analysis tools.
    pub name: String,
    /// If false the optimizer skips weight decay for this parameter
    /// (conventionally biases and batch-norm affine parameters).
    pub apply_weight_decay: bool,
}

impl Param {
    /// Create a parameter from an initial value.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad, name: name.into(), apply_weight_decay: true }
    }

    /// Create a parameter that is excluded from weight decay (biases, BN affine).
    pub fn new_no_decay(name: impl Into<String>, value: Tensor) -> Self {
        let mut p = Self::new(name, value);
        p.apply_weight_decay = false;
        p
    }

    /// Number of scalar values in the parameter.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }

    /// Bytes occupied by the value and gradient tensors together.
    pub fn nbytes(&self) -> usize {
        self.value.nbytes() + self.grad.nbytes()
    }

    /// Reset the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Accumulate a gradient contribution (adds to the existing gradient).
    ///
    /// # Panics
    /// Panics if the gradient shape does not match the parameter shape.
    pub fn accumulate_grad(&mut self, grad: &Tensor) {
        self.grad.add_assign(grad).expect("gradient shape must match parameter shape");
    }

    /// L2 norm of the current gradient — used by the gradient-distribution
    /// analysis tool (Fig. 7 of the paper).
    pub fn grad_l2_norm(&self) -> f32 {
        self.grad.l2_norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new("w", Tensor::ones(&[2, 3]));
        assert_eq!(p.grad.as_slice(), &[0.0; 6]);
        assert_eq!(p.numel(), 6);
        assert_eq!(p.nbytes(), 48);
        assert_eq!(p.name, "w");
        assert!(p.apply_weight_decay);
    }

    #[test]
    fn no_decay_constructor() {
        let p = Param::new_no_decay("b", Tensor::zeros(&[4]));
        assert!(!p.apply_weight_decay);
    }

    #[test]
    fn accumulate_and_zero() {
        let mut p = Param::new("w", Tensor::zeros(&[3]));
        p.accumulate_grad(&Tensor::from_slice(&[1.0, 2.0, 3.0]));
        p.accumulate_grad(&Tensor::from_slice(&[1.0, 1.0, 1.0]));
        assert_eq!(p.grad.as_slice(), &[2.0, 3.0, 4.0]);
        assert!((p.grad_l2_norm() - (4.0f32 + 9.0 + 16.0).sqrt()).abs() < 1e-6);
        p.zero_grad();
        assert_eq!(p.grad.as_slice(), &[0.0; 3]);
    }

    #[test]
    #[should_panic]
    fn mismatched_grad_shape_panics() {
        let mut p = Param::new("w", Tensor::zeros(&[3]));
        p.accumulate_grad(&Tensor::zeros(&[4]));
    }
}
