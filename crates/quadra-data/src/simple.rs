//! Classic low-dimensional problems used by the early quadratic-neuron papers:
//! XOR, two spirals and polynomial regression. A single quadratic neuron can
//! solve XOR exactly, which is the motivating example of several T1–T4 works.

use quadra_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The XOR problem with `n` noisy samples: inputs in `{±1}² + noise`, label is
/// 1 when the signs differ. Returns `(inputs [n,2], labels [n])`.
pub fn xor_dataset(n: usize, noise: f32, seed: u64) -> (Tensor, Tensor) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(n * 2);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let a: bool = rng.gen();
        let b: bool = rng.gen();
        let sa = if a { 1.0 } else { -1.0 };
        let sb = if b { 1.0 } else { -1.0 };
        xs.push(sa + noise * rng.gen_range(-1.0..1.0));
        xs.push(sb + noise * rng.gen_range(-1.0..1.0));
        ys.push(if a != b { 1.0 } else { 0.0 });
    }
    (Tensor::from_vec(xs, &[n, 2]).expect("shape"), Tensor::from_vec(ys, &[n]).expect("shape"))
}

/// The two-spirals problem: `n` points on two interleaved spirals with additive
/// noise. Returns `(inputs [n,2], labels [n])` with labels in `{0, 1}`.
pub fn two_spirals(n: usize, noise: f32, seed: u64) -> (Tensor, Tensor) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(n * 2);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 2;
        let t = rng.gen_range(0.25f32..1.0);
        let angle = t * 3.0 * std::f32::consts::TAU * 0.5 + class as f32 * std::f32::consts::PI;
        let r = t;
        xs.push(r * angle.cos() + noise * rng.gen_range(-1.0..1.0));
        xs.push(r * angle.sin() + noise * rng.gen_range(-1.0..1.0));
        ys.push(class as f32);
    }
    (Tensor::from_vec(xs, &[n, 2]).expect("shape"), Tensor::from_vec(ys, &[n]).expect("shape"))
}

/// Scalar polynomial-regression data: `y = c₀ + c₁x + c₂x² + c₃x³ + ε` with `x`
/// uniform in `[-1, 1]`. Returns `(inputs [n,1], targets [n,1])`.
pub fn polynomial_regression(n: usize, coeffs: [f32; 4], noise: f32, seed: u64) -> (Tensor, Tensor) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let x: f32 = rng.gen_range(-1.0..1.0);
        let y = coeffs[0]
            + coeffs[1] * x
            + coeffs[2] * x * x
            + coeffs[3] * x * x * x
            + noise * rng.gen_range(-1.0..1.0);
        xs.push(x);
        ys.push(y);
    }
    (Tensor::from_vec(xs, &[n, 1]).expect("shape"), Tensor::from_vec(ys, &[n, 1]).expect("shape"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_labels_match_sign_pattern() {
        let (x, y) = xor_dataset(200, 0.0, 1);
        assert_eq!(x.shape(), &[200, 2]);
        assert_eq!(y.shape(), &[200]);
        for i in 0..200 {
            let a = x.at(&[i, 0]) > 0.0;
            let b = x.at(&[i, 1]) > 0.0;
            let label = y.as_slice()[i] > 0.5;
            assert_eq!(a != b, label);
        }
        // Both classes are present.
        let pos = y.as_slice().iter().filter(|&&v| v > 0.5).count();
        assert!(pos > 50 && pos < 150);
    }

    #[test]
    fn xor_is_not_linearly_separable_but_product_separates_it() {
        let (x, y) = xor_dataset(500, 0.05, 2);
        // The product x0*x1 has opposite sign for the two classes.
        let mut correct = 0;
        for i in 0..500 {
            let prod = x.at(&[i, 0]) * x.at(&[i, 1]);
            let pred = if prod < 0.0 { 1.0 } else { 0.0 };
            if (pred - y.as_slice()[i]).abs() < 0.5 {
                correct += 1;
            }
        }
        assert!(correct as f32 / 500.0 > 0.98);
    }

    #[test]
    fn spirals_have_balanced_classes_and_bounded_radius() {
        let (x, y) = two_spirals(300, 0.01, 3);
        assert_eq!(x.shape(), &[300, 2]);
        let ones = y.as_slice().iter().filter(|&&v| v > 0.5).count();
        assert_eq!(ones, 150);
        for i in 0..300 {
            let r = (x.at(&[i, 0]).powi(2) + x.at(&[i, 1]).powi(2)).sqrt();
            assert!(r < 1.5);
        }
    }

    #[test]
    fn polynomial_matches_coefficients_without_noise() {
        let coeffs = [0.5, -1.0, 2.0, 0.25];
        let (x, y) = polynomial_regression(64, coeffs, 0.0, 4);
        for i in 0..64 {
            let xv = x.at(&[i, 0]);
            let expect = coeffs[0] + coeffs[1] * xv + coeffs[2] * xv * xv + coeffs[3] * xv * xv * xv;
            assert!((y.at(&[i, 0]) - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(xor_dataset(16, 0.1, 9).0.as_slice(), xor_dataset(16, 0.1, 9).0.as_slice());
        assert_eq!(two_spirals(16, 0.1, 9).0.as_slice(), two_spirals(16, 0.1, 9).0.as_slice());
        assert_eq!(
            polynomial_regression(16, [0.0, 1.0, 1.0, 0.0], 0.1, 9).0.as_slice(),
            polynomial_regression(16, [0.0, 1.0, 1.0, 0.0], 0.1, 9).0.as_slice()
        );
    }
}
