//! The sanctioned clock for service-time accounting: **per-thread CPU time**.
//!
//! The DRR fair-share ledger charges each endpoint for the compute its
//! batches actually burn on a worker. Wall time overstated that whenever the
//! OS descheduled a worker mid-batch — with more workers than cores, every
//! endpoint's "service time" inflated with load, and the scheduler had to cap
//! concurrent grants at `available_parallelism` to keep the books honest.
//! Billing `CLOCK_THREAD_CPUTIME_ID` instead means overlapping executions
//! charge each endpoint only for its own cycles, so the cap is gone (see
//! `scheduler.rs`).
//!
//! On Linux the clock is read through a thin `clock_gettime` FFI shim (no
//! libc crate dependency); elsewhere it falls back to monotonic wall time,
//! which is the best portable approximation and identical to the old
//! behavior.
//!
//! Invariant: a [`ServiceInstant`] is only meaningful on the thread that
//! created it — thread CPU clocks are per-thread by definition. The ledger
//! honors this: `GrantGuard::start_execution` and the settle on
//! finish/drop both run on the owning worker thread.
//!
//! The static-analysis gate enforces the discipline: a raw `Instant::now()`
//! or `.elapsed()` inside the ledger functions (see `quadra-analyze`'s
//! workspace config) is a `clock:raw-instant` / `clock:raw-elapsed` finding.

/// An opaque timestamp from the service clock (nanoseconds of CPU time the
/// calling thread has consumed). Deliberately *not* an `Instant` so
/// arithmetic cannot bypass this module, and only comparable on the thread
/// that produced it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ServiceInstant(u64);

/// Read the service clock on the current thread.
pub(crate) fn service_now() -> ServiceInstant {
    ServiceInstant(imp::thread_time_ns())
}

/// Whole microseconds of service (CPU) time this thread consumed since
/// `start`, saturating. `start` must come from [`service_now`] on the same
/// thread.
pub(crate) fn elapsed_us(start: ServiceInstant) -> u64 {
    imp::thread_time_ns().saturating_sub(start.0) / 1_000
}

#[cfg(target_os = "linux")]
mod imp {
    //! `clock_gettime(CLOCK_THREAD_CPUTIME_ID)` via a minimal FFI shim.

    use std::os::raw::{c_int, c_long};

    /// From `linux/time.h`; stable ABI across architectures.
    const CLOCK_THREAD_CPUTIME_ID: c_int = 3;

    /// Mirror of the kernel's `struct timespec` for the C ABI in use
    /// (`time_t` and `long` are both `c_long` on every Linux target Rust
    /// supports with this layout).
    #[repr(C)]
    struct Timespec {
        tv_sec: c_long,
        tv_nsec: c_long,
    }

    extern "C" {
        fn clock_gettime(clock_id: c_int, tp: *mut Timespec) -> c_int;
    }

    /// Nanoseconds of CPU time consumed by the calling thread.
    pub(super) fn thread_time_ns() -> u64 {
        let mut ts = Timespec { tv_sec: 0, tv_nsec: 0 };
        // Safety: `ts` is a valid, writable timespec for the duration of the
        // call; the clock id is a compile-time constant the kernel accepts.
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        if rc != 0 {
            // EINVAL can only mean the clock id is unsupported (pre-2.6
            // kernels); degrade to wall time rather than corrupt the ledger.
            return fallback_wall_ns();
        }
        (ts.tv_sec as u64).saturating_mul(1_000_000_000).saturating_add(ts.tv_nsec as u64)
    }

    fn fallback_wall_ns() -> u64 {
        super::wall::monotonic_ns()
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    //! Portable fallback: monotonic wall time (the pre-migration behavior).

    pub(super) fn thread_time_ns() -> u64 {
        super::wall::monotonic_ns()
    }
}

mod wall {
    //! Monotonic wall-clock nanoseconds against a process-global anchor,
    //! used only when per-thread CPU time is unavailable.

    use std::sync::OnceLock;
    use std::time::Instant;

    static ANCHOR: OnceLock<Instant> = OnceLock::new();

    #[cfg_attr(target_os = "linux", allow(dead_code))]
    pub(super) fn monotonic_ns() -> u64 {
        let anchor = ANCHOR.get_or_init(Instant::now);
        u64::try_from(anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic_nondecreasing() {
        let start = service_now();
        let a = elapsed_us(start);
        let b = elapsed_us(start);
        assert!(b >= a);
    }

    #[test]
    fn busy_work_accrues_service_time() {
        let start = service_now();
        // Burn enough CPU that even a coarse thread clock must advance.
        let mut acc = 0u64;
        while elapsed_us(start) < 2_000 {
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc);
        }
        assert!(elapsed_us(start) >= 2_000);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn sleeping_accrues_almost_no_service_time() {
        // The point of the migration: blocked/descheduled time is not billed.
        let start = service_now();
        std::thread::sleep(std::time::Duration::from_millis(60));
        let cpu_us = elapsed_us(start);
        assert!(cpu_us < 30_000, "a sleeping thread consumed {cpu_us}us of CPU time");
    }
}
