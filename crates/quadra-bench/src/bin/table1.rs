//! Table 1 — the quadratic-neuron taxonomy: formula, computation complexity,
//! parameter complexity and the practical issues (P1–P4) of every design.
//!
//! Regenerate with `cargo run -p quadra-bench --release --bin table1`.

use quadra_bench::print_table;
use quadra_core::{DenseQuadraticNeuron, NeuronType};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 64usize;
    let mut rng = StdRng::seed_from_u64(0);
    let rows: Vec<Vec<String>> = NeuronType::ALL
        .iter()
        .map(|t| {
            let neuron = DenseQuadraticNeuron::new(*t, n, &mut rng);
            let issues: Vec<&str> = [
                ("P1", t.has_approximation_issue()),
                ("P2", t.has_complexity_issue()),
                ("P3", t.has_gradient_vanishing_issue()),
                ("P4", !t.is_library_friendly()),
            ]
            .iter()
            .filter(|(_, f)| *f)
            .map(|(n, _)| *n)
            .collect();
            vec![
                t.name().to_string(),
                t.formula().to_string(),
                format!("{} MACs", t.flop_count(n)),
                format!("{} params", t.param_count(n)),
                format!("{} (instantiated)", neuron.param_count()),
                if issues.is_empty() { "-".to_string() } else { issues.join(" ") },
                t.reference().to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("Table 1: quadratic neuron taxonomy (input size n = {})", n),
        &[
            "Type",
            "Neuron format",
            "Computation",
            "Model structure",
            "Verified params",
            "Issues",
            "Reference",
        ],
        &rows,
    );
    println!("\nNote: 'Verified params' instantiates each neuron and counts its weight tensors,");
    println!("confirming the closed-form complexity column against real parameter storage.");
}
