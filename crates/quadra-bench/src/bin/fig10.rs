//! Figure 10 — activation-attention visualisation: the first convolution layer
//! of a first-order CNN responds to edges while a quadratic layer responds to
//! whole object regions.
//!
//! Regenerate with `cargo run -p quadra-bench --release --bin fig10`.

use quadra_core::{activation_attention, edge_vs_region_score, render_heatmap, NeuronType, QuadraticConv2d};
use quadra_data::ShapeImageDataset;
use quadra_nn::{Conv2d, Layer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let data = ShapeImageDataset::generate(64, 4, 16, 3, 0.02, 5);
    let mut rng = StdRng::seed_from_u64(1);
    let mut first_order = Conv2d::conv3x3(3, 8, &mut rng);
    let mut quadratic = QuadraticConv2d::conv3x3(NeuronType::Ours, 3, 8, &mut rng);

    println!("=== Figure 10: activation attention of the first layer ===");
    let mut edge_scores = (0.0f32, 0.0f32);
    let mut region_scores = (0.0f32, 0.0f32);
    let samples = [0usize, 1, 2];
    for &s in &samples {
        let img = data.images.narrow(0, s, 1).unwrap();
        let fo_act = first_order.forward(&img, false);
        let qd_act = quadratic.forward(&img, false);
        let fo_map = activation_attention(&fo_act, 0);
        let qd_map = activation_attention(&qd_act, 0);
        let (fe, fr) = edge_vs_region_score(&fo_map);
        let (qe, qr) = edge_vs_region_score(&qd_map);
        edge_scores.0 += fe;
        edge_scores.1 += qe;
        region_scores.0 += fr;
        region_scores.1 += qr;
        println!("\n--- sample {} (class {}) ---", s, data.labels.as_slice()[s]);
        println!("first-order conv attention:\n{}", render_heatmap(&fo_map));
        println!("quadratic (Ours) conv attention:\n{}", render_heatmap(&qd_map));
    }
    let n = samples.len() as f32;
    println!("\nAveraged scores over {} samples:", samples.len());
    println!(
        "  first-order: edge score {:.3}, region coverage {:.3}",
        edge_scores.0 / n,
        region_scores.0 / n
    );
    println!(
        "  quadratic  : edge score {:.3}, region coverage {:.3}",
        edge_scores.1 / n,
        region_scores.1 / n
    );
    println!("\nShape to reproduce: the quadratic layer's attention covers more of the object");
    println!("region, while the first-order layer concentrates on edges/boundaries.");
}
