//! Blocked, register-tiled GEMM kernels — the workhorse under `matmul`,
//! `bmm` and the im2col convolution paths.
//!
//! The design follows the classic BLIS/GotoBLAS decomposition, scaled down to
//! what auto-vectorisation can exploit without intrinsics:
//!
//! * the `k` dimension is split into panels of at most `KC` so one packed
//!   panel of `B` stays cache-resident while it is swept,
//! * rows of `C` are processed in blocks of `MC`; each block packs its slice
//!   of `A` into `[kc][MR]` micro-panels (column-major within the panel),
//! * `B` panels are packed into `[kc][NR]` micro-panels, zero-padded at the
//!   edges so the micro-kernel never branches on tile size,
//! * an `MR×NR` micro-kernel keeps a `[[f32; NR]; MR]` accumulator block in
//!   registers: per `k` step it loads one `NR`-wide row of `B`, broadcasts
//!   `MR` values of `A`, and issues `MR` fused multiply-add rows that the
//!   compiler vectorises.
//!
//! Transposed operands are handled by the packing step (the micro-panels are
//! read with swapped strides), so `gemm_nt` / `gemm_tn` never materialise a
//! transposed copy — this is what makes the conv backward passes
//! transpose-free.
//!
//! Unlike the previous naive kernel there is no `a == 0.0` skip: IEEE-754
//! requires `0.0 * inf` and `0.0 * NaN` to produce NaN, so zero inputs must
//! still participate (and with blocking the branch was a pessimisation
//! anyway).

use rayon::prelude::*;
use std::cell::RefCell;

thread_local! {
    /// Reusable packing buffer for `B` panels. GEMM is called thousands of
    /// times per training epoch; reusing the scratch avoids a fresh ~256 KiB
    /// zeroed allocation (and its page faults) on every call. The pack
    /// routines overwrite every slot they expose, so stale contents are fine.
    static B_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Reusable packing buffer for `A` row-block panels (separate cell from
    /// [`B_SCRATCH`] so the parallel path can borrow both without conflict
    /// when the closure runs inline on the calling thread).
    static A_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Borrow a thread-local scratch buffer grown to at least `len` floats.
// quadra-analyze: allow(panic_path:indexing, the buffer is resized to at least len on the line above the slice)
fn with_scratch<R>(
    cell: &'static std::thread::LocalKey<RefCell<Vec<f32>>>,
    len: usize,
    f: impl FnOnce(&mut [f32]) -> R,
) -> R {
    cell.with(|c| {
        let mut buf = c.borrow_mut();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        f(&mut buf[..len])
    })
}

/// Micro-kernel tile height (rows of `C` accumulated in registers).
pub const MR: usize = 8;
/// Micro-kernel tile width (columns of `C` accumulated in registers).
pub const NR: usize = 8;
/// `k`-panel depth: one packed `B` panel holds at most `KC * n` floats.
const KC: usize = 256;
/// Row-block height: rows of `C` handled per (possibly parallel) block.
const MC: usize = 128;
/// Below this many multiply-adds the packed path costs more than it saves and
/// the dispatcher falls back to a plain triple loop.
const SMALL_GEMM_FLOPS: usize = 32 * 32 * 32;
/// Minimum multiply-adds before the parallel row-block path is worth the
/// task dispatch: the persistent work-stealing pool no longer spawns OS
/// threads per call, but queueing and latch traffic still cost more than a
/// just-over-[`SMALL_GEMM_FLOPS`] matmul saves.
const PAR_MIN_FLOPS: usize = 1 << 18;

/// A strided read-only view of a row-major operand: element `(i, j)` of the
/// *logical* (post-transpose) matrix lives at `data[i * rs + j * cs]`.
#[derive(Clone, Copy)]
struct View<'a> {
    data: &'a [f32],
    rs: usize,
    cs: usize,
}

impl View<'_> {
    #[inline(always)]
    // quadra-analyze: allow(panic_path:indexing, the view constructors bound data to exactly rows*cols and callers stay inside the logical extents; a bounds branch here would defeat vectorisation)
    fn at(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.rs + j * self.cs]
    }
}

/// Pack rows `pc..pc+kc` of the logical `B` into `[kc][NR]` micro-panels,
/// zero-padding the last panel when `n` is not a multiple of `NR`.
///
/// Specialised for the two layouts that actually occur — contiguous rows
/// (`cs == 1`, plain `B`) and contiguous columns (`rs == 1`, stored-transposed
/// `B`) — so the copy loops carry no per-element stride arithmetic.
// quadra-analyze: allow(panic_path:indexing, panel extents are derived from kc/n exactly as the caller sized bpack; checked indexing in the pack loop costs ~15% of total GEMM time)
fn pack_b(bpack: &mut [f32], b: View<'_>, pc: usize, kc: usize, n: usize) {
    let nb = n.div_ceil(NR);
    for jb in 0..nb {
        let j0 = jb * NR;
        let nr = NR.min(n - j0);
        let panel = &mut bpack[jb * kc * NR..(jb + 1) * kc * NR];
        if nr < NR {
            panel.fill(0.0);
        }
        if b.cs == 1 {
            for p in 0..kc {
                let src = &b.data[(pc + p) * b.rs + j0..][..nr];
                panel[p * NR..p * NR + nr].copy_from_slice(src);
            }
        } else if b.rs == 1 {
            for jj in 0..nr {
                let src = &b.data[(j0 + jj) * b.cs + pc..][..kc];
                for (p, &v) in src.iter().enumerate() {
                    panel[p * NR + jj] = v;
                }
            }
        } else {
            for p in 0..kc {
                for jj in 0..nr {
                    panel[p * NR + jj] = b.at(pc + p, j0 + jj);
                }
            }
        }
    }
}

/// Pack rows `i0..i0+mc` (columns `pc..pc+kc`) of the logical `A` into
/// `[kc][MR]` micro-panels (column-major inside each panel), zero-padded.
/// Specialised like [`pack_b`] for the contiguous-row / contiguous-column
/// layouts.
// quadra-analyze: allow(panic_path:indexing, panel extents are derived from kc/mc exactly as the caller sized apack; checked indexing in the pack loop costs ~15% of total GEMM time)
fn pack_a(apack: &mut [f32], a: View<'_>, pc: usize, kc: usize, i0: usize, mc: usize) {
    let mb = mc.div_ceil(MR);
    for ib in 0..mb {
        let r0 = ib * MR;
        let mr = MR.min(mc - r0);
        let panel = &mut apack[ib * kc * MR..(ib + 1) * kc * MR];
        if mr < MR {
            panel.fill(0.0);
        }
        if a.rs == 1 {
            for p in 0..kc {
                let src = &a.data[(pc + p) * a.cs + i0 + r0..][..mr];
                panel[p * MR..p * MR + mr].copy_from_slice(src);
            }
        } else if a.cs == 1 {
            for ii in 0..mr {
                let src = &a.data[(i0 + r0 + ii) * a.rs + pc..][..kc];
                for (p, &v) in src.iter().enumerate() {
                    panel[p * MR + ii] = v;
                }
            }
        } else {
            for p in 0..kc {
                for ii in 0..mr {
                    panel[p * MR + ii] = a.at(i0 + r0 + ii, pc + p);
                }
            }
        }
    }
}

/// `MR×NR` register-tiled micro-kernel: accumulate one tile of
/// `A_panel · B_panel` into `c` (a row block of the output, row stride `n`).
#[inline]
#[allow(clippy::too_many_arguments)] // flat scalars keep the hot call zero-cost
                                     // quadra-analyze: allow(panic_path, the fixed-extent indexing and try_into expects are the exact shape LLVM turns into an 8-register FMA block; panel sizes are established by the pack routines)
fn micro_kernel(
    c: &mut [f32],
    n: usize,
    apanel: &[f32],
    bpanel: &[f32],
    kc: usize,
    row0: usize,
    col0: usize,
    mr: usize,
    nr: usize,
) {
    // Plain index loops over fixed-size array refs: this exact shape is what
    // LLVM turns into an 8-register FMA block (the iterator-zip equivalent
    // spills the accumulators and runs ~3× slower).
    let mut acc = [[0.0f32; NR]; MR];
    debug_assert!(apanel.len() == kc * MR && bpanel.len() == kc * NR);
    for (ach, bch) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)) {
        let av: &[f32; MR] = ach.try_into().expect("panel width");
        let bv: &[f32; NR] = bch.try_into().expect("panel width");
        for i in 0..MR {
            for j in 0..NR {
                acc[i][j] += av[i] * bv[j];
            }
        }
    }
    if mr == MR && nr == NR {
        // Full tile: fixed-extent write-back the compiler can vectorise.
        for (ii, accrow) in acc.iter().enumerate() {
            let base = (row0 + ii) * n + col0;
            let crow: &mut [f32; NR] = (&mut c[base..base + NR]).try_into().expect("row width");
            for j in 0..NR {
                crow[j] += accrow[j];
            }
        }
    } else {
        for (ii, accrow) in acc.iter().enumerate().take(mr) {
            let base = (row0 + ii) * n + col0;
            for (cv, &av) in c[base..base + nr].iter_mut().zip(accrow.iter()) {
                *cv += av;
            }
        }
    }
}

/// Sweep every micro-tile of one packed row block.
// quadra-analyze: allow(panic_path:indexing, panel slicing mirrors the pack routines' layout; mb/nb are div_ceil of the same extents)
fn block_rows(c: &mut [f32], n: usize, kc: usize, mc: usize, apack: &[f32], bpack: &[f32]) {
    let mb = mc.div_ceil(MR);
    let nb = n.div_ceil(NR);
    for ib in 0..mb {
        let apanel = &apack[ib * kc * MR..(ib + 1) * kc * MR];
        let mr = MR.min(mc - ib * MR);
        for jb in 0..nb {
            let bpanel = &bpack[jb * kc * NR..(jb + 1) * kc * NR];
            let nr = NR.min(n - jb * NR);
            micro_kernel(c, n, apanel, bpanel, kc, ib * MR, jb * NR, mr, nr);
        }
    }
}

/// Cache-blocked driver: accumulate `op(A) · op(B)` into `c[m×n]`.
///
/// When `parallel` is set and there is more than one row block, row blocks are
/// distributed over threads; the shared packed `B` panel is read-only.
// quadra-analyze: allow(panic_path:indexing, the public entry points size c to m*n and the scratch closures size their buffers from the same extents)
fn gemm_blocked_views(c: &mut [f32], m: usize, k: usize, n: usize, a: View<'_>, b: View<'_>, parallel: bool) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let c = &mut c[..m * n];
    let nb = n.div_ceil(NR);
    with_scratch(&B_SCRATCH, KC.min(k) * nb * NR, |bpack| {
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            let bpanel = &mut bpack[..kc * nb * NR];
            pack_b(bpanel, b, pc, kc, n);
            let bpanel = &bpanel[..];
            // Parallel row-block height: aim for ~2 stealable blocks per pool
            // thread (rounded down to a multiple of MR) so the work-stealing
            // pool can rebalance under skew, capped at MC so the packed `A`
            // block stays cache-sized. `current_num_threads` is the single
            // source of truth for pool size (honors QUADRA_NUM_THREADS).
            // Block height never changes results — each output element is
            // computed entirely within one block, so thread count only
            // affects scheduling, not numerics.
            let workers = rayon::current_num_threads();
            let bh = (m / (2 * workers).max(1)).clamp(MR, MC) / MR * MR;
            if parallel && m > bh && m.saturating_mul(k).saturating_mul(n) >= PAR_MIN_FLOPS {
                c.par_chunks_mut(bh * n).enumerate().for_each(|(blk, chunk)| {
                    let i0 = blk * bh;
                    let mc = bh.min(m - i0);
                    // Worker threads have their own A_SCRATCH, so this nests
                    // safely even when the closure runs inline on this thread.
                    with_scratch(&A_SCRATCH, mc.div_ceil(MR) * kc * MR, |apack| {
                        pack_a(apack, a, pc, kc, i0, mc);
                        block_rows(chunk, n, kc, mc, apack, bpanel);
                    });
                });
            } else {
                with_scratch(&A_SCRATCH, MC.min(m).div_ceil(MR) * kc * MR, |apack| {
                    for i0 in (0..m).step_by(MC) {
                        let mc = MC.min(m - i0);
                        let ap = &mut apack[..mc.div_ceil(MR) * kc * MR];
                        pack_a(ap, a, pc, kc, i0, mc);
                        block_rows(&mut c[i0 * n..(i0 + mc) * n], n, kc, mc, ap, bpanel);
                    }
                });
            }
            pc += kc;
        }
    });
}

/// Plain triple loop (no zero-skip): accumulate `op(A) · op(B)` into `c`.
/// Used below the blocking threshold and as the reference kernel in tests.
// quadra-analyze: allow(panic_path:indexing, row slices are bounded by the m*n extent the entry points allocate; bounds checks in the inner loop halve throughput)
fn gemm_naive_views(c: &mut [f32], m: usize, k: usize, n: usize, a: View<'_>, b: View<'_>) {
    for i in 0..m {
        let crow = &mut c[i * n..(i + 1) * n];
        for p in 0..k {
            let aval = a.at(i, p);
            let bbase = p * b.rs;
            if b.cs == 1 {
                for (cv, bv) in crow.iter_mut().zip(&b.data[bbase..bbase + n]) {
                    *cv += aval * bv;
                }
            } else {
                for (j, cv) in crow.iter_mut().enumerate() {
                    *cv += aval * b.data[bbase + j * b.cs];
                }
            }
        }
    }
}

fn dispatch(c: &mut [f32], m: usize, k: usize, n: usize, a: View<'_>, b: View<'_>, parallel: bool) {
    if m.saturating_mul(k).saturating_mul(n) <= SMALL_GEMM_FLOPS {
        gemm_naive_views(c, m, k, n, a, b);
    } else {
        gemm_blocked_views(c, m, k, n, a, b, parallel);
    }
}

#[inline]
// quadra-analyze: allow(panic_path:indexing, the slice is the operand-length contract: a shorter input must fail loudly here, not corrupt the kernel)
fn view_nn_a(a: &[f32], m: usize, k: usize) -> View<'_> {
    View { data: &a[..m * k], rs: k, cs: 1 }
}

#[inline]
// quadra-analyze: allow(panic_path:indexing, the slice is the operand-length contract: a shorter input must fail loudly here, not corrupt the kernel)
fn view_tn_a(a: &[f32], m: usize, k: usize) -> View<'_> {
    // stored [k, m], read as the logical m×k transpose
    View { data: &a[..k * m], rs: 1, cs: m }
}

#[inline]
// quadra-analyze: allow(panic_path:indexing, the slice is the operand-length contract: a shorter input must fail loudly here, not corrupt the kernel)
fn view_nn_b(b: &[f32], k: usize, n: usize) -> View<'_> {
    View { data: &b[..k * n], rs: n, cs: 1 }
}

#[inline]
// quadra-analyze: allow(panic_path:indexing, the slice is the operand-length contract: a shorter input must fail loudly here, not corrupt the kernel)
fn view_nt_b(b: &[f32], k: usize, n: usize) -> View<'_> {
    // stored [n, k], read as the logical k×n transpose
    View { data: &b[..n * k], rs: 1, cs: k }
}

/// `C[m×n] = A[m×k] · B[k×n]`, blocked and (for large `m`) row-parallel.
pub fn gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    dispatch(&mut c, m, k, n, view_nn_a(a, m, k), view_nn_b(b, k, n), true);
    c
}

/// `C[m×n] = A[m×k] · Bᵀ` where `b` is stored row-major as `[n, k]`.
pub fn gemm_nt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    dispatch(&mut c, m, k, n, view_nn_a(a, m, k), view_nt_b(b, k, n), true);
    c
}

/// `C[m×n] = Aᵀ · B[k×n]` where `a` is stored row-major as `[k, m]`.
pub fn gemm_tn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    dispatch(&mut c, m, k, n, view_tn_a(a, m, k), view_nn_b(b, k, n), true);
    c
}

/// Accumulate `A[m×k] · B[k×n]` into `c[m×n]` in place.
///
/// The `*_into` variants take an explicit `parallel` flag: callers inside
/// already-parallel loops (per-sample conv, per-batch `bmm`) pass `false` to
/// avoid oversubscribing, but flip it to `true` when their outer loop has a
/// single chunk (batch-size-1 inference) so the row-block parallelism is not
/// lost. They *accumulate*, so `c` must be pre-zeroed for a plain product and
/// repeated calls sum naturally (used by the conv weight reduce).
pub fn gemm_into(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize, parallel: bool) {
    assert!(c.len() >= m * n, "gemm_into: output buffer too small");
    dispatch(c, m, k, n, view_nn_a(a, m, k), view_nn_b(b, k, n), parallel);
}

/// Accumulate `A[m×k] · Bᵀ` (with `b` stored `[n, k]`) into `c[m×n]` in place.
pub fn gemm_nt_into(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize, parallel: bool) {
    assert!(c.len() >= m * n, "gemm_nt_into: output buffer too small");
    dispatch(c, m, k, n, view_nn_a(a, m, k), view_nt_b(b, k, n), parallel);
}

/// Accumulate `Aᵀ · B[k×n]` (with `a` stored `[k, m]`) into `c[m×n]` in place.
pub fn gemm_tn_into(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize, parallel: bool) {
    assert!(c.len() >= m * n, "gemm_tn_into: output buffer too small");
    dispatch(c, m, k, n, view_tn_a(a, m, k), view_nn_b(b, k, n), parallel);
}

/// `C = A · B` through the blocked path regardless of size, single-threaded —
/// the bench / test hook for measuring the kernel itself (the parallel layer
/// would otherwise be conflated with the blocking win on multicore hosts).
pub fn gemm_blocked(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    gemm_blocked_views(&mut c, m, k, n, view_nn_a(a, m, k), view_nn_b(b, k, n), false);
    c
}

/// `C = A · Bᵀ` through the blocked path regardless of size, single-threaded
/// (bench / test hook, see [`gemm_blocked`]).
pub fn gemm_nt_blocked(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    gemm_blocked_views(&mut c, m, k, n, view_nn_a(a, m, k), view_nt_b(b, k, n), false);
    c
}

/// `C = Aᵀ · B` through the blocked path regardless of size, single-threaded
/// (bench / test hook, see [`gemm_blocked`]).
pub fn gemm_tn_blocked(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    gemm_blocked_views(&mut c, m, k, n, view_tn_a(a, m, k), view_nn_b(b, k, n), false);
    c
}

/// Reference triple-loop `C = A · B` (no blocking, no zero-skip). Kept public
/// so benches and property tests can cross-check the optimised kernels.
pub fn gemm_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    gemm_naive_views(&mut c, m, k, n, view_nn_a(a, m, k), view_nn_b(b, k, n));
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn randvec(len: usize, seed: u64) -> Vec<f32> {
        let t = crate::tensor::Tensor::randn(&[len.max(1)], 0.0, 1.0, &mut StdRng::seed_from_u64(seed));
        t.as_slice()[..len].to_vec()
    }

    fn transpose(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                out[c * rows + r] = src[r * cols + c];
            }
        }
        out
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((x - y).abs() <= tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn blocked_matches_naive_across_shapes() {
        // Edge sizes around the MR/NR/MC/KC boundaries, incl. 0 and 1.
        for &(m, k, n) in &[
            (0, 3, 4),
            (3, 0, 4),
            (3, 4, 0),
            (1, 1, 1),
            (7, 9, 5),
            (8, 8, 8),
            (9, 17, 10),
            (33, 70, 41),
            (65, 300, 23),
            (70, 64, 72),
            (300, 257, 130), // > 2 MC row blocks, > 1 KC k-panel, odd edges
        ] {
            let a = randvec(m * k, 1 + (m * 1000 + k * 10 + n) as u64);
            let b = randvec(k * n, 2 + (m * 1000 + k * 10 + n) as u64);
            let fast = gemm_blocked(&a, &b, m, k, n);
            let slow = gemm_naive(&a, &b, m, k, n);
            assert_close(&fast, &slow, 1e-4 * (k.max(1) as f32));
        }
    }

    #[test]
    fn nt_and_tn_match_transpose_then_gemm() {
        for &(m, k, n) in &[(5, 7, 6), (16, 40, 9), (33, 65, 34)] {
            let a = randvec(m * k, 7);
            let bt = randvec(n * k, 8); // stored [n, k]
            let b = transpose(&bt, n, k); // [k, n]
            assert_close(&gemm_nt(&a, &bt, m, k, n), &gemm_naive(&a, &b, m, k, n), 1e-3);
            assert_close(&gemm_nt_blocked(&a, &bt, m, k, n), &gemm_naive(&a, &b, m, k, n), 1e-3);

            let at = randvec(k * m, 9); // stored [k, m]
            let a2 = transpose(&at, k, m); // [m, k]
            let b2 = randvec(k * n, 10);
            assert_close(&gemm_tn(&at, &b2, m, k, n), &gemm_naive(&a2, &b2, m, k, n), 1e-3);
            assert_close(&gemm_tn_blocked(&at, &b2, m, k, n), &gemm_naive(&a2, &b2, m, k, n), 1e-3);
        }
    }

    #[test]
    fn into_variants_accumulate() {
        let a = randvec(6, 11);
        let b = randvec(6, 12);
        let mut c = vec![1.0f32; 4];
        gemm_into(&mut c, &a, &b, 2, 3, 2, false);
        let plain = gemm_naive(&a, &b, 2, 3, 2);
        for (cv, pv) in c.iter().zip(plain.iter()) {
            assert!((cv - (pv + 1.0)).abs() < 1e-5);
        }
    }

    #[test]
    fn non_finite_values_propagate() {
        // 0 * inf must produce NaN in the output — no zero-skip fast path.
        let a = [0.0f32, 0.0];
        let b = [f32::INFINITY, f32::NAN, 1.0, 2.0];
        for c in [gemm(&a, &b, 1, 2, 2), gemm_blocked(&a, &b, 1, 2, 2), gemm_naive(&a, &b, 1, 2, 2)] {
            assert!(c[0].is_nan(), "0·inf must poison the output, got {}", c[0]);
            assert!(c[1].is_nan(), "0·NaN must poison the output, got {}", c[1]);
        }
    }
}
