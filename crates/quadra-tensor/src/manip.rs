//! Shape manipulation: reshape, permute/transpose, concatenation, slicing,
//! spatial padding and nearest-neighbour up-sampling.

use crate::error::{Result, TensorError};
use crate::shape::{check_axis, numel, strides_for, unravel_index};
use crate::tensor::Tensor;

impl Tensor {
    /// Reinterpret the tensor with a new shape containing the same number of elements.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor> {
        if numel(shape) != self.numel() {
            return Err(TensorError::InvalidReshape { from: self.shape().to_vec(), to: shape.to_vec() });
        }
        Tensor::from_vec(self.as_slice().to_vec(), shape)
    }

    /// Flatten to a rank-1 tensor.
    pub fn flatten(&self) -> Tensor {
        Tensor::from_vec(self.as_slice().to_vec(), &[self.numel()]).expect("same element count")
    }

    /// Flatten all axes after the first into one: `[n, ...] -> [n, rest]`.
    pub fn flatten_batch(&self) -> Tensor {
        let n = if self.ndim() == 0 { 1 } else { self.shape()[0] };
        let rest = self.numel().checked_div(n).unwrap_or(0);
        Tensor::from_vec(self.as_slice().to_vec(), &[n, rest]).expect("same element count")
    }

    /// Insert a size-1 axis at position `axis`.
    pub fn unsqueeze(&self, axis: usize) -> Result<Tensor> {
        if axis > self.ndim() {
            return Err(TensorError::AxisOutOfRange { axis, ndim: self.ndim() + 1 });
        }
        let mut shape = self.shape().to_vec();
        shape.insert(axis, 1);
        self.reshape(&shape)
    }

    /// Remove a size-1 axis at position `axis`.
    pub fn squeeze(&self, axis: usize) -> Result<Tensor> {
        check_axis(axis, self.ndim())?;
        if self.shape()[axis] != 1 {
            return Err(TensorError::InvalidArgument {
                msg: format!("cannot squeeze axis {} with extent {}", axis, self.shape()[axis]),
            });
        }
        let mut shape = self.shape().to_vec();
        shape.remove(axis);
        self.reshape(&shape)
    }

    /// Permute the axes according to `perm` (a permutation of `0..ndim`).
    pub fn permute(&self, perm: &[usize]) -> Result<Tensor> {
        if perm.len() != self.ndim() {
            return Err(TensorError::InvalidArgument {
                msg: format!("permutation {:?} does not match rank {}", perm, self.ndim()),
            });
        }
        let mut seen = vec![false; self.ndim()];
        for &p in perm {
            check_axis(p, self.ndim())?;
            if seen[p] {
                return Err(TensorError::InvalidArgument {
                    msg: format!("duplicate axis {} in permutation", p),
                });
            }
            seen[p] = true;
        }
        let in_shape = self.shape();
        let in_strides = strides_for(in_shape);
        let out_shape: Vec<usize> = perm.iter().map(|&p| in_shape[p]).collect();
        let src = self.as_slice();
        let n = self.numel();
        let mut data = Vec::with_capacity(n);
        for flat in 0..n {
            let out_coords = unravel_index(flat, &out_shape);
            let mut off = 0usize;
            for (i, &p) in perm.iter().enumerate() {
                off += out_coords[i] * in_strides[p];
            }
            data.push(src[off]);
        }
        Tensor::from_vec(data, &out_shape)
    }

    /// Transpose a rank-2 tensor.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.ndim() != 2 {
            return Err(TensorError::RankMismatch { op: "transpose", expected: 2, actual: self.ndim() });
        }
        let (m, n) = (self.shape()[0], self.shape()[1]);
        let src = self.as_slice();
        let mut data = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                data[j * m + i] = src[i * n + j];
            }
        }
        Tensor::from_vec(data, &[n, m])
    }

    /// Concatenate tensors along `axis`. All other axes must match.
    pub fn concat(tensors: &[&Tensor], axis: usize) -> Result<Tensor> {
        if tensors.is_empty() {
            return Err(TensorError::InvalidArgument { msg: "concat of zero tensors".into() });
        }
        let first = tensors[0];
        check_axis(axis, first.ndim())?;
        let mut cat_extent = 0usize;
        for t in tensors {
            if t.ndim() != first.ndim() {
                return Err(TensorError::IncompatibleShapes {
                    op: "concat",
                    lhs: first.shape().to_vec(),
                    rhs: t.shape().to_vec(),
                });
            }
            for ax in 0..first.ndim() {
                if ax != axis && t.shape()[ax] != first.shape()[ax] {
                    return Err(TensorError::IncompatibleShapes {
                        op: "concat",
                        lhs: first.shape().to_vec(),
                        rhs: t.shape().to_vec(),
                    });
                }
            }
            cat_extent += t.shape()[axis];
        }
        let mut out_shape = first.shape().to_vec();
        out_shape[axis] = cat_extent;

        let outer: usize = first.shape()[..axis].iter().product();
        let inner: usize = first.shape()[axis + 1..].iter().product();
        let mut data = Vec::with_capacity(numel(&out_shape));
        for o in 0..outer {
            for t in tensors {
                let ext = t.shape()[axis];
                let src = t.as_slice();
                let start = o * ext * inner;
                data.extend_from_slice(&src[start..start + ext * inner]);
            }
        }
        Tensor::from_vec(data, &out_shape)
    }

    /// Stack rank-`k` tensors of identical shape into a rank-`k+1` tensor along a new axis 0.
    pub fn stack(tensors: &[&Tensor]) -> Result<Tensor> {
        if tensors.is_empty() {
            return Err(TensorError::InvalidArgument { msg: "stack of zero tensors".into() });
        }
        let shape = tensors[0].shape().to_vec();
        let mut data = Vec::with_capacity(tensors.len() * tensors[0].numel());
        for t in tensors {
            if t.shape() != shape.as_slice() {
                return Err(TensorError::IncompatibleShapes {
                    op: "stack",
                    lhs: shape.clone(),
                    rhs: t.shape().to_vec(),
                });
            }
            data.extend_from_slice(t.as_slice());
        }
        let mut out_shape = vec![tensors.len()];
        out_shape.extend_from_slice(&shape);
        Tensor::from_vec(data, &out_shape)
    }

    /// Take a contiguous slice `[start, start+len)` along `axis`.
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Result<Tensor> {
        check_axis(axis, self.ndim())?;
        let extent = self.shape()[axis];
        if start + len > extent {
            return Err(TensorError::InvalidArgument {
                msg: format!(
                    "narrow [{}, {}) out of range for axis {} with extent {}",
                    start,
                    start + len,
                    axis,
                    extent
                ),
            });
        }
        let outer: usize = self.shape()[..axis].iter().product();
        let inner: usize = self.shape()[axis + 1..].iter().product();
        let src = self.as_slice();
        let mut out_shape = self.shape().to_vec();
        out_shape[axis] = len;
        let mut data = Vec::with_capacity(numel(&out_shape));
        for o in 0..outer {
            let base = (o * extent + start) * inner;
            data.extend_from_slice(&src[base..base + len * inner]);
        }
        Tensor::from_vec(data, &out_shape)
    }

    /// Select a single index along `axis`, removing that axis.
    pub fn index_axis(&self, axis: usize, index: usize) -> Result<Tensor> {
        let narrowed = self.narrow(axis, index, 1)?;
        narrowed.squeeze(axis)
    }

    /// Select rows (along axis 0) by index, producing a tensor with the same
    /// trailing shape. Used for mini-batch gathering.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Tensor> {
        if self.ndim() == 0 {
            return Err(TensorError::RankMismatch { op: "select_rows", expected: 1, actual: 0 });
        }
        let rows = self.shape()[0];
        let inner: usize = self.shape()[1..].iter().product();
        let src = self.as_slice();
        let mut data = Vec::with_capacity(indices.len() * inner);
        for &i in indices {
            if i >= rows {
                return Err(TensorError::InvalidArgument {
                    msg: format!("row index {} out of range ({} rows)", i, rows),
                });
            }
            data.extend_from_slice(&src[i * inner..(i + 1) * inner]);
        }
        let mut out_shape = self.shape().to_vec();
        out_shape[0] = indices.len();
        Tensor::from_vec(data, &out_shape)
    }

    /// Zero-pad the two trailing spatial axes of an NCHW tensor by `pad` on every side.
    pub fn pad2d(&self, pad: usize) -> Result<Tensor> {
        if self.ndim() != 4 {
            return Err(TensorError::RankMismatch { op: "pad2d", expected: 4, actual: self.ndim() });
        }
        if pad == 0 {
            return Ok(self.clone());
        }
        let (n, c, h, w) = (self.shape()[0], self.shape()[1], self.shape()[2], self.shape()[3]);
        let (oh, ow) = (h + 2 * pad, w + 2 * pad);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let src = self.as_slice();
        let dst = out.as_mut_slice();
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..h {
                    let src_base = ((ni * c + ci) * h + hi) * w;
                    let dst_base = ((ni * c + ci) * oh + hi + pad) * ow + pad;
                    dst[dst_base..dst_base + w].copy_from_slice(&src[src_base..src_base + w]);
                }
            }
        }
        Ok(out)
    }

    /// Nearest-neighbour up-sampling of an NCHW tensor by an integer factor.
    ///
    /// Used by the GAN generator to grow spatial resolution between quadratic
    /// convolution stages.
    pub fn upsample_nearest2d(&self, factor: usize) -> Result<Tensor> {
        if self.ndim() != 4 {
            return Err(TensorError::RankMismatch {
                op: "upsample_nearest2d",
                expected: 4,
                actual: self.ndim(),
            });
        }
        if factor == 0 {
            return Err(TensorError::InvalidArgument { msg: "upsample factor must be >= 1".into() });
        }
        let (n, c, h, w) = (self.shape()[0], self.shape()[1], self.shape()[2], self.shape()[3]);
        let (oh, ow) = (h * factor, w * factor);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let src = self.as_slice();
        let dst = out.as_mut_slice();
        for ni in 0..n {
            for ci in 0..c {
                for ohi in 0..oh {
                    let hi = ohi / factor;
                    for owi in 0..ow {
                        let wi = owi / factor;
                        dst[((ni * c + ci) * oh + ohi) * ow + owi] = src[((ni * c + ci) * h + hi) * w + wi];
                    }
                }
            }
        }
        Ok(out)
    }

    /// Average-pool the inverse of [`Tensor::upsample_nearest2d`]: down-sample an NCHW
    /// tensor by an integer factor averaging each `factor × factor` block.
    pub fn downsample_avg2d(&self, factor: usize) -> Result<Tensor> {
        if self.ndim() != 4 {
            return Err(TensorError::RankMismatch {
                op: "downsample_avg2d",
                expected: 4,
                actual: self.ndim(),
            });
        }
        if factor == 0 || self.shape()[2] % factor != 0 || self.shape()[3] % factor != 0 {
            return Err(TensorError::InvalidArgument {
                msg: format!("spatial dims {:?} not divisible by factor {}", &self.shape()[2..], factor),
            });
        }
        let (n, c, h, w) = (self.shape()[0], self.shape()[1], self.shape()[2], self.shape()[3]);
        let (oh, ow) = (h / factor, w / factor);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let src = self.as_slice();
        let dst = out.as_mut_slice();
        let norm = (factor * factor) as f32;
        for ni in 0..n {
            for ci in 0..c {
                for ohi in 0..oh {
                    for owi in 0..ow {
                        let mut s = 0.0;
                        for dh in 0..factor {
                            for dw in 0..factor {
                                s += src[((ni * c + ci) * h + ohi * factor + dh) * w + owi * factor + dw];
                            }
                        }
                        dst[((ni * c + ci) * oh + ohi) * ow + owi] = s / norm;
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn reshape_and_flatten() {
        let a = Tensor::arange(0.0, 1.0, 6);
        let b = a.reshape(&[2, 3]).unwrap();
        assert_eq!(b.shape(), &[2, 3]);
        assert_eq!(b.as_slice(), a.as_slice());
        assert!(a.reshape(&[4]).is_err());
        assert_eq!(b.flatten().shape(), &[6]);
        let c = Tensor::zeros(&[4, 2, 3]);
        assert_eq!(c.flatten_batch().shape(), &[4, 6]);
    }

    #[test]
    fn squeeze_unsqueeze() {
        let a = Tensor::zeros(&[2, 3]);
        let b = a.unsqueeze(1).unwrap();
        assert_eq!(b.shape(), &[2, 1, 3]);
        assert_eq!(b.squeeze(1).unwrap().shape(), &[2, 3]);
        assert!(b.squeeze(0).is_err());
        assert!(a.unsqueeze(5).is_err());
        assert!(a.squeeze(9).is_err());
    }

    #[test]
    fn transpose_2d() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = a.transpose().unwrap();
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert!(Tensor::zeros(&[2, 2, 2]).transpose().is_err());
    }

    #[test]
    fn permute_matches_transpose_and_roundtrips() {
        let a = Tensor::arange(0.0, 1.0, 24).reshape(&[2, 3, 4]).unwrap();
        let p = a.permute(&[2, 0, 1]).unwrap();
        assert_eq!(p.shape(), &[4, 2, 3]);
        assert_eq!(p.at(&[1, 0, 2]), a.at(&[0, 2, 1]));
        let back = p.permute(&[1, 2, 0]).unwrap();
        assert!(back.allclose(&a, 0.0));
        let m = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(m.permute(&[1, 0]).unwrap().as_slice(), m.transpose().unwrap().as_slice());
        assert!(a.permute(&[0, 1]).is_err());
        assert!(a.permute(&[0, 0, 1]).is_err());
        assert!(a.permute(&[0, 1, 5]).is_err());
    }

    #[test]
    fn concat_axis0_and_axis1() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0], &[1, 2]);
        let c = Tensor::concat(&[&a, &b], 0).unwrap();
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let d = t(&[7.0, 8.0], &[2, 1]);
        let e = Tensor::concat(&[&a, &d], 1).unwrap();
        assert_eq!(e.shape(), &[2, 3]);
        assert_eq!(e.as_slice(), &[1.0, 2.0, 7.0, 3.0, 4.0, 8.0]);
        assert!(Tensor::concat(&[], 0).is_err());
        assert!(Tensor::concat(&[&a, &d], 0).is_err());
        assert!(Tensor::concat(&[&a, &Tensor::zeros(&[2])], 0).is_err());
    }

    #[test]
    fn stack_adds_axis() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[3.0, 4.0], &[2]);
        let s = Tensor::stack(&[&a, &b]).unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert!(Tensor::stack(&[]).is_err());
        assert!(Tensor::stack(&[&a, &Tensor::zeros(&[3])]).is_err());
    }

    #[test]
    fn narrow_and_index() {
        let a = Tensor::arange(0.0, 1.0, 12).reshape(&[3, 4]).unwrap();
        let n = a.narrow(0, 1, 2).unwrap();
        assert_eq!(n.shape(), &[2, 4]);
        assert_eq!(n.at(&[0, 0]), 4.0);
        let m = a.narrow(1, 2, 2).unwrap();
        assert_eq!(m.shape(), &[3, 2]);
        assert_eq!(m.as_slice(), &[2.0, 3.0, 6.0, 7.0, 10.0, 11.0]);
        assert!(a.narrow(1, 3, 2).is_err());
        let row = a.index_axis(0, 2).unwrap();
        assert_eq!(row.shape(), &[4]);
        assert_eq!(row.as_slice(), &[8.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    fn select_rows_gathers() {
        let a = Tensor::arange(0.0, 1.0, 12).reshape(&[4, 3]).unwrap();
        let g = a.select_rows(&[3, 0, 3]).unwrap();
        assert_eq!(g.shape(), &[3, 3]);
        assert_eq!(g.as_slice(), &[9.0, 10.0, 11.0, 0.0, 1.0, 2.0, 9.0, 10.0, 11.0]);
        assert!(a.select_rows(&[4]).is_err());
        assert!(Tensor::scalar(0.0).select_rows(&[0]).is_err());
    }

    #[test]
    fn pad2d_places_input_in_center() {
        let a = Tensor::ones(&[1, 1, 2, 2]);
        let p = a.pad2d(1).unwrap();
        assert_eq!(p.shape(), &[1, 1, 4, 4]);
        assert_eq!(p.sum(), 4.0);
        assert_eq!(p.at(&[0, 0, 0, 0]), 0.0);
        assert_eq!(p.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(p.at(&[0, 0, 2, 2]), 1.0);
        assert!(Tensor::zeros(&[2, 2]).pad2d(1).is_err());
        // pad 0 is identity
        assert!(a.pad2d(0).unwrap().allclose(&a, 0.0));
    }

    #[test]
    fn upsample_and_downsample_roundtrip() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let u = a.upsample_nearest2d(2).unwrap();
        assert_eq!(u.shape(), &[1, 1, 4, 4]);
        assert_eq!(u.at(&[0, 0, 0, 1]), 1.0);
        assert_eq!(u.at(&[0, 0, 3, 3]), 4.0);
        let d = u.downsample_avg2d(2).unwrap();
        assert!(d.allclose(&a, 1e-6));
        assert!(a.upsample_nearest2d(0).is_err());
        assert!(Tensor::zeros(&[2, 2]).upsample_nearest2d(2).is_err());
        assert!(a.downsample_avg2d(3).is_err());
        assert!(Tensor::zeros(&[2, 2]).downsample_avg2d(2).is_err());
    }
}
