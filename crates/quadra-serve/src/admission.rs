//! The admission layer: one bounded queue per priority class per model.
//!
//! This replaces the PR-3 unbounded mpsc between clients and the batcher.
//! Clients admit requests synchronously — a full class queue rejects the
//! request immediately (the caller surfaces
//! [`ServeError::Overloaded`](crate::ServeError::Overloaded)) instead of
//! queueing forever — and the batcher drains the queues priority-first,
//! picking shape-compatible requests without head-of-line blocking across
//! shapes.

use crate::batcher::compat_key;
use crate::request::{PendingInfer, Priority};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Why a request could not be admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitRejection {
    /// The queue for the request's priority class is at capacity.
    Full,
    /// The endpoint is shutting down.
    Closed,
}

/// Outcome of a blocking pop.
pub(crate) enum PopResult {
    /// The highest-priority queued request.
    Request(PendingInfer),
    /// The queue is closed and fully drained.
    Closed,
}

/// Outcome of a compatible-take while a batch is open.
pub(crate) enum TakeResult {
    /// One or more shape-compatible requests, in class-then-FIFO order.
    Taken(Vec<PendingInfer>),
    /// Nothing compatible arrived before the deadline.
    TimedOut,
    /// The queue closed; flush the open batch and start draining.
    Closed,
}

struct QueueState {
    /// One FIFO per priority class, indexed by [`Priority::index`].
    classes: [VecDeque<PendingInfer>; Priority::COUNT],
    /// Queued samples per class (capacity is counted in samples).
    queued_samples: [usize; Priority::COUNT],
    closed: bool,
}

/// A model endpoint's bounded two-class admission queue.
pub(crate) struct AdmissionQueue {
    /// Per-class capacity in samples; `None` = unbounded (overload baseline).
    capacity: Option<usize>,
    state: Mutex<QueueState>,
    arrived: Condvar,
}

impl AdmissionQueue {
    pub fn new(capacity: Option<usize>) -> Self {
        AdmissionQueue {
            capacity,
            state: Mutex::new(QueueState {
                classes: [VecDeque::new(), VecDeque::new()],
                queued_samples: [0; Priority::COUNT],
                closed: false,
            }),
            arrived: Condvar::new(),
        }
    }

    /// Total samples currently queued across both classes.
    pub fn depth(&self) -> usize {
        let st = self.state.lock().unwrap();
        st.queued_samples.iter().sum()
    }

    /// Admit `req`, or reject it without queueing. A request larger than the
    /// whole capacity is still admitted when its class queue is empty —
    /// otherwise it could never be served at all (it then occupies the queue
    /// alone, exactly like an oversized batch occupies a worker alone).
    pub fn try_admit(&self, req: PendingInfer) -> Result<(), (PendingInfer, AdmitRejection)> {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err((req, AdmitRejection::Closed));
        }
        let class = req.priority.index();
        if let Some(cap) = self.capacity {
            let queued = st.queued_samples[class];
            if queued > 0 && queued + req.samples > cap {
                return Err((req, AdmitRejection::Full));
            }
        }
        st.queued_samples[class] += req.samples;
        st.classes[class].push_back(req);
        drop(st);
        self.arrived.notify_one();
        Ok(())
    }

    /// Mark the queue closed and wake every waiter. Already-queued requests
    /// remain poppable so the batcher can drain them into final batches.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.arrived.notify_all();
    }

    /// Block until a request is available (interactive first) or the queue is
    /// closed *and* empty.
    pub fn pop_blocking(&self) -> PopResult {
        let mut st = self.state.lock().unwrap();
        loop {
            for class in 0..Priority::COUNT {
                if let Some(req) = st.classes[class].pop_front() {
                    st.queued_samples[class] -= req.samples;
                    return PopResult::Request(req);
                }
            }
            if st.closed {
                return PopResult::Closed;
            }
            st = self.arrived.wait(st).unwrap();
        }
    }

    /// Remove queued requests compatible with `key` (interactive class first,
    /// FIFO within a class) totalling at most `max_samples`. Blocks until at
    /// least one is found, the `deadline` passes, or the queue closes.
    ///
    /// Incompatible requests are left in place — they seed the *next* batch —
    /// and compatible requests too large for the remaining sample budget are
    /// skipped (they stay queued in order).
    pub fn take_compatible(
        &self,
        key: &[usize],
        pad_mixed_spatial: bool,
        max_samples: usize,
        deadline: Instant,
    ) -> TakeResult {
        let mut st = self.state.lock().unwrap();
        loop {
            let mut taken = Vec::new();
            let mut budget = max_samples;
            for class in 0..Priority::COUNT {
                let queue = &mut st.classes[class];
                let mut removed_samples = 0;
                let mut i = 0;
                while i < queue.len() {
                    let candidate = &queue[i];
                    if candidate.samples <= budget
                        && compat_key(candidate.input.shape(), pad_mixed_spatial) == key
                    {
                        let req = queue.remove(i).expect("index in range");
                        removed_samples += req.samples;
                        budget -= req.samples;
                        taken.push(req);
                        if budget == 0 {
                            break;
                        }
                    } else {
                        i += 1;
                    }
                }
                st.queued_samples[class] -= removed_samples;
                if budget == 0 {
                    break;
                }
            }
            if !taken.is_empty() {
                return TakeResult::Taken(taken);
            }
            if st.closed {
                return TakeResult::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return TakeResult::TimedOut;
            }
            let (guard, timeout) = self.arrived.wait_timeout(st, deadline - now).unwrap();
            st = guard;
            if timeout.timed_out() && st.classes.iter().all(|q| q.is_empty()) {
                return TakeResult::TimedOut;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ServeError;
    use quadra_tensor::Tensor;
    use std::sync::mpsc;
    use std::time::Duration;

    fn req(samples: usize, priority: Priority) -> PendingInfer {
        let (reply, rx) = mpsc::channel::<Result<crate::InferResponse, ServeError>>();
        std::mem::forget(rx); // keep the reply channel alive for the test's lifetime
        PendingInfer {
            id: 0,
            input: Tensor::zeros(&[samples, 2]),
            samples,
            priority,
            submitted_at: Instant::now(),
            reply,
        }
    }

    #[test]
    fn bounded_class_queue_rejects_when_full() {
        let q = AdmissionQueue::new(Some(3));
        q.try_admit(req(2, Priority::Interactive)).unwrap();
        q.try_admit(req(1, Priority::Interactive)).unwrap();
        let err = q.try_admit(req(1, Priority::Interactive)).unwrap_err();
        assert_eq!(err.1, AdmitRejection::Full);
        // The other class has its own budget.
        q.try_admit(req(3, Priority::Batch)).unwrap();
        assert_eq!(q.depth(), 6);
    }

    #[test]
    fn oversized_request_admitted_only_into_empty_class() {
        let q = AdmissionQueue::new(Some(2));
        q.try_admit(req(5, Priority::Interactive)).unwrap();
        let err = q.try_admit(req(5, Priority::Interactive)).unwrap_err();
        assert_eq!(err.1, AdmitRejection::Full);
    }

    #[test]
    fn pop_prefers_interactive() {
        let q = AdmissionQueue::new(None);
        q.try_admit(req(1, Priority::Batch)).unwrap();
        q.try_admit(req(1, Priority::Interactive)).unwrap();
        match q.pop_blocking() {
            PopResult::Request(r) => assert_eq!(r.priority, Priority::Interactive),
            PopResult::Closed => panic!("queue not closed"),
        }
        match q.pop_blocking() {
            PopResult::Request(r) => assert_eq!(r.priority, Priority::Batch),
            PopResult::Closed => panic!("queue not closed"),
        }
    }

    #[test]
    fn take_compatible_skips_other_shapes_and_respects_budget() {
        let q = AdmissionQueue::new(None);
        q.try_admit(req(2, Priority::Batch)).unwrap(); // [2, 2] — compatible
        let (reply, _rx) = mpsc::channel();
        q.try_admit(PendingInfer {
            id: 1,
            input: Tensor::zeros(&[1, 3]),
            samples: 1,
            priority: Priority::Interactive,
            submitted_at: Instant::now(),
            reply,
        })
        .unwrap(); // [1, 3] — different trailing shape, must stay queued
        q.try_admit(req(4, Priority::Interactive)).unwrap(); // too big for budget 3

        let key = compat_key(&[1, 2], false);
        match q.take_compatible(&key, false, 3, Instant::now()) {
            TakeResult::Taken(reqs) => {
                assert_eq!(reqs.len(), 1);
                assert_eq!(reqs[0].samples, 2);
            }
            _ => panic!("expected a take"),
        }
        assert_eq!(q.depth(), 5, "incompatible and over-budget requests stay queued");
    }

    #[test]
    fn close_rejects_admission_but_drains_queued() {
        let q = AdmissionQueue::new(None);
        q.try_admit(req(1, Priority::Interactive)).unwrap();
        q.close();
        let err = q.try_admit(req(1, Priority::Interactive)).unwrap_err();
        assert_eq!(err.1, AdmitRejection::Closed);
        assert!(matches!(q.pop_blocking(), PopResult::Request(_)));
        assert!(matches!(q.pop_blocking(), PopResult::Closed));
        let key = compat_key(&[1, 2], false);
        assert!(matches!(
            q.take_compatible(&key, false, 8, Instant::now() + Duration::from_secs(5)),
            TakeResult::Closed
        ));
    }
}
