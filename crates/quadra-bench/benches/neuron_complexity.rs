//! Criterion micro-benchmark backing Table 1's complexity column: forward cost
//! of a quadratic dense layer for every neuron type at a fixed size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quadra_core::{NeuronType, QuadraticLinear};
use quadra_nn::Layer;
use quadra_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_neuron_types(c: &mut Criterion) {
    let mut group = c.benchmark_group("quadratic_linear_forward");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(0);
    let x = Tensor::randn(&[16, 64], 0.0, 1.0, &mut rng);
    for t in
        [NeuronType::T1, NeuronType::T2, NeuronType::T3, NeuronType::T4, NeuronType::T2And4, NeuronType::Ours]
    {
        let mut layer = QuadraticLinear::new(t, 64, 64, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(t.name()), &t, |b, _| {
            b.iter(|| std::hint::black_box(layer.forward(&x, true)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_neuron_types);
criterion_main!(benches);
