//! The quadratic optimizer: the Training/Inference-level component of
//! QuadraLib that couples the memory profiler with the hybrid
//! back-propagation scheme.
//!
//! Before training starts the model is profiled; if the projected training
//! memory exceeds the device budget the optimizer switches every quadratic
//! layer into hybrid (memory-saving) back-propagation, otherwise the default
//! mode is kept because it avoids recomputation.

use crate::hybrid_bp::BackpropMode;
use crate::profiler::{MemoryProfiler, MemoryReport};
use quadra_nn::{Layer, Optimizer, Param, Sequential};
use quadra_tensor::Tensor;

/// Result of the out-of-memory risk analysis.
#[derive(Debug, Clone)]
pub struct MemoryDecision {
    /// Memory report with the layers in default mode.
    pub default_report: MemoryReport,
    /// Memory report with the layers in hybrid mode.
    pub hybrid_report: MemoryReport,
    /// The mode the optimizer selected.
    pub chosen_mode: BackpropMode,
    /// The budget used for the decision (bytes).
    pub budget_bytes: usize,
}

impl MemoryDecision {
    /// Relative saving of hybrid over default mode (0.0–1.0), in terms of peak
    /// cached activations.
    pub fn activation_saving(&self) -> f32 {
        let d = self.default_report.peak_activation_bytes as f32;
        let h = self.hybrid_report.peak_activation_bytes as f32;
        if d <= 0.0 {
            0.0
        } else {
            1.0 - h / d
        }
    }
}

/// An [`Optimizer`] wrapper that adds QuadraLib's memory-aware training
/// behaviour on top of any inner optimizer (SGD, Adam, ...).
pub struct QuadraticOptimizer<O: Optimizer> {
    inner: O,
    memory_budget_bytes: usize,
}

impl<O: Optimizer> QuadraticOptimizer<O> {
    /// Wrap an inner optimizer with a training-memory budget in bytes
    /// (e.g. the capacity of the target GPU).
    pub fn new(inner: O, memory_budget_bytes: usize) -> Self {
        QuadraticOptimizer { inner, memory_budget_bytes }
    }

    /// The configured memory budget in bytes.
    pub fn budget_bytes(&self) -> usize {
        self.memory_budget_bytes
    }

    /// Borrow the wrapped optimizer.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Profile `model` on a representative `sample_input`, decide whether
    /// hybrid back-propagation is needed to stay within the budget, and apply
    /// that mode to the model. Returns the decision with both reports.
    pub fn configure_memory(&self, model: &mut Sequential, sample_input: &Tensor) -> MemoryDecision {
        let profiler = MemoryProfiler::new();
        model.set_memory_saving(false);
        let (default_report, _) = profiler.profile_step(model, sample_input, self.inner.state_bytes());
        model.set_memory_saving(true);
        let (hybrid_report, _) = profiler.profile_step(model, sample_input, self.inner.state_bytes());

        let chosen_mode = if default_report.exceeds(self.memory_budget_bytes) {
            BackpropMode::Hybrid
        } else {
            BackpropMode::Default
        };
        model.set_memory_saving(chosen_mode == BackpropMode::Hybrid);
        MemoryDecision { default_report, hybrid_report, chosen_mode, budget_bytes: self.memory_budget_bytes }
    }
}

impl<O: Optimizer> Optimizer for QuadraticOptimizer<O> {
    fn step(&mut self, params: &mut [&mut Param]) {
        self.inner.step(params);
    }

    fn set_lr(&mut self, lr: f32) {
        self.inner.set_lr(lr);
    }

    fn lr(&self) -> f32 {
        self.inner.lr()
    }

    fn state_bytes(&self) -> usize {
        self.inner.state_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{build_model, LayerSpec, ModelConfig};
    use crate::neuron::NeuronType;
    use quadra_nn::{Layer, Sgd, SgdConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quadratic_config() -> ModelConfig {
        ModelConfig::new(
            "qmodel",
            3,
            8,
            4,
            vec![
                LayerSpec::qconv3x3(NeuronType::Ours, 8),
                LayerSpec::qconv3x3(NeuronType::Ours, 8),
                LayerSpec::GlobalAvgPool,
                LayerSpec::Linear { out_features: 4, relu: false },
            ],
        )
    }

    #[test]
    fn tight_budget_selects_hybrid_mode() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut model = build_model(&quadratic_config(), &mut rng);
        let x = Tensor::randn(&[4, 3, 8, 8], 0.0, 1.0, &mut rng);
        // A 1-byte budget is always exceeded, so hybrid mode must be chosen.
        let opt = QuadraticOptimizer::new(Sgd::new(SgdConfig::default()), 1);
        let decision = opt.configure_memory(&mut model, &x);
        assert_eq!(decision.chosen_mode, BackpropMode::Hybrid);
        assert!(model.memory_saving());
        assert!(decision.activation_saving() > 0.0);
        assert!(decision.hybrid_report.peak_activation_bytes < decision.default_report.peak_activation_bytes);
        assert_eq!(decision.budget_bytes, 1);
        assert_eq!(opt.budget_bytes(), 1);
    }

    #[test]
    fn generous_budget_keeps_default_mode() {
        let mut rng = StdRng::seed_from_u64(15);
        let mut model = build_model(&quadratic_config(), &mut rng);
        let x = Tensor::randn(&[4, 3, 8, 8], 0.0, 1.0, &mut rng);
        let opt = QuadraticOptimizer::new(Sgd::new(SgdConfig::default()), usize::MAX);
        let decision = opt.configure_memory(&mut model, &x);
        assert_eq!(decision.chosen_mode, BackpropMode::Default);
        assert!(!model.memory_saving());
        assert_eq!(opt.inner().lr(), SgdConfig::default().lr);
    }

    #[test]
    fn wrapper_delegates_optimizer_behaviour() {
        let mut opt = QuadraticOptimizer::new(Sgd::plain(0.5), 1 << 30);
        assert_eq!(opt.lr(), 0.5);
        opt.set_lr(0.25);
        assert_eq!(opt.lr(), 0.25);
        assert_eq!(opt.state_bytes(), 0);
        let mut p = Param::new("w", Tensor::from_slice(&[1.0]));
        p.grad = Tensor::from_slice(&[1.0]);
        let mut params = [&mut p];
        opt.step(&mut params);
        assert!((p.value.as_slice()[0] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn activation_saving_is_zero_for_empty_reports() {
        let d = MemoryDecision {
            default_report: MemoryReport::default(),
            hybrid_report: MemoryReport::default(),
            chosen_mode: BackpropMode::Default,
            budget_bytes: 0,
        };
        assert_eq!(d.activation_saving(), 0.0);
    }
}
