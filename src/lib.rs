//! # quadralib
//!
//! Meta-crate for **QuadraLib-rs**, a from-scratch Rust reproduction of
//! *"QuadraLib: A Performant Quadratic Neural Network Library for Architecture
//! Optimization and Design Exploration"* (MLSys 2022).
//!
//! This crate simply re-exports the public APIs of every member crate so that
//! examples and downstream users can depend on a single package:
//!
//! * [`tensor`] — the dense `f32` tensor substrate,
//! * [`autograd`] — tape-based reverse-mode AD + gradient checking,
//! * [`nn`] — first-order layers, losses, optimizers, schedulers, training loop,
//! * [`core`] — quadratic neurons, quadratic layers, hybrid back-propagation,
//!   memory profiler, auto-builder and analysis tools (the paper's contribution),
//! * [`data`] — synthetic datasets standing in for CIFAR / Tiny-ImageNet / VOC,
//! * [`models`] — the model zoo (VGG, ResNet, MobileNetV1, GAN, SSD-lite),
//! * [`serve`] — multi-model batched inference serving (router over named
//!   endpoints, bounded priority admission with load shedding, adaptive
//!   dynamic batcher, worker pools, checkpoint hot-reload, per-model
//!   metrics),
//! * [`gateway`] — event-driven TCP front-end over `serve`: epoll event
//!   loop, length-prefixed binary wire protocol, backpressure frames and
//!   read pausing, graceful drain.

pub use quadra_autograd as autograd;
pub use quadra_core as core;
pub use quadra_data as data;
pub use quadra_gateway as gateway;
pub use quadra_models as models;
pub use quadra_nn as nn;
pub use quadra_serve as serve;
pub use quadra_tensor as tensor;

/// Crate version of the meta-package, re-exported for convenience.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
