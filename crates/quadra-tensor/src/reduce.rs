//! Reductions (sum, mean, max, min, argmax) over the whole tensor or along an axis,
//! plus softmax / log-softmax used by the classification losses.

use crate::error::Result;
use crate::shape::check_axis;
use crate::tensor::Tensor;

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.numel() == 0 {
            0.0
        } else {
            self.sum() / self.numel() as f32
        }
    }

    /// Maximum element (negative infinity for empty tensors).
    pub fn max(&self) -> f32 {
        self.as_slice().iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for empty tensors).
    pub fn min(&self) -> f32 {
        self.as_slice().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Population variance of all elements.
    pub fn variance(&self) -> f32 {
        if self.numel() == 0 {
            return 0.0;
        }
        let m = self.mean();
        self.as_slice().iter().map(|x| (x - m) * (x - m)).sum::<f32>() / self.numel() as f32
    }

    /// Population standard deviation of all elements.
    pub fn std(&self) -> f32 {
        self.variance().sqrt()
    }

    /// Index of the maximum element in flattened (row-major) order.
    pub fn argmax_flat(&self) -> usize {
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.as_slice().iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Reduce along `axis` with a fold, producing a tensor whose shape is the
    /// input shape with `axis` removed.
    fn reduce_axis(&self, axis: usize, init: f32, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        check_axis(axis, self.ndim())?;
        let shape = self.shape();
        let outer: usize = shape[..axis].iter().product();
        let reduce_n = shape[axis];
        let inner: usize = shape[axis + 1..].iter().product();
        let mut out_shape: Vec<usize> = shape[..axis].to_vec();
        out_shape.extend_from_slice(&shape[axis + 1..]);
        let src = self.as_slice();
        let mut data = vec![init; outer * inner];
        for o in 0..outer {
            for r in 0..reduce_n {
                let base = (o * reduce_n + r) * inner;
                let dst = o * inner;
                for i in 0..inner {
                    data[dst + i] = f(data[dst + i], src[base + i]);
                }
            }
        }
        Tensor::from_vec(data, &out_shape)
    }

    /// Sum along `axis`, removing that axis.
    pub fn sum_axis(&self, axis: usize) -> Result<Tensor> {
        self.reduce_axis(axis, 0.0, |a, b| a + b)
    }

    /// Mean along `axis`, removing that axis.
    pub fn mean_axis(&self, axis: usize) -> Result<Tensor> {
        let n = self.shape()[check_axis(axis, self.ndim())?] as f32;
        Ok(self.sum_axis(axis)?.div_scalar(n.max(1.0)))
    }

    /// Maximum along `axis`, removing that axis.
    pub fn max_axis(&self, axis: usize) -> Result<Tensor> {
        self.reduce_axis(axis, f32::NEG_INFINITY, f32::max)
    }

    /// Minimum along `axis`, removing that axis.
    pub fn min_axis(&self, axis: usize) -> Result<Tensor> {
        self.reduce_axis(axis, f32::INFINITY, f32::min)
    }

    /// Argmax along the last axis. For a `[batch, classes]` tensor this returns
    /// the predicted class per row, shape `[batch]` (values stored as `f32`).
    pub fn argmax_last_axis(&self) -> Result<Tensor> {
        let ndim = self.ndim();
        check_axis(ndim.saturating_sub(1), ndim.max(1))?;
        let last = *self.shape().last().unwrap_or(&1);
        let rows = self.numel() / last.max(1);
        let src = self.as_slice();
        let mut data = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &src[r * last..(r + 1) * last];
            let mut best = 0usize;
            let mut best_v = f32::NEG_INFINITY;
            for (i, &v) in row.iter().enumerate() {
                if v > best_v {
                    best_v = v;
                    best = i;
                }
            }
            data.push(best as f32);
        }
        let mut out_shape = self.shape().to_vec();
        out_shape.pop();
        Tensor::from_vec(data, &out_shape)
    }

    /// Numerically stable softmax along the last axis.
    pub fn softmax_last_axis(&self) -> Tensor {
        let last = *self.shape().last().unwrap_or(&1);
        let rows = self.numel() / last.max(1);
        let src = self.as_slice();
        let mut data = Vec::with_capacity(self.numel());
        for r in 0..rows {
            let row = &src[r * last..(r + 1) * last];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = row.iter().map(|&x| (x - m).exp()).collect();
            let s: f32 = exps.iter().sum();
            data.extend(exps.iter().map(|&e| e / s));
        }
        Tensor::from_vec(data, self.shape()).expect("same shape")
    }

    /// Numerically stable log-softmax along the last axis.
    pub fn log_softmax_last_axis(&self) -> Tensor {
        let last = *self.shape().last().unwrap_or(&1);
        let rows = self.numel() / last.max(1);
        let src = self.as_slice();
        let mut data = Vec::with_capacity(self.numel());
        for r in 0..rows {
            let row = &src[r * last..(r + 1) * last];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let log_sum: f32 = row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
            data.extend(row.iter().map(|&x| x - m - log_sum));
        }
        Tensor::from_vec(data, self.shape()).expect("same shape")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn whole_tensor_reductions() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.argmax_flat(), 3);
        assert!((a.variance() - 1.25).abs() < 1e-6);
        assert!((a.std() - 1.25f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn empty_tensor_reductions() {
        let e = Tensor::zeros(&[0]);
        assert_eq!(e.sum(), 0.0);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.variance(), 0.0);
    }

    #[test]
    fn axis_reductions_2d() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.sum_axis(0).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.sum_axis(1).unwrap().as_slice(), &[6.0, 15.0]);
        assert_eq!(a.mean_axis(0).unwrap().as_slice(), &[2.5, 3.5, 4.5]);
        assert_eq!(a.max_axis(1).unwrap().as_slice(), &[3.0, 6.0]);
        assert_eq!(a.min_axis(1).unwrap().as_slice(), &[1.0, 4.0]);
        assert!(a.sum_axis(2).is_err());
    }

    #[test]
    fn axis_reductions_3d_middle_axis() {
        let a = Tensor::arange(0.0, 1.0, 24).reshape(&[2, 3, 4]).unwrap();
        let s = a.sum_axis(1).unwrap();
        assert_eq!(s.shape(), &[2, 4]);
        // element [0,0] = a[0,0,0] + a[0,1,0] + a[0,2,0] = 0 + 4 + 8
        assert_eq!(s.at(&[0, 0]), 12.0);
        assert_eq!(s.at(&[1, 3]), (15 + 19 + 23) as f32);
    }

    #[test]
    fn argmax_last_axis_per_row() {
        let a = t(&[0.1, 0.9, 0.0, 0.8, 0.1, 0.1], &[2, 3]);
        let am = a.argmax_last_axis().unwrap();
        assert_eq!(am.shape(), &[2]);
        assert_eq!(am.as_slice(), &[1.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_are_stable() {
        let a = t(&[1000.0, 1001.0, 999.0, -5.0, 0.0, 5.0], &[2, 3]);
        let s = a.softmax_last_axis();
        assert!(!s.has_non_finite());
        for r in 0..2 {
            let row_sum: f32 = s.as_slice()[r * 3..(r + 1) * 3].iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
        // softmax is monotone in the logits
        assert!(s.at(&[0, 1]) > s.at(&[0, 0]));
        assert!(s.at(&[0, 0]) > s.at(&[0, 2]));
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let a = t(&[0.5, -1.0, 2.0, 3.0], &[2, 2]);
        let ls = a.log_softmax_last_axis();
        let s_log = a.softmax_last_axis().ln();
        assert!(ls.allclose(&s_log, 1e-5));
    }
}
