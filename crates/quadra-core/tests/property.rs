//! Property-based tests of QuadraLib-core invariants: neuron complexity
//! formulas, quadratic-layer gradients, hybrid-BP equivalence and the
//! auto-builder's structural guarantees.

use proptest::prelude::*;
use quadra_core::{
    estimate_param_count, AutoBuilder, BackpropMode, LayerSpec, ModelConfig, NeuronType, QuadraticLinear,
};
use quadra_nn::Layer;
use quadra_tensor::Tensor;
use rand::SeedableRng;

fn any_neuron() -> impl Strategy<Value = NeuronType> {
    prop::sample::select(NeuronType::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Closed-form parameter counts grow monotonically with the input size and
    /// match what Table 1 states about relative ordering.
    #[test]
    fn complexity_formulas_are_monotone(neuron in any_neuron(), n in 2usize..64) {
        prop_assert!(neuron.param_count(n + 1) >= neuron.param_count(n));
        prop_assert!(neuron.flop_count(n + 1) >= neuron.flop_count(n));
        // Ours always costs more than T4 (extra linear branch) but less than T1
        // for large enough inputs.
        prop_assert!(NeuronType::Ours.param_count(n) >= NeuronType::T4.param_count(n));
        if n >= 4 {
            prop_assert!(NeuronType::Ours.param_count(n) <= NeuronType::T1.param_count(n));
        }
    }

    /// The proposed quadratic layer's output is exactly quadratic in its input:
    /// scaling the input by `s` scales the second-order term by `s²` and the
    /// linear term by `s` (checked via three evaluations, bias-free).
    #[test]
    fn ours_layer_is_second_order_polynomial(seed in 0u64..500, s in 0.5f32..2.0) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut layer = QuadraticLinear::new(NeuronType::Ours, 4, 3, &mut rng);
        let x = Tensor::randn(&[1, 4], 0.0, 1.0, &mut rng);
        let f1 = layer.forward(&x, false);
        let fs = layer.forward(&x.mul_scalar(s), false);
        let f0 = layer.forward(&Tensor::zeros(&[1, 4]), false);
        // f(sx) = s^2*Q(x) + s*L(x) + c  with Q = f(x)-L(x)-c recovered from f(1x):
        // check the polynomial identity f(sx) - c = s^2 (f(x) - L - c) + s*L where
        // L = limit of (f(tx)-c)/t as t->0 approximated by t=1e-3.
        let t = 1e-3f32;
        let ft = layer.forward(&x.mul_scalar(t), false);
        let lin = ft.sub(&f0).unwrap().div_scalar(t);
        let quad = f1.sub(&f0).unwrap().sub(&lin).unwrap();
        let predicted = quad.mul_scalar(s * s).add(&lin.mul_scalar(s)).unwrap().add(&f0).unwrap();
        prop_assert!(fs.allclose(&predicted, 0.05), "poly identity violated");
    }

    /// Hybrid and default back-propagation give identical gradients for any
    /// seed and any practical neuron type (the correctness half of Fig. 8).
    #[test]
    fn hybrid_bp_gradients_match_default(seed in 0u64..200, neuron in prop::sample::select(vec![
        NeuronType::T2, NeuronType::T3, NeuronType::T4, NeuronType::T2And4, NeuronType::Ours,
    ])) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut a = QuadraticLinear::new(neuron, 5, 4, &mut rng);
        let mut b = QuadraticLinear::new(neuron, 5, 4, &mut rng);
        for (pa, pb) in a.params().iter().zip(b.params_mut()) {
            pb.value.copy_from(&pa.value).unwrap();
        }
        b.set_mode(BackpropMode::Hybrid);
        let x = Tensor::randn(&[3, 5], 0.0, 1.0, &mut rng);
        let ya = a.forward(&x, true);
        let yb = b.forward(&x, true);
        prop_assert!(ya.allclose(&yb, 1e-5));
        let g = Tensor::randn(ya.shape(), 0.0, 1.0, &mut rng);
        let gxa = a.backward(&g);
        let gxb = b.backward(&g);
        prop_assert!(gxa.allclose(&gxb, 1e-4));
        for (pa, pb) in a.params().iter().zip(b.params()) {
            prop_assert!(pa.grad.allclose(&pb.grad, 1e-4));
        }
    }

    /// The auto-builder never increases the conv-layer count, always produces a
    /// quadratic config, and the conversion multiplies parameters by at most the
    /// branch count of the neuron type.
    #[test]
    fn auto_builder_structural_invariants(n_extra in 0usize..4, target in 1usize..4) {
        let mut layers = vec![LayerSpec::conv3x3(8)];
        for _ in 0..n_extra {
            layers.push(LayerSpec::conv3x3(8));
        }
        layers.push(LayerSpec::GlobalAvgPool);
        layers.push(LayerSpec::Linear { out_features: 4, relu: false });
        let cfg = ModelConfig::new("prop", 3, 8, 4, layers);
        let builder = AutoBuilder::new(NeuronType::Ours);
        let converted = builder.convert(&cfg);
        prop_assert!(converted.is_quadratic());
        prop_assert_eq!(converted.conv_layer_count(), cfg.conv_layer_count());
        prop_assert!(estimate_param_count(&converted) <= 3 * estimate_param_count(&cfg) + 1000);
        let reduced = builder.build(&cfg, target, &[]);
        prop_assert!(reduced.conv_layer_count() <= cfg.conv_layer_count());
        prop_assert!(reduced.conv_layer_count() >= 1);
        prop_assert!(estimate_param_count(&reduced) <= estimate_param_count(&converted));
    }
}
